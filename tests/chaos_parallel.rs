//! Chaos sweep over the parallel portfolio: a fault inside one worker must
//! degrade that worker only — the join never poisons, never hangs, and the
//! other members' results stand. Real budget limits, by contrast, stop
//! every member.
//!
//! Global chaos plans are process-wide, so every test here serializes on
//! one mutex (the other tests in this binary don't arm chaos at all).

// Tests are exempt from the panic-freedom policy; clippy's in-tests
// exemption misses integration-test helpers, so waive it explicitly.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use picola::baselines::standard_portfolio;
use picola::constraints::{GroupConstraint, SymbolSet};
use picola::core::{chaos, Budget, Completion, ExhaustReason};
use std::sync::Mutex;
use std::time::Duration;

static CHAOS_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    CHAOS_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn instance() -> (usize, Vec<GroupConstraint>) {
    let n = 10;
    let groups: &[&[usize]] = &[&[0, 1, 2], &[3, 4], &[5, 6, 7], &[8, 9], &[1, 5]];
    let cs = groups
        .iter()
        .map(|g| GroupConstraint::new(SymbolSet::from_members(n, g.iter().copied())))
        .collect();
    (n, cs)
}

#[test]
fn injected_fault_degrades_the_owning_member_only() {
    let _lock = lock();
    let (n, cs) = instance();
    // Each trigger point belongs to exactly one portfolio member; firing
    // it must degrade that member and no other.
    for (point, owner) in [
        ("picola.refine", "picola"),
        ("nova.place", "nova-ih"),
        ("anneal.move", "anneal"),
        ("sat.conflict", "sat"),
    ] {
        let guard = chaos::arm_global(point, 0);
        let budget = Budget::unlimited();
        let out = standard_portfolio(7)
            .with_threads(4)
            .run(n, &cs, &budget)
            .unwrap_or_else(|| panic!("{point}: join must return an outcome"));
        for m in &out.members {
            if m.name == owner {
                assert!(
                    matches!(
                        m.completion,
                        Completion::Degraded {
                            reason: ExhaustReason::Injected,
                            ..
                        }
                    ),
                    "{point}: member {} should be injected-degraded, got {:?}",
                    m.name,
                    m.completion
                );
            } else {
                assert!(
                    m.completion.is_complete(),
                    "{point}: fault leaked into member {}",
                    m.name
                );
            }
            assert_eq!(m.encoding.num_symbols(), n, "{point}: invalid fallback");
        }
        assert!(!out.completion.is_complete(), "{point}: fold hides the fault");
        assert_eq!(
            budget.exhaustion(),
            None,
            "{point}: injected faults must not poison the parent budget"
        );
        drop(guard);
    }
}

#[test]
fn a_panicking_worker_does_not_hang_the_join_under_chaos() {
    let _lock = lock();
    // Chaos armed on one member *and* a finite work pool: the injected
    // member degrades privately while the cap degrades the rest; the join
    // still returns one outcome per member.
    let (n, cs) = instance();
    let _guard = chaos::arm_global("anneal.move", 0);
    let budget = Budget::with_work_limit(500);
    let out = standard_portfolio(7)
        .with_threads(4)
        .run(n, &cs, &budget)
        .unwrap_or_else(|| panic!("join must return"));
    assert_eq!(out.members.len(), 6);
    for m in &out.members {
        assert_eq!(m.encoding.num_symbols(), n);
    }
    let anneal = out
        .members
        .iter()
        .find(|m| m.name == "anneal")
        .unwrap_or_else(|| panic!("anneal member missing"));
    assert!(
        matches!(
            anneal.completion,
            Completion::Degraded {
                reason: ExhaustReason::Injected,
                ..
            }
        ),
        "anneal: {:?}",
        anneal.completion
    );
}

#[test]
fn zero_deadline_degrades_every_working_member_but_join_returns() {
    let _lock = lock();
    let (n, cs) = instance();
    let budget = Budget::unlimited().deadline_in(Duration::ZERO);
    let out = standard_portfolio(7)
        .with_threads(4)
        .run(n, &cs, &budget)
        .unwrap_or_else(|| panic!("degraded, not dead"));
    assert!(!out.completion.is_complete());
    for m in &out.members {
        assert_eq!(m.encoding.num_symbols(), n, "{}: invalid result", m.name);
    }
    assert_eq!(budget.exhaustion(), Some(ExhaustReason::Deadline));
}

#[test]
fn tiny_work_cap_propagates_to_the_parent_latch() {
    let _lock = lock();
    let (n, cs) = instance();
    let budget = Budget::with_work_limit(1);
    let out = standard_portfolio(7)
        .with_threads(2)
        .run(n, &cs, &budget)
        .unwrap_or_else(|| panic!("degraded, not dead"));
    assert!(!out.completion.is_complete());
    for m in &out.members {
        assert_eq!(m.encoding.num_symbols(), n);
    }
    assert_eq!(budget.exhaustion(), Some(ExhaustReason::WorkLimit));
}
