//! Cross-crate integration tests: KISS2 → constraints → encoding → encoded
//! machine → minimization, with behavioural equivalence checks against the
//! original state-transition table.

// Tests are exempt from the panic-freedom policy; clippy's in-tests
// exemption misses integration-test helpers, so waive it explicitly.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use picola::constraints::Encoding;
use picola::core::{evaluate_encoding, Encoder, PicolaEncoder};
use picola::fsm::{benchmark_fsm, parse_kiss, Fsm, Ternary};
use picola::logic::{espresso, implements, Cover};
use picola::stassign::{assign_states, encode_machine, fsm_constraints, FlowOptions};

const SMALL: &str = "\
.i 2
.o 1
.r s0
-0 s0 s0 0
01 s0 s1 0
11 s0 s2 1
-- s1 s3 1
0- s2 s0 0
1- s2 s3 1
-1 s3 s0 1
-0 s3 s1 0
.e
";

/// Looks up the row matching (state, input minterm); KISS2 benchmarks are
/// deterministic so at most one row matches.
fn lookup(fsm: &Fsm, state: usize, input: u32) -> Option<(Option<usize>, Vec<Ternary>)> {
    for t in fsm.transitions() {
        if t.from.is_some_and(|f| f != state) {
            continue;
        }
        let matches = t.input.iter().enumerate().all(|(b, lit)| match lit {
            Ternary::Zero => input >> b & 1 == 0,
            Ternary::One => input >> b & 1 == 1,
            Ternary::DontCare => true,
        });
        if matches {
            return Some((t.to, t.output.clone()));
        }
    }
    None
}

/// Evaluates a multi-output cover at (inputs, state code): returns the
/// asserted output parts.
fn eval_cover(cover: &Cover, ni: usize, nv: usize, input: u32, code: u32) -> Vec<bool> {
    let dom = cover.domain();
    let ov = dom.output_var().expect("output var");
    let nout = dom.var(ov).parts();
    let mut out = vec![false; nout];
    for cube in cover.iter() {
        let mut hit = true;
        for b in 0..ni {
            let v = (input >> b & 1) as usize;
            if !cube.has_part(dom.var(b).offset() + v) {
                hit = false;
                break;
            }
        }
        if hit {
            for b in 0..nv {
                let v = (code >> b & 1) as usize;
                if !cube.has_part(dom.var(ni + b).offset() + v) {
                    hit = false;
                    break;
                }
            }
        }
        if hit {
            for (o, flag) in out.iter_mut().enumerate() {
                if cube.has_part(dom.var(ov).offset() + o) {
                    *flag = true;
                }
            }
        }
    }
    out
}

/// The minimized encoded machine must agree with the symbolic machine on
/// every (state, input) pair the KISS table specifies.
fn check_behaviour(fsm: &Fsm, enc: &Encoding) {
    let em = encode_machine(fsm, enc);
    let minimized = espresso(&em.on, &em.dc);
    assert!(
        implements(&minimized, &em.on, &em.dc),
        "{}: minimized cover out of bounds",
        fsm.name()
    );
    let ni = fsm.num_inputs();
    let nv = enc.nv();
    for state in 0..fsm.num_states() {
        for input in 0..1u32 << ni {
            let Some((to, outputs)) = lookup(fsm, state, input) else {
                continue;
            };
            let got = eval_cover(&minimized, ni, nv, input, enc.code(state));
            if let Some(next) = to {
                let want = enc.code(next);
                for (b, &bit) in got.iter().take(nv).enumerate() {
                    assert_eq!(
                        bit,
                        want >> b & 1 == 1,
                        "{}: state {state} input {input:b}: next-state bit {b}",
                        fsm.name()
                    );
                }
            }
            for (o, lit) in outputs.iter().enumerate() {
                match lit {
                    Ternary::One => assert!(
                        got[nv + o],
                        "{}: state {state} input {input:b}: output {o} should be 1",
                        fsm.name()
                    ),
                    Ternary::Zero => assert!(
                        !got[nv + o],
                        "{}: state {state} input {input:b}: output {o} should be 0",
                        fsm.name()
                    ),
                    Ternary::DontCare => {}
                }
            }
        }
    }
}

#[test]
fn encoded_small_machine_behaves_identically() {
    let fsm = parse_kiss("small", SMALL).unwrap();
    let constraints = fsm_constraints(&fsm, picola::constraints::ExtractMethod::Espresso);
    let enc = PicolaEncoder::default().encode(fsm.num_states(), &constraints);
    check_behaviour(&fsm, &enc);
}

#[test]
fn encoded_suite_machines_behave_identically() {
    for name in ["lion9", "s8", "ex5", "train11"] {
        let fsm = benchmark_fsm(name).unwrap();
        let constraints = fsm_constraints(&fsm, picola::constraints::ExtractMethod::Espresso);
        let enc = PicolaEncoder::default().encode(fsm.num_states(), &constraints);
        check_behaviour(&fsm, &enc);
    }
}

#[test]
fn natural_encoding_also_behaves_identically() {
    // Behaviour must hold for *any* valid encoding, not just PICOLA's.
    let fsm = parse_kiss("small", SMALL).unwrap();
    check_behaviour(&fsm, &Encoding::natural(fsm.num_states()));
}

#[test]
fn full_flow_reports_consistent_metrics() {
    let fsm = benchmark_fsm("bbara").unwrap();
    let r = assign_states(&fsm, &PicolaEncoder::default(), &FlowOptions::default());
    assert_eq!(r.encoding.num_symbols(), 10);
    assert_eq!(r.encoding.nv(), 4);
    assert!(r.size > 0 && r.literals >= r.size);
}

#[test]
fn picola_beats_or_matches_worst_case_encoders() {
    use picola::baselines::RandomEncoder;
    for name in ["bbara", "ex3", "keyb", "donfile"] {
        let fsm = benchmark_fsm(name).unwrap();
        let constraints = fsm_constraints(&fsm, picola::constraints::ExtractMethod::Quick);
        if constraints.is_empty() {
            continue;
        }
        let n = fsm.num_states();
        let picola = PicolaEncoder::default().encode(n, &constraints);
        let picola_cost = evaluate_encoding(&picola, &constraints).total_cubes;
        // median of a few random encodings
        let mut random_costs: Vec<usize> = (0..5)
            .map(|s| {
                let e = RandomEncoder { seed: s }.encode(n, &constraints);
                evaluate_encoding(&e, &constraints).total_cubes
            })
            .collect();
        random_costs.sort_unstable();
        assert!(
            picola_cost <= random_costs[2],
            "{name}: picola {picola_cost} worse than median random {}",
            random_costs[2]
        );
    }
}

#[test]
fn evaluation_estimate_bounds_the_exact_minimum() {
    use picola::core::{estimate_cubes, evaluate_encoding_with, EvalMinimizer};
    let fsm = benchmark_fsm("bbara").unwrap();
    let constraints = fsm_constraints(&fsm, picola::constraints::ExtractMethod::Quick);
    let enc = PicolaEncoder::default().encode(fsm.num_states(), &constraints);
    let est = estimate_cubes(&enc, &constraints);
    let exact = evaluate_encoding_with(
        &enc,
        &constraints,
        EvalMinimizer::Exact { max_nodes: 500_000 },
    )
    .total_cubes;
    assert!(est >= exact, "estimate {est} < exact {exact}");
}
