//! Counter conservation: every work unit drained from a [`Budget`] must
//! appear in the attached trace (`Trace::total_work()` equals
//! `Budget::work_done()`), and every span must close — on clean runs, on
//! budget-degraded runs, and under every registered chaos trigger point,
//! sequential and parallel alike.

#![cfg(feature = "obs")]
// Tests are exempt from the panic-freedom policy; clippy's in-tests
// exemption misses integration-test helpers, so waive it explicitly.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use picola::baselines::{standard_portfolio, AnnealingEncoder, EncLikeEncoder, NovaEncoder};
use picola::constraints::{Encoding, GroupConstraint, SymbolSet};
use picola::core::{chaos, Budget, Completion, Encoder, EncoderPortfolio, PicolaEncoder};
use picola::fsm::parse_kiss;
use picola::logic::{Counter, Trace};
use picola::sat::{ExactOracle, SatEncoder};
use picola::stassign::{assign_states_bounded, FlowOptions};
use std::sync::Mutex;

/// Serializes the tests in this binary: a global chaos plan armed by one
/// test must not leak faults into another running concurrently.
static CHAOS_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    CHAOS_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

const MACHINE: &str = "\
.i 2
.o 1
.r s0
-0 s0 s0 0
01 s0 s1 0
11 s0 s2 1
-- s1 s3 1
0- s2 s0 0
1- s2 s3 1
-1 s3 s0 1
-0 s3 s1 0
.e
";

fn small_constraints() -> Vec<GroupConstraint> {
    [[0usize, 1], [2, 3], [4, 5]]
        .iter()
        .map(|g| GroupConstraint::new(SymbolSet::from_members(8, g.iter().copied())))
        .collect()
}

/// An instance whose natural seed is suboptimal, so the SAT member's
/// bound-tightening loop always issues real solver probes (and therefore
/// real `sat.conflict` ticks).
fn sat_constraints() -> Vec<GroupConstraint> {
    [&[0usize, 3, 5][..], &[1, 2], &[6, 7]]
        .iter()
        .map(|g| GroupConstraint::new(SymbolSet::from_members(8, g.iter().copied())))
        .collect()
}

/// Asserts the conservation contract for one traced run.
fn check(trace: &Trace, budget: &Budget, ctx: &str) {
    assert_eq!(
        trace.total_work(),
        budget.work_done(),
        "trace work != budget work: {ctx}"
    );
    assert_eq!(trace.open_spans(), 0, "unclosed spans: {ctx}");
    // Every minimization lookup is answered exactly once: from the memo or
    // by running the minimizer. Hits and misses must partition the calls.
    let snap = trace.snapshot();
    assert_eq!(
        snap.counter_total(Counter::MinimizeCacheHit)
            + snap.counter_total(Counter::MinimizeCacheMiss),
        snap.counter_total(Counter::MinimizeCalls),
        "cache hits + misses != minimize calls: {ctx}"
    );
}

/// Drives the full flow plus every baseline encoder under one traced
/// budget, so all registered trigger points that live under a budget are
/// exercised. Returns the trace for further assertions.
fn drive_traced(base: Budget, ctx: &str) -> Trace {
    let trace = Trace::new();
    let budget = base.with_recorder(trace.recorder());

    if let Ok(fsm) = parse_kiss("cons", MACHINE) {
        let r = assign_states_bounded(
            &fsm,
            &PicolaEncoder::default(),
            &FlowOptions::default(),
            &budget,
        );
        assert_eq!(r.encoding.num_symbols(), fsm.num_states());
    }
    let cs = small_constraints();
    for encoder in [
        &AnnealingEncoder::default() as &dyn Encoder,
        &NovaEncoder::i_hybrid(),
        &EncLikeEncoder::default(),
    ] {
        let (enc, _) = encoder.encode_bounded(8, &cs, &budget);
        assert_eq!(enc.num_symbols(), 8, "{}: {ctx}", encoder.name());
    }
    // The SAT member, on an instance that forces real solver probes.
    let (enc, _) = SatEncoder::default().encode_bounded(8, &sat_constraints(), &budget);
    assert_eq!(enc.num_symbols(), 8, "sat: {ctx}");

    check(&trace, &budget, ctx);
    trace
}

#[test]
fn unbounded_runs_conserve_work() {
    let _serial = lock();
    let trace = drive_traced(Budget::unlimited(), "unbounded");
    assert!(trace.total_work() > 0, "the flow must report work");
    assert_eq!(trace.snapshot().counter_total(Counter::FaultsInjected), 0);
}

#[test]
fn degraded_runs_conserve_work() {
    let _serial = lock();
    // Tiny work limits cut every stage short; the failing tick that trips
    // the limit still drains the pool, so it must also be recorded.
    for limit in [1u64, 2, 5, 50] {
        let trace = drive_traced(Budget::with_work_limit(limit), &format!("limit={limit}"));
        assert!(trace.total_work() > 0);
    }
}

#[test]
fn every_chaos_point_conserves_work_and_closes_spans() {
    let _serial = lock();
    for &point in chaos::TRIGGER_POINTS {
        for after in [0u64, 3] {
            let guard = chaos::arm(point, after);
            let trace = drive_traced(Budget::unlimited(), &format!("chaos {point}/{after}"));
            drop(guard);
            // A fault may or may not fire depending on whether this drive
            // reaches the point often enough; when it does, the injection
            // itself must be visible in the trace.
            let faults = trace.snapshot().counter_total(Counter::FaultsInjected);
            if point.starts_with("picola.") && after == 0 {
                assert!(faults > 0, "{point} must fire under the traced budget");
            }
        }
    }
}

#[test]
fn portfolio_chaos_sweep_conserves_work() {
    let _serial = lock();
    // Global plans reach the parallel portfolio workers; conservation must
    // hold even when ticks happen on threads the test never touches.
    let cs = small_constraints();
    for &point in chaos::TRIGGER_POINTS {
        let guard = chaos::arm_global(point, 2);
        let trace = Trace::new();
        let budget = Budget::unlimited().with_recorder(trace.recorder());
        let out = standard_portfolio(11)
            .with_threads(4)
            .run(8, &cs, &budget)
            .expect("non-empty portfolio");
        assert_eq!(out.best().encoding.num_symbols(), 8);
        drop(guard);
        check(&trace, &budget, &format!("portfolio chaos {point}"));
    }
}

#[test]
fn sat_oracle_conserves_work_even_when_exhausted() {
    let _serial = lock();
    // Only the SAT layer runs under this trace, so every budget work unit
    // must come from a decision or a conflict — the counters and the
    // drained pool reconcile exactly, complete and degraded alike.
    for limit in [1u64, 5, 50, u64::MAX] {
        let trace = Trace::new();
        let base = if limit == u64::MAX {
            Budget::unlimited()
        } else {
            Budget::with_work_limit(limit)
        };
        let budget = base.with_recorder(trace.recorder());
        let out = ExactOracle::default()
            .prove(8, &sat_constraints(), &budget)
            .expect("within the size guard");
        assert_eq!(out.encoding.num_symbols(), 8, "limit={limit}");
        if limit == u64::MAX {
            assert!(out.optimal, "unlimited budget must prove the optimum");
            assert!(out.completion.is_complete());
        }
        check(&trace, &budget, &format!("sat oracle limit={limit}"));
        let snap = trace.snapshot();
        assert_eq!(
            snap.counter_total(Counter::SatDecisions)
                + snap.counter_total(Counter::SatConflicts),
            budget.work_done(),
            "limit={limit}: sat ticks must account for all budget work"
        );
        assert!(
            snap.counter_total(Counter::SatDecisions) > 0,
            "limit={limit}: the loop must have probed"
        );
    }
}

/// An encoder that always panics, for proving spans close on the
/// panic-recovery path.
struct PanickingEncoder;

impl Encoder for PanickingEncoder {
    fn name(&self) -> &str {
        "boom"
    }

    fn encode(&self, _n: usize, _constraints: &[GroupConstraint]) -> Encoding {
        panic!("injected test panic")
    }

    fn encode_bounded(
        &self,
        _n: usize,
        _constraints: &[GroupConstraint],
        _budget: &Budget,
    ) -> (Encoding, Completion) {
        panic!("injected test panic")
    }
}

#[test]
fn panicking_member_still_closes_its_span() {
    let _serial = lock();
    let cs = small_constraints();
    let trace = Trace::new();
    let budget = Budget::unlimited().with_recorder(trace.recorder());
    let portfolio = EncoderPortfolio::new(vec![
        Box::new(PanickingEncoder),
        Box::new(PicolaEncoder::default()),
    ]);
    let out = portfolio
        .with_threads(2)
        .run(8, &cs, &budget)
        .expect("non-empty portfolio");
    assert_eq!(out.best().encoding.num_symbols(), 8, "survivor wins");
    assert_eq!(trace.snapshot().counter_total(Counter::PanicsCaught), 1);
    check(&trace, &budget, "panicking member");
}
