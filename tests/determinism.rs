//! Whole-stack determinism: the tables of the paper reproduction must come
//! out identical on every run and machine.

// Tests are exempt from the panic-freedom policy; clippy's in-tests
// exemption misses integration-test helpers, so waive it explicitly.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use picola::baselines::{AnnealingEncoder, EncLikeEncoder, NovaEncoder};
use picola::core::{Encoder, PicolaEncoder};
use picola::fsm::{benchmark_fsm, write_kiss};
use picola::stassign::{assign_states, fsm_constraints, FlowOptions, PicolaStateEncoder};

#[test]
fn suite_synthesis_is_stable() {
    for name in ["bbara", "keyb", "planet"] {
        let a = write_kiss(&benchmark_fsm(name).unwrap());
        let b = write_kiss(&benchmark_fsm(name).unwrap());
        assert_eq!(a, b, "{name} synthesis unstable");
    }
}

#[test]
fn constraint_extraction_is_stable() {
    let fsm = benchmark_fsm("donfile").unwrap();
    let a = fsm_constraints(&fsm, picola::constraints::ExtractMethod::Espresso);
    let b = fsm_constraints(&fsm, picola::constraints::ExtractMethod::Espresso);
    assert_eq!(a, b);
}

#[test]
fn every_encoder_is_deterministic() {
    let fsm = benchmark_fsm("ex3").unwrap();
    let n = fsm.num_states();
    let cs = fsm_constraints(&fsm, picola::constraints::ExtractMethod::Quick);
    let encoders: Vec<Box<dyn Encoder>> = vec![
        Box::<PicolaEncoder>::default(),
        Box::new(NovaEncoder::i_hybrid()),
        Box::new(EncLikeEncoder {
            max_evaluations: 200,
        }),
        Box::<AnnealingEncoder>::default(),
        Box::new(PicolaStateEncoder::for_fsm(&fsm)),
    ];
    for e in &encoders {
        let a = e.encode(n, &cs);
        let b = e.encode(n, &cs);
        assert_eq!(a, b, "{} not deterministic", e.name());
    }
}

#[test]
fn flow_sizes_are_stable() {
    let fsm = benchmark_fsm("s27").unwrap();
    let opts = FlowOptions::default();
    let a = assign_states(&fsm, &PicolaEncoder::default(), &opts);
    let b = assign_states(&fsm, &PicolaEncoder::default(), &opts);
    assert_eq!(a.size, b.size);
    assert_eq!(a.literals, b.literals);
    assert_eq!(a.encoding, b.encoding);
}
