//! Whole-stack determinism: the tables of the paper reproduction must come
//! out identical on every run and machine.

// Tests are exempt from the panic-freedom policy; clippy's in-tests
// exemption misses integration-test helpers, so waive it explicitly.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use picola::baselines::{standard_portfolio, AnnealingEncoder, EncLikeEncoder, NovaEncoder};
use picola::core::{picola_encode_with, Budget, Encoder, PicolaEncoder, PicolaOptions};
use picola::fsm::{benchmark_fsm, write_kiss};
use picola::stassign::{assign_states, fsm_constraints, FlowOptions, PicolaStateEncoder};

#[test]
fn suite_synthesis_is_stable() {
    for name in ["bbara", "keyb", "planet"] {
        let a = write_kiss(&benchmark_fsm(name).unwrap());
        let b = write_kiss(&benchmark_fsm(name).unwrap());
        assert_eq!(a, b, "{name} synthesis unstable");
    }
}

#[test]
fn constraint_extraction_is_stable() {
    let fsm = benchmark_fsm("donfile").unwrap();
    let a = fsm_constraints(&fsm, picola::constraints::ExtractMethod::Espresso);
    let b = fsm_constraints(&fsm, picola::constraints::ExtractMethod::Espresso);
    assert_eq!(a, b);
}

#[test]
fn every_encoder_is_deterministic() {
    let fsm = benchmark_fsm("ex3").unwrap();
    let n = fsm.num_states();
    let cs = fsm_constraints(&fsm, picola::constraints::ExtractMethod::Quick);
    let encoders: Vec<Box<dyn Encoder>> = vec![
        Box::<PicolaEncoder>::default(),
        Box::new(NovaEncoder::i_hybrid()),
        Box::new(EncLikeEncoder {
            max_evaluations: 200,
            ..EncLikeEncoder::default()
        }),
        Box::<AnnealingEncoder>::default(),
        Box::new(PicolaStateEncoder::for_fsm(&fsm)),
    ];
    for e in &encoders {
        let a = e.encode(n, &cs);
        let b = e.encode(n, &cs);
        assert_eq!(a, b, "{} not deterministic", e.name());
    }
}

#[test]
fn refine_is_identical_for_any_thread_count() {
    // The parallel refine loop evaluates candidates in fixed-size chunks
    // and applies the first improvement in enumeration order, so the
    // encoding must be bit-identical whether one thread or many do the
    // evaluating.
    for name in ["ex3", "donfile", "keyb"] {
        let fsm = benchmark_fsm(name).unwrap();
        let n = fsm.num_states();
        let cs = fsm_constraints(&fsm, picola::constraints::ExtractMethod::Quick);
        let with_threads = |threads: usize| {
            let opts = PicolaOptions {
                threads,
                ..PicolaOptions::default()
            };
            picola_encode_with(n, &cs, &opts).encoding
        };
        let sequential = with_threads(1);
        for threads in [2, 4, 7] {
            assert_eq!(
                sequential,
                with_threads(threads),
                "{name}: --threads {threads} diverged from --threads 1"
            );
        }
    }
}

#[test]
fn portfolio_is_identical_for_any_thread_count() {
    let fsm = benchmark_fsm("bbara").unwrap();
    let n = fsm.num_states();
    let cs = fsm_constraints(&fsm, picola::constraints::ExtractMethod::Quick);
    let run = |threads: usize| {
        let out = standard_portfolio(11)
            .with_threads(threads)
            .run(n, &cs, &Budget::unlimited())
            .unwrap();
        (
            out.winner,
            out.best().encoding.clone(),
            out.members
                .iter()
                .map(|m| (m.name.clone(), m.cost, m.satisfied))
                .collect::<Vec<_>>(),
        )
    };
    let sequential = run(1);
    assert_eq!(sequential, run(4));
    assert_eq!(sequential, run(5));
}

#[test]
fn tracing_does_not_perturb_encodings() {
    // The obs layer only observes: attaching a recorder to the budget must
    // leave every encoder's output (and the portfolio's winner) bit-
    // identical to an untraced run. Holds in both feature modes — with
    // `obs` disabled the recorder is the no-op stub.
    use picola::baselines::standard_members;
    use picola::logic::Trace;

    let fsm = benchmark_fsm("ex3").unwrap();
    let n = fsm.num_states();
    let cs = fsm_constraints(&fsm, picola::constraints::ExtractMethod::Quick);

    for e in standard_members(123) {
        let (plain, _) = e.encode_bounded(n, &cs, &Budget::unlimited());
        let trace = Trace::new();
        let traced_budget = Budget::unlimited().with_recorder(trace.recorder());
        let (traced, _) = e.encode_bounded(n, &cs, &traced_budget);
        assert_eq!(plain, traced, "{}: tracing changed the encoding", e.name());
    }

    let plain = standard_portfolio(11)
        .with_threads(4)
        .run(n, &cs, &Budget::unlimited())
        .unwrap();
    let trace = Trace::new();
    let traced_budget = Budget::unlimited().with_recorder(trace.recorder());
    let traced = standard_portfolio(11)
        .with_threads(4)
        .run(n, &cs, &traced_budget)
        .unwrap();
    assert_eq!(plain.winner, traced.winner);
    assert_eq!(plain.best().encoding, traced.best().encoding);
}

#[test]
fn flow_sizes_are_stable() {
    let fsm = benchmark_fsm("s27").unwrap();
    let opts = FlowOptions::default();
    let a = assign_states(&fsm, &PicolaEncoder::default(), &opts);
    let b = assign_states(&fsm, &PicolaEncoder::default(), &opts);
    assert_eq!(a.size, b.size);
    assert_eq!(a.literals, b.literals);
    assert_eq!(a.encoding, b.encoding);
}
