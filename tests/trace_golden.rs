//! Golden-trace snapshots: on a fixed Table 1 instance the obs layer must
//! emit a byte-identical span/counter tree no matter how many worker
//! threads run, because counters are bumped only on orchestrating threads
//! and span children are created in deterministic order.

#![cfg(feature = "obs")]
// Tests are exempt from the panic-freedom policy; clippy's in-tests
// exemption misses integration-test helpers, so waive it explicitly.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use picola::baselines::standard_portfolio;
use picola::constraints::ExtractMethod;
use picola::core::{try_picola_encode_with, Budget, Completion, PicolaOptions};
use picola::fsm::benchmark_fsm;
use picola::logic::{Counter, Trace};
use picola::stassign::fsm_constraints;

/// Runs PICOLA on bbara (Table 1) with a recorder attached and returns the
/// rendered trace plus the recorded work total.
fn picola_trace(threads: usize) -> (String, u64) {
    let fsm = benchmark_fsm("bbara").expect("bbara is in the suite");
    let cs = fsm_constraints(&fsm, ExtractMethod::Quick);
    let trace = Trace::new();
    let budget = Budget::unlimited().with_recorder(trace.recorder());
    let opts = PicolaOptions {
        threads,
        ..PicolaOptions::default()
    };
    let r = try_picola_encode_with(fsm.num_states(), &cs, &opts, &budget).expect("valid input");
    assert!(matches!(r.completion, Completion::Complete));
    assert_eq!(trace.open_spans(), 0, "every span must be closed");
    (trace.render(), trace.total_work())
}

/// Races the standard portfolio on bbara with a recorder attached.
fn portfolio_trace(threads: usize) -> (String, u64) {
    let fsm = benchmark_fsm("bbara").expect("bbara is in the suite");
    let cs = fsm_constraints(&fsm, ExtractMethod::Quick);
    let trace = Trace::new();
    let budget = Budget::unlimited().with_recorder(trace.recorder());
    let out = standard_portfolio(7)
        .with_threads(threads)
        .run(fsm.num_states(), &cs, &budget)
        .expect("portfolio is non-empty");
    assert!(!out.members.is_empty());
    assert_eq!(trace.open_spans(), 0, "every span must be closed");
    (trace.render(), trace.total_work())
}

#[test]
fn picola_trace_is_identical_across_thread_counts() {
    let (t1, w1) = picola_trace(1);
    let (t4, w4) = picola_trace(4);
    assert_eq!(t1, t4, "span/counter tree must not depend on threads");
    assert_eq!(w1, w4, "recorded work must not depend on threads");
}

#[test]
fn picola_trace_has_the_expected_shape() {
    let fsm = benchmark_fsm("bbara").expect("bbara is in the suite");
    let cs = fsm_constraints(&fsm, ExtractMethod::Quick);
    let trace = Trace::new();
    let budget = Budget::unlimited().with_recorder(trace.recorder());
    let opts = PicolaOptions::default();
    let r = try_picola_encode_with(fsm.num_states(), &cs, &opts, &budget).expect("valid input");
    let nv = r.encoding.nv();

    let rendered = trace.render();
    assert!(rendered.starts_with("trace\n"), "root is 'trace'");
    assert!(rendered.contains("picola"), "missing picola span:\n{rendered}");
    assert!(rendered.contains("refine"), "missing refine span:\n{rendered}");
    for col in 0..nv {
        assert!(
            rendered.contains(&format!("column.{col}")),
            "missing column.{col} span:\n{rendered}"
        );
    }

    let snap = trace.snapshot();
    assert_eq!(
        snap.counter_total(Counter::ColumnsSolved),
        nv as u64,
        "one columns_solved bump per code column"
    );
    assert!(snap.counter_total(Counter::DichotomyEvals) > 0);
    assert!(snap.counter_total(Counter::WordOps) > 0);
    assert!(
        snap.counter_total(Counter::RefineAccepts) + snap.counter_total(Counter::RefineRejects) > 0,
        "refine must record its accept/reject tallies"
    );
    assert_eq!(
        snap.counter_total(Counter::RefineScratchReuse),
        snap.counter_total(Counter::RefineEvals),
        "the default (incremental) engine must serve every refine \
         evaluation from reused scratch"
    );
}

#[test]
fn repeated_runs_emit_the_same_trace() {
    let (a, _) = picola_trace(2);
    let (b, _) = picola_trace(2);
    assert_eq!(a, b, "same instance, same options → same trace bytes");
}

#[test]
fn portfolio_trace_is_identical_across_thread_counts() {
    let (t1, w1) = portfolio_trace(1);
    let (t4, w4) = portfolio_trace(4);
    assert_eq!(t1, t4, "member spans are pre-created in member order");
    assert_eq!(w1, w4);
}

#[test]
fn minimize_cache_counters_conserve_and_hit() {
    use picola::baselines::EncLikeEncoder;
    use picola::logic::obs;

    let fsm = benchmark_fsm("bbara").expect("bbara is in the suite");
    let cs = fsm_constraints(&fsm, ExtractMethod::Quick);
    let trace = Trace::new();
    {
        // ENC prices probes through Budget::unlimited() internally, so the
        // counters flow through the thread-local current recorder.
        let span = trace.recorder().span("enc-run");
        let _cur = obs::enter(span.recorder());
        let enc = EncLikeEncoder {
            max_evaluations: 60,
            ..EncLikeEncoder::default()
        };
        let (e, info) = enc.encode_detailed(fsm.num_states(), &cs);
        assert_eq!(e.num_symbols(), fsm.num_states());
        assert_eq!(
            trace.counter_total(Counter::MinimizeCacheHit),
            info.cache_hits,
            "run info must agree with the trace"
        );
        assert_eq!(
            trace.counter_total(Counter::MinimizeCacheMiss),
            info.cache_misses,
        );
    }
    assert_eq!(trace.open_spans(), 0);
    let calls = trace.counter_total(Counter::MinimizeCalls);
    let hits = trace.counter_total(Counter::MinimizeCacheHit);
    let misses = trace.counter_total(Counter::MinimizeCacheMiss);
    assert!(calls > 0, "ENC must price probes through the minimizer");
    assert_eq!(hits + misses, calls, "hits + misses must equal calls");
    #[cfg(feature = "minimize-cache")]
    assert!(hits > 0, "repeat constraint functions must hit the memo");
    #[cfg(not(feature = "minimize-cache"))]
    assert_eq!(hits, 0, "without the feature every call is a miss");
}

#[test]
fn portfolio_trace_nests_every_member() {
    let (rendered, _) = portfolio_trace(4);
    assert!(rendered.contains("portfolio"), "missing portfolio span");
    for name in standard_portfolio(7).names() {
        assert!(
            rendered.contains(&format!("member.{name}")),
            "missing member.{name} span:\n{rendered}"
        );
    }
}
