//! Fault-injection sweep over the whole pipeline.
//!
//! For every registered trigger point, arm a deterministic chaos plan and
//! drive the full state-assignment flow (KISS2 → constraints → PICOLA →
//! encoded machine → ESPRESSO) plus the standalone parsers and minimizers.
//! The contract under test: **no public API panics** — every injected fault
//! either surfaces as a parse error or degrades the run to a valid
//! best-so-far result.

// Tests are exempt from the panic-freedom policy; clippy's in-tests
// exemption misses integration-test helpers, so waive it explicitly.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use picola::baselines::{AnnealingEncoder, EncLikeEncoder, NovaEncoder};
use picola::constraints::{GroupConstraint, SymbolSet};
use picola::core::{chaos, Budget, Encoder, PicolaEncoder};
use picola::sat::SatEncoder;
use picola::fsm::parse_kiss;
use picola::logic::{
    espresso_bounded, exact_minimize_bounded, parse_mv_pla, parse_pla, Cover, Domain,
    MinimizeOptions,
};
use picola::stassign::{assign_states_bounded, FlowOptions};

const MACHINE: &str = "\
.i 2
.o 1
.r s0
-0 s0 s0 0
01 s0 s1 0
11 s0 s2 1
-- s1 s3 1
0- s2 s0 0
1- s2 s3 1
-1 s3 s0 1
-0 s3 s1 0
.e
";

const PLA: &str = "\
.i 3
.o 2
010 11
1-0 10
-11 01
.e
";

const MV_PLA: &str = "\
.mv 3 1 3 2
0 110 10
1 011 01
.e
";

/// Drives every fallible entry point once. Chaos may cut any of them short;
/// none may panic, and non-parser stages must still return usable results.
fn drive_everything() {
    // parsers: an injected fault surfaces as Err, not a panic
    let _ = parse_pla(PLA);
    let _ = parse_mv_pla(MV_PLA);
    // a kiss.parse fault surfaces as Err, which is the correct outcome
    if let Ok(fsm) = parse_kiss("chaos", MACHINE) {
        let budget = Budget::unlimited();
        let r = assign_states_bounded(
            &fsm,
            &PicolaEncoder::default(),
            &FlowOptions::default(),
            &budget,
        );
        assert_eq!(r.encoding.num_symbols(), fsm.num_states());
    }

    // baseline encoders (anneal.move / nova.place / nova.improve / enc.eval)
    let cs: Vec<GroupConstraint> = [[0usize, 1], [2, 3], [4, 5]]
        .iter()
        .map(|g| GroupConstraint::new(SymbolSet::from_members(8, g.iter().copied())))
        .collect();
    for encoder in [
        &AnnealingEncoder::default() as &dyn Encoder,
        &NovaEncoder::i_hybrid(),
        &EncLikeEncoder::default(),
    ] {
        let budget = Budget::unlimited();
        let (enc, _) = encoder.encode_bounded(8, &cs, &budget);
        assert_eq!(enc.num_symbols(), 8, "{} lost symbols", encoder.name());
    }

    // the SAT member (sat.conflict ticks once per decision and per
    // conflict). The groups are chosen so the natural seed is suboptimal —
    // the bound-tightening loop must actually probe, guaranteeing the
    // trigger point is reached; an injected fault mid-solve degrades to
    // the best-so-far witness, never a panic.
    let sat_cs: Vec<GroupConstraint> = [&[0usize, 3, 5][..], &[1, 2], &[6, 7]]
        .iter()
        .map(|g| GroupConstraint::new(SymbolSet::from_members(8, g.iter().copied())))
        .collect();
    let budget = Budget::unlimited();
    let (enc, _) = SatEncoder::default().encode_bounded(8, &sat_cs, &budget);
    assert_eq!(enc.num_symbols(), 8, "sat lost symbols");

    // standalone minimizers
    let dom = Domain::binary(4);
    let on = Cover::parse(&dom, "110- 0-11 10-0 -110");
    let dc = Cover::empty(&dom);
    let budget = Budget::unlimited();
    let (cover, _) = espresso_bounded(&on, &dc, &MinimizeOptions::default(), &budget);
    assert!(!cover.is_empty(), "espresso must keep covering the on-set");
    let budget = Budget::unlimited();
    let out = exact_minimize_bounded(&on, &dc, &budget);
    assert!(!out.cover().is_empty());
}

#[test]
fn no_trigger_point_panics_the_pipeline() {
    for &point in chaos::TRIGGER_POINTS {
        for after in [0u64, 1, 3] {
            let guard = chaos::arm(point, after);
            drive_everything();
            drop(guard);
        }
    }
}

#[test]
fn armed_plans_actually_fire() {
    // Every trigger point must be reachable from the driver above —
    // otherwise the sweep silently tests nothing at that point. The
    // server-layer points (`server.*`), the shared-cache point
    // (`cache.shard`), and the result-store point (`store.io`) only fire
    // on the daemon's job paths or store-backed runs, which this
    // single-process driver never enters; tests/server_lifecycle.rs and
    // the bench crate's store suite sweep those and assert the same
    // reachability property.
    for &point in chaos::TRIGGER_POINTS {
        if point.starts_with("server.") || point == "cache.shard" || point == "store.io" {
            continue;
        }
        let _guard = chaos::arm(point, 0);
        drive_everything();
        assert!(
            chaos::times_fired() > 0,
            "trigger point {point:?} was never reached"
        );
    }
}

#[test]
fn unarmed_runs_are_unaffected() {
    // No chaos plan armed: the same driver completes fully.
    drive_everything();
    let fsm = parse_kiss("chaos", MACHINE).unwrap();
    let budget = Budget::unlimited();
    let r = assign_states_bounded(
        &fsm,
        &PicolaEncoder::default(),
        &FlowOptions::default(),
        &budget,
    );
    assert!(r.completion.is_complete());
}
