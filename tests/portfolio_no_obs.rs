//! Budget exhaustion mid-portfolio with the recorder **compiled out**
//! (`cargo test --no-default-features`).
//!
//! The obs layer is a no-op stub without the `obs` feature, but the budget
//! machinery — deadlines, work limits, graceful degradation, chaos
//! injection — must behave identically: exhaustion mid-portfolio still
//! yields a best-so-far outcome with `Completion::Degraded`, never a
//! panic, never a `None`. This file only runs in the no-default-features
//! job, which is exactly the configuration where a stray dependence on
//! recorder state would otherwise go unexercised.

#![cfg(not(feature = "obs"))]
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use picola::baselines::standard_portfolio;
use picola::constraints::extract_constraints;
use picola::core::{Budget, Completion, ExhaustReason};
use picola::fsm::{benchmark_fsm, symbolic_cover};
use picola::logic::chaos;
use std::sync::Mutex;

/// Global chaos plans are process-wide; every test here serializes so an
/// armed plan cannot leak into a concurrently running sibling.
static CHAOS_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    CHAOS_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn bbara_problem() -> (usize, Vec<picola::constraints::GroupConstraint>) {
    let fsm = benchmark_fsm("bbara").expect("bbara is in the suite");
    (fsm.num_states(), extract_constraints(&symbolic_cover(&fsm)))
}

#[test]
fn work_limit_exhaustion_mid_portfolio_degrades_without_obs() {
    let _lock = lock();
    let (n, cs) = bbara_problem();
    // A one-unit work budget exhausts inside the first member's first
    // ticks: deterministic, no wall-clock dependence.
    let budget = Budget::with_work_limit(1);
    let outcome = standard_portfolio(0)
        .run(n, &cs, &budget)
        .expect("an exhausted portfolio still reports its best member");
    assert!(
        matches!(
            outcome.completion,
            Completion::Degraded {
                reason: ExhaustReason::WorkLimit,
                ..
            }
        ),
        "expected work-limit degradation, got {:?}",
        outcome.completion
    );
    // The winner is still a valid priced encoding.
    assert!(outcome.best().cost > 0);
}

#[test]
fn injected_exhaustion_mid_portfolio_degrades_without_obs() {
    let _lock = lock();
    let (n, cs) = bbara_problem();
    // Fire the chaos fault partway into the annealing member; without the
    // obs feature the injection path must work exactly the same. The
    // fault degrades that member privately — it must not poison the
    // portfolio's parent budget or the other members.
    let _guard = chaos::arm_global("anneal.move", 5);
    let budget = Budget::unlimited();
    let outcome = standard_portfolio(0)
        .run(n, &cs, &budget)
        .expect("an injected fault still leaves a best member");
    let anneal = outcome
        .members
        .iter()
        .find(|m| m.name == "anneal")
        .expect("anneal member present");
    assert!(
        matches!(
            anneal.completion,
            Completion::Degraded {
                reason: ExhaustReason::Injected,
                ..
            }
        ),
        "expected injected degradation in the anneal member, got {:?}",
        anneal.completion
    );
    // Every member still produced a full encoding.
    for m in &outcome.members {
        assert_eq!(m.encoding.num_symbols(), n, "{}", m.name);
    }
}

#[test]
fn degraded_and_complete_runs_price_identically_without_obs() {
    let _lock = lock();
    let (n, cs) = bbara_problem();
    let unbounded = standard_portfolio(0)
        .run(n, &cs, &Budget::unlimited())
        .expect("unbounded run");
    assert!(unbounded.completion.is_complete());
    // A generous-but-finite work budget must reproduce the unbounded
    // winner bit-identically (determinism survives the stubbed recorder).
    let bounded = standard_portfolio(0)
        .run(n, &cs, &Budget::with_work_limit(u64::MAX / 2))
        .expect("bounded run");
    assert_eq!(unbounded.best().name, bounded.best().name);
    assert_eq!(unbounded.best().cost, bounded.best().cost);
}
