//! Property tests of the paper's theory on randomized instances: Theorem I,
//! supercube/intruder relationships, estimate bounds, and guide-constraint
//! behaviour — plus the historical shrunk failures as pinned deterministic
//! cases (see [`historical_shrunk_instances_stay_fixed`]).

// Tests are exempt from the panic-freedom policy; clippy's in-tests
// exemption misses integration-test helpers, so waive it explicitly.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use picola::constraints::{
    implements_constraint, theorem_i, Encoding, FaceImplementation, GroupConstraint, SymbolSet,
};
use picola::core::{
    evaluate_encoding_with, greedy_constraint_cubes, picola_encode, EvalMinimizer,
};
use proptest::prelude::*;

/// Strategy: a random valid encoding of `n` symbols in `nv` bits plus a
/// random member set.
fn instance(n: usize, nv: usize) -> impl Strategy<Value = (Encoding, SymbolSet)> {
    let codes = proptest::sample::subsequence((0u32..1 << nv).collect::<Vec<_>>(), n)
        .prop_shuffle();
    let members = proptest::collection::vec(any::<bool>(), n);
    (codes, members).prop_map(move |(codes, members)| {
        let enc = Encoding::new(nv, codes).expect("distinct by construction");
        let mut set = SymbolSet::empty(n);
        for (i, &m) in members.iter().enumerate() {
            if m {
                set.insert(i);
            }
        }
        (enc, set)
    })
}

/// The Theorem I contract on one instance, plain-assert form — shared by
/// the property below and the pinned historical cases.
fn assert_theorem_i_correct(enc: &Encoding, members: &SymbolSet) {
    match theorem_i(enc, members) {
        FaceImplementation::SingleCube(c) => {
            assert!(implements_constraint(enc, members, &[c]));
        }
        FaceImplementation::TheoremCubes(cubes) => {
            assert!(implements_constraint(enc, members, &cubes));
            let sl = enc.supercube(members);
            let si = enc.supercube(&enc.intruders(members));
            assert_eq!(cubes.len(), sl.dim() - si.dim());
        }
        FaceImplementation::NotApplicable => {
            let intr = enc.intruders(members);
            assert!(!intr.is_empty());
            let si = enc.supercube(&intr);
            assert!(members.iter().any(|m| si.contains(enc.code(m))));
        }
    }
}

/// The greedy-vs-exact bound on one instance, plain-assert form.
fn assert_greedy_bounds_exact(enc: &Encoding, members: &SymbolSet) {
    let constraint = GroupConstraint::new(members.clone());
    let est = greedy_constraint_cubes(enc, members);
    let exact = evaluate_encoding_with(
        enc,
        std::slice::from_ref(&constraint),
        EvalMinimizer::Exact { max_nodes: 200_000 },
    )
    .total_cubes;
    assert!(est >= exact, "estimate {est} < exact minimum {exact}");
    if enc.satisfies(members) {
        assert_eq!(est, 1);
        assert_eq!(exact, 1);
    }
}

/// Shrunk failure cases that once lived in
/// `paper_properties.proptest-regressions`. The vendored proptest derives
/// its input stream from the test *name* and never reads regression files,
/// so that file was dead weight — the cases are pinned here instead, run
/// through every `(encoding, members)` property deterministically. If a
/// property fails again, copy the shrunk instance from the panic message
/// into this list.
#[test]
fn historical_shrunk_instances_stay_fixed() {
    let cases: &[(&[u32], &[usize])] = &[
        // cc 1acd21bd…: members {0..5, 9} of a scattered 4-bit encoding
        (&[5, 9, 2, 6, 7, 10, 4, 12, 11, 13], &[0, 1, 2, 3, 4, 5, 9]),
        // cc e6aefab3…: the pair {2, 9} straddling the cube diagonal
        (&[0, 1, 3, 4, 5, 8, 10, 12, 13, 15], &[2, 9]),
    ];
    for (codes, members) in cases {
        let n = codes.len();
        let enc = Encoding::new(4, codes.to_vec()).expect("distinct by construction");
        let mut set = SymbolSet::empty(n);
        for &m in *members {
            set.insert(m);
        }
        assert_theorem_i_correct(&enc, &set);
        assert_eq!(enc.satisfies(&set), enc.intruders(&set).is_empty());
        assert_greedy_bounds_exact(&enc, &set);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn theorem_i_constructions_are_correct((enc, members) in instance(10, 4)) {
        prop_assume!(members.len() >= 2 && members.len() < 10);
        match theorem_i(&enc, &members) {
            FaceImplementation::SingleCube(c) => {
                // a satisfied face: the supercube is exactly the implementation
                prop_assert!(implements_constraint(&enc, &members, &[c]));
            }
            FaceImplementation::TheoremCubes(cubes) => {
                prop_assert!(implements_constraint(&enc, &members, &cubes));
                // cube count = dim(super L) - dim(super I)
                let sl = enc.supercube(&members);
                let si = enc.supercube(&enc.intruders(&members));
                prop_assert_eq!(cubes.len(), sl.dim() - si.dim());
            }
            FaceImplementation::NotApplicable => {
                // hypothesis violated: some member inside super(I)
                let intr = enc.intruders(&members);
                prop_assert!(!intr.is_empty());
                let si = enc.supercube(&intr);
                prop_assert!(members.iter().any(|m| si.contains(enc.code(m))));
            }
        }
    }

    #[test]
    fn satisfied_iff_no_intruders((enc, members) in instance(12, 4)) {
        prop_assume!(!members.is_empty());
        prop_assert_eq!(enc.satisfies(&members), enc.intruders(&members).is_empty());
    }

    #[test]
    fn greedy_estimate_bounds_the_exact_minimum((enc, members) in instance(10, 4)) {
        prop_assume!(members.len() >= 2 && members.len() < 10);
        let constraint = GroupConstraint::new(members.clone());
        let est = greedy_constraint_cubes(&enc, &members);
        // The greedy cover is a valid implementation, so it can never go
        // below the exact minimum (it may beat heuristic ESPRESSO, though).
        let exact = evaluate_encoding_with(
            &enc,
            std::slice::from_ref(&constraint),
            EvalMinimizer::Exact { max_nodes: 200_000 },
        )
        .total_cubes;
        prop_assert!(est >= exact, "estimate {} < exact minimum {}", est, exact);
        // and a satisfied face is exactly one cube in both measures
        if enc.satisfies(&members) {
            prop_assert_eq!(est, 1);
            prop_assert_eq!(exact, 1);
        }
    }

    #[test]
    fn picola_always_yields_valid_minimum_length_codes(
        groups in proptest::collection::vec(
            proptest::collection::vec(0usize..12, 2..5), 1..6)
    ) {
        let n = 12;
        let constraints: Vec<GroupConstraint> = groups
            .iter()
            .map(|g| GroupConstraint::new(SymbolSet::from_members(n, g.iter().copied())))
            .collect();
        let r = picola_encode(n, &constraints);
        prop_assert_eq!(r.encoding.num_symbols(), n);
        prop_assert_eq!(r.encoding.nv(), 4);
        // The matrix statuses describe the constructive (column) phase, so
        // check them against the un-refined encoding.
        let r = picola::core::picola_encode_with(
            n,
            &constraints,
            &picola::core::PicolaOptions {
                disable_refine: true,
                ..Default::default()
            },
        );
        for tc in r.matrix.constraints() {
            if tc.status() == picola::constraints::ConstraintStatus::Satisfied
                && !tc.constraint().is_trivial()
            {
                prop_assert!(
                    r.encoding.satisfies(tc.constraint().members()),
                    "matrix says satisfied but the face has intruders: {}",
                    tc.constraint()
                );
            }
        }
    }
}
