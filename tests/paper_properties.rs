//! Property tests of the paper's theory on randomized instances: Theorem I,
//! supercube/intruder relationships, estimate bounds, and guide-constraint
//! behaviour.

// Tests are exempt from the panic-freedom policy; clippy's in-tests
// exemption misses integration-test helpers, so waive it explicitly.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use picola::constraints::{
    implements_constraint, theorem_i, Encoding, FaceImplementation, GroupConstraint, SymbolSet,
};
use picola::core::{
    evaluate_encoding_with, greedy_constraint_cubes, picola_encode, EvalMinimizer,
};
use proptest::prelude::*;

/// Strategy: a random valid encoding of `n` symbols in `nv` bits plus a
/// random member set.
fn instance(n: usize, nv: usize) -> impl Strategy<Value = (Encoding, SymbolSet)> {
    let codes = proptest::sample::subsequence((0u32..1 << nv).collect::<Vec<_>>(), n)
        .prop_shuffle();
    let members = proptest::collection::vec(any::<bool>(), n);
    (codes, members).prop_map(move |(codes, members)| {
        let enc = Encoding::new(nv, codes).expect("distinct by construction");
        let mut set = SymbolSet::empty(n);
        for (i, &m) in members.iter().enumerate() {
            if m {
                set.insert(i);
            }
        }
        (enc, set)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn theorem_i_constructions_are_correct((enc, members) in instance(10, 4)) {
        prop_assume!(members.len() >= 2 && members.len() < 10);
        match theorem_i(&enc, &members) {
            FaceImplementation::SingleCube(c) => {
                // a satisfied face: the supercube is exactly the implementation
                prop_assert!(implements_constraint(&enc, &members, &[c]));
            }
            FaceImplementation::TheoremCubes(cubes) => {
                prop_assert!(implements_constraint(&enc, &members, &cubes));
                // cube count = dim(super L) - dim(super I)
                let sl = enc.supercube(&members);
                let si = enc.supercube(&enc.intruders(&members));
                prop_assert_eq!(cubes.len(), sl.dim() - si.dim());
            }
            FaceImplementation::NotApplicable => {
                // hypothesis violated: some member inside super(I)
                let intr = enc.intruders(&members);
                prop_assert!(!intr.is_empty());
                let si = enc.supercube(&intr);
                prop_assert!(members.iter().any(|m| si.contains(enc.code(m))));
            }
        }
    }

    #[test]
    fn satisfied_iff_no_intruders((enc, members) in instance(12, 4)) {
        prop_assume!(!members.is_empty());
        prop_assert_eq!(enc.satisfies(&members), enc.intruders(&members).is_empty());
    }

    #[test]
    fn greedy_estimate_bounds_the_exact_minimum((enc, members) in instance(10, 4)) {
        prop_assume!(members.len() >= 2 && members.len() < 10);
        let constraint = GroupConstraint::new(members.clone());
        let est = greedy_constraint_cubes(&enc, &members);
        // The greedy cover is a valid implementation, so it can never go
        // below the exact minimum (it may beat heuristic ESPRESSO, though).
        let exact = evaluate_encoding_with(
            &enc,
            std::slice::from_ref(&constraint),
            EvalMinimizer::Exact { max_nodes: 200_000 },
        )
        .total_cubes;
        prop_assert!(est >= exact, "estimate {} < exact minimum {}", est, exact);
        // and a satisfied face is exactly one cube in both measures
        if enc.satisfies(&members) {
            prop_assert_eq!(est, 1);
            prop_assert_eq!(exact, 1);
        }
    }

    #[test]
    fn picola_always_yields_valid_minimum_length_codes(
        groups in proptest::collection::vec(
            proptest::collection::vec(0usize..12, 2..5), 1..6)
    ) {
        let n = 12;
        let constraints: Vec<GroupConstraint> = groups
            .iter()
            .map(|g| GroupConstraint::new(SymbolSet::from_members(n, g.iter().copied())))
            .collect();
        let r = picola_encode(n, &constraints);
        prop_assert_eq!(r.encoding.num_symbols(), n);
        prop_assert_eq!(r.encoding.nv(), 4);
        // The matrix statuses describe the constructive (column) phase, so
        // check them against the un-refined encoding.
        let r = picola::core::picola_encode_with(
            n,
            &constraints,
            &picola::core::PicolaOptions {
                disable_refine: true,
                ..Default::default()
            },
        );
        for tc in r.matrix.constraints() {
            if tc.status() == picola::constraints::ConstraintStatus::Satisfied
                && !tc.constraint().is_trivial()
            {
                prop_assert!(
                    r.encoding.satisfies(tc.constraint().members()),
                    "matrix says satisfied but the face has intruders: {}",
                    tc.constraint()
                );
            }
        }
    }
}
