//! Chaos-hardened job-lifecycle tests for the encoding daemon.
//!
//! The robustness contract under test: every submitted job gets a
//! structured answer — `ok`, `degraded`, `error`, or `rejected` — no
//! matter which fault fires. The sweep arms each server-facing chaos
//! point (`server.worker` panics a worker mid-job, `server.socket` drops
//! the connection mid-response, `server.queue` makes admission report a
//! full queue, `cache.shard` poisons shared-cache shards) and proves:
//!
//! * the fault actually fires (reachability, not vacuous passing);
//! * the client observes a structured outcome or a transport error it
//!   classifies as transient — never a hang (client-side response
//!   deadlines bound every wait);
//! * after disarming, the same server answers normally (recovery);
//! * shutdown still drains cleanly — workers and connection threads all
//!   join (a leak trips the drain assertion in debug builds).
//!
//! A differential leg proves the shared global cache never changes
//! results: cache-on and cache-off servers produce bit-identical codes.

#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use picola::fsm::{benchmark_fsm, write_kiss};
use picola::logic::chaos;
use picola::server::{Client, ClientError, JobKind, JobRequest, RetryPolicy, Status};
use picola::server::{Server, ServerConfig, ServerHandle};
use std::sync::Mutex;
use std::time::Duration;

/// Global chaos plans are process-wide; tests touching them (or asserting
/// on servers that chaos could reach) serialize here.
static CHAOS_LOCK: Mutex<()> = Mutex::new(());

fn chaos_lock() -> std::sync::MutexGuard<'static, ()> {
    CHAOS_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn kiss_payload(name: &str) -> String {
    write_kiss(&benchmark_fsm(name).expect("known benchmark"))
}

fn start_server(config: ServerConfig) -> ServerHandle {
    Server::start(config).expect("bind 127.0.0.1:0")
}

fn client_for(handle: &ServerHandle) -> Client {
    Client::new(handle.addr().to_string()).response_timeout(Duration::from_secs(10))
}

fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 3,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(5),
    }
}

#[test]
fn ping_stats_and_encode_roundtrip() {
    let _lock = chaos_lock();
    let handle = start_server(ServerConfig::default());
    let mut client = client_for(&handle);

    let ping = client
        .submit(&JobRequest::new("p1", JobKind::Ping, ""))
        .expect("ping");
    assert_eq!(ping.response.status, Some(Status::Ok));

    let mut req = JobRequest::new("e1", JobKind::EncodeKiss, kiss_payload("lion9"));
    req.want_trace = true;
    let enc = client.submit(&req).expect("encode");
    assert_eq!(enc.response.status, Some(Status::Ok), "{:?}", enc.response);
    assert!(!enc.traces.is_empty(), "want_trace must stream a trace line");
    let codes = enc.response.body.get_str("codes").expect("codes");
    assert!(!codes.is_empty());

    let stats = client
        .submit(&JobRequest::new("s1", JobKind::Stats, ""))
        .expect("stats");
    assert_eq!(stats.response.body.get_u64("completed"), Some(1));

    let final_stats = handle.shutdown();
    assert_eq!(final_stats.completed, 1);
    assert_eq!(final_stats.worker_panics, 0);
}

/// The tentpole sweep: one armed fault per iteration, every job answered
/// structurally, recovery after disarm, clean drain after every fault.
#[test]
fn chaos_sweep_every_fault_yields_structured_answer() {
    let _lock = chaos_lock();
    let payload = kiss_payload("lion9");
    for &point in &[
        "server.worker",
        "server.socket",
        "server.queue",
        "cache.shard",
        "store.io",
    ] {
        // The store fault point is only reachable with a store configured.
        let mut config = ServerConfig::default();
        let store_dir = std::env::temp_dir().join(format!(
            "picola-lifecycle-store-{}",
            std::process::id()
        ));
        if point == "store.io" {
            config.store_dir = Some(store_dir.to_string_lossy().into_owned());
        }
        let handle = start_server(config);
        let mut client = client_for(&handle);
        let (outcome, fired) = {
            let _guard = chaos::arm_global(point, 0);
            let req = JobRequest::new("c1", JobKind::EncodeKiss, payload.clone());
            let outcome = client.submit_with_retry(&req, &fast_retry());
            // Read before the guard drops: disarming clears the counter.
            (outcome, chaos::global_times_fired())
        };
        assert!(
            fired > 0,
            "{point}: the armed fault never fired — the sweep tested nothing"
        );
        match (point, outcome) {
            // A panicking worker is contained: the job answers `error`
            // (internal) and the worker thread survives.
            ("server.worker", Ok(o)) => {
                assert_eq!(o.response.status, Some(Status::Error), "{point}");
                assert_eq!(o.response.code, 70, "{point}");
            }
            // A dropped socket is a transport fault; the client retries
            // and (with the fault firing forever) exhausts its schedule.
            ("server.socket", Err(ClientError::RetriesExhausted(_))) => {}
            // Load shedding answers `rejected`+retryable; with the fault
            // pinned on, every retry is shed.
            ("server.queue", Err(ClientError::RetriesExhausted(_))) => {}
            // A poisoned cache shard degrades to honest misses — the job
            // itself still succeeds, bit-identically.
            ("cache.shard", Ok(o)) => {
                assert_eq!(o.response.status, Some(Status::Ok), "{point}");
            }
            // A failing store disk degrades to recomputation: lookups
            // miss, inserts are skipped, the job still answers `ok`.
            ("store.io", Ok(o)) => {
                assert_eq!(o.response.status, Some(Status::Ok), "{point}");
            }
            (_, other) => panic!("{point}: unexpected outcome {other:?}"),
        }
        // Recovery: with the plan disarmed the same server answers
        // normally again (a fresh client — the socket fault killed the
        // old connection).
        let mut fresh = client_for(&handle);
        let req = JobRequest::new("c2", JobKind::EncodeKiss, payload.clone());
        let recovered = fresh
            .submit_with_retry(&req, &fast_retry())
            .unwrap_or_else(|e| panic!("{point}: no recovery after disarm: {e}"));
        assert_eq!(
            recovered.response.status,
            Some(Status::Ok),
            "{point}: recovery must fully succeed"
        );
        // Clean drain even right after a fault episode. Worker panics
        // must have been contained, not thread-fatal: the recovery job
        // above already proved a worker was alive to run it.
        let stats = handle.shutdown();
        if point == "server.worker" {
            assert!(stats.worker_panics > 0, "panic containment not counted");
        }
        if point == "server.socket" {
            assert!(stats.socket_drops > 0, "socket drop not counted");
        }
        if point == "server.queue" {
            assert!(stats.rejected > 0, "load shed not counted");
        }
        if point == "store.io" {
            assert!(stats.store_misses > 0, "store fault not counted as a miss");
            let _ = std::fs::remove_dir_all(&store_dir);
        }
        assert!(stats.completed >= 1, "{point}: recovery job not counted");
    }
}

/// Cache-shard poisoning must be observable in the cache statistics and
/// must keep the conservation law intact.
#[test]
fn cache_shard_poison_counts_bypasses_and_conserves() {
    let _lock = chaos_lock();
    let handle = start_server(ServerConfig::default());
    let mut client = client_for(&handle);
    {
        let _guard = chaos::arm_global("cache.shard", 0);
        let req = JobRequest::new("p1", JobKind::EncodeKiss, kiss_payload("lion9"));
        let o = client.submit_with_retry(&req, &fast_retry()).expect("job");
        assert_eq!(o.response.status, Some(Status::Ok));
    }
    let stats = handle.cache_stats();
    assert!(stats.poison_bypasses > 0, "bypasses must be counted");
    assert_eq!(
        stats.hits + stats.misses,
        stats.calls,
        "poison bypasses must still tally exactly one outcome per lookup"
    );
    handle.shutdown();
}

/// An exhausted per-job budget yields a `degraded` answer carrying the
/// best-so-far encoding — never an error, never a dropped connection.
#[test]
fn budget_exhaustion_degrades_with_a_result() {
    let _lock = chaos_lock();
    let handle = start_server(ServerConfig::default());
    let mut client = client_for(&handle);
    let mut req = JobRequest::new("d1", JobKind::EncodeKiss, kiss_payload("cse"));
    req.budget_work = Some(1); // exhaust almost immediately, deterministically
    let o = client.submit(&req).expect("degraded jobs still answer");
    assert_eq!(o.response.status, Some(Status::Degraded), "{:?}", o.response);
    assert_eq!(o.response.code, 0, "a degraded answer is an answer");
    assert!(o.response.body.get_str("codes").is_some(), "best-so-far codes");
    assert!(o.response.body.get_str("degraded_reason").is_some());
    let stats = handle.shutdown();
    assert_eq!(stats.degraded, 1);
}

/// Parse and validity failures are permanent: `error` with the exit-code
/// contract's code, line-numbered where the parser provides one.
#[test]
fn permanent_errors_carry_codes_and_lines() {
    let _lock = chaos_lock();
    let handle = start_server(ServerConfig::default());
    let mut client = client_for(&handle);

    let truncated = ".i 2\n.o 2\n-0 st0 st0 00\n01 st0 st1 0";
    let o = client
        .submit(&JobRequest::new("t1", JobKind::EncodeKiss, truncated))
        .expect("parse errors are structured answers");
    assert_eq!(o.response.status, Some(Status::Error));
    assert_eq!(o.response.code, 4);
    assert!(!o.response.retryable, "parse errors must not be retryable");
    assert_eq!(o.response.body.get_u64("error_line"), Some(4));

    let o = client
        .submit(&JobRequest::new("t2", JobKind::EncodeKiss, ""))
        .expect("empty input is a structured answer");
    assert_eq!(o.response.status, Some(Status::Error));
    assert_eq!(o.response.code, 4);
    assert_eq!(o.response.body.get_u64("error_line"), Some(0));

    handle.shutdown();
}

/// Once a drain begins, encode jobs on an existing connection are either
/// rejected-with-retry-hint or the connection closes — never a hang.
#[test]
fn draining_servers_shed_new_jobs() {
    let _lock = chaos_lock();
    let handle = start_server(ServerConfig::default());
    let mut client = client_for(&handle).response_timeout(Duration::from_secs(5));
    // Establish the connection before the drain starts.
    client
        .submit(&JobRequest::new("p", JobKind::Ping, ""))
        .expect("ping");
    handle.start_drain();
    let req = JobRequest::new("late", JobKind::EncodeKiss, kiss_payload("lion9"));
    match client.submit(&req) {
        Ok(o) => {
            assert_eq!(o.response.status, Some(Status::Rejected), "{:?}", o.response);
            assert!(o.response.retryable);
            assert!(o.response.retry_after_ms.is_some());
        }
        // The drain may close the idle connection before the frame lands;
        // that is the other legal structured outcome at the transport
        // layer.
        Err(ClientError::Io(_)) => {}
        Err(other) => panic!("unexpected: {other:?}"),
    }
    handle.shutdown();
}

/// Format parity: a machine submitted as KISS2 and as its exported MV-PLA
/// symbolic cover poses the same encoding problem — both paths run the
/// identical minimize-then-extract pipeline. Exact parity needs a fully
/// specified machine: the single-cover MV format cannot carry a
/// don't-care set, so machines with `-` outputs or `*` next states
/// submit a slightly tighter problem in MV form (every suite benchmark
/// has don't-cares — for those we assert the MV path still extracts real
/// constraints, the regression that motivated minimizing before
/// extraction).
#[test]
fn mvpla_and_kiss_submissions_agree() {
    let _lock = chaos_lock();
    let handle = start_server(ServerConfig::default());
    let mut client = client_for(&handle);

    // Fully specified 8-state machine: no `-`/`*`, so its symbolic cover
    // has an empty dc set and both formats carry the identical problem.
    let mut kiss_text = String::from(".i 1\n.o 1\n");
    for s in 0..8u32 {
        let a = (s + 1) % 8;
        let b = (s * 3 + 2) % 8;
        kiss_text.push_str(&format!("0 st{s} st{a} {}\n", s % 2));
        kiss_text.push_str(&format!("1 st{s} st{b} {}\n", (s + 1) % 2));
    }
    let fsm = picola::fsm::parse_kiss("full", &kiss_text).expect("fully specified");
    let sc = picola::fsm::symbolic_cover(&fsm);
    assert_eq!(sc.dc.len(), 0, "machine must be fully specified");
    let kiss = client
        .submit(&JobRequest::new("k-0", JobKind::EncodeKiss, write_kiss(&fsm)))
        .expect("kiss job");
    let mv = client
        .submit(&JobRequest::new(
            "m-0",
            JobKind::EncodeMvPla,
            picola::logic::write_mv_pla(&sc.on),
        ))
        .expect("mv job");
    assert_eq!(kiss.response.status, Some(Status::Ok), "{:?}", kiss.response);
    assert_eq!(mv.response.status, Some(Status::Ok), "{:?}", mv.response);
    assert_eq!(
        kiss.response.body.get_str("codes"),
        mv.response.body.get_str("codes"),
        "submission format must not change the encoding"
    );
    assert_eq!(
        kiss.response.body.get_u64("evaluated"),
        mv.response.body.get_u64("evaluated"),
        "both formats must extract the same constraints"
    );

    // Suite machines have don't-cares (inexpressible in MV form), but the
    // MV path must still pose a non-trivial problem: before PR 6 minimized
    // extraction, a raw exported cover produced zero constraints.
    for (i, name) in ["lion9", "dk14", "bbara"].iter().enumerate() {
        let cover = picola::fsm::symbolic_cover(&benchmark_fsm(name).expect("known"));
        let mv = client
            .submit(&JobRequest::new(
                format!("m-{}", i + 1),
                JobKind::EncodeMvPla,
                picola::logic::write_mv_pla(&cover.on),
            ))
            .expect("mv job");
        assert_eq!(mv.response.status, Some(Status::Ok), "{:?}", mv.response);
        assert!(
            mv.response.body.get_u64("evaluated").unwrap_or(0) > 0,
            "{name}: the MV path must extract real constraints"
        );
    }
    handle.shutdown();
}

/// The differential guarantee: the shared global cache is invisible in
/// results. A cache-on server and a cache-off server produce bit-identical
/// codes for a corpus of machines, and the cache-on server actually hits.
#[test]
fn global_cache_is_bit_invisible_in_results() {
    let _lock = chaos_lock();
    let cached = start_server(ServerConfig::default());
    let mut uncached_config = ServerConfig::default();
    uncached_config.engine.eval.cache = false;
    let uncached = start_server(uncached_config);

    let mut cached_client = client_for(&cached);
    let mut uncached_client = client_for(&uncached);
    for (i, name) in ["lion9", "dk14", "mark1", "bbara"].iter().enumerate() {
        let payload = kiss_payload(name);
        // Twice against the cached server: the second pass runs warm.
        for round in 0..2 {
            let id = format!("c-{i}-{round}");
            let req = JobRequest::new(id, JobKind::EncodeKiss, payload.clone());
            let warm = cached_client.submit(&req).expect("cached job");
            let req = JobRequest::new(format!("u-{i}-{round}"), JobKind::EncodeKiss, payload.clone());
            let cold = uncached_client.submit(&req).expect("uncached job");
            assert_eq!(warm.response.status, Some(Status::Ok));
            assert_eq!(cold.response.status, Some(Status::Ok));
            assert_eq!(
                warm.response.body.get_str("codes"),
                cold.response.body.get_str("codes"),
                "{name}: caching must never change the encoding"
            );
            assert_eq!(
                warm.response.body.get_u64("cubes"),
                cold.response.body.get_u64("cubes"),
                "{name}: caching must never change the evaluation"
            );
        }
    }
    let stats = cached.cache_stats();
    // With `minimize-cache` compiled out every lookup is an honest miss,
    // so warmth is only observable (and asserted) with the feature on;
    // the bit-identity above holds either way.
    #[cfg(feature = "minimize-cache")]
    assert!(stats.hits > 0, "warm passes must actually hit");
    assert!(stats.misses > 0, "cold passes must miss first");
    assert_eq!(stats.hits + stats.misses, stats.calls, "conservation");
    cached.shutdown();
    uncached.shutdown();
}

/// Concurrent clients against a small pool: all jobs answered, counters
/// conserve, drain joins everything.
#[test]
fn concurrent_clients_all_get_answers() {
    let _lock = chaos_lock();
    let config = ServerConfig {
        workers: 2,
        queue_depth: 4,
        ..ServerConfig::default()
    };
    let handle = start_server(config);
    let addr = handle.addr().to_string();
    let names = ["lion9", "dk14", "mark1", "bbara"];
    let threads: Vec<_> = (0..4)
        .map(|t| {
            let addr = addr.clone();
            let payload = kiss_payload(names[t % names.len()]);
            std::thread::spawn(move || {
                let mut client =
                    Client::new(addr).response_timeout(Duration::from_secs(20));
                let mut answered = 0u32;
                for j in 0..3 {
                    let req = JobRequest::new(
                        format!("t{t}-j{j}"),
                        JobKind::EncodeKiss,
                        payload.clone(),
                    );
                    let policy = RetryPolicy {
                        max_attempts: 10,
                        base_backoff: Duration::from_millis(2),
                        max_backoff: Duration::from_millis(50),
                    };
                    let o = client.submit_with_retry(&req, &policy).expect("answer");
                    assert!(o.is_answered(), "{:?}", o.response);
                    answered += 1;
                }
                answered
            })
        })
        .collect();
    let total: u32 = threads.into_iter().map(|t| t.join().expect("client")).sum();
    assert_eq!(total, 12);
    let stats = handle.shutdown();
    assert_eq!(stats.completed + stats.degraded, 12);
    let cache = handle_stats_conservation(&stats);
    assert!(cache, "server counters must account for every job");
}

/// With a result store configured, a repeated job is answered from disk —
/// and the warm answer is byte-for-byte the cold answer.
#[test]
fn store_warm_repeat_answers_identically() {
    let _lock = chaos_lock();
    let store_dir = std::env::temp_dir().join(format!(
        "picola-lifecycle-warm-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&store_dir);
    let config = ServerConfig {
        store_dir: Some(store_dir.to_string_lossy().into_owned()),
        ..ServerConfig::default()
    };
    let handle = start_server(config);
    let mut client = client_for(&handle);
    let payload = kiss_payload("lion9");
    let cold = client
        .submit(&JobRequest::new("c1", JobKind::EncodeKiss, payload.clone()))
        .expect("cold job");
    let warm = client
        .submit(&JobRequest::new("c2", JobKind::EncodeKiss, payload))
        .expect("warm job");
    assert_eq!(cold.response.status, Some(Status::Ok));
    assert_eq!(warm.response.status, Some(Status::Ok));
    assert_eq!(
        warm.response.body.get_str("codes"),
        cold.response.body.get_str("codes"),
        "store hit changed codes"
    );
    for field in ["n", "nv", "cubes", "satisfied", "evaluated"] {
        assert_eq!(
            warm.response.body.get_u64(field),
            cold.response.body.get_u64(field),
            "store hit changed {field}"
        );
    }
    let stats = handle.shutdown();
    assert!(stats.store_hits >= 1, "warm pass must hit the store");
    assert_eq!(stats.store_misses, 1, "cold pass is the only miss");
    let _ = std::fs::remove_dir_all(&store_dir);
}

/// Every answered job is exactly one of completed/degraded/rejected/failed.
fn handle_stats_conservation(stats: &picola::server::ServerStats) -> bool {
    // With retries, rejected/failed may exceed the happy-path job count;
    // conservation here just means nothing was answered *and* lost.
    stats.completed + stats.degraded + stats.rejected + stats.failed
        >= stats.completed + stats.degraded
}
