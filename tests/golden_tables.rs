//! Golden regression layer: the checked-in `results_table1.txt` /
//! `results_table2.txt` fixtures are re-derived live on the small
//! benchmarks. Any cost drift — a refine change, a kernel bug, a budget
//! regression — fails here with the fixture value next to the measured one.
//!
//! The fixtures are regenerated with `scripts/regen_tables.sh` under the
//! flat-only engine (every minimization in the pipeline, binary and
//! multi-valued alike, runs on `CoverEngine::Flat`; the legacy engine is
//! never selected). `scripts/verify.sh` gates the same invariant via
//! `regen_tables.sh --check`, so a cost change in any flat specialization
//! rung shows up both here and in the fixture diff.
//!
//! Only the cost columns are compared; the timing columns are
//! machine-dependent by nature.

#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use picola_bench::{table1_row, table2_row, HarnessOptions};
use picola::fsm::benchmark_fsm;
use std::collections::HashMap;

/// Table 1 fixture row: constraints and per-encoder cube counts
/// (`None` = ENC budget exhausted, printed as `*`).
struct Golden1 {
    constraints: usize,
    nova: usize,
    enc: Option<usize>,
    picola: usize,
}

fn parse_table1_fixture() -> HashMap<String, Golden1> {
    let text = std::fs::read_to_string("results_table1.txt").expect("fixture present");
    let mut rows = HashMap::new();
    for line in text.lines() {
        let fields: Vec<&str> = line.split_whitespace().collect();
        // Data rows: name + 4 cost columns + 3 time columns.
        if fields.len() != 8 || fields[0] == "FSM" {
            continue;
        }
        let Ok(constraints) = fields[1].parse() else {
            continue;
        };
        rows.insert(
            fields[0].to_owned(),
            Golden1 {
                constraints,
                nova: fields[2].parse().expect("nova cubes"),
                enc: if fields[3] == "*" {
                    None
                } else {
                    Some(fields[3].parse().expect("enc cubes"))
                },
                picola: fields[4].parse().expect("picola cubes"),
            },
        );
    }
    assert!(rows.len() >= 20, "fixture parsed only {} rows", rows.len());
    rows
}

/// Table 2 fixture row: the three tools' two-level sizes.
struct Golden2 {
    ih: usize,
    ioh: usize,
    new_tool: usize,
}

fn parse_table2_fixture() -> HashMap<String, Golden2> {
    let text = std::fs::read_to_string("results_table2.txt").expect("fixture present");
    let mut rows = HashMap::new();
    for line in text.lines() {
        // `name ih.size ih.time | ioh.size ioh.time | new.size new.time`
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 9 || fields[3] != "|" || fields[6] != "|" {
            continue;
        }
        let (Ok(ih), Ok(ioh), Ok(new_tool)) =
            (fields[1].parse(), fields[4].parse(), fields[7].parse())
        else {
            continue;
        };
        rows.insert(fields[0].to_owned(), Golden2 { ih, ioh, new_tool });
    }
    assert!(rows.len() >= 15, "fixture parsed only {} rows", rows.len());
    rows
}

#[test]
fn table1_small_benchmarks_match_the_fixture() {
    let golden = parse_table1_fixture();
    let opts = HarnessOptions::default();
    for name in ["bbara", "dk14", "s8", "s27", "ex5", "lion9"] {
        let row = golden
            .get(name)
            .unwrap_or_else(|| panic!("{name} missing from fixture"));
        let fsm = benchmark_fsm(name).unwrap();
        let live = table1_row(&fsm, &opts);
        assert_eq!(
            live.num_constraints, row.constraints,
            "{name}: constraint count drifted"
        );
        assert_eq!(live.nova_cubes, row.nova, "{name}: NOVA cubes drifted");
        assert_eq!(live.enc_cubes, row.enc, "{name}: ENC cubes drifted");
        assert_eq!(live.picola_cubes, row.picola, "{name}: PICOLA cubes drifted");
    }
}

#[test]
fn table2_small_benchmarks_match_the_fixture() {
    let golden = parse_table2_fixture();
    let opts = HarnessOptions::default();
    for name in ["s386", "s832"] {
        let row = golden
            .get(name)
            .unwrap_or_else(|| panic!("{name} missing from fixture"));
        let fsm = benchmark_fsm(name).unwrap();
        let live = table2_row(&fsm, &opts);
        assert_eq!(live.nova_ih.size, row.ih, "{name}: nova-ih size drifted");
        assert_eq!(live.nova_ioh.size, row.ioh, "{name}: nova-ioh size drifted");
        assert_eq!(
            live.new_tool.size, row.new_tool,
            "{name}: new-tool size drifted"
        );
    }
}
