//! Long-running soak of the encoding daemon under rotating chaos.
//!
//! Ignored by default (it runs for ~60 seconds); the CI soak job runs it
//! with `cargo test --release --test server_soak -- --ignored` (see
//! `scripts/verify.sh --soak`). Four client threads submit continuously
//! while the main thread rotates through every server-facing fault —
//! worker panics, dropped sockets, load-shed queues, poisoned cache
//! shards — with clean periods in between. The pass criteria:
//!
//! * **zero hangs** — every client wait is bounded by its response
//!   timeout, and every thread joins before the deadline;
//! * **every job accounted** — client-observed answers never exceed what
//!   the server counted (a response the chaos point dropped on the floor
//!   is still counted server-side, never silently lost);
//! * **clean drain** — shutdown joins workers and connections with jobs
//!   still in flight;
//! * **cache conservation** — `hits + misses == calls` across all shards
//!   (every lookup tallies exactly one outcome, even through poisoned
//!   shards), shared-cache hits strictly grow across the soak (warmth
//!   survives the faults), and the entry count respects the capacity
//!   bound.

#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use picola::fsm::{benchmark_fsm, write_kiss};
use picola::logic::chaos;
use picola::server::{Client, JobKind, JobRequest, RetryPolicy, Server, ServerConfig};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn soak_duration() -> Duration {
    // Overridable so a local run can do a quick pass
    // (`PICOLA_SOAK_SECS=5 cargo test --test server_soak -- --ignored`).
    let secs = std::env::var("PICOLA_SOAK_SECS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(60u64);
    Duration::from_secs(secs)
}

#[test]
#[ignore = "60s soak; run explicitly via scripts/verify.sh --soak"]
fn soak_under_rotating_chaos_never_hangs_or_loses_jobs() {
    let config = ServerConfig {
        workers: 3,
        queue_depth: 8,
        default_budget_ms: 500,
        ..ServerConfig::default()
    };
    let handle = Server::start(config).expect("bind");
    let addr = handle.addr().to_string();
    let stop = Arc::new(AtomicBool::new(false));
    let answered = Arc::new(AtomicU64::new(0));
    let unanswered = Arc::new(AtomicU64::new(0));

    let names = ["lion9", "dk14", "mark1", "bbara"];
    let clients: Vec<_> = (0..4)
        .map(|t| {
            let addr = addr.clone();
            let stop = Arc::clone(&stop);
            let answered = Arc::clone(&answered);
            let unanswered = Arc::clone(&unanswered);
            let payload = write_kiss(&benchmark_fsm(names[t % names.len()]).expect("known"));
            std::thread::spawn(move || {
                let mut client =
                    Client::new(addr).response_timeout(Duration::from_secs(10));
                let policy = RetryPolicy {
                    max_attempts: 3,
                    base_backoff: Duration::from_millis(5),
                    max_backoff: Duration::from_millis(50),
                };
                let mut j = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    j += 1;
                    let req = JobRequest::new(
                        format!("soak-{t}-{j}"),
                        JobKind::EncodeKiss,
                        payload.clone(),
                    );
                    match client.submit_with_retry(&req, &policy) {
                        Ok(o) if o.is_answered() => {
                            answered.fetch_add(1, Ordering::Relaxed);
                        }
                        // Structured errors (worker panic episodes) and
                        // exhausted retries (socket/queue episodes) are
                        // legal under chaos — what is not legal is a
                        // hang, and the response timeout bounds that.
                        Ok(_) | Err(_) => {
                            unanswered.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            })
        })
        .collect();

    // Rotate faults: each episode arms one point for a slice, then runs
    // clean for a slice so recovery is continuously exercised.
    let deadline = Instant::now() + soak_duration();
    let points = ["server.worker", "server.socket", "server.queue", "cache.shard"];
    let mut episode = 0usize;
    let mut hits_floor = 0u64;
    while Instant::now() < deadline {
        let point = points[episode % points.len()];
        episode += 1;
        {
            let _guard = chaos::arm_global(point, 10);
            std::thread::sleep(Duration::from_millis(1_500));
        }
        // Clean slice: warmth must keep accumulating between faults.
        std::thread::sleep(Duration::from_millis(1_500));
        let stats = handle.cache_stats();
        assert!(
            stats.hits >= hits_floor,
            "cache hits went backwards across episodes"
        );
        hits_floor = stats.hits;
    }

    stop.store(true, Ordering::Relaxed);
    let join_deadline = Instant::now() + Duration::from_secs(30);
    for c in clients {
        assert!(
            Instant::now() < join_deadline,
            "client threads failed to wind down — hang"
        );
        c.join().expect("client thread");
    }

    let answered = answered.load(Ordering::Relaxed);
    let unanswered = unanswered.load(Ordering::Relaxed);
    assert!(answered > 0, "the soak never completed a single job");

    let cache = handle.cache_stats();
    // Warmth is only observable with `minimize-cache` compiled in; the
    // conservation and capacity laws below hold either way.
    #[cfg(feature = "minimize-cache")]
    assert!(cache.hits > 0, "a warm cache must hit across a soak");
    assert_eq!(
        cache.hits + cache.misses,
        cache.calls,
        "cache conservation violated: every lookup must tally exactly one \
         hit or miss across all shards"
    );
    assert!(
        cache.entries <= cache.capacity + cache.capacity / 2,
        "entry count {} exceeds the documented bound for capacity {}",
        cache.entries,
        cache.capacity
    );

    // Drain with the server still warm; this must return (join every
    // worker and connection thread) rather than hang.
    let stats = handle.shutdown();
    assert!(
        stats.completed + stats.degraded >= answered,
        "clients observed {answered} answers but the server only counted {}",
        stats.completed + stats.degraded
    );
    // Every client-side non-answer corresponds to server-side activity
    // (a rejection, a failure, or a response dropped by the socket
    // fault), not to silence.
    assert!(
        stats.rejected + stats.failed + stats.socket_drops + stats.worker_panics > 0
            || unanswered == 0,
        "{unanswered} unanswered jobs but no fault was ever counted"
    );
}
