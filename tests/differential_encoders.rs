//! Differential-oracle layer: every encoder, many generated instances, one
//! independent validity oracle.
//!
//! The oracle re-derives everything from raw codes with its own arithmetic —
//! no `Encoding::satisfies`, no supercube helpers — so a shared bug in the
//! library's face machinery cannot vouch for itself. Checked per encoder and
//! instance:
//!
//! 1. the encoding is valid: `n` codes, all distinct, all within `nv` =
//!    `ceil(log2 n)` bits;
//! 2. the library's satisfied/violated verdict for every non-trivial
//!    constraint matches the oracle's face-embedding check;
//! 3. the parallel portfolio returns the same winner, winning cost, and
//!    winning encoding as a sequential run;
//! 4. the evaluation pipeline returns bit-identical results for every
//!    (cover engine, cache) combination — the flat engine and the
//!    minimization memo are performance levers, never semantic ones.

// Tests are exempt from the panic-freedom policy; clippy's in-tests
// exemption misses integration-test helpers, so waive it explicitly.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use picola::baselines::{standard_members, standard_portfolio};
use picola::constraints::{min_code_length, Encoding, GroupConstraint};
use picola::core::{
    evaluate_encoding_cached, Budget, CoverEngine, EvalContext, EvalOptions,
};
use picola::sat::{exact_cost, ExactOracle};
use picola_bench::corpus::{corpus, Instance};
use std::collections::HashSet;

const CORPUS_SEED: u64 = 0xD1FF;

/// Independent face-embedding oracle.
///
/// The minimal face spanned by the members fixes every bit position where
/// all member codes agree. The constraint is face-embedded iff every symbol
/// whose code agrees on all those positions is a member.
fn oracle_face_embedded(enc: &Encoding, c: &GroupConstraint) -> bool {
    let members: Vec<usize> = c.members().iter().collect();
    let Some(&first) = members.first() else {
        return true;
    };
    let anchor = enc.code(first);
    // Positions where some pair of members disagrees are free; the rest
    // are fixed at the anchor's value.
    let mut fixed = (1u32 << enc.nv()) - 1;
    for &m in &members {
        fixed &= !(enc.code(m) ^ anchor);
    }
    (0..enc.num_symbols())
        .filter(|&s| (enc.code(s) ^ anchor) & fixed == 0)
        .all(|s| c.members().contains(s))
}

fn oracle_check_valid(enc: &Encoding, inst: &Instance, encoder: &str) {
    let nv = min_code_length(inst.n);
    assert_eq!(
        enc.codes().len(),
        inst.n,
        "{}/{encoder}: wrong number of codes",
        inst.name
    );
    assert_eq!(enc.nv(), nv, "{}/{encoder}: not minimum length", inst.name);
    let distinct: HashSet<u32> = enc.codes().iter().copied().collect();
    assert_eq!(
        distinct.len(),
        inst.n,
        "{}/{encoder}: duplicate codes",
        inst.name
    );
    for &code in enc.codes() {
        assert!(
            (code as u64) < (1u64 << nv),
            "{}/{encoder}: code {code} exceeds {nv} bits",
            inst.name
        );
    }
}

#[test]
fn every_encoder_is_valid_and_honest_on_the_corpus() {
    for inst in corpus(50, CORPUS_SEED) {
        for member in standard_members(CORPUS_SEED) {
            let (enc, completion) =
                member.encode_bounded(inst.n, &inst.constraints, &Budget::unlimited());
            assert!(
                completion.is_complete(),
                "{}/{}: unlimited budget must complete",
                inst.name,
                member.name()
            );
            oracle_check_valid(&enc, &inst, member.name());
            for c in inst.constraints.iter().filter(|c| !c.is_trivial()) {
                assert_eq!(
                    enc.satisfies(c.members()),
                    oracle_face_embedded(&enc, c),
                    "{}/{}: satisfies() disagrees with the oracle on {c}",
                    inst.name,
                    member.name()
                );
            }
        }
    }
}

#[test]
fn parallel_portfolio_matches_sequential_on_the_corpus() {
    // A smaller slice: each check runs the full five-member portfolio
    // twice. Unlimited budget — the determinism contract only covers runs
    // that are not cut short by a shared work pool.
    for inst in corpus(12, CORPUS_SEED) {
        let run = |threads: usize| {
            standard_portfolio(CORPUS_SEED)
                .with_threads(threads)
                .run(inst.n, &inst.constraints, &Budget::unlimited())
        };
        let (seq, par) = match (run(1), run(4)) {
            (Some(a), Some(b)) => (a, b),
            _ => panic!("{}: portfolio produced no outcome", inst.name),
        };
        assert_eq!(seq.winner, par.winner, "{}: winner index", inst.name);
        assert_eq!(
            seq.best().cost,
            par.best().cost,
            "{}: winning cost",
            inst.name
        );
        assert_eq!(
            seq.best().encoding,
            par.best().encoding,
            "{}: winning encoding",
            inst.name
        );
        let costs = |o: &picola::core::PortfolioOutcome| {
            o.members.iter().map(|m| m.cost).collect::<Vec<_>>()
        };
        assert_eq!(costs(&seq), costs(&par), "{}: member costs", inst.name);
    }
}

#[test]
fn evaluation_is_identical_across_engines_and_cache_modes() {
    // Every (engine, cache) combination of the evaluation pipeline must
    // price every encoder's encoding identically — per-constraint cube
    // counts included, not just the total. Contexts are long-lived across
    // the whole corpus so the cached legs exercise genuine memo hits.
    //
    // `PICOLA_ORACLE_ORDER=legacy-first` runs the legacy-oracle legs before
    // the flat ones; CI runs the suite once per order, proving the verdict
    // does not depend on which engine touches an instance first.
    let legacy_first =
        std::env::var("PICOLA_ORACLE_ORDER").is_ok_and(|v| v == "legacy-first");
    let mut legs = [
        (CoverEngine::Flat, true),
        (CoverEngine::Flat, false),
        (CoverEngine::Legacy, true),
        (CoverEngine::Legacy, false),
    ];
    if legacy_first {
        legs.swap(0, 2);
        legs.swap(1, 3);
    }
    let mut ctxs: Vec<EvalContext> = legs.iter().map(|_| EvalContext::new()).collect();
    for inst in corpus(20, CORPUS_SEED) {
        for member in standard_members(CORPUS_SEED) {
            let (enc, _) =
                member.encode_bounded(inst.n, &inst.constraints, &Budget::unlimited());
            let mut evals = legs.iter().zip(ctxs.iter_mut()).map(|(&(engine, cache), ctx)| {
                let opts = EvalOptions {
                    engine,
                    cache,
                    ..EvalOptions::default()
                };
                evaluate_encoding_cached(&enc, &inst.constraints, &opts, ctx)
            });
            let reference = evals.next().expect("at least one leg");
            for (ev, &(engine, cache)) in evals.zip(&legs[1..]) {
                assert_eq!(
                    ev,
                    reference,
                    "{}/{}: {engine:?}/cache={cache} diverges from \
                     {:?}/cache={} (the reference leg)",
                    inst.name,
                    member.name(),
                    legs[0].0,
                    legs[0].1
                );
            }
        }
    }
    // The cached flat leg must have actually hit the memo: repeat constraint
    // functions recur across encodings and instances.
    #[cfg(feature = "minimize-cache")]
    assert!(ctxs[0].cache.hits() > 0, "corpus must produce memo hits");
    assert_eq!(ctxs[1].cache.hits(), 0, "uncached leg must never hit");
}

#[test]
fn sat_optimum_is_a_proven_floor_under_every_heuristic() {
    // The optimality-gap layer: on every small instance (nv <= 4) the SAT
    // oracle's proven optimum must (a) re-cost bit-for-bit under the exact
    // branch-and-bound evaluator — two independent exact paths agreeing —
    // and (b) lower-bound every heuristic member's exact cost. Debug builds
    // take a shorter slice; CI runs the full one in release. The per-probe
    // conflict cap deterministically skips the proof on instances whose
    // final UNSAT blows up (conflicts are machine-independent, so the
    // proved/skipped partition is identical everywhere); the witness
    // cross-check and the member floor still hold on capped instances.
    let take = if cfg!(debug_assertions) { 5 } else { 12 };
    let oracle = ExactOracle {
        conflict_limit: Some(50_000),
        ..ExactOracle::default()
    };
    let mut checked = 0usize;
    let mut proved = 0usize;
    for inst in corpus(12, CORPUS_SEED) {
        if min_code_length(inst.n) > 4 || checked == take {
            continue;
        }
        checked += 1;
        let mut member_costs = Vec::new();
        let mut warm: Option<(usize, Encoding)> = None;
        for member in standard_members(CORPUS_SEED) {
            let (enc, _) =
                member.encode_bounded(inst.n, &inst.constraints, &Budget::unlimited());
            let cost = exact_cost(&enc, &inst.constraints);
            if warm.as_ref().is_none_or(|(c, _)| cost < *c) {
                warm = Some((cost, enc.clone()));
            }
            member_costs.push((member.name().to_owned(), cost));
        }
        let out = oracle
            .prove_from(
                inst.n,
                &inst.constraints,
                warm.as_ref().map(|(_, e)| e),
                &Budget::unlimited(),
            )
            .unwrap_or_else(|e| panic!("{}: oracle rejected the instance: {e}", inst.name));
        assert!(out.completion.is_complete(), "{}: budget intact", inst.name);
        assert_eq!(
            exact_cost(&out.encoding, &inst.constraints),
            out.cost,
            "{}: SAT witness and exact evaluator disagree",
            inst.name
        );
        // The oracle only ever improves on the best heuristic seed, so the
        // floor holds whether or not the proof closed.
        for (name, cost) in &member_costs {
            assert!(
                *cost >= out.cost,
                "{}: heuristic {name} scored {cost}, below the SAT witness {}",
                inst.name,
                out.cost
            );
        }
        if out.optimal {
            proved += 1;
            assert_eq!(out.cost, out.lower_bound, "{}: proven means closed gap", inst.name);
        }
    }
    assert!(checked > 0, "corpus slice must contain nv <= 4 instances");
    assert!(proved > 0, "the conflict cap must leave some proofs closed");
}

#[test]
fn portfolio_winner_is_never_beaten_by_a_member() {
    for inst in corpus(20, CORPUS_SEED) {
        let out = standard_portfolio(CORPUS_SEED)
            .run(inst.n, &inst.constraints, &Budget::unlimited())
            .unwrap_or_else(|| panic!("{}: no outcome", inst.name));
        let best = out.best().cost;
        for m in &out.members {
            assert!(
                m.cost >= best,
                "{}: member {} beat the declared winner",
                inst.name,
                m.name
            );
        }
    }
}
