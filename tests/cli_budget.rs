//! End-to-end tests of the `picola` binary: budget flags, graceful
//! degradation, and the exit-code contract.

// Tests are exempt from the panic-freedom policy; clippy's in-tests
// exemption misses integration-test helpers, so waive it explicitly.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use std::io::Read as _;
use std::path::PathBuf;
use std::process::{Command, Output, Stdio};

fn picola(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_picola"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn write_temp(name: &str, content: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("picola-cli-{}-{name}", std::process::id()));
    std::fs::write(&path, content).expect("temp file written");
    path
}

const MACHINE: &str = "\
.i 2
.o 1
.r s0
-0 s0 s0 0
01 s0 s1 0
11 s0 s2 1
-- s1 s3 1
0- s2 s0 0
1- s2 s3 1
-1 s3 s0 1
-0 s3 s1 0
.e
";

#[test]
fn assign_unbudgeted_succeeds() {
    let path = write_temp("ok.kiss2", MACHINE);
    let out = picola(&["assign", path.to_str().unwrap()]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains(".i "), "PLA header expected:\n{stdout}");
    assert!(!stdout.contains("# status: degraded"));
}

#[test]
fn assign_with_tiny_budget_degrades_but_exits_zero() {
    let path = write_temp("tiny.kiss2", MACHINE);
    let out = picola(&["--budget-work", "2", "assign", path.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "degraded runs must still exit 0: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("# status: degraded"),
        "missing degradation marker:\n{stdout}"
    );
    // The emitted PLA must still parse and carry terms.
    let pla_text: String = stdout
        .lines()
        .filter(|l| !l.starts_with('#'))
        .collect::<Vec<_>>()
        .join("\n");
    let pla = picola::logic::parse_pla(&pla_text).expect("degraded output still parses");
    assert!(!pla.on.is_empty(), "degraded PLA must keep its on-set");
}

#[test]
fn assign_with_wallclock_budget_exits_zero() {
    let path = write_temp("ms.kiss2", MACHINE);
    let out = picola(&["--budget-ms", "0", "assign", path.to_str().unwrap()]);
    assert!(out.status.success());
}

#[test]
fn encode_with_tiny_budget_emits_codes() {
    let path = write_temp("enc.kiss2", MACHINE);
    let out = picola(&["--budget-work", "1", "encode", path.to_str().unwrap()]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("# status: degraded"), "{stdout}");
    // one code line per state
    let codes = stdout.lines().filter(|l| !l.starts_with('#')).count();
    assert_eq!(codes, 4, "{stdout}");
}

#[test]
fn exit_codes_distinguish_failure_classes() {
    // usage: no arguments
    let out = picola(&[]);
    assert_eq!(out.status.code(), Some(2));
    // usage: bad flag value
    let out = picola(&["--budget-work", "lots", "assign", "x"]);
    assert_eq!(out.status.code(), Some(2));
    // I/O: missing file
    let out = picola(&["assign", "/nonexistent/machine.kiss2"]);
    assert_eq!(out.status.code(), Some(3));
    // parse: malformed KISS2
    let bad = write_temp("bad.kiss2", ".i 2\n.o 1\nbadrow\n.e\n");
    let out = picola(&["assign", bad.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(4));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("line"), "diagnostic should cite a line: {stderr}");
    // invalid input: unknown benchmark name
    let out = picola(&["bench", "no-such-machine"]);
    assert_eq!(out.status.code(), Some(5));
}

#[test]
fn closed_output_pipe_exits_zero() {
    // `picola ... | head` — the consumer walking away is a normal way to
    // stop reading; it must end the run with exit 0, never a panic.
    let path = write_temp("pipe.kiss2", MACHINE);
    let mut child = Command::new(env!("CARGO_BIN_EXE_picola"))
        .args(["assign", path.to_str().unwrap()])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary spawns");
    // Close the read end before the tool produces output.
    drop(child.stdout.take());
    let status = child.wait().expect("child waited");
    let mut stderr = String::new();
    child
        .stderr
        .take()
        .expect("stderr piped")
        .read_to_string(&mut stderr)
        .expect("stderr read");
    assert!(status.success(), "broken pipe must exit 0: {status:?}\n{stderr}");
    assert!(!stderr.contains("panic"), "stderr shows a panic:\n{stderr}");
}

#[test]
fn minimize_roundtrip_with_budget() {
    let pla = write_temp(
        "m.pla",
        ".i 3\n.o 1\n000 1\n001 1\n010 1\n011 1\n1-0 1\n.e\n",
    );
    let out = picola(&["--budget-work", "1", "minimize", pla.to_str().unwrap()]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let body: String = stdout
        .lines()
        .filter(|l| !l.starts_with('#'))
        .collect::<Vec<_>>()
        .join("\n");
    let parsed = picola::logic::parse_pla(&body).expect("minimize output parses");
    assert!(!parsed.on.is_empty());
}
