//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no crates.io cache, so
//! this vendored crate provides the *deterministic* subset of the rand 0.10
//! API the workspace actually uses: [`rngs::StdRng`], [`SeedableRng`],
//! [`RngExt`] (`random_range`, `random_bool`) and [`seq::SliceRandom`]
//! (`shuffle`, `choose`).
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a standard,
//! well-mixed PRNG. It is **not** the same stream as the real `StdRng`
//! (ChaCha12), which only matters if exact sequences were golden-filed;
//! the workspace only relies on determinism, not on specific streams.

/// A source of random bits.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Rngs in this crate.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic standard RNG (xoshiro256++ here; see crate docs).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, as
            // recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

mod sealed {
    /// Types usable as `random_range` bounds.
    pub trait SampleUniform: Copy {
        fn sample_in(lo: Self, hi_exclusive: Self, bits: u64) -> Self;
    }

    macro_rules! impl_uniform_int {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_in(lo: Self, hi_exclusive: Self, bits: u64) -> Self {
                    debug_assert!(lo < hi_exclusive);
                    let span = (hi_exclusive as u128).wrapping_sub(lo as u128);
                    lo.wrapping_add((bits as u128 % span) as $t)
                }
            }
        )*};
    }
    impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl SampleUniform for f64 {
        fn sample_in(lo: Self, hi_exclusive: Self, bits: u64) -> Self {
            // 53 high bits to a uniform in [0, 1).
            let unit = (bits >> 11) as f64 / (1u64 << 53) as f64;
            lo + unit * (hi_exclusive - lo)
        }
    }
}

use sealed::SampleUniform;

/// Ranges accepted by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws a value in the range using `bits` as entropy.
    fn sample(self, bits: u64) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for core::ops::Range<T> {
    fn sample(self, bits: u64) -> T {
        assert!(self.start < self.end, "random_range: empty range");
        T::sample_in(self.start, self.end, bits)
    }
}

macro_rules! impl_inclusive_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, bits: u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "random_range: empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo.wrapping_add((bits as u128 % span) as $t)
            }
        }
    )*};
}
impl_inclusive_range!(u8, u16, u32, u64, usize);

/// Convenience methods over any [`RngCore`] (rand 0.10's `Rng`/`RngExt`).
pub trait RngExt: RngCore {
    /// Uniform draw from `range` (half-open or inclusive integer ranges,
    /// half-open float ranges).
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self.next_u64())
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "random_bool: p out of [0, 1]");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> RngExt for R {}

/// Sequence-related helpers.
pub mod seq {
    use super::{RngCore, RngExt};

    /// Slice shuffling and choosing (subset of rand's `SliceRandom`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly chosen element, `None` on an empty slice.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0..1000usize), b.random_range(0..1000usize));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(3..17usize);
            assert!((3..17).contains(&v));
            let f = rng.random_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            let i = rng.random_range(0..=5u32);
            assert!(i <= 5);
        }
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }
}
