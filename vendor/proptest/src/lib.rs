//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this vendored crate
//! implements a small, deterministic property-testing engine exposing the
//! subset of the proptest 1.x API the workspace uses:
//!
//! - the [`proptest!`] macro with an optional `#![proptest_config(..)]`
//!   header and `pattern in strategy` arguments,
//! - [`strategy::Strategy`] with `prop_map` / `prop_shuffle`, implemented
//!   for integer ranges, tuples, and the [`collection::vec`] /
//!   [`sample::subsequence`] / [`arbitrary::any`] constructors,
//! - `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` /
//!   `prop_assume!`.
//!
//! Differences from real proptest: no shrinking (the failing input is
//! printed instead), and cases are generated from a fixed per-test seed so
//! runs are reproducible. `*.proptest-regressions` files are ignored.

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::RngExt;

    /// The RNG handed to strategies.
    pub type TestRng = StdRng;

    /// A generator of test values.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Shuffles generated `Vec` values.
        fn prop_shuffle(self) -> Shuffle<Self>
        where
            Self: Sized,
        {
            Shuffle { inner: self }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_shuffle`].
    #[derive(Debug, Clone)]
    pub struct Shuffle<S> {
        inner: S,
    }

    impl<S, T> Strategy for Shuffle<S>
    where
        S: Strategy<Value = Vec<T>>,
    {
        type Value = Vec<T>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<T> {
            let mut v = self.inner.new_value(rng);
            v.shuffle(rng);
            v
        }
    }

    /// A strategy that always yields a clone of its value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    use super::strategy::{Strategy, TestRng};
    use rand::{RngCore, RngExt};

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.random_bool(0.5)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T> {
        _marker: core::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: core::marker::PhantomData,
        }
    }
}

pub mod collection {
    use super::strategy::{Strategy, TestRng};
    use rand::RngExt;

    /// Sizes accepted by [`vec`]: a fixed count or a (half-open or
    /// inclusive) range of counts.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl SizeRange {
        /// The inclusive `(lo, hi)` bounds.
        pub fn bounds(&self) -> (usize, usize) {
            (self.lo, self.hi_inclusive)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.random_range(self.size.lo..=self.size.hi_inclusive);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// `Vec` strategy with `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod sample {
    use super::collection::SizeRange;
    use super::strategy::{Strategy, TestRng};
    use rand::seq::SliceRandom;
    use rand::RngExt;

    /// Strategy choosing a random subsequence of fixed source values,
    /// preserving source order.
    #[derive(Debug, Clone)]
    pub struct Subsequence<T: Clone> {
        source: Vec<T>,
        size: SizeRange,
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<T> {
            let (lo, hi) = self.size.bounds();
            let hi = hi.min(self.source.len());
            assert!(
                lo <= self.source.len(),
                "subsequence size exceeds the source length"
            );
            let n = rng.random_range(lo..=hi);
            let mut idx: Vec<usize> = (0..self.source.len()).collect();
            idx.shuffle(rng);
            idx.truncate(n);
            idx.sort_unstable();
            idx.into_iter().map(|i| self.source[i].clone()).collect()
        }
    }

    /// A subsequence of `source` with `size` elements.
    pub fn subsequence<T: Clone>(
        source: Vec<T>,
        size: impl Into<SizeRange>,
    ) -> Subsequence<T> {
        Subsequence {
            source,
            size: size.into(),
        }
    }
}

pub mod test_runner {
    use super::strategy::TestRng;
    use rand::SeedableRng;

    /// Why a test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!`; it does not count.
        Reject(String),
        /// The case failed an assertion.
        Fail(String),
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejection with the given message.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Result type of one property-test case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Runner configuration (`ProptestConfig`).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of successful cases required.
        pub cases: u32,
        /// Maximum rejected cases (via `prop_assume!`) before giving up.
        pub max_global_rejects: u32,
    }

    impl Config {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config {
                cases,
                ..Config::default()
            }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }

    /// Deterministic property-test driver.
    pub struct TestRunner {
        config: Config,
        seed: u64,
        name: &'static str,
    }

    impl TestRunner {
        /// Creates a runner for the named test. The RNG seed is derived
        /// from the test name, so each test sees a stable input stream.
        pub fn new(config: Config, name: &'static str) -> Self {
            let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
            for &b in name.as_bytes() {
                seed ^= u64::from(b);
                seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRunner { config, seed, name }
        }

        /// Runs the body until `config.cases` cases pass; panics (so the
        /// enclosing `#[test]` fails) on the first failing case.
        pub fn run<F: FnMut(&mut TestRng, u32) -> TestCaseResult>(&self, mut body: F) {
            let mut passed = 0u32;
            let mut rejected = 0u32;
            let mut case = 0u32;
            while passed < self.config.cases {
                let mut rng =
                    TestRng::seed_from_u64(self.seed.wrapping_add(u64::from(case) << 1));
                case += 1;
                match body(&mut rng, case) {
                    Ok(()) => passed += 1,
                    Err(TestCaseError::Reject(_)) => {
                        rejected += 1;
                        if rejected > self.config.max_global_rejects {
                            panic!(
                                "{}: too many rejected cases ({} rejects, {} passes)",
                                self.name, rejected, passed
                            );
                        }
                    }
                    Err(TestCaseError::Fail(msg)) => {
                        panic!(
                            "{}: case {} failed (seed {:#x}): {}",
                            self.name, case, self.seed, msg
                        );
                    }
                }
            }
        }
    }
}

/// The usual glob import.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::{TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Fails the test case with a formatted message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the test case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: `{:?}` == `{:?}`",
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: `{:?}` == `{:?}`: {}",
            a,
            b,
            format!($($fmt)*)
        );
    }};
}

/// Fails the test case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: `{:?}` != `{:?}`",
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: `{:?}` != `{:?}`: {}",
            a,
            b,
            format!($($fmt)*)
        );
    }};
}

/// Rejects the test case (does not count towards the case budget) unless
/// `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::reject(stringify!($cond)),
            );
        }
    };
}

/// Declares property tests: an optional `#![proptest_config(..)]` header
/// followed by `#[test] fn name(pattern in strategy, ..) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::Config::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let runner = $crate::test_runner::TestRunner::new(config, stringify!($name));
            runner.run(|__proptest_rng, _case| {
                $(let $pat = $crate::strategy::Strategy::new_value(
                    &($strat), __proptest_rng);)+
                $body
                ::core::result::Result::Ok(())
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}
