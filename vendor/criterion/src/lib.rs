//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the criterion 0.7 API the workspace benches
//! use — [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkId`], [`criterion_group!`], [`criterion_main!`] — with a
//! simple fixed-iteration timer instead of criterion's statistical engine.
//! Good enough to keep `cargo bench` compiling and producing indicative
//! numbers without network access to the real crate.

use std::fmt;
use std::time::Instant;

pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Measures closures handed to `iter`.
pub struct Bencher {
    iters: u64,
}

impl Bencher {
    /// Times `routine`, running it a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up call, then the timed loop.
        black_box(routine());
        let t0 = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        let total = t0.elapsed();
        let mean = total / u32::try_from(self.iters.max(1)).unwrap_or(u32::MAX);
        println!("    time: {mean:?} (mean of {} iterations)", self.iters);
    }
}

/// The benchmark driver.
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { iters: 10 }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        println!("bench: {name}");
        let mut b = Bencher { iters: self.iters };
        f(&mut b);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup { parent: self }
    }

    /// Criterion's post-run reporting hook (no-op here).
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        println!("bench: {id}");
        let mut b = Bencher {
            iters: self.parent.iters,
        };
        f(&mut b, input);
        self
    }

    /// Runs one named benchmark without an input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.parent.bench_function(name, f);
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Declares the benchmark entry list, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
