//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no network access and no crates.io cache, so
//! this vendored crate provides the scoped fork-join subset of the rayon
//! API the workspace actually uses: [`join`], [`scope`] with
//! [`Scope::spawn`], and [`current_num_threads`].
//!
//! Instead of a work-stealing pool it maps every spawn onto
//! [`std::thread::scope`] — one OS thread per spawned closure. The
//! workspace only ever spawns a handful of coarse tasks at a time (one per
//! portfolio member, one per refine chunk slice), so thread-spawn overhead
//! is immaterial next to the work each task carries, and the semantics
//! callers rely on are preserved exactly:
//!
//! * `join(a, b)` runs both closures to completion before returning,
//!   propagating panics after both have finished;
//! * `scope(f)` joins every `Scope::spawn` before returning — no task
//!   outlives the scope;
//! * borrowed data with lifetime `'scope` may be captured by spawned
//!   closures, as with real rayon scopes.
//!
//! Swapping in the real crate is a one-line `Cargo.toml` change; no call
//! site needs to know the difference.

use std::num::NonZeroUsize;

/// Number of threads the pool would use: the machine's available
/// parallelism (1 when it cannot be queried).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs both closures, potentially in parallel, and returns both results.
/// Panics in either closure propagate after both have completed.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        match hb.join() {
            Ok(rb) => (ra, rb),
            // Re-raise the panic payload from `b` on the caller's thread,
            // matching rayon's join semantics.
            Err(payload) => std::panic::resume_unwind(payload),
        }
    })
}

/// A scope for spawning borrowed tasks; created by [`scope`].
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns `body` onto the scope. The task may borrow from the
    /// environment; the scope joins it before [`scope`] returns.
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || body(&Scope { inner }));
    }
}

/// Creates a fork-join scope: every task spawned via [`Scope::spawn`]
/// completes before `scope` returns. A panic in any task propagates once
/// all tasks have finished (via `std::thread::scope`'s join-all).
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| f(&Scope { inner: s }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn scope_joins_all_spawns() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn nested_spawns_are_joined() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            s.spawn(|s| {
                counter.fetch_add(1, Ordering::Relaxed);
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            });
        });
        assert_eq!(counter.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn at_least_one_thread_is_reported() {
        assert!(current_num_threads() >= 1);
    }
}
