//! Property tests of the word-parallel matrix kernels against naive
//! per-bit references: [`pack_column`] versus direct bit addressing, and
//! the `absorb_column` bookkeeping behind [`ConstraintMatrix::apply_column`]
//! versus a symbol-at-a-time model of the paper's matrix update.

// Tests are exempt from the panic-freedom policy; clippy's in-tests
// exemption misses integration-test helpers, so waive it explicitly.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use picola_constraints::{
    pack_column, ConstraintMatrix, ConstraintStatus, GroupConstraint, SymbolSet,
};
use proptest::prelude::*;

/// Raw width of the generated bool vectors; instances truncate them to a
/// drawn `n` so symbol counts vary without dependent strategies.
const RAW: usize = 40;

/// Strategy: symbol count, constraint member masks, and code columns (all
/// masks generated at width [`RAW`] and truncated to `n` by the test).
fn matrix_instance() -> impl Strategy<Value = (usize, Vec<Vec<bool>>, Vec<Vec<bool>>)> {
    let n = 1usize..=RAW;
    let groups = proptest::collection::vec(proptest::collection::vec(any::<bool>(), RAW), 1..6);
    let columns = proptest::collection::vec(proptest::collection::vec(any::<bool>(), RAW), 0..8);
    (n, groups, columns)
}

/// Naive per-symbol model of one tracked constraint: what `absorb_column`
/// computes word-parallel, restated one symbol at a time.
struct RefTracked {
    group: GroupConstraint,
    members: Vec<bool>,
    /// 1-based satisfying column per symbol, 0 while unsatisfied.
    sat_col: Vec<usize>,
    participating: Vec<usize>,
    disagreeing: Vec<usize>,
}

impl RefTracked {
    fn new(group: GroupConstraint, n: usize) -> Self {
        let members = (0..n).map(|j| group.members().contains(j)).collect();
        RefTracked {
            group,
            members,
            sat_col: vec![0; n],
            participating: Vec::new(),
            disagreeing: Vec::new(),
        }
    }

    fn absorb(&mut self, col_index: usize, column: &[bool]) {
        // The matrix skips trivial and empty-membered constraints entirely.
        if self.group.is_trivial() || self.group.members().is_empty() {
            return;
        }
        let on_true = column
            .iter()
            .zip(&self.members)
            .filter(|&(_, &m)| m)
            .filter(|&(&c, _)| c)
            .count();
        let member_count = self.members.iter().filter(|&&m| m).count();
        let all_true = on_true == member_count;
        let all_false = on_true == 0;
        if !(all_true || all_false) {
            self.disagreeing.push(col_index);
            return;
        }
        self.participating.push(col_index);
        for (j, (&c, &m)) in column.iter().zip(&self.members).enumerate() {
            if !m && c != all_true && self.sat_col[j] == 0 {
                self.sat_col[j] = col_index + 1;
            }
        }
    }

    fn entry(&self, j: usize) -> usize {
        if self.members[j] {
            1
        } else {
            self.sat_col[j]
        }
    }

    fn unsatisfied(&self) -> usize {
        self.sat_col
            .iter()
            .zip(&self.members)
            .filter(|&(&s, &m)| !m && s == 0)
            .count()
    }

    fn status(&self) -> ConstraintStatus {
        if self.group.is_trivial() || self.unsatisfied() == 0 {
            ConstraintStatus::Satisfied
        } else {
            ConstraintStatus::Active
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn pack_column_matches_per_bit_reference(
        column in proptest::collection::vec(any::<bool>(), 0..300)
    ) {
        let words = pack_column(&column);
        prop_assert_eq!(words.len(), column.len().div_ceil(64).max(1));
        for (j, &b) in column.iter().enumerate() {
            let bit = (words[j / 64] >> (j % 64)) & 1 == 1;
            prop_assert_eq!(bit, b, "bit {j} mispacked");
        }
        // Padding above the column length stays zero.
        for j in column.len()..words.len() * 64 {
            prop_assert_eq!((words[j / 64] >> (j % 64)) & 1, 0, "padding bit {j} set");
        }
    }

    #[test]
    fn absorb_column_matches_per_symbol_reference(
        (n, groups, columns) in matrix_instance()
    ) {
        let nv = columns.len().max(1);
        let constraints: Vec<GroupConstraint> = groups
            .iter()
            .map(|g| {
                GroupConstraint::new(SymbolSet::from_members(
                    n,
                    g.iter().take(n).enumerate().filter(|&(_, &b)| b).map(|(j, _)| j),
                ))
            })
            .collect();
        let mut matrix = ConstraintMatrix::new(n, nv, constraints.clone());
        let mut reference: Vec<RefTracked> = constraints
            .into_iter()
            .map(|c| RefTracked::new(c, n))
            .collect();

        for (col_index, raw) in columns.iter().enumerate() {
            let column: Vec<bool> = raw.iter().copied().take(n).collect();
            matrix.apply_column(&column);
            for r in &mut reference {
                r.absorb(col_index, &column);
            }
            prop_assert_eq!(matrix.columns_done(), col_index + 1);
            for (k, r) in reference.iter().enumerate() {
                let tc = matrix.constraint(k);
                for j in 0..n {
                    prop_assert_eq!(
                        tc.entry(j), r.entry(j),
                        "constraint {k}, symbol {j}, after column {col_index}"
                    );
                }
                prop_assert_eq!(tc.participating(), r.participating.as_slice());
                prop_assert_eq!(tc.disagreeing(), r.disagreeing.as_slice());
                prop_assert_eq!(tc.unsatisfied_dichotomies(), r.unsatisfied());
                prop_assert_eq!(tc.status(), r.status(), "constraint {k} status");
                let intruders: Vec<usize> = (0..n)
                    .filter(|&j| !r.members[j] && r.sat_col[j] == 0)
                    .collect();
                prop_assert_eq!(tc.pending_intruders().to_vec(), intruders);
            }
        }
    }
}
