//! Property tests of the constraint machinery against brute-force oracles.

// Tests are exempt from the panic-freedom policy; clippy's in-tests
// exemption misses integration-test helpers, so waive it explicitly.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use picola_constraints::{ConstraintMatrix, Encoding, GroupConstraint, SymbolSet};
use proptest::prelude::*;

/// Strategy: a valid encoding of `n` symbols in `nv` bits.
fn encoding(n: usize, nv: usize) -> impl Strategy<Value = Encoding> {
    proptest::sample::subsequence((0u32..1 << nv).collect::<Vec<_>>(), n)
        .prop_shuffle()
        .prop_map(move |codes| Encoding::new(nv, codes).expect("distinct"))
}

fn member_set(n: usize) -> impl Strategy<Value = SymbolSet> {
    proptest::collection::vec(any::<bool>(), n).prop_map(move |bits| {
        let mut s = SymbolSet::empty(n);
        for (i, &b) in bits.iter().enumerate() {
            if b {
                s.insert(i);
            }
        }
        s
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn supercube_is_the_minimal_enclosing_cube(
        enc in encoding(10, 4),
        members in member_set(10),
    ) {
        prop_assume!(!members.is_empty());
        let sc = enc.supercube(&members);
        // contains every member code
        for m in members.iter() {
            prop_assert!(sc.contains(enc.code(m)));
        }
        // minimal: every fixed bit is justified by all members agreeing
        for b in 0..4u32 {
            if sc.fixed >> b & 1 == 1 {
                let vals: Vec<u32> =
                    members.iter().map(|m| enc.code(m) >> b & 1).collect();
                prop_assert!(vals.windows(2).all(|w| w[0] == w[1]));
            }
        }
    }

    #[test]
    fn intruders_match_brute_force(
        enc in encoding(10, 4),
        members in member_set(10),
    ) {
        prop_assume!(!members.is_empty());
        let sc = enc.supercube(&members);
        let brute: Vec<usize> = (0..10)
            .filter(|&s| !members.contains(s) && sc.contains(enc.code(s)))
            .collect();
        prop_assert_eq!(enc.intruders(&members).to_vec(), brute);
    }

    #[test]
    fn matrix_satisfaction_matches_column_semantics(
        enc in encoding(8, 3),
        members in member_set(8),
    ) {
        prop_assume!(members.len() >= 2 && members.len() < 8);
        // Feed the encoding's columns into the matrix; afterwards the
        // stamped entries must agree with direct dichotomy evaluation.
        let c = GroupConstraint::new(members.clone());
        let mut matrix = ConstraintMatrix::new(8, 3, vec![c.clone()]);
        for j in 0..3 {
            matrix.apply_column(&enc.column(j));
        }
        let tc = matrix.constraint(0);
        for d in c.dichotomies() {
            let stamped = tc.entry(d.outsider);
            let directly = (0..3).find(|&j| d.satisfied_by_column(&enc.column(j)));
            match directly {
                Some(j) => prop_assert_eq!(stamped, j + 1, "outsider {}", d.outsider),
                None => prop_assert_eq!(stamped, 0, "outsider {}", d.outsider),
            }
        }
        // And full satisfaction in matrix terms == face embedding, because
        // the columns came from a complete valid encoding.
        prop_assert_eq!(
            tc.unsatisfied_dichotomies() == 0,
            enc.satisfies(&members)
        );
    }

    #[test]
    fn constraint_function_partitions_codes(
        enc in encoding(12, 4),
        members in member_set(12),
    ) {
        prop_assume!(!members.is_empty());
        let dom = picola_logic::Domain::binary(4);
        let (on, dc) = enc.constraint_function(&dom, &members);
        prop_assert_eq!(on.len(), members.len());
        prop_assert_eq!(dc.len(), 16 - 12);
        // on, dc and the implicit off partition the code space
        let off = picola_logic::complement(&on.union(&dc));
        for s in 0..12 {
            let mut point = Vec::new();
            for b in 0..4 {
                point.push((enc.code(s) >> b & 1) as usize);
            }
            prop_assert_eq!(on.covers_point(&point), members.contains(s));
            prop_assert_eq!(off.covers_point(&point), !members.contains(s));
        }
    }
}
