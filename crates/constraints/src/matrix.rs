//! The enriched constraint matrix (paper §3.1).
//!
//! The classic `r × n` 0/1 constraint matrix is augmented in place: after
//! code column `i` is generated, each zero entry whose seed dichotomy that
//! column satisfies is stamped with `i + 1`. The matrix thus *remembers
//! which encoding column satisfies each dichotomy*, and per constraint the
//! set of *participating* columns (columns in which all members agree),
//! from which the supercube dimension and the intruder set follow.

use crate::constraint::GroupConstraint;
use crate::symbols::SymbolSet;
use picola_logic::obs;
use std::fmt;

/// Life-cycle of a constraint during column-based encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintStatus {
    /// Still may be satisfied.
    Active,
    /// All seed dichotomies satisfied: the face is embedded.
    Satisfied,
    /// Detected unsatisfiable in `B^nv`; a guide constraint may have been
    /// generated for it.
    Infeasible,
}

/// One constraint with its bookkeeping inside the matrix.
#[derive(Debug, Clone)]
pub struct TrackedConstraint {
    constraint: GroupConstraint,
    status: ConstraintStatus,
    /// For each symbol outside the constraint: the 1-based index of the
    /// column that satisfied its dichotomy (the paper's stamped matrix
    /// entry), or 0 while unsatisfied. Member symbols keep 0.
    sat_col: Vec<usize>,
    /// Columns (0-based) in which all members agreed.
    participating: Vec<usize>,
    /// Columns (0-based) in which members disagreed.
    disagreeing: Vec<usize>,
    /// Whether a guide constraint was already generated for it.
    guided: bool,
}

impl TrackedConstraint {
    /// The underlying group constraint.
    pub fn constraint(&self) -> &GroupConstraint {
        &self.constraint
    }

    /// Current status.
    pub fn status(&self) -> ConstraintStatus {
        self.status
    }

    /// The paper's matrix entry for symbol `j`: `1` for members, otherwise
    /// the 1-based satisfying column or `0`.
    pub fn entry(&self, j: usize) -> usize {
        if self.constraint.members().contains(j) {
            1
        } else {
            self.sat_col[j]
        }
    }

    /// Columns in which all members agreed so far.
    pub fn participating(&self) -> &[usize] {
        &self.participating
    }

    /// Columns in which the members disagreed so far.
    pub fn disagreeing(&self) -> &[usize] {
        &self.disagreeing
    }

    /// Whether a guide constraint was already spawned for this constraint.
    pub fn guided(&self) -> bool {
        self.guided
    }

    /// Outsiders whose dichotomy is still unsatisfied — the *potential
    /// intruder set*: if the encoding finished now with every remaining
    /// column non-participating, exactly these symbols could sit in the
    /// supercube. (Upon completion of all `nv` columns this is precisely
    /// `I_k`.)
    pub fn pending_intruders(&self) -> SymbolSet {
        let n = self.constraint.members().universe();
        let mut out = SymbolSet::empty(n);
        for j in 0..n {
            if !self.constraint.members().contains(j) && self.sat_col[j] == 0 {
                out.insert(j);
            }
        }
        out
    }

    /// Number of unsatisfied seed dichotomies.
    pub fn unsatisfied_dichotomies(&self) -> usize {
        let members = self.constraint.members();
        self.sat_col
            .iter()
            .enumerate()
            .filter(|&(j, &c)| !members.contains(j) && c == 0)
            .count()
    }

    /// Word-parallel column bookkeeping shared by
    /// [`ConstraintMatrix::apply_column`] and the guide replay: checks
    /// member agreement (64 symbols per AND), records participation or
    /// disagreement, and stamps newly satisfied dichotomies with
    /// `col_index + 1`. `col_words` is the packed column; `n` the universe.
    fn absorb_column(&mut self, col_index: usize, col_words: &[u64], n: usize) {
        let mwords = self.constraint.members().words();
        // All members true ⇔ members ⊆ column; all false ⇔ disjoint.
        let all_true = mwords.iter().zip(col_words).all(|(m, c)| m & !c == 0);
        let all_false = mwords.iter().zip(col_words).all(|(m, c)| m & c == 0);
        if !(all_true || all_false) {
            obs::count(obs::Counter::WordOps, 2 * col_words.len() as u64);
            self.disagreeing.push(col_index);
            return;
        }
        obs::count(obs::Counter::WordOps, 3 * col_words.len() as u64);
        self.participating.push(col_index);
        // Bits where the column differs from the members' shared value `v`,
        // excluding the members themselves: exactly the outsiders whose
        // seed dichotomy this column satisfies.
        let v_mask = if all_true { !0u64 } else { 0u64 };
        for (wi, (&c, &m)) in col_words.iter().zip(mwords).enumerate() {
            let base = wi * 64;
            if base >= n {
                break;
            }
            let mut diff = (c ^ v_mask) & !m;
            let width = n - base;
            if width < 64 {
                diff &= (1u64 << width) - 1;
            }
            while diff != 0 {
                let j = base + diff.trailing_zeros() as usize;
                diff &= diff - 1;
                if self.sat_col[j] == 0 {
                    self.sat_col[j] = col_index + 1;
                }
            }
        }
    }
}

/// Packs a bool column into `u64` words (bit `j` set when `column[j]`).
///
/// Public so the property suite can check the packing against a per-bit
/// reference; production callers are [`ConstraintMatrix::apply_column`]
/// and the guide replay.
pub fn pack_column(column: &[bool]) -> Vec<u64> {
    let mut words = vec![0u64; column.len().div_ceil(64).max(1)];
    for (j, &b) in column.iter().enumerate() {
        if b {
            words[j / 64] |= 1u64 << (j % 64);
        }
    }
    obs::count(obs::Counter::WordOps, words.len() as u64);
    words
}

/// The enriched constraint matrix driving column-based encoding.
#[derive(Debug, Clone)]
pub struct ConstraintMatrix {
    n: usize,
    nv: usize,
    constraints: Vec<TrackedConstraint>,
    columns: Vec<Vec<bool>>,
}

impl ConstraintMatrix {
    /// Builds the matrix for `n` symbols encoded in `nv` bits from the
    /// extracted constraints. Trivial constraints (singletons, full sets)
    /// are registered as already satisfied.
    pub fn new(n: usize, nv: usize, constraints: Vec<GroupConstraint>) -> Self {
        let tracked = constraints
            .into_iter()
            .map(|c| {
                let trivial = c.is_trivial();
                TrackedConstraint {
                    sat_col: vec![0; n],
                    status: if trivial {
                        ConstraintStatus::Satisfied
                    } else {
                        ConstraintStatus::Active
                    },
                    participating: Vec::new(),
                    disagreeing: Vec::new(),
                    guided: false,
                    constraint: c,
                }
            })
            .collect();
        ConstraintMatrix {
            n,
            nv,
            constraints: tracked,
            columns: Vec::new(),
        }
    }

    /// Number of symbols.
    pub fn num_symbols(&self) -> usize {
        self.n
    }

    /// Code length.
    pub fn nv(&self) -> usize {
        self.nv
    }

    /// Number of generated columns.
    pub fn columns_done(&self) -> usize {
        self.columns.len()
    }

    /// The generated columns so far.
    pub fn columns(&self) -> &[Vec<bool>] {
        &self.columns
    }

    /// The tracked constraints.
    pub fn constraints(&self) -> &[TrackedConstraint] {
        &self.constraints
    }

    /// The tracked constraint `k`.
    pub fn constraint(&self, k: usize) -> &TrackedConstraint {
        &self.constraints[k]
    }

    /// Indices of constraints with the given status.
    pub fn with_status(&self, status: ConstraintStatus) -> Vec<usize> {
        (0..self.constraints.len())
            .filter(|&k| self.constraints[k].status == status)
            .collect()
    }

    /// Commits a finished code column, stamping satisfied dichotomies with
    /// the column number and updating participation and statuses.
    ///
    /// # Panics
    ///
    /// Panics if the column length differs from the symbol count or all `nv`
    /// columns were already generated.
    pub fn apply_column(&mut self, column: &[bool]) {
        assert_eq!(column.len(), self.n, "column length mismatch");
        assert!(self.columns.len() < self.nv, "all columns already generated");
        let col_index = self.columns.len();
        let col_words = pack_column(column);
        for tc in &mut self.constraints {
            // Trivial constraints need no bookkeeping, and empty member
            // sets have no shared value to agree on.
            if tc.constraint.is_trivial() || tc.constraint.members().is_empty() {
                continue;
            }
            tc.absorb_column(col_index, &col_words, self.n);
            if tc.status == ConstraintStatus::Active && tc.unsatisfied_dichotomies() == 0 {
                tc.status = ConstraintStatus::Satisfied;
            }
        }
        self.columns.push(column.to_vec());
    }

    /// Marks constraint `k` infeasible.
    pub fn mark_infeasible(&mut self, k: usize) {
        self.constraints[k].status = ConstraintStatus::Infeasible;
    }

    /// Adds the guide constraint for infeasible constraint `parent`: the
    /// group constraint of its pending intruders. The new constraint's
    /// bookkeeping is replayed against the already-generated columns so its
    /// dichotomy state is consistent. Returns the new constraint's index,
    /// or `None` if the intruder set is trivial (nothing to guide).
    pub fn add_guide(&mut self, parent: usize) -> Option<usize> {
        let intruders = self.constraints[parent].pending_intruders();
        self.constraints[parent].guided = true;
        let guide = GroupConstraint::guide(intruders, parent);
        if guide.is_trivial() {
            return None;
        }
        let mut tc = TrackedConstraint {
            sat_col: vec![0; self.n],
            status: ConstraintStatus::Active,
            participating: Vec::new(),
            disagreeing: Vec::new(),
            guided: false,
            constraint: guide,
        };
        // Replay history, word-parallel like `apply_column`. Non-trivial
        // guides (checked above) have at least 2 members; an empty set
        // agrees trivially rather than panicking.
        for (col_index, column) in self.columns.iter().enumerate() {
            if tc.constraint.members().is_empty() {
                tc.participating.push(col_index);
                continue;
            }
            let col_words = pack_column(column);
            tc.absorb_column(col_index, &col_words, self.n);
        }
        if tc.unsatisfied_dichotomies() == 0 {
            tc.status = ConstraintStatus::Satisfied;
        }
        self.constraints.push(tc);
        Some(self.constraints.len() - 1)
    }

    /// Upper bound on the final supercube dimension of constraint `k`:
    /// `nv − #participating columns` (the paper's `dim[super(L_k)]`
    /// bookkeeping).
    pub fn dim_super_upper(&self, k: usize) -> usize {
        self.nv - self.constraints[k].participating.len()
    }

    /// Lower bound on the final supercube dimension: columns in which
    /// members already disagree stay free forever, and distinct codes force
    /// at least `ceil(log2 |L|)` free dimensions.
    pub fn dim_super_lower(&self, k: usize) -> usize {
        let tc = &self.constraints[k];
        tc.disagreeing.len().max(tc.constraint.min_dim())
    }
}

impl fmt::Display for ConstraintMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "constraint matrix: {} constraints, {} symbols, {}/{} columns",
            self.constraints.len(),
            self.n,
            self.columns.len(),
            self.nv
        )?;
        for (k, tc) in self.constraints.iter().enumerate() {
            write!(f, "L{k} [{:?}]:", tc.status)?;
            for j in 0..self.n {
                write!(f, " {}", tc.entry(j))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::ConstraintKind;

    fn matrix_4x8() -> ConstraintMatrix {
        // 8 symbols, nv = 3, two constraints
        let c1 = GroupConstraint::new(SymbolSet::from_members(8, [0, 1]));
        let c2 = GroupConstraint::new(SymbolSet::from_members(8, [2, 3, 4]));
        ConstraintMatrix::new(8, 3, vec![c1, c2])
    }

    #[test]
    fn column_application_stamps_dichotomies() {
        let mut m = matrix_4x8();
        // column: 0,1 -> 0; rest -> 1
        let col: Vec<bool> = (0..8).map(|i| i >= 2).collect();
        m.apply_column(&col);
        let tc = m.constraint(0);
        assert_eq!(tc.status(), ConstraintStatus::Satisfied);
        assert_eq!(tc.entry(5), 1); // 1-based column index 1
        assert_eq!(tc.entry(0), 1); // member
        assert_eq!(tc.participating(), &[0]);
        // constraint 2's members split in this column? 2,3,4 all get true:
        assert_eq!(m.constraint(1).participating(), &[0]);
        // but its outsiders 5,6,7 got the same value -> dichotomies pending
        assert!(m.constraint(1).entry(5) == 0);
        assert!(m.constraint(1).entry(0) == 1 || m.constraint(1).entry(0) > 0);
    }

    #[test]
    fn pending_intruders_shrink_with_columns() {
        let mut m = matrix_4x8();
        let col1: Vec<bool> = (0..8).map(|i| i >= 2).collect();
        m.apply_column(&col1);
        assert_eq!(m.constraint(1).pending_intruders().to_vec(), vec![5, 6, 7]);
        // second column separates 5 and 6 from {2,3,4}
        let col2: Vec<bool> = (0..8).map(|i| matches!(i, 5 | 6)).collect();
        m.apply_column(&col2);
        assert_eq!(m.constraint(1).pending_intruders().to_vec(), vec![7]);
        assert_eq!(m.constraint(1).entry(5), 2);
    }

    #[test]
    fn dim_bounds_track_participation() {
        let mut m = matrix_4x8();
        assert_eq!(m.dim_super_upper(1), 3);
        assert_eq!(m.dim_super_lower(1), 2); // ceil(log2 3)
        let col: Vec<bool> = (0..8).map(|i| i >= 2).collect();
        m.apply_column(&col);
        assert_eq!(m.dim_super_upper(1), 2);
        // a splitting column raises the lower bound
        let split: Vec<bool> = (0..8).map(|i| i == 2).collect();
        m.apply_column(&split);
        assert_eq!(m.dim_super_lower(1), 2);
        assert_eq!(m.constraint(1).disagreeing(), &[1]);
    }

    #[test]
    fn guide_replays_history() {
        let mut m = matrix_4x8();
        let col: Vec<bool> = (0..8).map(|i| i >= 2).collect();
        m.apply_column(&col);
        m.mark_infeasible(1);
        let g = m.add_guide(1).expect("intruders {5,6,7} form a guide");
        assert_eq!(m.constraint(g).constraint().members().to_vec(), vec![5, 6, 7]);
        assert_eq!(
            m.constraint(g).constraint().kind(),
            ConstraintKind::Guide { parent: 1 }
        );
        // The replay: in col 0, guide members 5,6,7 all true; outsiders 0,1
        // are false -> dichotomies to 0 and 1 satisfied at column 1.
        assert_eq!(m.constraint(g).entry(0), 1);
        assert_eq!(m.constraint(g).entry(2), 0);
        assert!(m.constraint(1).guided());
    }

    #[test]
    fn trivial_constraints_start_satisfied() {
        let c = GroupConstraint::new(SymbolSet::from_members(4, [2]));
        let m = ConstraintMatrix::new(4, 2, vec![c]);
        assert_eq!(m.constraint(0).status(), ConstraintStatus::Satisfied);
    }

    #[test]
    #[should_panic]
    fn too_many_columns_panics() {
        let mut m = matrix_4x8();
        for _ in 0..4 {
            let col = vec![false; 8];
            m.apply_column(&col);
        }
    }
}
