//! Theorem I of the paper: economical implementation of an unsatisfied
//! constraint whose intruders form a face.
//!
//! *If the symbols in the intruder set `I` of `L` form a cube which does not
//! intersect any symbol of `L`, then `L` can be implemented with
//! `dim[super(L)] − dim[super(I)]` cubes.* The constructive proof builds,
//! for each literal `m` of `super(I)` absent from `super(L)`, the cube
//! obtained from `super(I)` by complementing `m` and freeing the remaining
//! such literals. This module implements that construction and is what makes
//! guide constraints pay off: satisfying the guide constraint (the group
//! constraint over `I`) shrinks `dim[super(I)]` and with it the cube count.

use crate::encoding::{CodeCube, Encoding};
use crate::symbols::SymbolSet;

/// Outcome of applying Theorem I to a constraint under an encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaceImplementation {
    /// The constraint is satisfied: one cube (its supercube) implements it.
    SingleCube(CodeCube),
    /// The intruders form a face disjoint from the members: the theorem's
    /// cube collection implements the constraint.
    TheoremCubes(Vec<CodeCube>),
    /// The theorem does not apply (some member code lies inside the
    /// intruders' supercube); a general two-level minimization is needed.
    NotApplicable,
}

impl FaceImplementation {
    /// Number of cubes when the theorem (or satisfaction) applies.
    pub fn cube_count(&self) -> Option<usize> {
        match self {
            FaceImplementation::SingleCube(_) => Some(1),
            FaceImplementation::TheoremCubes(v) => Some(v.len()),
            FaceImplementation::NotApplicable => None,
        }
    }
}

/// Applies Theorem I to constraint `members` under `enc`.
///
/// Returns [`FaceImplementation::SingleCube`] when the constraint is
/// satisfied, [`FaceImplementation::TheoremCubes`] when the intruder set is
/// non-empty but its supercube avoids every member code (the theorem's
/// hypothesis), and [`FaceImplementation::NotApplicable`] otherwise.
///
/// # Panics
///
/// Panics if `members` is empty.
pub fn theorem_i(enc: &Encoding, members: &SymbolSet) -> FaceImplementation {
    let super_l = enc.supercube(members);
    let intruders = enc.intruders(members);
    if intruders.is_empty() {
        return FaceImplementation::SingleCube(super_l);
    }
    let super_i = enc.supercube(&intruders);
    // Hypothesis: super(I) must not capture any member code.
    if members.iter().any(|m| super_i.contains(enc.code(m))) {
        return FaceImplementation::NotApplicable;
    }
    // M = literals fixed in super(I) but free in super(L).
    let m_mask = super_i.fixed & !super_l.fixed;
    let mut cubes = Vec::new();
    for b in 0..enc.nv() as u32 {
        if m_mask >> b & 1 == 0 {
            continue;
        }
        // Start from super(I), complement literal b, free the other M
        // literals.
        let fixed = (super_i.fixed & !m_mask) | (1 << b);
        let values = (super_i.values & !(1 << b)) | (!super_i.values & (1 << b));
        cubes.push(CodeCube {
            fixed,
            values: values & fixed,
            nv: enc.nv(),
        });
    }
    debug_assert_eq!(cubes.len(), super_l.dim() - super_i.dim());
    FaceImplementation::TheoremCubes(cubes)
}

/// Verifies that a cube collection implements a constraint: every member
/// code covered, no other symbol's code covered. Used by tests and debug
/// assertions.
pub fn implements_constraint(enc: &Encoding, members: &SymbolSet, cubes: &[CodeCube]) -> bool {
    (0..enc.num_symbols()).all(|s| {
        let covered = cubes.iter().any(|c| c.contains(enc.code(s)));
        covered == members.contains(s)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 4-bit instance patterned on the paper's running example: members
    /// spread over a half-space with two intruders forming a small face.
    #[test]
    fn theorem_cubes_exclude_intruders() {
        // Symbols: 0..=6. Members L = {2, 3, 4, 5} with codes spanning
        // super(L) = 0---; intruders {0, 1} at 0000 and 0010,
        // super(I) = 00-0.
        let enc = Encoding::new(
            4,
            vec![
                0b0000, // s0 (intruder)
                0b0010, // s1 (intruder)
                0b0001, // s2
                0b0011, // s3
                0b0100, // s4
                0b0111, // s5
                0b1000, // s6 (outside super(L))
            ],
        )
        .unwrap();
        let members = SymbolSet::from_members(7, [2, 3, 4, 5]);
        let r = theorem_i(&enc, &members);
        let FaceImplementation::TheoremCubes(cubes) = &r else {
            panic!("theorem should apply: {r:?}");
        };
        // dim(super L) = 3 (0---), dim(super I) = 1 (00-0) -> 2 cubes.
        assert_eq!(cubes.len(), 2);
        assert!(implements_constraint(&enc, &members, cubes));
    }

    #[test]
    fn satisfied_constraint_is_one_cube() {
        let enc = Encoding::new(2, vec![0b00, 0b01, 0b10, 0b11]).unwrap();
        let members = SymbolSet::from_members(4, [0, 1]);
        let r = theorem_i(&enc, &members);
        assert_eq!(r.cube_count(), Some(1));
        let FaceImplementation::SingleCube(c) = r else {
            panic!()
        };
        assert_eq!(c.render(), "0-");
    }

    #[test]
    fn not_applicable_when_member_in_intruder_cube() {
        // members {0,1} at 000, 011 (super 0--); intruders {2,3} at
        // 001, 010 -> super(I) = 0-- which contains the member codes.
        let enc = Encoding::new(3, vec![0b000, 0b011, 0b001, 0b010]).unwrap();
        let members = SymbolSet::from_members(4, [0, 1]);
        assert_eq!(theorem_i(&enc, &members), FaceImplementation::NotApplicable);
    }

    #[test]
    fn cube_count_matches_dimension_difference() {
        // members spread to super(L) = ----; single intruder at 0000,
        // super(I) = 0000 (dim 0) -> 4 cubes.
        let enc = Encoding::new(
            4,
            vec![
                0b0000, // s0 intruder
                0b1111, 0b0001, 0b0010, 0b0100, 0b1000,
            ],
        )
        .unwrap();
        let members = SymbolSet::from_members(6, [1, 2, 3, 4, 5]);
        let r = theorem_i(&enc, &members);
        let FaceImplementation::TheoremCubes(cubes) = &r else {
            panic!("theorem should apply: {r:?}")
        };
        assert_eq!(cubes.len(), 4);
        assert!(implements_constraint(&enc, &members, cubes));
    }
}
