//! # picola-constraints — face-constraint machinery
//!
//! The constraint side of the PICOLA reproduction: symbol sets, group (face)
//! constraints and their seed dichotomies, binary encodings with supercube
//! and intruder analysis, the paper's enriched constraint matrix, the
//! nv-compatibility conditions used by `Classify()`, guide constraints via
//! Theorem I, and face-constraint extraction from symbolic covers by
//! multi-valued minimization.
//!
//! ```
//! use picola_constraints::{Encoding, GroupConstraint, SymbolSet};
//!
//! // Four symbols in two bits; {0, 1} must share a face.
//! let enc = Encoding::new(2, vec![0b00, 0b01, 0b10, 0b11])?;
//! let c = GroupConstraint::new(SymbolSet::from_members(4, [0, 1]));
//! assert!(enc.satisfies(c.members())); // face 0- holds exactly {0, 1}
//! # Ok::<(), picola_constraints::EncodingError>(())
//! ```

#![warn(missing_docs)]

pub mod compat;
pub mod constraint;
pub mod embed;
pub mod encoding;
pub mod extract;
pub mod matrix;
pub mod symbols;
pub mod theorem;

pub use compat::{nv_compatible, Geometry};
pub use embed::{embed_exact, minimal_embedding_length, EmbedOutcome};
pub use constraint::{ConstraintKind, Dichotomy, GroupConstraint};
pub use encoding::{CodeCube, Encoding, EncodingError};
pub use extract::{extract_constraints, extract_constraints_with, ExtractMethod, ExtractOptions};
pub use matrix::{pack_column, ConstraintMatrix, ConstraintStatus, TrackedConstraint};
pub use picola_fsm::min_code_length;
pub use symbols::SymbolSet;
pub use theorem::{implements_constraint, theorem_i, FaceImplementation};
