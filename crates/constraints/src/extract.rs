//! Face-constraint extraction from symbolic covers.
//!
//! The standard two-step encoding strategy first minimizes the symbolic
//! (multi-valued) representation; every minimized implicant whose
//! present-state literal spans several symbols becomes a face constraint
//! that, if satisfied by the encoding, keeps that implicant a single product
//! term in the Boolean domain.

use crate::constraint::GroupConstraint;
use crate::symbols::SymbolSet;
use picola_fsm::SymbolicCover;
use picola_logic::{flat_espresso_with, Cover, MinimizeOptions};
use std::collections::BTreeMap;

/// How the symbolic cover is minimized before constraints are read off.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExtractMethod {
    /// Full multi-valued ESPRESSO on the symbolic cover (the reference
    /// method; what NOVA-era flows run).
    #[default]
    Espresso,
    /// A single EXPAND/IRREDUNDANT pass — cheaper on very large machines,
    /// same flavour of constraints.
    Quick,
    /// Merge rows with identical input and output fields, taking the union
    /// of their state literals. No Boolean reasoning; fastest and fully
    /// deterministic.
    Merge,
}

/// Options for [`extract_constraints_with`].
#[derive(Debug, Clone, Default)]
pub struct ExtractOptions {
    /// Minimization method.
    pub method: ExtractMethod,
}

/// Extracts face constraints from `sc` with default options (full
/// multi-valued minimization).
pub fn extract_constraints(sc: &SymbolicCover) -> Vec<GroupConstraint> {
    extract_constraints_with(sc, &ExtractOptions::default())
}

/// Extracts face constraints from the symbolic cover.
///
/// Every implicant of the minimized cover whose present-state literal
/// contains at least two and fewer than all states yields a group
/// constraint; identical member sets are merged with their multiplicity
/// recorded as the constraint's weight. Constraints are returned largest
/// weight first, ties broken by smaller member count then member order, so
/// extraction is deterministic.
pub fn extract_constraints_with(
    sc: &SymbolicCover,
    opts: &ExtractOptions,
) -> Vec<GroupConstraint> {
    let n = sc.num_states;
    let sv = sc.state_var();
    let dom = &sc.domain;

    let minimized: Cover = match opts.method {
        ExtractMethod::Espresso => {
            let o = MinimizeOptions::default();
            flat_espresso_with(&sc.on, &sc.dc, &o)
        }
        ExtractMethod::Quick => {
            let o = MinimizeOptions {
                max_iterations: 0,
                use_essentials: false,
                ..MinimizeOptions::default()
            };
            flat_espresso_with(&sc.on, &sc.dc, &o)
        }
        ExtractMethod::Merge => {
            // Group by all non-state variables: union the state literals.
            let mut groups: BTreeMap<Vec<u64>, SymbolSet> = BTreeMap::new();
            for c in sc.on.iter() {
                // Key: cube words with the state variable's parts cleared.
                let mut key = c.clone();
                key.raise_var(dom, sv);
                let entry = groups
                    .entry(key.words().to_vec())
                    .or_insert_with(|| SymbolSet::empty(n));
                for p in c.var_parts(dom, sv) {
                    entry.insert(p);
                }
            }
            let mut merged = Cover::empty(dom);
            for (key, states) in groups {
                // Rebuild a representative cube for counting purposes.
                let mut cube = picola_logic::Cube::full(dom);
                for (w, &bits) in key.iter().enumerate() {
                    for b in 0..64 {
                        if bits >> b & 1 == 0 {
                            let p = w * 64 + b;
                            if p < dom.total_parts() {
                                cube.clear_part(p);
                            }
                        }
                    }
                }
                for p in dom.var(sv).part_range() {
                    cube.clear_part(p);
                }
                for s in states.iter() {
                    cube.set_part(dom.var(sv).offset() + s);
                }
                merged.push(cube);
            }
            merged
        }
    };

    let mut by_members: BTreeMap<Vec<usize>, usize> = BTreeMap::new();
    for cube in minimized.iter() {
        let parts: Vec<usize> = cube.var_parts(dom, sv).collect();
        if parts.len() >= 2 && parts.len() < n {
            *by_members.entry(parts).or_insert(0) += 1;
        }
    }

    let mut out: Vec<GroupConstraint> = by_members
        .into_iter()
        .map(|(members, weight)| {
            let mut c = GroupConstraint::new(SymbolSet::from_members(n, members));
            c.set_weight(weight);
            c
        })
        .collect();
    out.sort_by(|a, b| {
        b.weight()
            .cmp(&a.weight())
            .then(a.len().cmp(&b.len()))
            .then(a.members().to_vec().cmp(&b.members().to_vec()))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use picola_fsm::{parse_kiss, symbolic_cover};

    /// Two states always transitioning identically under input 1 — they
    /// should merge into one face constraint.
    const MERGEABLE: &str = "\
.i 1
.o 1
1 a c 1
1 b c 1
0 a a 0
0 b b 0
0 c a 0
1 c c 0
.e
";

    #[test]
    fn espresso_extraction_finds_mergeable_states() {
        let m = parse_kiss("t", MERGEABLE).unwrap();
        let sc = symbolic_cover(&m);
        let cs = extract_constraints(&sc);
        // a and b behave identically on input 1: the minimized cover keeps
        // one implicant with state literal {a, b}.
        assert!(
            cs.iter().any(|c| c.members().to_vec() == vec![0, 1]),
            "constraints: {cs:?}"
        );
    }

    #[test]
    fn merge_extraction_finds_the_same_group() {
        let m = parse_kiss("t", MERGEABLE).unwrap();
        let sc = symbolic_cover(&m);
        let opts = ExtractOptions {
            method: ExtractMethod::Merge,
        };
        let cs = extract_constraints_with(&sc, &opts);
        assert!(cs.iter().any(|c| c.members().to_vec() == vec![0, 1]));
    }

    #[test]
    fn extraction_is_deterministic() {
        let m = picola_fsm::benchmark_fsm("lion9").unwrap();
        let sc = symbolic_cover(&m);
        let a = extract_constraints(&sc);
        let b = extract_constraints(&sc);
        assert_eq!(a, b);
    }

    #[test]
    fn trivial_literals_yield_no_constraints() {
        // Single-state literals only: no constraints.
        let text = ".i 1\n.o 1\n1 a b 1\n0 b a 1\n.e\n";
        let m = parse_kiss("t", text).unwrap();
        let sc = symbolic_cover(&m);
        let cs = extract_constraints(&sc);
        for c in &cs {
            assert!(c.len() >= 2);
            assert!(c.len() < 2usize.max(sc.num_states));
        }
    }

    #[test]
    fn quick_extraction_runs_on_a_suite_machine() {
        let m = picola_fsm::benchmark_fsm("bbara").unwrap();
        let sc = symbolic_cover(&m);
        let opts = ExtractOptions {
            method: ExtractMethod::Quick,
        };
        let cs = extract_constraints_with(&sc, &opts);
        assert!(!cs.is_empty());
        for c in &cs {
            assert!(c.len() >= 2 && c.len() < sc.num_states);
        }
    }
}
