//! nv-compatibility of face constraints (paper §3.3).
//!
//! Two constraints are *nv-compatible* when they can be satisfied
//! simultaneously in `B^nv`. The paper gives necessary conditions built from
//! face-embedding theory: dimension ordering between a constraint and its
//! *son* (intersection), the dimension formula
//! `dim(super(L_A, L_B)) = dim(L_A) + dim(L_B) − dim(L_AB)`, and a
//! don't-care budget for disjoint constraints. Since `nv ≤ 8` in practice,
//! we decide existence of consistent dimensions by brute force over the
//! (tiny) dimension ranges, giving a check that is exactly the conjunction
//! of the paper's conditions.

use crate::symbols::SymbolSet;

/// The dimension range a constraint's implementing cube may still take,
/// given the columns generated so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geometry {
    /// Number of member symbols.
    pub size: usize,
    /// Smallest possible final supercube dimension
    /// (`max(ceil(log2 size), #disagreeing columns)`).
    pub lower: usize,
    /// Largest possible final supercube dimension
    /// (`nv − #participating columns`).
    pub upper: usize,
}

impl Geometry {
    /// Geometry of a fresh constraint (no columns generated).
    pub fn unconstrained(size: usize, nv: usize) -> Self {
        let min_dim = if size <= 1 {
            0
        } else {
            (usize::BITS - (size - 1).leading_zeros()) as usize
        };
        Geometry {
            size,
            lower: min_dim,
            upper: nv,
        }
    }

    /// Whether any dimension remains feasible: the constraint can only be
    /// embedded if a cube of some legal dimension exists.
    pub fn feasible(&self) -> bool {
        self.lower <= self.upper
    }

    /// Whether the constraint can be embedded *at all* in `B^nv` with `n`
    /// symbols: some dimension `d` in range must give a cube whose spare
    /// capacity fits the unused-code budget, `2^d − size ≤ 2^nv − n`
    /// (equivalently, the `n − size` outside symbols fit outside the cube).
    ///
    /// This unary rule catches cases like a 3-member face among `n = 2^nv`
    /// symbols: the face needs a 4-code cube with one spare word, but no
    /// code word is spare.
    pub fn feasible_in(&self, nv: usize, n: usize) -> bool {
        if !self.feasible() {
            return false;
        }
        let dc_total = (1u64 << nv) - n as u64;
        (self.lower..=self.upper.min(nv))
            .any(|d| (1u64 << d) >= self.size as u64 && (1u64 << d) - self.size as u64 <= dc_total)
    }
}

/// Whether constraints `a` and `b` (as member sets with their current
/// geometries) can still be satisfied simultaneously in `B^nv`, for a
/// universe of `n` symbols.
///
/// Returns `false` only when the paper's necessary conditions are provably
/// violated for *every* choice of cube dimensions within the geometries —
/// i.e. `false` certifies incompatibility, `true` is inconclusive (as with
/// any necessary-condition test).
pub fn nv_compatible(
    a: &SymbolSet,
    ga: Geometry,
    b: &SymbolSet,
    gb: Geometry,
    nv: usize,
    n: usize,
) -> bool {
    if !ga.feasible() || !gb.feasible() {
        return false;
    }
    let son = a.intersection(b);
    let son_size = son.len();

    if son_size == 0 {
        // Disjoint constraints: their cubes must exclude each other's codes,
        // and the spare capacity of both cubes competes for the same unused
        // code words: dc(L_A) + dc(L_B) ≤ dc(S) = 2^nv − n.
        let dc_total = (1u64 << nv) - n as u64;
        for da in ga.lower..=ga.upper {
            for db in gb.lower..=gb.upper {
                let dca = (1u64 << da) - ga.size as u64;
                let dcb = (1u64 << db) - gb.size as u64;
                // The two cubes must also jointly fit the universe.
                if dca + dcb <= dc_total && (1u64 << da) + (1u64 << db) <= (1u64 << nv) {
                    return true;
                }
            }
        }
        return false;
    }

    // Overlapping constraints: a son-cube of dimension `dab` must fit inside
    // both cubes, with strict dimension ordering for proper subsets
    // (conditions I) and a don't-care budget no larger than either father's
    // (conditions II).
    let son_min_dim = if son_size <= 1 {
        0
    } else {
        (usize::BITS - (son_size - 1).leading_zeros()) as usize
    };
    let proper_in_a = son_size < ga.size;
    let proper_in_b = son_size < gb.size;
    let union_size = ga.size + gb.size - son_size;

    for da in ga.lower..=ga.upper {
        for db in gb.lower..=gb.upper {
            let dab_max = (da - usize::from(proper_in_a)).min(db - usize::from(proper_in_b));
            for dab in son_min_dim..=dab_max.min(nv) {
                // Conditions II: dc(son) ≤ dc(fathers).
                let dc_son = (1u64 << dab) - son_size as u64;
                if dc_son > (1u64 << da) - ga.size as u64 {
                    continue;
                }
                if dc_son > (1u64 << db) - gb.size as u64 {
                    continue;
                }
                // Dimension formula for the joint supercube.
                let d_super = da + db - dab;
                if d_super > nv {
                    continue;
                }
                // The joint supercube must hold all union codes.
                if (1u64 << d_super) < union_size as u64 {
                    continue;
                }
                return true;
            }
            // Guard against an empty dab range (needs strict ordering but
            // the fathers are already at the son's minimum).
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(n: usize, m: &[usize]) -> SymbolSet {
        SymbolSet::from_members(n, m.iter().copied())
    }

    #[test]
    fn unconstrained_geometry() {
        let g = Geometry::unconstrained(5, 4);
        assert_eq!(g.lower, 3);
        assert_eq!(g.upper, 4);
        assert!(g.feasible());
    }

    #[test]
    fn small_disjoint_constraints_are_compatible() {
        // n=8, nv=3: {0,1} and {2,3} can use faces 00-, 01-.
        let a = set(8, &[0, 1]);
        let b = set(8, &[2, 3]);
        let ga = Geometry::unconstrained(2, 3);
        let gb = Geometry::unconstrained(2, 3);
        assert!(nv_compatible(&a, ga, &b, gb, 3, 8));
    }

    #[test]
    fn disjoint_constraints_exceeding_dc_budget_are_incompatible() {
        // n = 8, nv = 3 (no spare codes). {0,1,2} needs a 4-code cube with
        // one spare; {3,4,5} likewise; dc budget is 0 -> incompatible.
        let a = set(8, &[0, 1, 2]);
        let b = set(8, &[3, 4, 5]);
        let ga = Geometry::unconstrained(3, 3);
        let gb = Geometry::unconstrained(3, 3);
        assert!(!nv_compatible(&a, ga, &b, gb, 3, 8));
    }

    #[test]
    fn disjoint_cubes_must_fit_the_space() {
        // Two 5-member disjoint constraints in nv=3: each needs a full
        // 8-code cube -> cannot coexist.
        let a = set(10, &[0, 1, 2, 3, 4]);
        let b = set(10, &[5, 6, 7, 8, 9]);
        // (n = 10 does not fit nv = 3 anyway, use nv = 4)
        let ga = Geometry::unconstrained(5, 4);
        let gb = Geometry::unconstrained(5, 4);
        // 2^3 + 2^3 = 16 = 2^4 fits exactly, dc budget: (8-5)+(8-5)=6 == 16-10
        assert!(nv_compatible(&a, ga, &b, gb, 4, 10));
        // but with one more symbol (n = 11) the dc budget (5) is exceeded
        let a2 = set(11, &[0, 1, 2, 3, 4]);
        let b2 = set(11, &[5, 6, 7, 8, 9]);
        assert!(!nv_compatible(&a2, ga, &b2, gb, 4, 11));
    }

    #[test]
    fn nested_constraints_need_strictly_larger_father() {
        // son ⊊ father forces dim(father) > dim(son).
        let a = set(8, &[0, 1, 2, 3]); // needs dim ≥ 2
        let b = set(8, &[0, 1]); // needs dim ≥ 1
        let ga = Geometry::unconstrained(4, 3);
        let gb = Geometry::unconstrained(2, 3);
        assert!(nv_compatible(&a, ga, &b, gb, 3, 8));
        // Tighten a's upper bound to 1: a 4-member constraint cannot live in
        // a 2-code cube at all.
        let ga_tight = Geometry { size: 4, lower: 2, upper: 1 };
        assert!(!nv_compatible(&a, ga_tight, &b, gb, 3, 8));
    }

    #[test]
    fn overlapping_constraints_dimension_formula() {
        // A = {0,1,2,3}, B = {3,4,5,6}: son {3}, union 7 symbols.
        // dims: dA ≥ 2, dB ≥ 2, dab = 0 (singleton son), strict ordering ok,
        // d_super = 4 ≤ nv = 4 feasible, 2^4 ≥ 7. Compatible for nv = 4.
        let a = set(16, &[0, 1, 2, 3]);
        let b = set(16, &[3, 4, 5, 6]);
        let ga = Geometry::unconstrained(4, 4);
        let gb = Geometry::unconstrained(4, 4);
        assert!(nv_compatible(&a, ga, &b, gb, 4, 16));
        // For nv = 3 the supercube formula needs d_super = 2+2-0 = 4 > 3 and
        // no larger dab is allowed (son is a proper subset of both, dab <
        // min(dA,dB) and dc(son) constraints) -> incompatible.
        let ga3 = Geometry::unconstrained(4, 3);
        let gb3 = Geometry::unconstrained(4, 3);
        assert!(!nv_compatible(&a, ga3, &b, gb3, 3, 16));
    }

    #[test]
    fn identical_constraints_are_compatible() {
        let a = set(8, &[0, 1, 2]);
        let g = Geometry::unconstrained(3, 3);
        assert!(nv_compatible(&a, g, &a.clone(), g, 3, 8));
    }
}
