//! Face (group) constraints and seed dichotomies.

use crate::symbols::SymbolSet;
use std::fmt;

/// The provenance of a constraint inside the encoding process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConstraintKind {
    /// A face constraint extracted from the symbolic cover.
    Original,
    /// A guide constraint substituted for an infeasible constraint; carries
    /// the index of the original constraint it guides.
    Guide {
        /// Index of the constraint this guide was derived from.
        parent: usize,
    },
}

/// A group (face) constraint: a set of symbols whose codes must span a
/// Boolean cube containing no other symbol's code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupConstraint {
    members: SymbolSet,
    kind: ConstraintKind,
    /// Multiplicity: how many symbolic implicants produced this member set.
    weight: usize,
}

impl GroupConstraint {
    /// Creates an original constraint of weight 1.
    pub fn new(members: SymbolSet) -> Self {
        GroupConstraint {
            members,
            kind: ConstraintKind::Original,
            weight: 1,
        }
    }

    /// Creates a guide constraint for the original constraint `parent`.
    pub fn guide(members: SymbolSet, parent: usize) -> Self {
        GroupConstraint {
            members,
            kind: ConstraintKind::Guide { parent },
            weight: 1,
        }
    }

    /// The member symbols.
    pub fn members(&self) -> &SymbolSet {
        &self.members
    }

    /// The constraint's provenance.
    pub fn kind(&self) -> ConstraintKind {
        self.kind
    }

    /// Multiplicity of the constraint among extracted implicants.
    pub fn weight(&self) -> usize {
        self.weight
    }

    /// Adjusts the multiplicity.
    pub fn set_weight(&mut self, w: usize) {
        self.weight = w;
    }

    /// Number of member symbols.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the constraint has no members (degenerate).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// A constraint is *trivial* when it has fewer than two members or spans
    /// all symbols: it is satisfied by every encoding.
    pub fn is_trivial(&self) -> bool {
        let k = self.members.len();
        k < 2 || k == self.members.universe()
    }

    /// The seed dichotomies of the constraint: one per outside symbol.
    pub fn dichotomies(&self) -> impl Iterator<Item = Dichotomy> + '_ {
        let n = self.members.universe();
        (0..n)
            .filter(move |&s| !self.members.contains(s))
            .map(move |s| Dichotomy {
                members: self.members.clone(),
                outsider: s,
            })
    }

    /// Minimum dimension of any cube holding all members:
    /// `ceil(log2(len))`.
    pub fn min_dim(&self) -> usize {
        let k = self.len().max(1);
        (usize::BITS - (k - 1).leading_zeros()) as usize
    }
}

impl fmt::Display for GroupConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            ConstraintKind::Original => write!(f, "L{}", self.members),
            ConstraintKind::Guide { parent } => write!(f, "G[{}]{}", parent, self.members),
        }
    }
}

/// A seed dichotomy `(B1 : B2)` of a group constraint: `B1` is the member
/// set, `B2` a single outside symbol. It is satisfied when some encoding
/// column gives every member one value and the outsider the other.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dichotomy {
    /// The constraint's member block `B1`.
    pub members: SymbolSet,
    /// The single outside symbol forming `B2`.
    pub outsider: usize,
}

impl Dichotomy {
    /// Whether a code-matrix column (one bit per symbol) satisfies this
    /// dichotomy: all members share a value and the outsider differs.
    pub fn satisfied_by_column(&self, column: &[bool]) -> bool {
        let mut it = self.members.iter();
        let Some(first) = it.next() else {
            return false;
        };
        let v = column[first];
        if it.any(|i| column[i] != v) {
            return false;
        }
        column[self.outsider] != v
    }
}

impl fmt::Display for Dichotomy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({} : s{})", self.members, self.outsider)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dichotomies_enumerate_outsiders() {
        let c = GroupConstraint::new(SymbolSet::from_members(5, [1, 2]));
        let d: Vec<usize> = c.dichotomies().map(|d| d.outsider).collect();
        assert_eq!(d, vec![0, 3, 4]);
    }

    #[test]
    fn dichotomy_satisfaction() {
        let c = GroupConstraint::new(SymbolSet::from_members(4, [0, 1]));
        let d: Vec<Dichotomy> = c.dichotomies().collect();
        // column: symbols 0,1 -> 1; symbol 2 -> 0; symbol 3 -> 1
        let col = vec![true, true, false, true];
        assert!(d[0].satisfied_by_column(&col)); // outsider 2 differs
        assert!(!d[1].satisfied_by_column(&col)); // outsider 3 equals members
        // members split => nothing satisfied
        let col2 = vec![true, false, false, false];
        assert!(!d[0].satisfied_by_column(&col2));
    }

    #[test]
    fn min_dim_is_ceil_log2() {
        let mk = |k: usize| {
            GroupConstraint::new(SymbolSet::from_members(16, 0..k)).min_dim()
        };
        assert_eq!(mk(1), 0);
        assert_eq!(mk(2), 1);
        assert_eq!(mk(3), 2);
        assert_eq!(mk(4), 2);
        assert_eq!(mk(5), 3);
    }

    #[test]
    fn triviality() {
        assert!(GroupConstraint::new(SymbolSet::from_members(4, [2])).is_trivial());
        assert!(GroupConstraint::new(SymbolSet::full(4)).is_trivial());
        assert!(!GroupConstraint::new(SymbolSet::from_members(4, [0, 1])).is_trivial());
    }

    #[test]
    fn guide_kind_tracks_parent() {
        let g = GroupConstraint::guide(SymbolSet::from_members(4, [0, 3]), 7);
        assert_eq!(g.kind(), ConstraintKind::Guide { parent: 7 });
        assert!(g.to_string().starts_with("G[7]"));
    }
}
