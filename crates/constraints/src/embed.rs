//! Exact face embedding by backtracking.
//!
//! Decides, for small instances, whether a constraint set is *completely*
//! satisfiable in `B^nv` — and finds the smallest such `nv`. This is the
//! exact version of the question the paper's `Classify()` answers with
//! necessary conditions, and quantifies the premise of the partial problem:
//! full satisfaction often needs codes well beyond `ceil(log2 n)`.

use crate::constraint::GroupConstraint;
use crate::encoding::Encoding;

/// Outcome of an exact embedding search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmbedOutcome {
    /// An encoding satisfying every constraint.
    Embedded(Encoding),
    /// Proven unsatisfiable in the given number of bits.
    Impossible,
    /// The node budget ran out before a decision.
    BudgetExceeded,
}

/// Searches for an encoding of `n` symbols in `nv` bits satisfying *all*
/// constraints, by backtracking over symbol-to-code assignments with
/// face-consistency pruning.
///
/// `max_nodes` bounds the search tree. Exponential in the worst case; keep
/// `n` small (≤ 16 or so) or the budget tight.
pub fn embed_exact(
    n: usize,
    nv: usize,
    constraints: &[GroupConstraint],
    max_nodes: usize,
) -> EmbedOutcome {
    let size = 1usize << nv;
    if n > size {
        return EmbedOutcome::Impossible;
    }
    let active: Vec<&GroupConstraint> =
        constraints.iter().filter(|c| !c.is_trivial()).collect();

    // Order symbols: members of large constraints first (fail fast).
    let mut involvement = vec![0usize; n];
    for c in &active {
        for m in c.members().iter() {
            involvement[m] += c.len();
        }
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&s| std::cmp::Reverse(involvement[s]));

    struct Search<'a> {
        n: usize,
        nv: usize,
        active: &'a [&'a GroupConstraint],
        order: &'a [usize],
        codes: Vec<Option<u32>>,
        used: Vec<bool>,
        nodes: usize,
        max_nodes: usize,
        exceeded: bool,
    }

    impl Search<'_> {
        /// Partial consistency: the supercube of the already-assigned
        /// members only *grows* as more members are placed, so an assigned
        /// non-member inside the current partial supercube can never escape
        /// — prune immediately. (Capacity cannot be pruned partially: free
        /// bits may still open up.)
        fn consistent(&self) -> bool {
            let full = ((1u64 << self.nv) - 1) as u32;
            for c in self.active {
                let mut and = u32::MAX;
                let mut or = 0u32;
                let mut assigned = 0usize;
                for m in c.members().iter() {
                    if let Some(code) = self.codes[m] {
                        and &= code;
                        or |= code;
                        assigned += 1;
                    }
                }
                if assigned == 0 {
                    continue;
                }
                let fixed = full & !(and ^ or);
                let values = and & fixed;
                for (s, code) in self.codes.iter().enumerate() {
                    if let Some(code) = code {
                        if !c.members().contains(s) && (code ^ values) & fixed == 0 {
                            return false;
                        }
                    }
                }
            }
            true
        }

        fn go(&mut self, depth: usize) -> bool {
            self.nodes += 1;
            if self.nodes > self.max_nodes {
                self.exceeded = true;
                return false;
            }
            if depth == self.n {
                return self.final_check();
            }
            let s = self.order[depth];
            for w in 0..1u32 << self.nv {
                if self.used[w as usize] {
                    continue;
                }
                self.codes[s] = Some(w);
                self.used[w as usize] = true;
                if self.consistent() && self.go(depth + 1) {
                    return true;
                }
                self.codes[s] = None;
                self.used[w as usize] = false;
                if self.exceeded {
                    return false;
                }
            }
            false
        }

        fn final_check(&self) -> bool {
            // At depth == n every slot is assigned and used[] kept the
            // codes distinct; verify both rather than assume.
            let codes: Vec<u32> = self.codes.iter().filter_map(|c| *c).collect();
            if codes.len() != self.n {
                return false;
            }
            Encoding::new(self.nv, codes)
                .is_ok_and(|enc| self.active.iter().all(|c| enc.satisfies(c.members())))
        }
    }

    let mut search = Search {
        n,
        nv,
        active: &active,
        order: &order,
        codes: vec![None; n],
        used: vec![false; size],
        nodes: 0,
        max_nodes,
        exceeded: false,
    };
    if search.go(0) {
        let codes: Vec<u32> = search.codes.iter().filter_map(|c| *c).collect();
        match Encoding::new(nv, codes) {
            // go(0) returns true only after final_check validated exactly
            // this encoding, so the Err arm is unreachable; degrade to
            // Impossible rather than panic if that invariant ever breaks.
            Ok(enc) => EmbedOutcome::Embedded(enc),
            Err(_) => EmbedOutcome::Impossible,
        }
    } else if search.exceeded {
        EmbedOutcome::BudgetExceeded
    } else {
        EmbedOutcome::Impossible
    }
}

/// The smallest code length at which all constraints embed, searched
/// upward from `ceil(log2 n)`; `None` when the budget runs out first or no
/// length up to `max_nv` works.
pub fn minimal_embedding_length(
    n: usize,
    constraints: &[GroupConstraint],
    max_nv: usize,
    max_nodes: usize,
) -> Option<(usize, Encoding)> {
    let start = crate::min_code_length(n);
    for nv in start..=max_nv {
        match embed_exact(n, nv, constraints, max_nodes) {
            EmbedOutcome::Embedded(e) => return Some((nv, e)),
            EmbedOutcome::Impossible => continue,
            EmbedOutcome::BudgetExceeded => return None,
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::SymbolSet;

    fn groups(n: usize, gs: &[&[usize]]) -> Vec<GroupConstraint> {
        gs.iter()
            .map(|g| GroupConstraint::new(SymbolSet::from_members(n, g.iter().copied())))
            .collect()
    }

    #[test]
    fn easy_instances_embed_at_min_length() {
        let cs = groups(8, &[&[0, 1], &[2, 3], &[4, 5, 6, 7]]);
        match embed_exact(8, 3, &cs, 1_000_000) {
            EmbedOutcome::Embedded(e) => {
                for c in &cs {
                    assert!(e.satisfies(c.members()));
                }
            }
            other => panic!("expected embedding, got {other:?}"),
        }
    }

    #[test]
    fn dc_starved_instances_are_impossible() {
        // Two disjoint 3-member faces among 8 symbols in 3 bits: impossible
        // (each face needs a spare code word, none exist).
        let cs = groups(8, &[&[0, 1, 2], &[3, 4, 5]]);
        assert_eq!(embed_exact(8, 3, &cs, 2_000_000), EmbedOutcome::Impossible);
        // One more bit suffices.
        match embed_exact(8, 4, &cs, 2_000_000) {
            EmbedOutcome::Embedded(e) => {
                assert!(e.satisfies(cs[0].members()));
                assert!(e.satisfies(cs[1].members()));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn minimal_length_finds_the_threshold() {
        let cs = groups(8, &[&[0, 1, 2], &[3, 4, 5]]);
        let (nv, enc) = minimal_embedding_length(8, &cs, 6, 2_000_000).expect("embeds by nv=4");
        assert_eq!(nv, 4);
        assert!(cs.iter().all(|c| enc.satisfies(c.members())));
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let cs = groups(12, &[&[0, 1, 2], &[3, 4, 5], &[6, 7, 8], &[9, 10, 11]]);
        assert_eq!(embed_exact(12, 4, &cs, 3), EmbedOutcome::BudgetExceeded);
    }

    #[test]
    fn unconstrained_instances_always_embed() {
        match embed_exact(5, 3, &[], 1000) {
            EmbedOutcome::Embedded(e) => assert_eq!(e.num_symbols(), 5),
            other => panic!("{other:?}"),
        }
    }
}
