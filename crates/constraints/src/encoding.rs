//! Binary encodings (code matrices) of a set of symbols.

use crate::symbols::SymbolSet;
use picola_logic::{Cover, Cube, Domain};
use std::error::Error;
use std::fmt;

/// Error constructing an [`Encoding`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodingError {
    /// Two symbols received the same code.
    DuplicateCode {
        /// The repeated code word.
        code: u32,
    },
    /// A code does not fit in the declared number of bits.
    CodeOutOfRange {
        /// The offending code word.
        code: u32,
        /// The declared code length.
        nv: usize,
    },
}

impl fmt::Display for EncodingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodingError::DuplicateCode { code } => {
                write!(f, "duplicate code {code:b} assigned to two symbols")
            }
            EncodingError::CodeOutOfRange { code, nv } => {
                write!(f, "code {code:b} does not fit in {nv} bits")
            }
        }
    }
}

impl Error for EncodingError {}

/// The supercube of a set of binary codes: the smallest Boolean cube
/// containing them, as (mask of fixed bits, their values).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CodeCube {
    /// Bits fixed in the cube (1 = fixed).
    pub fixed: u32,
    /// Values of the fixed bits (only meaningful where `fixed` is 1).
    pub values: u32,
    /// Code length in bits.
    pub nv: usize,
}

impl CodeCube {
    /// The cube's dimension: number of free bits.
    pub fn dim(&self) -> usize {
        self.nv - (self.fixed.count_ones() as usize)
    }

    /// Whether the cube contains `code`.
    pub fn contains(&self, code: u32) -> bool {
        (code ^ self.values) & self.fixed == 0
    }

    /// Number of code words inside the cube (`2^dim`).
    pub fn capacity(&self) -> u64 {
        1u64 << self.dim()
    }

    /// Renders as a `0`/`1`/`-` string, most significant bit first.
    pub fn render(&self) -> String {
        (0..self.nv)
            .rev()
            .map(|b| {
                if self.fixed >> b & 1 == 1 {
                    if self.values >> b & 1 == 1 {
                        '1'
                    } else {
                        '0'
                    }
                } else {
                    '-'
                }
            })
            .collect()
    }
}

/// A complete minimum-length (or longer) binary encoding of `n` symbols:
/// the paper's *code matrix*, row `i` being the code of symbol `i`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Encoding {
    nv: usize,
    codes: Vec<u32>,
}

impl Encoding {
    /// Creates an encoding, validating distinctness and range.
    ///
    /// # Errors
    ///
    /// [`EncodingError::CodeOutOfRange`] when a code needs more than `nv`
    /// bits; [`EncodingError::DuplicateCode`] when two symbols share a code.
    pub fn new(nv: usize, codes: Vec<u32>) -> Result<Self, EncodingError> {
        let limit = 1u64 << nv;
        for &c in &codes {
            if u64::from(c) >= limit {
                return Err(EncodingError::CodeOutOfRange { code: c, nv });
            }
        }
        let mut seen = vec![false; limit as usize];
        for &c in &codes {
            if seen[c as usize] {
                return Err(EncodingError::DuplicateCode { code: c });
            }
            seen[c as usize] = true;
        }
        Ok(Encoding { nv, codes })
    }

    /// The natural (counting-order) encoding of `n` symbols in
    /// `ceil(log2 n)` bits.
    pub fn natural(n: usize) -> Self {
        let nv = crate::min_code_length(n);
        Encoding {
            nv,
            codes: (0..n as u32).collect(),
        }
    }

    /// Code length in bits.
    pub fn nv(&self) -> usize {
        self.nv
    }

    /// Number of encoded symbols.
    pub fn num_symbols(&self) -> usize {
        self.codes.len()
    }

    /// The code of symbol `i`.
    pub fn code(&self, i: usize) -> u32 {
        self.codes[i]
    }

    /// All codes in symbol order.
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// Consumes the encoding, returning the codes in symbol order without
    /// copying — for hot loops that continue on raw code buffers.
    pub fn into_codes(self) -> Vec<u32> {
        self.codes
    }

    /// Column `j` of the code matrix as a boolean vector over symbols.
    pub fn column(&self, j: usize) -> Vec<bool> {
        self.codes.iter().map(|&c| c >> j & 1 == 1).collect()
    }

    /// Builds an encoding from code-matrix columns (column `j` supplies bit
    /// `j` of every code).
    ///
    /// # Errors
    ///
    /// Propagates [`Encoding::new`] validation.
    pub fn from_columns(columns: &[Vec<bool>]) -> Result<Self, EncodingError> {
        let nv = columns.len();
        let n = columns.first().map_or(0, Vec::len);
        let mut codes = vec![0u32; n];
        for (j, col) in columns.iter().enumerate() {
            assert_eq!(col.len(), n, "ragged column matrix");
            for (i, &b) in col.iter().enumerate() {
                if b {
                    codes[i] |= 1 << j;
                }
            }
        }
        Encoding::new(nv, codes)
    }

    /// The supercube of the codes of `members`.
    ///
    /// # Panics
    ///
    /// Panics when `members` is empty.
    #[allow(clippy::expect_used)] // documented contract: members must be non-empty
    pub fn supercube(&self, members: &SymbolSet) -> CodeCube {
        let mut it = members.iter();
        let first = self.codes[it.next().expect("supercube of an empty set")];
        let mut and = first;
        let mut or = first;
        for i in it {
            and &= self.codes[i];
            or |= self.codes[i];
        }
        // Bits fixed in the supercube: positions where all codes agree —
        // `and ^ or` marks the disagreeing bit positions.
        let full = ((1u64 << self.nv) - 1) as u32;
        let fixed = full & !(and ^ or);
        CodeCube {
            fixed,
            values: and & fixed,
            nv: self.nv,
        }
    }

    /// The intruder set of a face constraint `members` under this encoding:
    /// non-members whose codes fall inside the members' supercube.
    pub fn intruders(&self, members: &SymbolSet) -> SymbolSet {
        let sc = self.supercube(members);
        let mut out = SymbolSet::empty(members.universe());
        for i in 0..self.codes.len() {
            if !members.contains(i) && sc.contains(self.codes[i]) {
                out.insert(i);
            }
        }
        out
    }

    /// Whether the face constraint `members` is satisfied (its supercube
    /// contains no other symbol's code).
    pub fn satisfies(&self, members: &SymbolSet) -> bool {
        self.intruders(members).is_empty()
    }

    /// The minterm cube of symbol `i`'s code over `dom = Domain::binary(nv)`
    /// (variable `b` of the domain is code bit `b`).
    pub fn code_cube(&self, dom: &Domain, i: usize) -> Cube {
        let mut c = Cube::full(dom);
        for b in 0..self.nv {
            c.restrict_binary(dom, b, self.codes[i] >> b & 1 == 1);
        }
        c
    }

    /// The Boolean function of a face constraint under this encoding, as
    /// `(on, dc)` covers over `Domain::binary(nv)`: on-set = member codes,
    /// dc-set = unused code words; the off-set (non-member codes) is
    /// implicit. This is exactly the function whose minimized cube count the
    /// paper's evaluation totals.
    pub fn constraint_function(&self, dom: &Domain, members: &SymbolSet) -> (Cover, Cover) {
        let mut on = Cover::empty(dom);
        for i in members.iter() {
            on.push(self.code_cube(dom, i));
        }
        let mut used = vec![false; 1usize << self.nv];
        for &c in &self.codes {
            used[c as usize] = true;
        }
        let mut dc = Cover::empty(dom);
        for (w, &u) in used.iter().enumerate() {
            if !u {
                let mut c = Cube::full(dom);
                for b in 0..self.nv {
                    c.restrict_binary(dom, b, w >> b & 1 == 1);
                }
                dc.push(c);
            }
        }
        (on, dc)
    }
}

impl fmt::Display for Encoding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, &c) in self.codes.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "s{i}: {c:0width$b}", width = self.nv)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn natural_encoding_is_valid() {
        let e = Encoding::natural(10);
        assert_eq!(e.nv(), 4);
        assert_eq!(e.code(9), 9);
    }

    #[test]
    fn duplicate_and_range_errors() {
        assert!(matches!(
            Encoding::new(2, vec![0, 1, 1]),
            Err(EncodingError::DuplicateCode { code: 1 })
        ));
        assert!(matches!(
            Encoding::new(2, vec![0, 4]),
            Err(EncodingError::CodeOutOfRange { code: 4, nv: 2 })
        ));
    }

    #[test]
    fn supercube_of_agreeing_codes() {
        // codes: 0000, 0010 -> supercube 00-0
        let e = Encoding::new(4, vec![0b0000, 0b0010]).unwrap();
        let sc = e.supercube(&SymbolSet::from_members(2, [0, 1]));
        assert_eq!(sc.render(), "00-0");
        assert_eq!(sc.dim(), 1);
        assert!(sc.contains(0b0000));
        assert!(sc.contains(0b0010));
        assert!(!sc.contains(0b0100));
    }

    #[test]
    fn intruders_fall_inside_supercube() {
        // symbols 0,1 at 000 and 011; symbol 2 at 001 intrudes (supercube 0--)
        let e = Encoding::new(3, vec![0b000, 0b011, 0b001]).unwrap();
        let members = SymbolSet::from_members(3, [0, 1]);
        let i = e.intruders(&members);
        assert_eq!(i.to_vec(), vec![2]);
        assert!(!e.satisfies(&members));
        // moving symbol 2 to 1xx clears the intrusion
        let e2 = Encoding::new(3, vec![0b000, 0b011, 0b100]).unwrap();
        assert!(e2.satisfies(&members));
    }

    #[test]
    fn columns_roundtrip() {
        let e = Encoding::new(3, vec![0b101, 0b010, 0b111]).unwrap();
        let cols: Vec<Vec<bool>> = (0..3).map(|j| e.column(j)).collect();
        let back = Encoding::from_columns(&cols).unwrap();
        assert_eq!(e, back);
    }

    #[test]
    fn constraint_function_shape() {
        let e = Encoding::new(2, vec![0b00, 0b01, 0b10]).unwrap();
        let dom = Domain::binary(2);
        let (on, dc) = e.constraint_function(&dom, &SymbolSet::from_members(3, [0, 1]));
        assert_eq!(on.len(), 2);
        assert_eq!(dc.len(), 1); // code 11 unused
    }

    #[test]
    fn code_cube_is_a_minterm() {
        let e = Encoding::new(3, vec![0b110]).unwrap();
        let dom = Domain::binary(3);
        let c = e.code_cube(&dom, 0);
        assert_eq!(c.part_count(), 3);
        // bit 0 = 0, bit 1 = 1, bit 2 = 1
        assert_eq!(c.render(&dom), "0 1 1");
    }
}
