//! Sets of symbols (states) as compact bit-sets.

use std::fmt;

/// A subset of `n` symbols, stored as a bit-set.
///
/// Symbol indices are `0..n`. All binary set operations require equal
/// universe sizes (checked by assertions).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SymbolSet {
    n: usize,
    bits: Vec<u64>,
}

impl SymbolSet {
    /// The empty subset of a universe of `n` symbols.
    pub fn empty(n: usize) -> Self {
        SymbolSet {
            n,
            bits: vec![0; n.div_ceil(64).max(1)],
        }
    }

    /// The full universe of `n` symbols.
    pub fn full(n: usize) -> Self {
        let mut s = Self::empty(n);
        for i in 0..n {
            s.insert(i);
        }
        s
    }

    /// A set from explicit members.
    ///
    /// # Panics
    ///
    /// Panics if a member is `>= n`.
    pub fn from_members<I: IntoIterator<Item = usize>>(n: usize, members: I) -> Self {
        let mut s = Self::empty(n);
        for m in members {
            s.insert(m);
        }
        s
    }

    /// Universe size.
    pub fn universe(&self) -> usize {
        self.n
    }

    /// Adds symbol `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n`.
    pub fn insert(&mut self, i: usize) {
        assert!(i < self.n, "symbol {i} outside universe of {}", self.n);
        self.bits[i / 64] |= 1u64 << (i % 64);
    }

    /// Removes symbol `i`.
    pub fn remove(&mut self, i: usize) {
        if i < self.n {
            self.bits[i / 64] &= !(1u64 << (i % 64));
        }
    }

    /// Whether symbol `i` is a member.
    pub fn contains(&self, i: usize) -> bool {
        i < self.n && self.bits[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// Iterates over members in increasing order using per-word
    /// count-trailing-zeros extraction (skips empty words entirely).
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.bits.iter().enumerate().flat_map(|(wi, &w)| {
            std::iter::successors(
                (w != 0).then_some(w),
                |&rest| {
                    let next = rest & (rest - 1);
                    (next != 0).then_some(next)
                },
            )
            .map(move |rest| wi * 64 + rest.trailing_zeros() as usize)
        })
    }

    /// The packed membership words, little-endian in symbol index. Hot
    /// paths (constraint stamping, refine membership) run word-parallel
    /// sweeps over this slice instead of per-symbol loops.
    pub fn words(&self) -> &[u64] {
        &self.bits
    }

    /// Members as a vector.
    pub fn to_vec(&self) -> Vec<usize> {
        self.iter().collect()
    }

    fn zip_check(&self, other: &SymbolSet) {
        assert_eq!(self.n, other.n, "symbol-set universe mismatch");
    }

    /// Set union.
    pub fn union(&self, other: &SymbolSet) -> SymbolSet {
        self.zip_check(other);
        SymbolSet {
            n: self.n,
            bits: self
                .bits
                .iter()
                .zip(&other.bits)
                .map(|(a, b)| a | b)
                .collect(),
        }
    }

    /// Set intersection.
    pub fn intersection(&self, other: &SymbolSet) -> SymbolSet {
        self.zip_check(other);
        SymbolSet {
            n: self.n,
            bits: self
                .bits
                .iter()
                .zip(&other.bits)
                .map(|(a, b)| a & b)
                .collect(),
        }
    }

    /// Set difference `self ∖ other`.
    pub fn difference(&self, other: &SymbolSet) -> SymbolSet {
        self.zip_check(other);
        SymbolSet {
            n: self.n,
            bits: self
                .bits
                .iter()
                .zip(&other.bits)
                .map(|(a, b)| a & !b)
                .collect(),
        }
    }

    /// Complement within the universe.
    pub fn complement(&self) -> SymbolSet {
        Self::full(self.n).difference(self)
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset(&self, other: &SymbolSet) -> bool {
        self.zip_check(other);
        self.bits
            .iter()
            .zip(&other.bits)
            .all(|(a, b)| a & !b == 0)
    }

    /// Whether the sets share no member.
    pub fn is_disjoint(&self, other: &SymbolSet) -> bool {
        self.zip_check(other);
        self.bits.iter().zip(&other.bits).all(|(a, b)| a & b == 0)
    }
}

impl fmt::Display for SymbolSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (k, i) in self.iter().enumerate() {
            if k > 0 {
                write!(f, ",")?;
            }
            write!(f, "s{i}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = SymbolSet::empty(100);
        s.insert(0);
        s.insert(64);
        s.insert(99);
        assert_eq!(s.len(), 3);
        assert!(s.contains(64));
        s.remove(64);
        assert!(!s.contains(64));
        assert_eq!(s.to_vec(), vec![0, 99]);
    }

    #[test]
    fn set_algebra() {
        let a = SymbolSet::from_members(8, [0, 1, 2]);
        let b = SymbolSet::from_members(8, [2, 3]);
        assert_eq!(a.union(&b).to_vec(), vec![0, 1, 2, 3]);
        assert_eq!(a.intersection(&b).to_vec(), vec![2]);
        assert_eq!(a.difference(&b).to_vec(), vec![0, 1]);
        assert!(!a.is_disjoint(&b));
        assert!(a.intersection(&b).is_subset(&a));
        assert_eq!(a.complement().to_vec(), vec![3, 4, 5, 6, 7]);
    }

    #[test]
    fn disjointness() {
        let a = SymbolSet::from_members(6, [0, 1]);
        let b = SymbolSet::from_members(6, [4, 5]);
        assert!(a.is_disjoint(&b));
    }

    #[test]
    fn display_lists_members() {
        let s = SymbolSet::from_members(5, [1, 3]);
        assert_eq!(s.to_string(), "{s1,s3}");
    }

    #[test]
    #[should_panic]
    fn out_of_range_insert_panics() {
        let mut s = SymbolSet::empty(4);
        s.insert(4);
    }

    #[test]
    #[should_panic]
    fn universe_mismatch_panics() {
        let a = SymbolSet::empty(4);
        let b = SymbolSet::empty(5);
        let _ = a.union(&b);
    }
}
