//! A dichotomy-merging encoder (in the style of Yang & Ciesielski's input
//! encoding work).
//!
//! The classic alternative to column search: enumerate the seed dichotomies
//! of all constraints, then build each code column by *merging* as many
//! compatible, still-uncovered seeds as possible into one two-block
//! partition, completing the column under the valid-partial-encoding rule.
//! Maximizing covered seed dichotomies was historically claimed to suit the
//! partial problem; the paper argues (and Table I shows) that it still
//! ignores the implementation cost of what remains uncovered.

use picola_constraints::{min_code_length, Dichotomy, Encoding, GroupConstraint};
use picola_core::{Encoder, ValidityTracker};

/// The dichotomy-merging encoder.
#[derive(Debug, Clone, Default)]
pub struct DichotomyEncoder;

/// Working state of one column under construction.
struct ColumnBuild {
    /// Side per symbol; `None` = still free.
    side: Vec<Option<bool>>,
}

impl ColumnBuild {
    fn new(n: usize) -> Self {
        ColumnBuild {
            side: vec![None; n],
        }
    }

    /// Tries to embed a seed dichotomy with the members on side `v`.
    /// Returns the assignments applied, or `None` if incompatible or
    /// validity would break.
    fn try_embed(
        &mut self,
        d: &Dichotomy,
        v: bool,
        validity: &ValidityTracker,
    ) -> Option<Vec<usize>> {
        let limit = validity.next_class_limit();
        // Check compatibility.
        for m in d.members.iter() {
            if self.side[m] == Some(!v) {
                return None;
            }
        }
        if self.side[d.outsider] == Some(v) {
            return None;
        }
        // Tentatively collect the new assignments and verify the per-class
        // capacity for each.
        let mut newly = Vec::new();
        let mut would: Vec<(usize, bool)> = Vec::new();
        for m in d.members.iter() {
            if self.side[m].is_none() {
                would.push((m, v));
            }
        }
        if self.side[d.outsider].is_none() {
            would.push((d.outsider, !v));
        }
        for &(s, value) in &would {
            let class = validity.class_of(s);
            let count = self
                .side
                .iter()
                .enumerate()
                .filter(|&(i, &sd)| validity.class_of(i) == class && sd == Some(value))
                .count()
                + would
                    .iter()
                    .filter(|&&(i, val)| {
                        i != s && val == value && validity.class_of(i) == class
                    })
                    .count();
            if count + 1 > limit {
                return None;
            }
        }
        for (s, value) in would {
            self.side[s] = Some(value);
            newly.push(s);
        }
        Some(newly)
    }

    /// Completes the column: free symbols take whichever side of their
    /// class has room (preferring balance).
    fn complete(mut self, validity: &ValidityTracker) -> Vec<bool> {
        let limit = validity.next_class_limit();
        let n = self.side.len();
        for s in 0..n {
            if self.side[s].is_some() {
                continue;
            }
            let class = validity.class_of(s);
            let count_side = |side: bool, this: &ColumnBuild| {
                this.side
                    .iter()
                    .enumerate()
                    .filter(|&(i, &sd)| validity.class_of(i) == class && sd == Some(side))
                    .count()
            };
            let zeros = count_side(false, &self);
            let ones = count_side(true, &self);
            let value = ones <= zeros;
            // capacity check; fall back to the other side
            let value = if count_side(value, &self) + 1 > limit {
                !value
            } else {
                value
            };
            self.side[s] = Some(value);
        }
        // The loop above assigns every remaining `None` a side.
        self.side
            .into_iter()
            .map(|s| s.unwrap_or_else(|| unreachable!("completed")))
            .collect()
    }
}

impl Encoder for DichotomyEncoder {
    fn name(&self) -> &str {
        "dicho"
    }

    fn encode(&self, n: usize, constraints: &[GroupConstraint]) -> Encoding {
        let nv = min_code_length(n);
        let mut validity = ValidityTracker::new(n, nv);
        let mut columns: Vec<Vec<bool>> = Vec::with_capacity(nv);

        // Seeds weighted by their constraint's weight, stable order.
        let mut seeds: Vec<(usize, Dichotomy)> = Vec::new();
        for c in constraints.iter().filter(|c| !c.is_trivial()) {
            for d in c.dichotomies() {
                seeds.push((c.weight(), d));
            }
        }
        seeds.sort_by_key(|&(w, _)| std::cmp::Reverse(w));
        let mut covered = vec![false; seeds.len()];

        for _ in 0..nv {
            let mut build = ColumnBuild::new(n);
            for (i, (_, d)) in seeds.iter().enumerate() {
                if covered[i] {
                    continue;
                }
                // Try both polarities; prefer putting members on the 0 side.
                if build.try_embed(d, false, &validity).is_some()
                    || build.try_embed(d, true, &validity).is_some()
                {
                    covered[i] = true;
                }
            }
            let column = build.complete(&validity);
            debug_assert!(validity.column_is_valid(&column));
            // Account for seeds covered incidentally by the completion.
            for (i, (_, d)) in seeds.iter().enumerate() {
                if !covered[i] && d.satisfied_by_column(&column) {
                    covered[i] = true;
                }
            }
            validity.commit(&column);
            columns.push(column);
        }

        // Validity tracking guarantees distinct codes; keep a non-panicking
        // fallback so the encoder can never take the process down.
        Encoding::from_columns(&columns).unwrap_or_else(|_| Encoding::natural(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use picola_constraints::SymbolSet;

    fn groups(n: usize, gs: &[&[usize]]) -> Vec<GroupConstraint> {
        gs.iter()
            .map(|g| GroupConstraint::new(SymbolSet::from_members(n, g.iter().copied())))
            .collect()
    }

    #[test]
    fn produces_valid_min_length_codes() {
        for n in [4usize, 7, 9, 16, 20] {
            let cs = groups(n, &[&[0, 1], &[2, 3]]);
            let e = DichotomyEncoder.encode(n, &cs);
            assert_eq!(e.num_symbols(), n);
            assert_eq!(e.nv(), min_code_length(n));
        }
    }

    #[test]
    fn covers_easy_dichotomies() {
        let cs = groups(8, &[&[0, 1], &[4, 5, 6, 7]]);
        let e = DichotomyEncoder.encode(8, &cs);
        assert!(e.satisfies(cs[0].members()), "{e}");
        assert!(e.satisfies(cs[1].members()), "{e}");
    }

    #[test]
    fn is_deterministic() {
        let cs = groups(12, &[&[0, 1, 2], &[5, 6], &[8, 9, 10]]);
        assert_eq!(
            DichotomyEncoder.encode(12, &cs),
            DichotomyEncoder.encode(12, &cs)
        );
    }

    #[test]
    fn works_without_constraints() {
        let e = DichotomyEncoder.encode(6, &[]);
        assert_eq!(e.num_symbols(), 6);
    }
}
