//! # picola-baselines — conventional minimum-length encoders
//!
//! The comparison points of the paper's evaluation, reconstructed from their
//! published algorithms (see DESIGN.md §4 for the substitution rationale):
//!
//! - [`NovaEncoder`] — NOVA-style hybrid (`i_hybrid` / `io_hybrid`): greedy
//!   face placement plus iterative improvement of the *satisfied-constraint*
//!   weight. Ignores the implementation cost of violated constraints.
//! - [`EncLikeEncoder`] — ENC-style: targets the partial problem with logic
//!   minimization inside the evaluation loop; good costs, punishing runtime,
//!   explicit evaluation budget.
//! - [`AnnealingEncoder`] — simulated annealing over the conventional
//!   objective (NOVA's non-hybrid style).
//! - [`NaturalEncoder`] / [`RandomEncoder`] — floors.
//!
//! All encoders implement [`picola_core::Encoder`], so the state-assignment
//! flow and the table benches can swap them freely.

#![warn(missing_docs)]

pub mod anneal;
pub mod dicho;
pub mod enc;
pub mod nova;
pub mod objective;
pub mod portfolio;
pub mod simple;

pub use anneal::AnnealingEncoder;
pub use dicho::DichotomyEncoder;
pub use enc::{EncLikeEncoder, EncRunInfo};
pub use nova::{NovaEncoder, NovaMode};
pub use objective::{
    adjacency_bonus, adjacency_bonus_codes, codes_satisfy, minimized_cubes,
    satisfied_dichotomies, satisfied_weight, satisfied_weight_codes,
};
pub use portfolio::{splitmix64, standard_members, standard_portfolio};
pub use simple::{NaturalEncoder, RandomEncoder};
