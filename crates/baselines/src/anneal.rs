//! A simulated-annealing encoder over the conventional objective.
//!
//! NOVA's non-hybrid modes anneal over code assignments; this encoder
//! reproduces that style: random swap/move proposals accepted by the
//! Metropolis rule on the *satisfied-constraint weight* objective. It is a
//! second conventional baseline for the benches — stronger than greedy
//! placement on tangled instances, still blind to the cost of violated
//! constraints.

use crate::objective::satisfied_weight;
use picola_constraints::{Encoding, GroupConstraint};
use picola_core::{Budget, Completion, Encoder};
use picola_constraints::min_code_length;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Simulated-annealing encoder.
#[derive(Debug, Clone)]
pub struct AnnealingEncoder {
    /// RNG seed (runs are reproducible).
    pub seed: u64,
    /// Proposals per temperature step.
    pub moves_per_temp: usize,
    /// Number of temperature steps.
    pub temp_steps: usize,
    /// Initial temperature (in objective units).
    pub initial_temp: f64,
    /// Multiplicative cooling factor per step.
    pub cooling: f64,
}

impl Default for AnnealingEncoder {
    fn default() -> Self {
        AnnealingEncoder {
            seed: 0xDA7E_1999,
            moves_per_temp: 200,
            temp_steps: 60,
            initial_temp: 4.0,
            cooling: 0.92,
        }
    }
}

impl Encoder for AnnealingEncoder {
    fn name(&self) -> &str {
        "anneal"
    }

    fn encode(&self, n: usize, constraints: &[GroupConstraint]) -> Encoding {
        self.encode_bounded(n, constraints, &Budget::unlimited()).0
    }

    fn encode_bounded(
        &self,
        n: usize,
        constraints: &[GroupConstraint],
        budget: &Budget,
    ) -> (Encoding, Completion) {
        let nv = min_code_length(n);
        let size = 1usize << nv;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut enc = Encoding::natural(n);
        let mut obj = satisfied_weight(&enc, constraints);
        let mut best = enc.clone();
        let mut best_obj = obj;
        let mut temp = self.initial_temp;

        'cool: for _ in 0..self.temp_steps {
            for _ in 0..self.moves_per_temp {
                if !budget.tick("anneal.move", 1) {
                    break 'cool;
                }
                let mut codes = enc.codes().to_vec();
                if size > n && rng.random_bool(0.3) {
                    // move a symbol to a free code word
                    let used: Vec<bool> = {
                        let mut u = vec![false; size];
                        for &c in &codes {
                            u[c as usize] = true;
                        }
                        u
                    };
                    let free: Vec<u32> = (0..size as u32)
                        .filter(|&w| !used[w as usize])
                        .collect();
                    let i = rng.random_range(0..n);
                    let w = free[rng.random_range(0..free.len())];
                    codes[i] = w;
                } else {
                    let i = rng.random_range(0..n);
                    let mut j = rng.random_range(0..n);
                    while j == i {
                        j = rng.random_range(0..n);
                    }
                    codes.swap(i, j);
                }
                // Swaps permute codes and moves target free words, so the
                // candidate is distinct by construction; skip defensively.
                let Ok(cand) = Encoding::new(nv, codes) else {
                    continue;
                };
                let cand_obj = satisfied_weight(&cand, constraints);
                let accept = cand_obj >= obj
                    || rng.random_range(0.0..1.0) < ((cand_obj - obj) / temp.max(1e-9)).exp();
                if accept {
                    enc = cand;
                    obj = cand_obj;
                    if obj > best_obj {
                        best = enc.clone();
                        best_obj = obj;
                    }
                }
            }
            temp *= self.cooling;
        }
        (best, budget.completion())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use picola_constraints::SymbolSet;

    fn groups(n: usize, gs: &[&[usize]]) -> Vec<GroupConstraint> {
        gs.iter()
            .map(|g| GroupConstraint::new(SymbolSet::from_members(n, g.iter().copied())))
            .collect()
    }

    #[test]
    fn annealing_finds_easy_embeddings() {
        let cs = groups(8, &[&[0, 4], &[1, 5]]);
        let enc = AnnealingEncoder::default().encode(8, &cs);
        let sat = cs.iter().filter(|c| enc.satisfies(c.members())).count();
        assert_eq!(sat, 2, "{enc}");
    }

    #[test]
    fn annealing_is_reproducible() {
        let cs = groups(10, &[&[0, 1, 2], &[5, 6]]);
        let a = AnnealingEncoder::default().encode(10, &cs);
        let b = AnnealingEncoder::default().encode(10, &cs);
        assert_eq!(a, b);
    }

    #[test]
    fn exhausted_budget_returns_valid_encoding() {
        use picola_core::{Budget, Completion};
        let cs = groups(8, &[&[0, 4], &[1, 5]]);
        let budget = Budget::with_work_limit(3);
        let (enc, completion) = AnnealingEncoder::default().encode_bounded(8, &cs, &budget);
        assert_eq!(enc.num_symbols(), 8);
        assert!(matches!(completion, Completion::Degraded { .. }));
    }

    #[test]
    fn injected_fault_degrades_without_panic() {
        use picola_core::{chaos, Budget, Completion};
        let _guard = chaos::arm("anneal.move", 5);
        let cs = groups(8, &[&[0, 4]]);
        let (enc, completion) =
            AnnealingEncoder::default().encode_bounded(8, &cs, &Budget::unlimited());
        assert_eq!(enc.num_symbols(), 8);
        assert!(matches!(completion, Completion::Degraded { .. }));
    }

    #[test]
    fn annealing_never_beats_validity() {
        let cs = groups(9, &[&[0, 8]]);
        let enc = AnnealingEncoder::default().encode(9, &cs);
        assert_eq!(enc.num_symbols(), 9);
        assert_eq!(enc.nv(), 4);
    }
}
