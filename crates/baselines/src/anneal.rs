//! A simulated-annealing encoder over the conventional objective.
//!
//! NOVA's non-hybrid modes anneal over code assignments; this encoder
//! reproduces that style: random swap/move proposals accepted by the
//! Metropolis rule on the *satisfied-constraint weight* objective. It is a
//! second conventional baseline for the benches — stronger than greedy
//! placement on tangled instances, still blind to the cost of violated
//! constraints.
//!
//! The anneal loop itself never minimizes (the objective is pure bit
//! arithmetic over the codes); only the final encoding is priced through
//! the cached evaluation pipeline
//! ([`crate::objective::minimized_cubes`]), which returns bit-identical
//! costs with the memo on or off (see the cache-parity test below).

use crate::objective::satisfied_weight_codes;
use picola_constraints::{Encoding, GroupConstraint};
use picola_core::{Budget, Completion, Encoder};
use picola_logic::obs;
use picola_constraints::min_code_length;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Simulated-annealing encoder.
#[derive(Debug, Clone)]
pub struct AnnealingEncoder {
    /// RNG seed (runs are reproducible).
    pub seed: u64,
    /// Proposals per temperature step.
    pub moves_per_temp: usize,
    /// Number of temperature steps.
    pub temp_steps: usize,
    /// Initial temperature (in objective units).
    pub initial_temp: f64,
    /// Multiplicative cooling factor per step.
    pub cooling: f64,
}

impl Default for AnnealingEncoder {
    fn default() -> Self {
        AnnealingEncoder {
            seed: 0xDA7E_1999,
            moves_per_temp: 200,
            temp_steps: 60,
            initial_temp: 4.0,
            cooling: 0.92,
        }
    }
}

impl AnnealingEncoder {
    /// Default schedule with an explicit RNG seed.
    ///
    /// Portfolio runs use this to hand every worker its own deterministic
    /// stream: the seed travels with the encoder value, so the result is
    /// bit-identical whether the member runs sequentially or on a thread.
    #[must_use]
    pub fn with_seed(seed: u64) -> Self {
        AnnealingEncoder {
            seed,
            ..AnnealingEncoder::default()
        }
    }
}

impl Encoder for AnnealingEncoder {
    fn name(&self) -> &str {
        "anneal"
    }

    fn encode(&self, n: usize, constraints: &[GroupConstraint]) -> Encoding {
        self.encode_bounded(n, constraints, &Budget::unlimited()).0
    }

    fn encode_bounded(
        &self,
        n: usize,
        constraints: &[GroupConstraint],
        budget: &Budget,
    ) -> (Encoding, Completion) {
        let nv = min_code_length(n);
        let size = 1usize << nv;
        let mut rng = StdRng::seed_from_u64(self.seed);
        // The whole anneal runs on raw code buffers: `codes` is the current
        // state, `cand` the reusable proposal buffer, `best_codes` the
        // incumbent. Swaps permute codes and moves target free words, so
        // distinctness holds by construction and no per-proposal
        // `Encoding::new` validation (an `O(2^nv)` scan plus allocation) is
        // needed — an `Encoding` is built once, at the end.
        let mut codes: Vec<u32> = (0..n as u32).collect();
        let mut obj = satisfied_weight_codes(&codes, nv, constraints);
        let mut best_codes = codes.clone();
        let mut best_obj = obj;
        let mut cand: Vec<u32> = Vec::with_capacity(n);
        let mut temp = self.initial_temp;
        // Occupied code words as a u64-word bitset, maintained
        // incrementally: swaps leave it unchanged, accepted moves flip two
        // bits. The natural start occupies 0..n.
        let mut accepted = 0u64;
        let mut rejected = 0u64;
        let mut used: Vec<u64> = vec![0; size.div_ceil(64)];
        for c in 0..n {
            used[c / 64] |= 1u64 << (c % 64);
        }

        'cool: for _ in 0..self.temp_steps {
            for _ in 0..self.moves_per_temp {
                if !budget.tick("anneal.move", 1) {
                    break 'cool;
                }
                cand.clear();
                cand.extend_from_slice(&codes);
                // (old, new) word of a move proposal, to update `used` on
                // acceptance; swaps don't change occupancy.
                let mut moved: Option<(u32, u32)> = None;
                if size > n && rng.random_bool(0.3) {
                    // move a symbol to a free code word; exactly
                    // `size - n` words are free at all times
                    let i = rng.random_range(0..n);
                    let w = nth_free_word(&used, size, rng.random_range(0..size - n));
                    moved = Some((cand[i], w));
                    cand[i] = w;
                } else {
                    let i = rng.random_range(0..n);
                    let mut j = rng.random_range(0..n);
                    while j == i {
                        j = rng.random_range(0..n);
                    }
                    cand.swap(i, j);
                }
                let cand_obj = satisfied_weight_codes(&cand, nv, constraints);
                let accept = cand_obj >= obj
                    || rng.random_range(0.0..1.0) < ((cand_obj - obj) / temp.max(1e-9)).exp();
                if accept {
                    accepted += 1;
                    if let Some((old, new)) = moved {
                        used[old as usize / 64] &= !(1u64 << (old % 64));
                        used[new as usize / 64] |= 1u64 << (new % 64);
                    }
                    std::mem::swap(&mut codes, &mut cand);
                    obj = cand_obj;
                    if obj > best_obj {
                        best_codes.clear();
                        best_codes.extend_from_slice(&codes);
                        best_obj = obj;
                    }
                } else {
                    rejected += 1;
                }
            }
            temp *= self.cooling;
        }
        obs::count(obs::Counter::AnnealAccepts, accepted);
        obs::count(obs::Counter::AnnealRejects, rejected);
        // Proposals keep codes distinct by construction; fall back to the
        // natural encoding rather than panic if that invariant ever breaks.
        let best = Encoding::new(nv, best_codes).unwrap_or_else(|_| Encoding::natural(n));
        (best, budget.completion())
    }
}

/// Return the `nth` (0-based) clear bit of `used` below `size`, in
/// ascending order — the same word the old explicit free list produced at
/// index `nth`, so the proposal distribution is unchanged.
///
/// Callers guarantee `nth` is less than the number of free words; the
/// fallback return is unreachable then and merely keeps the function total.
fn nth_free_word(used: &[u64], size: usize, mut nth: usize) -> u32 {
    for (wi, &w) in used.iter().enumerate() {
        let base = wi * 64;
        let width = (size - base).min(64);
        let mask = if width == 64 { !0u64 } else { (1u64 << width) - 1 };
        let mut free = !w & mask;
        let count = free.count_ones() as usize;
        if nth < count {
            for _ in 0..nth {
                free &= free - 1;
            }
            return (base as u32) + free.trailing_zeros();
        }
        nth -= count;
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use picola_constraints::SymbolSet;

    fn groups(n: usize, gs: &[&[usize]]) -> Vec<GroupConstraint> {
        gs.iter()
            .map(|g| GroupConstraint::new(SymbolSet::from_members(n, g.iter().copied())))
            .collect()
    }

    #[test]
    fn anneal_output_prices_identically_with_and_without_cache() {
        use crate::objective::minimized_cubes;
        use picola_core::{EvalContext, EvalOptions};
        let cs = groups(8, &[&[0, 4], &[1, 5], &[2, 3, 6]]);
        let enc = AnnealingEncoder::default().encode(8, &cs);
        let cached = EvalOptions::default();
        let uncached = EvalOptions {
            cache: false,
            ..EvalOptions::default()
        };
        let mut ctx = EvalContext::new();
        let a = minimized_cubes(&enc, &cs, &cached, &mut ctx);
        let b = minimized_cubes(&enc, &cs, &cached, &mut ctx); // repeat: memo hit
        let c = minimized_cubes(&enc, &cs, &uncached, &mut ctx);
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn annealing_finds_easy_embeddings() {
        let cs = groups(8, &[&[0, 4], &[1, 5]]);
        let enc = AnnealingEncoder::default().encode(8, &cs);
        let sat = cs.iter().filter(|c| enc.satisfies(c.members())).count();
        assert_eq!(sat, 2, "{enc}");
    }

    #[test]
    fn annealing_is_reproducible() {
        let cs = groups(10, &[&[0, 1, 2], &[5, 6]]);
        let a = AnnealingEncoder::default().encode(10, &cs);
        let b = AnnealingEncoder::default().encode(10, &cs);
        assert_eq!(a, b);
    }

    #[test]
    fn exhausted_budget_returns_valid_encoding() {
        use picola_core::{Budget, Completion};
        let cs = groups(8, &[&[0, 4], &[1, 5]]);
        let budget = Budget::with_work_limit(3);
        let (enc, completion) = AnnealingEncoder::default().encode_bounded(8, &cs, &budget);
        assert_eq!(enc.num_symbols(), 8);
        assert!(matches!(completion, Completion::Degraded { .. }));
    }

    #[test]
    fn injected_fault_degrades_without_panic() {
        use picola_core::{chaos, Budget, Completion};
        let _guard = chaos::arm("anneal.move", 5);
        let cs = groups(8, &[&[0, 4]]);
        let (enc, completion) =
            AnnealingEncoder::default().encode_bounded(8, &cs, &Budget::unlimited());
        assert_eq!(enc.num_symbols(), 8);
        assert!(matches!(completion, Completion::Degraded { .. }));
    }

    #[test]
    fn nth_free_word_matches_a_scan() {
        // 11 of 16 words used, scattered across the single tail word.
        let size = 16usize;
        let occupied = [0u32, 1, 2, 3, 5, 7, 8, 11, 12, 13, 15];
        let mut used = vec![0u64; 1];
        for &c in &occupied {
            used[c as usize / 64] |= 1u64 << (c % 64);
        }
        let free: Vec<u32> = (0..size as u32)
            .filter(|w| !occupied.contains(w))
            .collect();
        for (nth, &expect) in free.iter().enumerate() {
            assert_eq!(nth_free_word(&used, size, nth), expect);
        }
    }

    #[test]
    fn with_seed_changes_only_the_seed() {
        let enc = AnnealingEncoder::with_seed(42);
        let def = AnnealingEncoder::default();
        assert_eq!(enc.seed, 42);
        assert_eq!(enc.moves_per_temp, def.moves_per_temp);
        assert_eq!(enc.temp_steps, def.temp_steps);
    }

    #[test]
    fn annealing_never_beats_validity() {
        let cs = groups(9, &[&[0, 8]]);
        let enc = AnnealingEncoder::default().encode(9, &cs);
        assert_eq!(enc.num_symbols(), 9);
        assert_eq!(enc.nv(), 4);
    }
}
