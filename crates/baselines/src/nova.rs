//! A NOVA-style baseline encoder (Villa & Sangiovanni-Vincentelli, 1990).
//!
//! Reconstruction of the *hybrid* strategies the paper compares against:
//! a greedy constructive phase embeds the heaviest face constraints into
//! free subcubes of `B^nv`, then an iterative-improvement phase swaps codes
//! to maximize the weight of **satisfied** constraints. Violated constraints
//! contribute nothing to the objective — the conventional behaviour whose
//! suboptimality motivates PICOLA.
//!
//! `i_hybrid` uses input (face) constraints only; `io_hybrid` adds a
//! code-adjacency bonus derived from the machine's next-state structure.
//!
//! Unlike the ENC-style baseline, NOVA never minimizes inside its loop —
//! the objective is pure bit arithmetic over the codes. Its *output* is
//! priced through the cached evaluation pipeline
//! ([`crate::objective::minimized_cubes`]) like every other encoder's, and
//! that price is bit-identical whether the minimization memo is consulted
//! or not (see the cache-parity test below).

use crate::objective::{adjacency_bonus_codes, satisfied_weight_codes};
use picola_constraints::{Encoding, GroupConstraint};
use picola_core::{Budget, Completion, Encoder};
use picola_constraints::min_code_length;

/// Which NOVA flavour to emulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NovaMode {
    /// Input constraints only (`NOVA -e ih`).
    #[default]
    IHybrid,
    /// Input constraints plus output (next-state) adjacency (`NOVA -e ioh`).
    IoHybrid,
}

/// The NOVA-style encoder.
#[derive(Debug, Clone, Default)]
pub struct NovaEncoder {
    /// Flavour.
    pub mode: NovaMode,
    /// Next-state adjacency weights `(state_a, state_b, weight)` used by
    /// [`NovaMode::IoHybrid`]; ignored by `IHybrid`.
    pub adjacency: Vec<(usize, usize, f64)>,
    /// Maximum improvement passes (each pass tries all code swaps once).
    pub max_passes: usize,
}

impl NovaEncoder {
    /// An `i_hybrid` encoder with default effort.
    pub fn i_hybrid() -> Self {
        NovaEncoder {
            mode: NovaMode::IHybrid,
            adjacency: Vec::new(),
            max_passes: 8,
        }
    }

    /// An `io_hybrid` encoder with the given adjacency weights.
    pub fn io_hybrid(adjacency: Vec<(usize, usize, f64)>) -> Self {
        NovaEncoder {
            mode: NovaMode::IoHybrid,
            adjacency,
            max_passes: 8,
        }
    }

    /// The objective over a raw codes slice — the improvement loop's
    /// zero-allocation evaluation (no `Encoding::new` per candidate).
    fn objective_codes(&self, codes: &[u32], nv: usize, constraints: &[GroupConstraint]) -> f64 {
        let base = satisfied_weight_codes(codes, nv, constraints);
        match self.mode {
            NovaMode::IHybrid => base,
            NovaMode::IoHybrid => {
                base + 0.5 * adjacency_bonus_codes(codes, nv, &self.adjacency)
            }
        }
    }
}

/// All cubes of dimension `d` in `B^nv` as `(fixed_mask, values)` pairs.
fn cubes_of_dim(nv: usize, d: usize) -> Vec<(u32, u32)> {
    let full = ((1u64 << nv) - 1) as u32;
    let mut out = Vec::new();
    // Choose the free-bit mask (d bits free), then all value patterns for
    // the fixed bits.
    for free in 0..=full {
        if (free & full) != free || free.count_ones() as usize != d {
            continue;
        }
        let fixed = full & !free;
        let mut vals = Vec::new();
        // enumerate values over fixed bits
        let fixed_bits: Vec<u32> = (0..nv as u32).filter(|b| fixed >> b & 1 == 1).collect();
        let count = 1u32 << fixed_bits.len();
        for v in 0..count {
            let mut value = 0u32;
            for (i, &b) in fixed_bits.iter().enumerate() {
                if v >> i & 1 == 1 {
                    value |= 1 << b;
                }
            }
            vals.push(value);
        }
        for v in vals {
            out.push((fixed, v));
        }
    }
    out
}

/// Greedy constructive phase: returns codes (u32::MAX = unassigned).
///
/// Budgeted at one `nova.place` tick per constraint considered; on
/// exhaustion the remaining constraints are skipped and their symbols fall
/// through to the lowest-free-code sweep, which always completes.
fn greedy_place(n: usize, nv: usize, constraints: &[GroupConstraint], budget: &Budget) -> Vec<u32> {
    const UNASSIGNED: u32 = u32::MAX;
    let size = 1usize << nv;
    let mut code: Vec<u32> = vec![UNASSIGNED; n];
    let mut used = vec![false; size];

    // Heaviest constraints first (weight x (members - 1)), deterministic.
    let mut order: Vec<usize> = (0..constraints.len())
        .filter(|&k| !constraints[k].is_trivial())
        .collect();
    order.sort_by(|&a, &b| {
        let wa = constraints[a].weight() * (constraints[a].len() - 1);
        let wb = constraints[b].weight() * (constraints[b].len() - 1);
        wb.cmp(&wa).then(a.cmp(&b))
    });

    for k in order {
        if !budget.tick("nova.place", 1) {
            break;
        }
        let members: Vec<usize> = constraints[k].members().to_vec();
        let unplaced: Vec<usize> = members
            .iter()
            .copied()
            .filter(|&s| code[s] == UNASSIGNED)
            .collect();
        let d = constraints[k].min_dim().min(nv);
        // Find the best cube of the minimal dimension (then grow if needed)
        // that contains all placed members, no placed non-member, and has
        // room for the unplaced members.
        let mut chosen: Option<(u32, u32)> = None;
        'dims: for dim in d..=nv {
            let mut best: Option<((u32, u32), usize)> = None;
            for (fixed, values) in cubes_of_dim(nv, dim) {
                let inside = |c: u32| (c ^ values) & fixed == 0;
                let mut ok = true;
                for (s, &c) in code.iter().enumerate() {
                    if c == UNASSIGNED {
                        continue;
                    }
                    let member = constraints[k].members().contains(s);
                    if member && !inside(c) {
                        ok = false;
                        break;
                    }
                    if !member && inside(c) {
                        ok = false;
                        break;
                    }
                }
                if !ok {
                    continue;
                }
                let free_slots = (0..size as u32)
                    .filter(|&w| inside(w) && !used[w as usize])
                    .count();
                if free_slots < unplaced.len() {
                    continue;
                }
                let waste = free_slots - unplaced.len();
                if best.is_none_or(|(_, w)| waste < w) {
                    best = Some(((fixed, values), waste));
                }
            }
            if let Some((cube, _)) = best {
                chosen = Some(cube);
                break 'dims;
            }
        }
        if let Some((fixed, values)) = chosen {
            let free: Vec<u32> = (0..size as u32)
                .filter(|&w| (w ^ values) & fixed == 0 && !used[w as usize])
                .collect();
            for (s, &w) in unplaced.iter().zip(&free) {
                code[*s] = w;
                used[w as usize] = true;
            }
        }
    }

    // Any remaining symbols take the lowest free codes. `2^nv >= n`, so the
    // free iterator always has a word per unassigned symbol.
    let mut free = (0..size as u32).filter(|&w| !used[w as usize]);
    for c in code.iter_mut() {
        if *c == UNASSIGNED {
            let w = free
                .next()
                .unwrap_or_else(|| unreachable!("enough codes for all symbols"));
            *c = w;
        }
    }
    code
}

impl Encoder for NovaEncoder {
    fn name(&self) -> &str {
        match self.mode {
            NovaMode::IHybrid => "nova-ih",
            NovaMode::IoHybrid => "nova-ioh",
        }
    }

    fn encode(&self, n: usize, constraints: &[GroupConstraint]) -> Encoding {
        self.encode_bounded(n, constraints, &Budget::unlimited()).0
    }

    fn encode_bounded(
        &self,
        n: usize,
        constraints: &[GroupConstraint],
        budget: &Budget,
    ) -> (Encoding, Completion) {
        let nv = min_code_length(n);
        let placed = greedy_place(n, nv, constraints, budget);
        // Greedy placement yields distinct codes; fall back to the natural
        // codes if that invariant ever breaks rather than panicking. The
        // improvement loop then runs entirely on raw code buffers — a
        // reusable candidate vector and an incrementally maintained
        // occupancy bitset — so no per-candidate allocation or `O(2^nv)`
        // `Encoding::new` validation happens; the `Encoding` is built once
        // at the end.
        let mut codes = match Encoding::new(nv, placed) {
            Ok(e) => e.into_codes(),
            Err(_) => (0..n as u32).collect(),
        };
        let size = 1usize << nv;
        let mut used: Vec<u64> = vec![0; size.div_ceil(64)];
        for &c in &codes {
            used[c as usize / 64] |= 1u64 << (c % 64);
        }
        let mut cand: Vec<u32> = Vec::with_capacity(n);

        // Iterative improvement: symbol-symbol code swaps and moves onto
        // free code words, steepest ascent per pass. One `nova.improve`
        // tick per candidate; exhaustion keeps the current (valid) best.
        let mut best_obj = self.objective_codes(&codes, nv, constraints);
        'improve: for _ in 0..self.max_passes.max(1) {
            let mut improved = false;
            // swaps
            for i in 0..n {
                for j in (i + 1)..n {
                    if !budget.tick("nova.improve", 1) {
                        break 'improve;
                    }
                    cand.clear();
                    cand.extend_from_slice(&codes);
                    cand.swap(i, j);
                    let obj = self.objective_codes(&cand, nv, constraints);
                    if obj > best_obj + 1e-9 {
                        std::mem::swap(&mut codes, &mut cand);
                        best_obj = obj;
                        improved = true;
                    }
                }
            }
            // moves to free codes (recheck freeness against the current
            // codes — earlier accepted moves change them)
            for i in 0..n {
                for w in 0..size {
                    if used[w / 64] >> (w % 64) & 1 == 1 {
                        continue;
                    }
                    if !budget.tick("nova.improve", 1) {
                        break 'improve;
                    }
                    cand.clear();
                    cand.extend_from_slice(&codes);
                    let old = cand[i];
                    cand[i] = w as u32;
                    let obj = self.objective_codes(&cand, nv, constraints);
                    if obj > best_obj + 1e-9 {
                        std::mem::swap(&mut codes, &mut cand);
                        used[old as usize / 64] &= !(1u64 << (old % 64));
                        used[w / 64] |= 1u64 << (w % 64);
                        best_obj = obj;
                    }
                }
            }
            if !improved {
                break;
            }
        }
        // Swaps and moves-to-free-words keep codes distinct; fall back to
        // the natural encoding rather than panic if that ever breaks.
        let enc = Encoding::new(nv, codes).unwrap_or_else(|_| Encoding::natural(n));
        (enc, budget.completion())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use picola_constraints::SymbolSet;

    fn groups(n: usize, gs: &[&[usize]]) -> Vec<GroupConstraint> {
        gs.iter()
            .map(|g| GroupConstraint::new(SymbolSet::from_members(n, g.iter().copied())))
            .collect()
    }

    #[test]
    fn nova_output_prices_identically_with_and_without_cache() {
        use crate::objective::minimized_cubes;
        use picola_core::{EvalContext, EvalOptions};
        let cs = groups(8, &[&[0, 1], &[2, 3, 4, 5], &[0, 6], &[1, 7]]);
        let enc = NovaEncoder::i_hybrid().encode(8, &cs);
        let cached = EvalOptions::default();
        let uncached = EvalOptions {
            cache: false,
            ..EvalOptions::default()
        };
        let mut ctx = EvalContext::new();
        let a = minimized_cubes(&enc, &cs, &cached, &mut ctx);
        let b = minimized_cubes(&enc, &cs, &cached, &mut ctx); // repeat: memo hit
        let c = minimized_cubes(&enc, &cs, &uncached, &mut ctx);
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn cubes_of_dim_enumerates_correctly() {
        // B^3: dim-1 cubes = 3 choose 1 free bit x 4 fixed patterns = 12
        assert_eq!(cubes_of_dim(3, 1).len(), 12);
        assert_eq!(cubes_of_dim(3, 0).len(), 8);
        assert_eq!(cubes_of_dim(3, 3).len(), 1);
    }

    #[test]
    fn nova_satisfies_easy_faces() {
        let cs = groups(8, &[&[0, 1], &[2, 3, 4, 5]]);
        let enc = NovaEncoder::i_hybrid().encode(8, &cs);
        assert!(enc.satisfies(cs[0].members()), "{enc}");
        assert!(enc.satisfies(cs[1].members()), "{enc}");
    }

    #[test]
    fn nova_produces_distinct_min_length_codes() {
        let cs = groups(11, &[&[0, 1, 2], &[4, 5], &[8, 9, 10]]);
        let enc = NovaEncoder::i_hybrid().encode(11, &cs);
        assert_eq!(enc.nv(), 4);
        assert_eq!(enc.num_symbols(), 11);
    }

    #[test]
    fn io_hybrid_pulls_adjacent_states_together() {
        let cs = groups(8, &[]);
        let adj = vec![(0, 7, 5.0), (1, 6, 5.0)];
        let enc = NovaEncoder::io_hybrid(adj.clone()).encode(8, &cs);
        let d07 = (enc.code(0) ^ enc.code(7)).count_ones();
        let d16 = (enc.code(1) ^ enc.code(6)).count_ones();
        assert!(d07 <= 1, "adjacency not honoured: {enc}");
        assert!(d16 <= 1, "adjacency not honoured: {enc}");
    }

    #[test]
    fn exhausted_budget_still_places_everyone() {
        use picola_core::{Budget, Completion};
        for limit in [0u64, 1, 5] {
            let cs = groups(11, &[&[0, 1, 2], &[4, 5], &[8, 9, 10]]);
            let budget = Budget::with_work_limit(limit);
            let (enc, completion) = NovaEncoder::i_hybrid().encode_bounded(11, &cs, &budget);
            assert_eq!(enc.num_symbols(), 11);
            assert_eq!(enc.nv(), 4);
            assert!(matches!(completion, Completion::Degraded { .. }));
        }
    }

    #[test]
    fn injected_faults_degrade_without_panic() {
        use picola_core::{chaos, Budget, Completion};
        for point in ["nova.place", "nova.improve"] {
            let _guard = chaos::arm(point, 0);
            let cs = groups(8, &[&[0, 1], &[2, 3, 4, 5]]);
            let (enc, completion) =
                NovaEncoder::i_hybrid().encode_bounded(8, &cs, &Budget::unlimited());
            assert_eq!(enc.num_symbols(), 8);
            assert!(matches!(completion, Completion::Degraded { .. }), "{point}");
        }
    }

    #[test]
    fn deterministic_output() {
        let cs = groups(10, &[&[0, 1, 2], &[5, 6]]);
        let a = NovaEncoder::i_hybrid().encode(10, &cs);
        let b = NovaEncoder::i_hybrid().encode(10, &cs);
        assert_eq!(a, b);
    }
}
