//! An ENC-style baseline (Saldanha, Villa, Brayton,
//! Sangiovanni-Vincentelli, 1994): input encoding with **logic minimization
//! inside the evaluation loop**.
//!
//! ENC targets the same partial problem as PICOLA, but each candidate
//! encoding move is priced by actually minimizing the encoded constraint
//! functions — two-level minimization per constraint per move. That yields
//! good costs and crushing runtimes; the paper notes ENC "is not practical
//! for medium and large examples" and fails on `scf`. The evaluation budget
//! below makes that behaviour explicit and measurable.

use picola_constraints::{Encoding, GroupConstraint};
use picola_core::{evaluate_encoding, Encoder};
use picola_constraints::min_code_length;

/// Outcome details of an ENC-style run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncRunInfo {
    /// Full-cost evaluations performed (each runs ESPRESSO once per
    /// constraint).
    pub evaluations: usize,
    /// Whether the run stopped because the budget was exhausted rather than
    /// because a local optimum was reached.
    pub budget_exhausted: bool,
    /// Final total cube count.
    pub total_cubes: usize,
}

/// The ENC-style encoder.
#[derive(Debug, Clone)]
pub struct EncLikeEncoder {
    /// Maximum number of full-cost evaluations (minimization-in-the-loop
    /// calls). When exceeded the current best encoding is returned and the
    /// run is flagged as budget-exhausted.
    pub max_evaluations: usize,
}

impl Default for EncLikeEncoder {
    fn default() -> Self {
        EncLikeEncoder {
            max_evaluations: 4000,
        }
    }
}

impl EncLikeEncoder {
    /// Runs the encoder and also reports how hard it had to work.
    pub fn encode_detailed(
        &self,
        n: usize,
        constraints: &[GroupConstraint],
    ) -> (Encoding, EncRunInfo) {
        let nv = min_code_length(n);
        let mut enc = Encoding::natural(n);
        let mut evals = 0usize;
        let mut exhausted = false;

        let cost = |e: &Encoding, evals: &mut usize| -> usize {
            *evals += 1;
            evaluate_encoding(e, constraints).total_cubes
        };
        let mut best_cost = cost(&enc, &mut evals);

        // First-improvement local search over code swaps and moves to free
        // code words; every probe pays a full minimization.
        let size = 1usize << nv;
        'outer: loop {
            let mut improved = false;
            for i in 0..n {
                for j in (i + 1)..n {
                    if evals >= self.max_evaluations {
                        exhausted = true;
                        break 'outer;
                    }
                    let mut codes = enc.codes().to_vec();
                    codes.swap(i, j);
                    let cand = Encoding::new(nv, codes).expect("swap keeps codes distinct");
                    let c = cost(&cand, &mut evals);
                    if c < best_cost {
                        enc = cand;
                        best_cost = c;
                        improved = true;
                    }
                }
            }
            // moves to free codes (freeness rechecked against the current
            // encoding — accepted moves change it)
            for i in 0..n {
                for w in 0..size {
                    if enc.codes().contains(&(w as u32)) {
                        continue;
                    }
                    if evals >= self.max_evaluations {
                        exhausted = true;
                        break 'outer;
                    }
                    let mut codes = enc.codes().to_vec();
                    codes[i] = w as u32;
                    let cand = Encoding::new(nv, codes).expect("free code move is distinct");
                    let c = cost(&cand, &mut evals);
                    if c < best_cost {
                        enc = cand;
                        best_cost = c;
                        improved = true;
                    }
                }
            }
            if !improved {
                break;
            }
        }

        (
            enc,
            EncRunInfo {
                evaluations: evals,
                budget_exhausted: exhausted,
                total_cubes: best_cost,
            },
        )
    }
}

impl Encoder for EncLikeEncoder {
    fn name(&self) -> &str {
        "enc"
    }

    fn encode(&self, n: usize, constraints: &[GroupConstraint]) -> Encoding {
        self.encode_detailed(n, constraints).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use picola_constraints::SymbolSet;

    fn groups(n: usize, gs: &[&[usize]]) -> Vec<GroupConstraint> {
        gs.iter()
            .map(|g| GroupConstraint::new(SymbolSet::from_members(n, g.iter().copied())))
            .collect()
    }

    #[test]
    fn enc_improves_over_natural_codes() {
        // natural codes violate {0, 3}; a swap can satisfy it.
        let cs = groups(4, &[&[0, 3]]);
        let (enc, info) = EncLikeEncoder::default().encode_detailed(4, &cs);
        assert_eq!(info.total_cubes, 1);
        assert!(enc.satisfies(cs[0].members()));
        assert!(!info.budget_exhausted);
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let cs = groups(8, &[&[0, 5], &[1, 6], &[2, 7], &[0, 1, 2, 3, 7]]);
        let tiny = EncLikeEncoder { max_evaluations: 5 };
        let (_, info) = tiny.encode_detailed(8, &cs);
        assert!(info.budget_exhausted);
        assert!(info.evaluations <= 5 + 1);
    }

    #[test]
    fn evaluations_are_counted() {
        let cs = groups(4, &[&[0, 1]]);
        let (_, info) = EncLikeEncoder::default().encode_detailed(4, &cs);
        assert!(info.evaluations >= 1);
    }
}
