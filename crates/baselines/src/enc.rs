//! An ENC-style baseline (Saldanha, Villa, Brayton,
//! Sangiovanni-Vincentelli, 1994): input encoding with **logic minimization
//! inside the evaluation loop**.
//!
//! ENC targets the same partial problem as PICOLA, but each candidate
//! encoding move is priced by actually minimizing the encoded constraint
//! functions — two-level minimization per constraint per move. That yields
//! good costs and crushing runtimes; the paper notes ENC "is not practical
//! for medium and large examples" and fails on `scf`. The evaluation budget
//! below makes that behaviour explicit and measurable.

use crate::objective::minimized_cubes;
use picola_constraints::min_code_length;
use picola_constraints::{Encoding, GroupConstraint};
use picola_core::{Budget, Completion, Encoder, EvalContext, EvalOptions};

/// Outcome details of an ENC-style run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncRunInfo {
    /// Full-cost evaluations performed (each prices every constraint
    /// through the minimization cache).
    pub evaluations: usize,
    /// Whether the run stopped because the budget was exhausted rather than
    /// because a local optimum was reached.
    pub budget_exhausted: bool,
    /// Final total cube count.
    pub total_cubes: usize,
    /// Minimization-cache hits across the run (0 when caching is off).
    pub cache_hits: u64,
    /// Minimization-cache misses (actual ESPRESSO runs) across the run.
    pub cache_misses: u64,
}

/// The ENC-style encoder.
#[derive(Debug, Clone)]
pub struct EncLikeEncoder {
    /// Maximum number of full-cost evaluations (minimization-in-the-loop
    /// calls). When exceeded the current best encoding is returned and the
    /// run is flagged as budget-exhausted.
    pub max_evaluations: usize,
    /// Evaluation pipeline knobs: minimizer, cover engine, and whether the
    /// per-run minimization cache is consulted. One [`EvalContext`] lives
    /// for the whole run, so probes that revisit a constraint function pay
    /// a hash lookup instead of an ESPRESSO pass.
    pub eval: EvalOptions,
}

impl Default for EncLikeEncoder {
    fn default() -> Self {
        EncLikeEncoder {
            max_evaluations: 4000,
            eval: EvalOptions::default(),
        }
    }
}

impl EncLikeEncoder {
    /// Runs the encoder and also reports how hard it had to work.
    pub fn encode_detailed(
        &self,
        n: usize,
        constraints: &[GroupConstraint],
    ) -> (Encoding, EncRunInfo) {
        self.encode_detailed_bounded(n, constraints, &Budget::unlimited())
    }

    /// [`EncLikeEncoder::encode_detailed`] under an external [`Budget`]:
    /// each full-cost evaluation pays one `enc.eval` tick (on top of the
    /// encoder's own `max_evaluations` cap), and exhaustion mid-search
    /// returns the best encoding seen so far.
    pub fn encode_detailed_bounded(
        &self,
        n: usize,
        constraints: &[GroupConstraint],
        budget: &Budget,
    ) -> (Encoding, EncRunInfo) {
        let mut ctx = EvalContext::new();
        self.encode_detailed_in_context(n, constraints, budget, &mut ctx)
    }

    /// [`EncLikeEncoder::encode_detailed_bounded`] pricing through a
    /// caller-supplied [`EvalContext`]. A context wired to a shared
    /// [`picola_core::GlobalMinimizeCache`] lets one run warm the next —
    /// the basis of the daemon's cross-request warmth and the `serve_ab`
    /// bench leg — without changing any result (caching is bit-invisible).
    pub fn encode_detailed_in_context(
        &self,
        n: usize,
        constraints: &[GroupConstraint],
        budget: &Budget,
        ctx: &mut EvalContext,
    ) -> (Encoding, EncRunInfo) {
        let nv = min_code_length(n);
        let mut enc = Encoding::natural(n);
        let mut evals = 0usize;
        let mut exhausted = false;

        let cost = |e: &Encoding, evals: &mut usize, ctx: &mut EvalContext| -> usize {
            *evals += 1;
            minimized_cubes(e, constraints, &self.eval, ctx)
        };
        // The baseline evaluation always runs (a best-so-far cost must
        // exist), but it pays its tick so exhaustion latches before the
        // search loop starts.
        let start_exhausted = !budget.tick("enc.eval", 1);
        let mut best_cost = cost(&enc, &mut evals, ctx);
        if start_exhausted {
            exhausted = true;
        }

        // First-improvement local search over code swaps and moves to free
        // code words; every probe pays a full minimization.
        let size = 1usize << nv;
        'outer: while !exhausted {
            let mut improved = false;
            for i in 0..n {
                for j in (i + 1)..n {
                    if evals >= self.max_evaluations || !budget.tick("enc.eval", 1) {
                        exhausted = true;
                        break 'outer;
                    }
                    let mut codes = enc.codes().to_vec();
                    codes.swap(i, j);
                    let Ok(cand) = Encoding::new(nv, codes) else {
                        continue; // swaps permute codes: unreachable defensively
                    };
                    let c = cost(&cand, &mut evals, ctx);
                    if c < best_cost {
                        enc = cand;
                        best_cost = c;
                        improved = true;
                    }
                }
            }
            // moves to free codes (freeness rechecked against the current
            // encoding — accepted moves change it)
            for i in 0..n {
                for w in 0..size {
                    if enc.codes().contains(&(w as u32)) {
                        continue;
                    }
                    if evals >= self.max_evaluations || !budget.tick("enc.eval", 1) {
                        exhausted = true;
                        break 'outer;
                    }
                    let mut codes = enc.codes().to_vec();
                    codes[i] = w as u32;
                    let Ok(cand) = Encoding::new(nv, codes) else {
                        continue; // target checked free: unreachable defensively
                    };
                    let c = cost(&cand, &mut evals, ctx);
                    if c < best_cost {
                        enc = cand;
                        best_cost = c;
                        improved = true;
                    }
                }
            }
            if !improved {
                break;
            }
        }

        (
            enc,
            EncRunInfo {
                evaluations: evals,
                budget_exhausted: exhausted,
                total_cubes: best_cost,
                cache_hits: ctx.cache.hits(),
                cache_misses: ctx.cache.misses(),
            },
        )
    }
}

impl Encoder for EncLikeEncoder {
    fn name(&self) -> &str {
        "enc"
    }

    fn encode(&self, n: usize, constraints: &[GroupConstraint]) -> Encoding {
        self.encode_detailed(n, constraints).0
    }

    fn encode_bounded(
        &self,
        n: usize,
        constraints: &[GroupConstraint],
        budget: &Budget,
    ) -> (Encoding, Completion) {
        let (enc, _) = self.encode_detailed_bounded(n, constraints, budget);
        (enc, budget.completion())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use picola_constraints::SymbolSet;

    fn groups(n: usize, gs: &[&[usize]]) -> Vec<GroupConstraint> {
        gs.iter()
            .map(|g| GroupConstraint::new(SymbolSet::from_members(n, g.iter().copied())))
            .collect()
    }

    #[test]
    fn enc_improves_over_natural_codes() {
        // natural codes violate {0, 3}; a swap can satisfy it.
        let cs = groups(4, &[&[0, 3]]);
        let (enc, info) = EncLikeEncoder::default().encode_detailed(4, &cs);
        assert_eq!(info.total_cubes, 1);
        assert!(enc.satisfies(cs[0].members()));
        assert!(!info.budget_exhausted);
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let cs = groups(8, &[&[0, 5], &[1, 6], &[2, 7], &[0, 1, 2, 3, 7]]);
        let tiny = EncLikeEncoder {
            max_evaluations: 5,
            ..EncLikeEncoder::default()
        };
        let (_, info) = tiny.encode_detailed(8, &cs);
        assert!(info.budget_exhausted);
        assert!(info.evaluations <= 5 + 1);
    }

    #[test]
    fn external_budget_caps_evaluations() {
        use picola_core::{Budget, Completion};
        let cs = groups(8, &[&[0, 5], &[1, 6], &[2, 7], &[0, 1, 2, 3, 7]]);
        let budget = Budget::with_work_limit(4);
        let (enc, info) = EncLikeEncoder::default().encode_detailed_bounded(8, &cs, &budget);
        assert_eq!(enc.num_symbols(), 8);
        assert!(info.budget_exhausted);
        assert!(info.evaluations <= 6);
        assert!(matches!(budget.completion(), Completion::Degraded { .. }));
    }

    #[test]
    fn injected_fault_stops_search_gracefully() {
        use picola_core::{chaos, Budget};
        let _guard = chaos::arm("enc.eval", 2);
        let cs = groups(4, &[&[0, 3]]);
        let budget = Budget::unlimited();
        let (enc, info) = EncLikeEncoder::default().encode_detailed_bounded(4, &cs, &budget);
        assert_eq!(enc.num_symbols(), 4);
        assert!(info.budget_exhausted);
    }

    #[test]
    fn evaluations_are_counted() {
        let cs = groups(4, &[&[0, 1]]);
        let (_, info) = EncLikeEncoder::default().encode_detailed(4, &cs);
        assert!(info.evaluations >= 1);
    }
}
