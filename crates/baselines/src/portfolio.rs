//! The standard encoder portfolio: PICOLA plus the conventional baselines.
//!
//! [`standard_portfolio`] is the canonical line-up the CLI, the benches, and
//! the differential tests all race: `picola`, `nova` (i-hybrid), `anneal`,
//! `dicho`, `natural`, and `sat` (the CNF-backed exact searcher, behind its
//! `nv <= 5` size guard and a fixed conflict cap). Stochastic members get
//! explicit per-member seeds derived from one master seed by SplitMix64, so
//! the portfolio outcome is a pure function of `(instance, seed)` —
//! independent of thread count, scheduling, or any global RNG state.

use crate::{AnnealingEncoder, DichotomyEncoder, NaturalEncoder, NovaEncoder};
use picola_core::{Encoder, EncoderPortfolio, PicolaEncoder};
use picola_sat::SatEncoder;

/// One step of the SplitMix64 sequence: the per-member seed stream.
///
/// Deterministic, stateless, and well-mixed — two members never share a
/// stream even when the master seed is small.
#[must_use]
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Build the standard six-member portfolio.
///
/// Member order is fixed (`picola`, `nova`, `anneal`, `dicho`, `natural`,
/// `sat`); ties in the winning cost resolve to the earliest member, so
/// PICOLA wins ties by construction — the SAT member, though often exactly
/// optimal on small instances, only wins when it strictly beats every
/// heuristic. `seed` feeds the stochastic members through [`splitmix64`];
/// equal seeds give bit-identical outcomes at any thread count (the SAT
/// member is deterministic and needs no seed).
#[must_use]
pub fn standard_portfolio(seed: u64) -> EncoderPortfolio {
    EncoderPortfolio::new(standard_members(seed))
}

/// The members of [`standard_portfolio`] as a plain list, for callers that
/// race them individually (the JSON bench runs each on a private budget to
/// attribute work units per encoder).
#[must_use]
pub fn standard_members(seed: u64) -> Vec<Box<dyn Encoder + Send + Sync>> {
    let anneal_seed = splitmix64(seed.wrapping_add(1));
    vec![
        Box::new(PicolaEncoder::default()),
        Box::new(NovaEncoder::i_hybrid()),
        Box::new(AnnealingEncoder::with_seed(anneal_seed)),
        Box::new(DichotomyEncoder),
        Box::new(NaturalEncoder),
        Box::new(SatEncoder::default()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use picola_constraints::{GroupConstraint, SymbolSet};
    use picola_core::Budget;

    fn groups(n: usize, gs: &[&[usize]]) -> Vec<GroupConstraint> {
        gs.iter()
            .map(|g| GroupConstraint::new(SymbolSet::from_members(n, g.iter().copied())))
            .collect()
    }

    #[test]
    fn standard_lineup_is_fixed() {
        let p = standard_portfolio(0);
        assert_eq!(
            p.names(),
            ["picola", "nova-ih", "anneal", "dicho", "natural", "sat"]
        );
    }

    #[test]
    fn splitmix_separates_nearby_seeds() {
        let a = splitmix64(1);
        let b = splitmix64(2);
        assert_ne!(a, b);
        assert_ne!(a, 1);
    }

    #[test]
    fn standard_portfolio_runs_and_is_seed_deterministic() {
        let cs = groups(8, &[&[0, 1, 2], &[4, 5], &[6, 7]]);
        let run = |seed| {
            let out = standard_portfolio(seed)
                .run(8, &cs, &Budget::unlimited())
                .map(|o| (o.best().name.clone(), o.best().cost, o.best().encoding.clone()));
            out
        };
        let a = run(7);
        let b = run(7);
        assert!(a.is_some());
        assert_eq!(a, b);
    }

    #[test]
    fn thread_count_does_not_change_the_standard_outcome() {
        let cs = groups(10, &[&[0, 1, 2, 3], &[5, 6], &[8, 9]]);
        let mut seq = standard_portfolio(3);
        seq.threads = 1;
        let mut par = standard_portfolio(3);
        par.threads = 4;
        let a = seq.run(10, &cs, &Budget::unlimited());
        let b = par.run(10, &cs, &Budget::unlimited());
        let key = |o: &picola_core::PortfolioOutcome| {
            (
                o.best().name.clone(),
                o.best().cost,
                o.best().encoding.clone(),
                o.members.iter().map(|m| m.cost).collect::<Vec<_>>(),
            )
        };
        assert_eq!(a.as_ref().map(key), b.as_ref().map(key));
    }
}
