//! Shared objective functions for the baseline encoders.

use picola_constraints::{Encoding, GroupConstraint};

/// The conventional objective NOVA-style tools maximize: total weight of the
/// *satisfied* face constraints (violated ones contribute nothing — exactly
/// the blindness the paper criticizes).
pub fn satisfied_weight(enc: &Encoding, constraints: &[GroupConstraint]) -> f64 {
    constraints
        .iter()
        .filter(|c| !c.is_trivial() && enc.satisfies(c.members()))
        .map(|c| c.weight() as f64 * (c.len() as f64 - 1.0))
        .sum()
}

/// Number of satisfied seed dichotomies over all non-trivial constraints —
/// the alternative conventional objective.
pub fn satisfied_dichotomies(enc: &Encoding, constraints: &[GroupConstraint]) -> usize {
    let mut count = 0;
    for c in constraints.iter().filter(|c| !c.is_trivial()) {
        let sc = enc.supercube(c.members());
        for s in 0..enc.num_symbols() {
            if !c.members().contains(s) && !sc.contains(enc.code(s)) {
                count += 1;
            }
        }
    }
    count
}

/// Weighted code-adjacency bonus used by the `io_hybrid` flavour: each pair
/// `(i, j, w)` contributes `w · (nv − hamming(code_i, code_j)) / nv`,
/// rewarding short distances between states that the output (next-state)
/// structure wants close.
pub fn adjacency_bonus(enc: &Encoding, adjacency: &[(usize, usize, f64)]) -> f64 {
    let nv = enc.nv() as f64;
    adjacency
        .iter()
        .map(|&(i, j, w)| {
            let d = (enc.code(i) ^ enc.code(j)).count_ones() as f64;
            w * (nv - d) / nv
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use picola_constraints::SymbolSet;

    fn groups(n: usize, gs: &[&[usize]]) -> Vec<GroupConstraint> {
        gs.iter()
            .map(|g| GroupConstraint::new(SymbolSet::from_members(n, g.iter().copied())))
            .collect()
    }

    #[test]
    fn satisfied_weight_counts_only_satisfied() {
        let enc = Encoding::natural(4);
        let cs = groups(4, &[&[0, 1], &[0, 3]]);
        // {0,1} = face 0-, satisfied; {0,3} spans everything, violated
        assert_eq!(satisfied_weight(&enc, &cs), 1.0);
    }

    #[test]
    fn dichotomy_count_is_partial_credit() {
        let enc = Encoding::natural(4);
        let cs = groups(4, &[&[0, 3]]);
        // supercube of 00 and 11 is --: no outsider excluded
        assert_eq!(satisfied_dichotomies(&enc, &cs), 0);
        let cs2 = groups(4, &[&[0, 1]]);
        assert_eq!(satisfied_dichotomies(&enc, &cs2), 2);
    }

    #[test]
    fn adjacency_prefers_close_codes() {
        let close = Encoding::new(2, vec![0b00, 0b01, 0b10, 0b11]).unwrap();
        let adj = vec![(0usize, 1usize, 1.0f64)];
        let far = Encoding::new(2, vec![0b00, 0b11, 0b10, 0b01]).unwrap();
        assert!(adjacency_bonus(&close, &adj) > adjacency_bonus(&far, &adj));
    }
}
