//! Shared objective functions for the baseline encoders.
//!
//! Each objective exists in two forms: over an [`Encoding`] (the
//! convenient entry point) and directly over a raw codes slice (the
//! zero-allocation entry point the anneal/nova proposal loops use — no
//! `Encoding::new` validation, no intruder-set allocation per candidate).
//! The codes forms iterate constraints in the same order and sum the same
//! terms, so they return bit-identical `f64` values.

use picola_constraints::{Encoding, GroupConstraint, SymbolSet};
use picola_core::{evaluate_encoding_cached, EvalContext, EvalOptions};

/// The paper's evaluation objective: total minimized cube count of the
/// encoded constraint functions, priced through the cached evaluation
/// pipeline. Callers that probe many encodings (the ENC-style loop) thread
/// one long-lived [`EvalContext`] through so repeat constraint functions
/// hit the memo instead of re-running ESPRESSO; a swap of two symbols
/// leaves every constraint containing neither untouched, so hit rates grow
/// with the constraint count.
pub fn minimized_cubes(
    enc: &Encoding,
    constraints: &[GroupConstraint],
    opts: &EvalOptions,
    ctx: &mut EvalContext,
) -> usize {
    evaluate_encoding_cached(enc, constraints, opts, ctx).total_cubes
}

/// The conventional objective NOVA-style tools maximize: total weight of the
/// *satisfied* face constraints (violated ones contribute nothing — exactly
/// the blindness the paper criticizes).
pub fn satisfied_weight(enc: &Encoding, constraints: &[GroupConstraint]) -> f64 {
    satisfied_weight_codes(enc.codes(), enc.nv(), constraints)
}

/// [`satisfied_weight`] computed directly over a codes slice. The caller
/// guarantees distinct in-range codes (proposal loops preserve that by
/// construction).
pub fn satisfied_weight_codes(
    codes: &[u32],
    nv: usize,
    constraints: &[GroupConstraint],
) -> f64 {
    constraints
        .iter()
        .filter(|c| !c.is_trivial() && codes_satisfy(codes, nv, c.members()))
        .map(|c| c.weight() as f64 * (c.len() as f64 - 1.0))
        .sum()
}

/// Whether the face constraint `members` is satisfied under `codes`: its
/// members' supercube contains no non-member code. Equals
/// `Encoding::satisfies` without building the intruder set.
pub fn codes_satisfy(codes: &[u32], nv: usize, members: &SymbolSet) -> bool {
    let mut it = members.iter();
    let Some(first) = it.next() else {
        return true; // empty faces are trivially embedded
    };
    let mut and = codes[first];
    let mut or = codes[first];
    for s in it {
        and &= codes[s];
        or |= codes[s];
    }
    let full = ((1u64 << nv) - 1) as u32;
    let fixed = full & !(and ^ or);
    let values = and & fixed;
    codes
        .iter()
        .enumerate()
        .all(|(s, &c)| members.contains(s) || (c ^ values) & fixed != 0)
}

/// Number of satisfied seed dichotomies over all non-trivial constraints —
/// the alternative conventional objective.
pub fn satisfied_dichotomies(enc: &Encoding, constraints: &[GroupConstraint]) -> usize {
    let mut count = 0;
    for c in constraints.iter().filter(|c| !c.is_trivial()) {
        let sc = enc.supercube(c.members());
        for s in 0..enc.num_symbols() {
            if !c.members().contains(s) && !sc.contains(enc.code(s)) {
                count += 1;
            }
        }
    }
    count
}

/// Weighted code-adjacency bonus used by the `io_hybrid` flavour: each pair
/// `(i, j, w)` contributes `w · (nv − hamming(code_i, code_j)) / nv`,
/// rewarding short distances between states that the output (next-state)
/// structure wants close.
pub fn adjacency_bonus(enc: &Encoding, adjacency: &[(usize, usize, f64)]) -> f64 {
    adjacency_bonus_codes(enc.codes(), enc.nv(), adjacency)
}

/// [`adjacency_bonus`] computed directly over a codes slice.
pub fn adjacency_bonus_codes(
    codes: &[u32],
    nv: usize,
    adjacency: &[(usize, usize, f64)],
) -> f64 {
    let nv = nv as f64;
    adjacency
        .iter()
        .map(|&(i, j, w)| {
            let d = (codes[i] ^ codes[j]).count_ones() as f64;
            w * (nv - d) / nv
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use picola_constraints::SymbolSet;

    fn groups(n: usize, gs: &[&[usize]]) -> Vec<GroupConstraint> {
        gs.iter()
            .map(|g| GroupConstraint::new(SymbolSet::from_members(n, g.iter().copied())))
            .collect()
    }

    #[test]
    fn satisfied_weight_counts_only_satisfied() {
        let enc = Encoding::natural(4);
        let cs = groups(4, &[&[0, 1], &[0, 3]]);
        // {0,1} = face 0-, satisfied; {0,3} spans everything, violated
        assert_eq!(satisfied_weight(&enc, &cs), 1.0);
    }

    #[test]
    fn dichotomy_count_is_partial_credit() {
        let enc = Encoding::natural(4);
        let cs = groups(4, &[&[0, 3]]);
        // supercube of 00 and 11 is --: no outsider excluded
        assert_eq!(satisfied_dichotomies(&enc, &cs), 0);
        let cs2 = groups(4, &[&[0, 1]]);
        assert_eq!(satisfied_dichotomies(&enc, &cs2), 2);
    }

    #[test]
    fn codes_forms_are_bit_identical_to_encoding_forms() {
        let enc = Encoding::new(3, vec![0, 1, 2, 3, 4, 6, 7]).unwrap();
        let cs = groups(7, &[&[0, 1], &[0, 6], &[2, 3, 4], &[1, 5]]);
        assert_eq!(
            satisfied_weight(&enc, &cs),
            satisfied_weight_codes(enc.codes(), enc.nv(), &cs)
        );
        for c in &cs {
            assert_eq!(
                enc.satisfies(c.members()),
                codes_satisfy(enc.codes(), enc.nv(), c.members()),
                "{c}"
            );
        }
        let adj = vec![(0usize, 5usize, 2.5f64), (1, 2, 0.5)];
        assert_eq!(
            adjacency_bonus(&enc, &adj),
            adjacency_bonus_codes(enc.codes(), enc.nv(), &adj)
        );
    }

    #[test]
    fn adjacency_prefers_close_codes() {
        let close = Encoding::new(2, vec![0b00, 0b01, 0b10, 0b11]).unwrap();
        let adj = vec![(0usize, 1usize, 1.0f64)];
        let far = Encoding::new(2, vec![0b00, 0b11, 0b10, 0b01]).unwrap();
        assert!(adjacency_bonus(&close, &adj) > adjacency_bonus(&far, &adj));
    }
}
