//! Trivial baseline encoders: floors for the benches and tests.

use picola_constraints::{Encoding, GroupConstraint};
use picola_core::Encoder;
use picola_constraints::min_code_length;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Assigns codes in counting order (symbol `i` gets code `i`).
#[derive(Debug, Clone, Copy, Default)]
pub struct NaturalEncoder;

impl Encoder for NaturalEncoder {
    fn name(&self) -> &str {
        "natural"
    }

    fn encode(&self, n: usize, _constraints: &[GroupConstraint]) -> Encoding {
        Encoding::natural(n)
    }
}

/// Assigns a seeded random permutation of the code space.
#[derive(Debug, Clone, Copy)]
pub struct RandomEncoder {
    /// RNG seed; equal seeds give equal encodings.
    pub seed: u64,
}

impl Default for RandomEncoder {
    fn default() -> Self {
        RandomEncoder { seed: 0x9e3779b9 }
    }
}

impl Encoder for RandomEncoder {
    fn name(&self) -> &str {
        "random"
    }

    fn encode(&self, n: usize, _constraints: &[GroupConstraint]) -> Encoding {
        let nv = min_code_length(n);
        let mut words: Vec<u32> = (0..1u32 << nv).collect();
        let mut rng = StdRng::seed_from_u64(self.seed);
        words.shuffle(&mut rng);
        words.truncate(n);
        // A prefix of a permutation of all code words is distinct.
        Encoding::new(nv, words).unwrap_or_else(|_| Encoding::natural(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use picola_constraints::SymbolSet;

    #[test]
    fn natural_is_identity() {
        let e = NaturalEncoder.encode(5, &[]);
        assert_eq!(e.codes(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn random_is_seeded_and_valid() {
        let cs = [GroupConstraint::new(SymbolSet::from_members(6, [0, 1]))];
        let a = RandomEncoder { seed: 7 }.encode(6, &cs);
        let b = RandomEncoder { seed: 7 }.encode(6, &cs);
        let c = RandomEncoder { seed: 8 }.encode(6, &cs);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.num_symbols(), 6);
        assert_eq!(a.nv(), 3);
    }
}
