//! Fuzzer for the KISS2 parser.
//!
//! Property: arbitrary, corrupted, or truncated input never panics the
//! parser; every diagnostic carries a line number inside the input (0 for
//! file-level errors); declared limits are enforced.

// Tests are exempt from the panic-freedom policy; clippy's in-tests
// exemption misses integration-test helpers, so waive it explicitly.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use picola_fsm::{parse_kiss, parse_kiss_with};
use picola_logic::error::ParseLimits;
use proptest::collection::vec;
use proptest::prelude::*;

/// A byte soup biased toward KISS2 syntax.
fn soup() -> impl Strategy<Value = String> {
    vec(any::<u8>(), 0..400).prop_map(|bytes| {
        const ALPHABET: &[u8] = b"01- .iosrep\n\t#*sab5X";
        bytes
            .iter()
            .map(|&b| ALPHABET[b as usize % ALPHABET.len()] as char)
            .collect()
    })
}

/// A valid KISS2 machine with `rows` transitions over four states.
fn valid_kiss(rows: usize) -> String {
    let mut s = String::from(".i 2\n.o 1\n.s 4\n.r s0\n");
    for t in 0..rows.max(1) {
        let from = t % 4;
        let to = (t + 1) % 4;
        let i0 = if t % 2 == 0 { '0' } else { '1' };
        let i1 = if t % 3 == 0 { '-' } else { '1' };
        s.push_str(&format!("{i0}{i1} s{from} s{to} {}\n", t % 2));
    }
    s.push_str(".e\n");
    s
}

fn line_count(text: &str) -> usize {
    text.lines().count()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn kiss_parser_never_panics_on_soup(text in soup()) {
        if let Err(e) = parse_kiss("fuzz", &text) {
            prop_assert!(
                e.line() <= line_count(&text),
                "line {} outside {}-line input",
                e.line(),
                line_count(&text)
            );
        }
    }

    #[test]
    fn truncated_kiss_errors_stay_in_bounds(rows in 1usize..20, cut in 0usize..300) {
        let full = valid_kiss(rows);
        let cut = cut.min(full.len());
        let text = &full[..cut];
        if let Err(e) = parse_kiss("fuzz", text) {
            prop_assert!(e.line() <= line_count(text) + 1);
        }
    }

    #[test]
    fn mid_line_truncation_is_always_rejected(rows in 1usize..20, cut in 1usize..300) {
        // A frame cut strictly mid-line (as a dropped socket delivers it)
        // must never parse as a silently shorter machine. Cuts landing on a
        // newline or right after `.e` are legitimate shorter documents.
        let full = valid_kiss(rows);
        let cut = cut.min(full.len() - 1);
        let text = &full[..cut];
        if !text.ends_with('\n') && !text.ends_with(".e") {
            let err = parse_kiss("fuzz", text).unwrap_err();
            prop_assert!(err.line() <= line_count(text) + 1);
        }
    }

    #[test]
    fn empty_and_blank_inputs_are_rejected(pad in 0usize..8) {
        let text = "\n".repeat(pad);
        let err = parse_kiss("fuzz", &text).unwrap_err();
        prop_assert_eq!(err.line(), 0);
    }

    #[test]
    fn corrupted_kiss_never_panics(rows in 1usize..20, pos in 0usize..300, byte in 0u8..128) {
        let mut full = valid_kiss(rows).into_bytes();
        let pos = pos % full.len();
        full[pos] = byte;
        let text = String::from_utf8_lossy(&full).into_owned();
        let _ = parse_kiss("fuzz", &text);
    }

    #[test]
    fn oversized_kiss_is_rejected_not_loaded(rows in 6usize..40) {
        let limits = ParseLimits { max_terms: 5, ..ParseLimits::default() };
        let text = valid_kiss(rows);
        let err = parse_kiss_with("fuzz", &text, &limits).unwrap_err();
        prop_assert!(err.line() <= line_count(&text));
        prop_assert!(parse_kiss_with("fuzz", &text, &ParseLimits::default()).is_ok());
    }

    #[test]
    fn parsed_machines_are_coherent(rows in 1usize..30) {
        // A machine that parses must satisfy basic structural invariants —
        // the robustness contract is Err-or-valid, never a mangled Ok.
        let text = valid_kiss(rows);
        let m = parse_kiss("fuzz", &text).expect("valid machine parses");
        // `.s 4` caps the state count; short machines reference fewer.
        prop_assert!(m.num_states() >= 2 && m.num_states() <= 4);
        prop_assert!(m.reset().is_some());
        for t in m.transitions() {
            if let Some(from) = t.from {
                prop_assert!(from < m.num_states());
            }
            if let Some(to) = t.to {
                prop_assert!(to < m.num_states());
            }
        }
    }
}
