//! Property tests for the FSM substrate.

// Tests are exempt from the panic-freedom policy; clippy's in-tests
// exemption misses integration-test helpers, so waive it explicitly.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use picola_fsm::{generate_fsm, parse_kiss, symbolic_cover, write_kiss, FsmSpec, Ternary};
use proptest::prelude::*;

fn spec_strategy() -> impl Strategy<Value = FsmSpec> {
    (2usize..12, 1usize..5, 1usize..4, any::<u64>()).prop_map(|(states, inputs, outputs, seed)| {
        let mut s = FsmSpec::new("prop", states, inputs, outputs);
        s.seed = seed;
        s
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generated_machines_roundtrip_through_kiss(spec in spec_strategy()) {
        // Parsing renumbers states by order of appearance, so compare the
        // *textual* fixpoint: serialize, parse, serialize again.
        let fsm = generate_fsm(&spec);
        let text = write_kiss(&fsm);
        let back = parse_kiss("prop", &text).expect("generated KISS2 parses");
        prop_assert_eq!(text.clone(), write_kiss(&back));
        prop_assert_eq!(fsm.num_states(), back.num_states());
        prop_assert_eq!(fsm.transitions().len(), back.transitions().len());
    }

    #[test]
    fn generated_machines_are_deterministic_automata(spec in spec_strategy()) {
        let fsm = generate_fsm(&spec);
        // No two rows of one state may overlap in input space.
        for s in 0..fsm.num_states() {
            let rows: Vec<_> = fsm
                .transitions()
                .iter()
                .filter(|t| t.from == Some(s))
                .collect();
            for i in 0..rows.len() {
                for j in (i + 1)..rows.len() {
                    let disjoint = rows[i].input.iter().zip(&rows[j].input).any(|(a, b)| {
                        matches!(
                            (a, b),
                            (Ternary::Zero, Ternary::One) | (Ternary::One, Ternary::Zero)
                        )
                    });
                    prop_assert!(disjoint, "state {} rows {} and {} overlap", s, i, j);
                }
            }
        }
    }

    #[test]
    fn generated_machines_are_connected(spec in spec_strategy()) {
        let fsm = generate_fsm(&spec);
        // BFS from the reset state reaches everything.
        let n = fsm.num_states();
        let mut seen = vec![false; n];
        let mut stack = vec![fsm.reset().unwrap_or(0)];
        while let Some(s) = stack.pop() {
            if std::mem::replace(&mut seen[s], true) {
                continue;
            }
            for t in fsm.transitions() {
                if t.from == Some(s) {
                    if let Some(to) = t.to {
                        if !seen[to] {
                            stack.push(to);
                        }
                    }
                }
            }
        }
        prop_assert!(seen.iter().all(|&b| b), "unreachable states exist");
    }

    #[test]
    fn symbolic_cover_accounts_for_every_row(spec in spec_strategy()) {
        let fsm = generate_fsm(&spec);
        let sc = symbolic_cover(&fsm);
        // every row asserts its next state: at least one on-cube per row
        // restricted to that present state (the generator never emits '*').
        let rows_with_next = fsm
            .transitions()
            .iter()
            .filter(|t| t.to.is_some())
            .count();
        prop_assert!(sc.on.len() >= rows_with_next.min(1));
        // every on-cube's state literal is a single state
        for c in sc.on.iter() {
            prop_assert_eq!(c.var_parts(&sc.domain, sc.state_var()).count(), 1);
        }
    }
}
