//! Symbolic (multi-valued) covers of FSMs.
//!
//! The present state is one multi-valued variable; the output field is the
//! one-hot-coded next state followed by the primary outputs — exactly the
//! representation the paper derives its input-encoding problems from
//! (“substituting next state field by a onehot code”).

use crate::machine::{Fsm, Ternary};
use picola_logic::{Cover, Cube, Domain, DomainBuilder};

/// A multi-valued cover of an FSM's combinational behaviour.
#[derive(Debug, Clone)]
pub struct SymbolicCover {
    /// Domain: binary primary inputs, one multi-valued present-state
    /// variable named `"ps"`, and an output variable of
    /// `num_states + num_outputs` parts (one-hot next state, then primary
    /// outputs).
    pub domain: Domain,
    /// On-set: asserted next-state bits and primary outputs.
    pub on: Cover,
    /// Don't-care set from `-` outputs and `*` next states.
    pub dc: Cover,
    /// Number of states of the underlying machine.
    pub num_states: usize,
    /// Number of binary primary inputs.
    pub num_inputs: usize,
    /// Number of primary outputs.
    pub num_outputs: usize,
}

impl SymbolicCover {
    /// Index of the present-state variable in [`SymbolicCover::domain`].
    pub fn state_var(&self) -> usize {
        self.num_inputs
    }

    /// Index of the output variable.
    pub fn output_var(&self) -> usize {
        self.num_inputs + 1
    }

    /// Global part index of the one-hot next-state bit for `state`.
    pub fn next_state_part(&self, state: usize) -> usize {
        let ov = self.domain.require_output_var();
        self.domain.var(ov).offset() + state
    }

    /// Global part index of primary output `o`.
    pub fn output_part(&self, o: usize) -> usize {
        let ov = self.domain.require_output_var();
        self.domain.var(ov).offset() + self.num_states + o
    }
}

/// Builds the symbolic cover of `fsm`.
///
/// Each transition row contributes an on-set cube asserting its one-hot
/// next-state bit and its `1` outputs, plus (when present) a dc-set cube for
/// its `-` outputs and `*` next state.
pub fn symbolic_cover(fsm: &Fsm) -> SymbolicCover {
    let n = fsm.num_states();
    let ni = fsm.num_inputs();
    let no = fsm.num_outputs();
    let domain = DomainBuilder::new()
        .binaries("x", ni)
        .multi("ps", n)
        .output("z", n + no)
        .build();
    let state_var = ni;
    let ov = domain.require_output_var();
    let out_off = domain.var(ov).offset();

    let mut on = Cover::empty(&domain);
    let mut dc = Cover::empty(&domain);

    for t in fsm.transitions() {
        let mut base = Cube::full(&domain);
        for (v, lit) in t.input.iter().enumerate() {
            match lit {
                Ternary::Zero => base.restrict_binary(&domain, v, false),
                Ternary::One => base.restrict_binary(&domain, v, true),
                Ternary::DontCare => {}
            }
        }
        if let Some(s) = t.from {
            base.restrict(&domain, state_var, s);
        }

        let mut on_parts: Vec<usize> = Vec::new();
        let mut dc_parts: Vec<usize> = Vec::new();
        match t.to {
            Some(s) => on_parts.push(s),
            None => dc_parts.extend(0..n),
        }
        for (o, lit) in t.output.iter().enumerate() {
            match lit {
                Ternary::One => on_parts.push(n + o),
                Ternary::DontCare => dc_parts.push(n + o),
                Ternary::Zero => {}
            }
        }

        let with_outputs = |parts: &[usize]| -> Option<Cube> {
            if parts.is_empty() {
                return None;
            }
            let mut c = base.clone();
            for p in domain.var(ov).part_range() {
                c.clear_part(p);
            }
            for &q in parts {
                c.set_part(out_off + q);
            }
            Some(c)
        };
        if let Some(c) = with_outputs(&on_parts) {
            on.push(c);
        }
        if let Some(c) = with_outputs(&dc_parts) {
            dc.push(c);
        }
    }

    SymbolicCover {
        domain,
        on,
        dc,
        num_states: n,
        num_inputs: ni,
        num_outputs: no,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kiss::parse_kiss;

    const SAMPLE: &str = "\
.i 2
.o 1
.r s0
-0 s0 s0 0
01 s0 s1 -
11 s1 s2 1
1- s2 * 1
.e
";

    #[test]
    fn domain_layout() {
        let m = parse_kiss("t", SAMPLE).unwrap();
        let sc = symbolic_cover(&m);
        assert_eq!(sc.domain.num_vars(), 2 + 1 + 1);
        assert_eq!(sc.domain.var(sc.state_var()).parts(), 3);
        let ov = sc.domain.output_var().unwrap();
        assert_eq!(sc.domain.var(ov).parts(), 3 + 1);
    }

    #[test]
    fn on_cubes_assert_next_state_and_outputs() {
        let m = parse_kiss("t", SAMPLE).unwrap();
        let sc = symbolic_cover(&m);
        // Row 3 (11 s1 s2 1): on cube with next-state part 2 and output part.
        let found = sc.on.iter().any(|c| {
            c.has_part(sc.next_state_part(2))
                && c.has_part(sc.output_part(0))
                && c.var_parts(&sc.domain, sc.state_var()).eq([1])
        });
        assert!(found);
    }

    #[test]
    fn dc_cubes_capture_dash_outputs_and_star_next() {
        let m = parse_kiss("t", SAMPLE).unwrap();
        let sc = symbolic_cover(&m);
        // Row 2 has output '-': a dc cube with the PO part.
        assert!(sc
            .dc
            .iter()
            .any(|c| c.has_part(sc.output_part(0))
                && c.var_parts(&sc.domain, sc.state_var()).eq([0])));
        // Row 4 has next state '*': dc over all next-state parts.
        assert!(sc
            .dc
            .iter()
            .any(|c| (0..3).all(|s| c.has_part(sc.next_state_part(s)))));
    }

    #[test]
    fn row_without_asserted_outputs_creates_no_on_cube() {
        let text = ".i 1\n.o 1\n0 a a 0\n1 a b 1\n.e\n";
        let m = parse_kiss("t", text).unwrap();
        let sc = symbolic_cover(&m);
        // Row 1 asserts next state a => still an on cube (one-hot bit).
        assert_eq!(sc.on.len(), 2);
        assert!(sc.dc.is_empty());
    }
}
