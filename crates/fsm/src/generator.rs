//! Deterministic random FSM generation.
//!
//! Produces well-formed, deterministic machines whose rows look like real
//! KISS2 benchmarks: per state, a small set of *tested* input bits
//! partitions the input space into non-overlapping branches; next states are
//! biased towards a chain and a hub state so the machine is connected and
//! has the locality real control FSMs exhibit.

use crate::machine::{Fsm, Ternary, Transition};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

/// Parameters for [`generate_fsm`].
#[derive(Debug, Clone)]
pub struct FsmSpec {
    /// Machine name (also used for state-name prefixes).
    pub name: String,
    /// Number of states (≥ 2).
    pub states: usize,
    /// Number of binary primary inputs.
    pub inputs: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Soft cap on the number of transition rows.
    pub max_rows: usize,
    /// Maximum number of input bits any one state tests (bounds the branch
    /// fan-out per state and keeps downstream minimization tractable).
    pub max_tested_bits: usize,
    /// RNG seed; equal specs generate equal machines.
    pub seed: u64,
}

impl FsmSpec {
    /// A spec with defaults suitable for mid-size control FSMs.
    pub fn new(name: &str, states: usize, inputs: usize, outputs: usize) -> Self {
        FsmSpec {
            name: name.to_owned(),
            states,
            inputs,
            outputs,
            max_rows: states * 6,
            max_tested_bits: 3,
            seed: fnv1a(name.as_bytes()),
        }
    }
}

/// 64-bit FNV-1a hash used to derive stable per-name seeds.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Generates a deterministic FSM from `spec`.
///
/// Guarantees: state 0 is the reset state; every state `s > 0` is reachable
/// (a transition from `s − 1` to `s` is forced); within one state the input
/// fields of its rows are mutually disjoint, so the machine is
/// deterministic; the row count does not exceed `max_rows` by more than one
/// branch group.
///
/// # Panics
///
/// Panics if `states < 2`.
pub fn generate_fsm(spec: &FsmSpec) -> Fsm {
    assert!(spec.states >= 2, "need at least two states");
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let state_names: Vec<String> = (0..spec.states).map(|i| format!("s{i}")).collect();
    let mut fsm = Fsm::new(&spec.name, spec.inputs, spec.outputs, state_names);
    fsm.set_reset(0);

    let hub = rng.random_range(0..spec.states);
    let mut rows = 0usize;

    /// Per-state behaviour template, reusable by twin states.
    struct StateRows {
        bits: Vec<usize>,
        branch_to: Vec<usize>,
        branch_out: Vec<Vec<Ternary>>,
    }
    let mut templates: Vec<StateRows> = Vec::with_capacity(spec.states);

    for s in 0..spec.states {
        // With some probability a state becomes a *twin* of an earlier one:
        // it tests the same input bits and behaves identically on every
        // branch but the forced chain branch. Real control FSMs are full of
        // such behaviourally-similar states, and they are precisely what
        // multi-valued minimization merges into multi-state face
        // constraints.
        let twin_of = if s >= 2 && rng.random_range(0..10) < 5 {
            Some(rng.random_range(0..s))
        } else {
            None
        };

        let (bits, mut branch_to, branch_out) = if let Some(t) = twin_of {
            let tpl = &templates[t];
            (tpl.bits.clone(), tpl.branch_to.clone(), tpl.branch_out.clone())
        } else {
            // Budget-aware branch fan-out for this state.
            let remaining_states = spec.states - s;
            let budget = spec.max_rows.saturating_sub(rows).max(1);
            let per_state = (budget / remaining_states).max(1);
            let mut k = rng.random_range(0..=spec.max_tested_bits.min(spec.inputs));
            while k > 0 && (1usize << k) > per_state.max(2) {
                k -= 1;
            }
            let mut bits: Vec<usize> = (0..spec.inputs).collect();
            bits.shuffle(&mut rng);
            bits.truncate(k);
            bits.sort_unstable();

            let branches = 1usize << k;
            let mut branch_to = Vec::with_capacity(branches);
            let mut branch_out = Vec::with_capacity(branches);
            for _ in 0..branches {
                // Next-state choice: chain bias keeps the machine connected
                // and local; the hub mimics an idle/error state.
                let to = match rng.random_range(0..10) {
                    0..=3 => (s + 1) % spec.states,
                    4..=5 => hub,
                    6 => s,
                    _ => rng.random_range(0..spec.states),
                };
                branch_to.push(to);
                branch_out.push(
                    (0..spec.outputs)
                        .map(|_| match rng.random_range(0..20) {
                            0..=5 => Ternary::One,
                            6..=17 => Ternary::Zero,
                            _ => Ternary::DontCare,
                        })
                        .collect(),
                );
            }
            (bits, branch_to, branch_out)
        };

        // Forced chain edge on branch 0 guarantees reachability.
        if s + 1 < spec.states {
            branch_to[0] = s + 1;
        }

        for (b, &to) in branch_to.iter().enumerate() {
            let mut input = vec![Ternary::DontCare; spec.inputs];
            for (j, &bit) in bits.iter().enumerate() {
                input[bit] = if (b >> j) & 1 == 1 {
                    Ternary::One
                } else {
                    Ternary::Zero
                };
            }
            fsm.push_transition(Transition {
                input,
                from: Some(s),
                to: Some(to),
                output: branch_out[b].clone(),
            });
            rows += 1;
        }

        templates.push(StateRows {
            bits,
            branch_to,
            branch_out,
        });
    }

    fsm
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> FsmSpec {
        FsmSpec::new("toy", 8, 4, 2)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_fsm(&spec());
        let b = generate_fsm(&spec());
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut s2 = spec();
        s2.seed ^= 1;
        assert_ne!(generate_fsm(&spec()), generate_fsm(&s2));
    }

    #[test]
    fn all_states_reachable_via_chain() {
        let m = generate_fsm(&spec());
        for s in 1..m.num_states() {
            assert!(
                m.transitions()
                    .iter()
                    .any(|t| t.from == Some(s - 1) && t.to == Some(s)),
                "missing chain edge into state {s}"
            );
        }
    }

    #[test]
    fn rows_within_budget() {
        let mut sp = spec();
        sp.max_rows = 20;
        let m = generate_fsm(&sp);
        // per-state fan-out adjusts; allow one branch group of slack
        assert!(m.transitions().len() <= 20 + (1 << sp.max_tested_bits));
    }

    #[test]
    fn rows_are_deterministic_per_state() {
        let m = generate_fsm(&spec());
        for s in 0..m.num_states() {
            let rows: Vec<_> = m
                .transitions()
                .iter()
                .filter(|t| t.from == Some(s))
                .collect();
            for i in 0..rows.len() {
                for j in (i + 1)..rows.len() {
                    let disjoint = rows[i]
                        .input
                        .iter()
                        .zip(&rows[j].input)
                        .any(|(a, b)| {
                            matches!(
                                (a, b),
                                (Ternary::Zero, Ternary::One) | (Ternary::One, Ternary::Zero)
                            )
                        });
                    assert!(disjoint, "state {s} rows {i} and {j} overlap");
                }
            }
        }
    }

    #[test]
    fn every_state_has_a_row() {
        let m = generate_fsm(&spec());
        assert!(m.states_with_transitions().iter().all(|&b| b));
    }

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv1a(b"bbara"), fnv1a(b"bbara"));
        assert_ne!(fnv1a(b"bbara"), fnv1a(b"bbsse"));
    }
}
