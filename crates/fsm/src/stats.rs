//! Structural statistics of state-transition tables.

use crate::machine::{Fsm, Ternary};

/// Summary statistics of a machine, as reported by benchmark listings.
#[derive(Debug, Clone, PartialEq)]
pub struct FsmStats {
    /// Number of states.
    pub states: usize,
    /// Number of primary inputs / outputs.
    pub inputs: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Transition rows.
    pub rows: usize,
    /// Fraction of input-field literals that are don't-cares.
    pub input_dc_density: f64,
    /// Fraction of output-field literals that are don't-cares.
    pub output_dc_density: f64,
    /// Per-state incoming-row counts.
    pub fanin: Vec<usize>,
    /// Per-state outgoing-row counts (`*` rows count for every state).
    pub fanout: Vec<usize>,
    /// States reachable from the reset state.
    pub reachable: usize,
}

impl FsmStats {
    /// The state with the largest fan-in (the natural all-zero-code
    /// candidate), ties broken by lowest index.
    pub fn hottest_state(&self) -> Option<usize> {
        (0..self.fanin.len()).max_by_key(|&s| (self.fanin[s], usize::MAX - s))
    }
}

/// Computes [`FsmStats`] for a machine.
pub fn fsm_stats(fsm: &Fsm) -> FsmStats {
    let n = fsm.num_states();
    let mut fanin = vec![0usize; n];
    let mut fanout = vec![0usize; n];
    let mut in_dc = 0usize;
    let mut in_total = 0usize;
    let mut out_dc = 0usize;
    let mut out_total = 0usize;

    for t in fsm.transitions() {
        if let Some(to) = t.to {
            fanin[to] += 1;
        }
        match t.from {
            Some(s) => fanout[s] += 1,
            None => fanout.iter_mut().for_each(|f| *f += 1),
        }
        for lit in &t.input {
            in_total += 1;
            if *lit == Ternary::DontCare {
                in_dc += 1;
            }
        }
        for lit in &t.output {
            out_total += 1;
            if *lit == Ternary::DontCare {
                out_dc += 1;
            }
        }
    }

    // Reachability from reset.
    let mut seen = vec![false; n];
    let mut stack = vec![fsm.reset().unwrap_or(0)];
    while let Some(s) = stack.pop() {
        if std::mem::replace(&mut seen[s], true) {
            continue;
        }
        for t in fsm.transitions() {
            let from_matches = t.from.is_none_or(|f| f == s);
            if from_matches {
                if let Some(to) = t.to {
                    if !seen[to] {
                        stack.push(to);
                    }
                }
            }
        }
    }

    FsmStats {
        states: n,
        inputs: fsm.num_inputs(),
        outputs: fsm.num_outputs(),
        rows: fsm.transitions().len(),
        input_dc_density: if in_total == 0 {
            0.0
        } else {
            in_dc as f64 / in_total as f64
        },
        output_dc_density: if out_total == 0 {
            0.0
        } else {
            out_dc as f64 / out_total as f64
        },
        fanin,
        fanout,
        reachable: seen.iter().filter(|&&b| b).count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kiss::parse_kiss;
    use crate::suite::benchmark_fsm;

    #[test]
    fn stats_of_a_small_machine() {
        let text = ".i 2\n.o 1\n.r a\n-0 a a 0\n01 a b -\n-- b a 1\n.e\n";
        let m = parse_kiss("t", text).unwrap();
        let s = fsm_stats(&m);
        assert_eq!(s.rows, 3);
        assert_eq!(s.fanin, vec![2, 1]);
        assert_eq!(s.fanout, vec![2, 1]);
        assert_eq!(s.reachable, 2);
        assert!(s.input_dc_density > 0.0 && s.input_dc_density < 1.0);
        assert!((s.output_dc_density - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(s.hottest_state(), Some(0));
    }

    #[test]
    fn suite_machines_are_fully_reachable() {
        for name in ["bbara", "dk16", "planet"] {
            let m = benchmark_fsm(name).unwrap();
            let s = fsm_stats(&m);
            assert_eq!(s.reachable, s.states, "{name}");
        }
    }

    #[test]
    fn hottest_state_breaks_ties_low() {
        let text = ".i 1\n.o 1\n0 a b 0\n1 b a 0\n.e\n";
        let m = parse_kiss("t", text).unwrap();
        let s = fsm_stats(&m);
        assert_eq!(s.hottest_state(), Some(0));
    }
}
