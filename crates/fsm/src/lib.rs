//! # picola-fsm — finite-state-machine substrate
//!
//! KISS2 parsing/printing, the FSM data model, symbolic (multi-valued)
//! covers with the paper's one-hot next-state substitution, and the
//! deterministic synthetic benchmark suite standing in for the IWLS'93 set
//! (see `DESIGN.md` §4).
//!
//! ```
//! use picola_fsm::{benchmark_fsm, symbolic_cover};
//!
//! let fsm = benchmark_fsm("bbara").expect("bbara is in the suite");
//! assert_eq!(fsm.num_states(), 10);
//! let sc = symbolic_cover(&fsm);
//! assert_eq!(sc.domain.var(sc.state_var()).parts(), 10);
//! ```

#![warn(missing_docs)]

pub mod generator;
pub mod kiss;
pub mod machine;
pub mod minimize;
pub mod simulate;
pub mod stats;
pub mod suite;
pub mod symbolic;

pub use generator::{generate_fsm, FsmSpec};
pub use kiss::{parse_kiss, parse_kiss_with, write_kiss, ParseKissError};
pub use machine::{min_code_length, Fsm, Ternary, Transition};
pub use minimize::{minimize_states, state_partition, StatePartition};
pub use simulate::{completely_specified, Simulator, Step};
pub use stats::{fsm_stats, FsmStats};
pub use suite::{
    benchmark_fsm, benchmark_info, table1_names, table2_names, BenchmarkInfo, BENCHMARKS,
};
pub use symbolic::{symbolic_cover, SymbolicCover};
