//! The benchmark suite mirroring the IWLS'93 FSMs used in the paper.
//!
//! The original MCNC/IWLS'93 KISS2 files are not redistributable here, so
//! each named benchmark is *synthesized* deterministically with the
//! published interface parameters (states / inputs / outputs) and a row
//! count in the same range (capped for the larger machines so that the
//! in-tree ESPRESSO stays fast). See DESIGN.md §4 for the substitution
//! rationale. Users holding the real KISS2 files can load them with
//! [`crate::parse_kiss`] and run every tool unchanged.

use crate::generator::{generate_fsm, FsmSpec};
use crate::machine::Fsm;

/// Static description of one benchmark of the suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchmarkInfo {
    /// Benchmark name (matches the paper's tables).
    pub name: &'static str,
    /// Number of states.
    pub states: usize,
    /// Number of binary primary inputs.
    pub inputs: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Target transition-row count for the synthetic machine.
    pub rows: usize,
    /// Cap on input bits tested by one state (controls cover density).
    pub tested_bits: usize,
}

/// Parameters of every FSM named in Table I / Table II of the paper.
///
/// States/inputs/outputs follow the published IWLS'93 benchmark
/// descriptions; row counts are moderated for the biggest machines.
pub const BENCHMARKS: &[BenchmarkInfo] = &[
    BenchmarkInfo { name: "bbara", states: 10, inputs: 4, outputs: 2, rows: 60, tested_bits: 3 },
    BenchmarkInfo { name: "bbsse", states: 16, inputs: 7, outputs: 7, rows: 56, tested_bits: 3 },
    BenchmarkInfo { name: "cse", states: 16, inputs: 7, outputs: 7, rows: 91, tested_bits: 3 },
    BenchmarkInfo { name: "dk14", states: 7, inputs: 3, outputs: 5, rows: 56, tested_bits: 3 },
    BenchmarkInfo { name: "ex3", states: 10, inputs: 2, outputs: 2, rows: 36, tested_bits: 2 },
    BenchmarkInfo { name: "ex5", states: 9, inputs: 2, outputs: 2, rows: 32, tested_bits: 2 },
    BenchmarkInfo { name: "ex7", states: 10, inputs: 2, outputs: 2, rows: 36, tested_bits: 2 },
    BenchmarkInfo { name: "kirkman", states: 16, inputs: 12, outputs: 6, rows: 60, tested_bits: 3 },
    BenchmarkInfo { name: "lion9", states: 9, inputs: 2, outputs: 1, rows: 25, tested_bits: 2 },
    BenchmarkInfo { name: "mark1", states: 15, inputs: 5, outputs: 16, rows: 22, tested_bits: 2 },
    BenchmarkInfo { name: "opus", states: 10, inputs: 5, outputs: 6, rows: 22, tested_bits: 2 },
    BenchmarkInfo { name: "train11", states: 11, inputs: 2, outputs: 1, rows: 25, tested_bits: 2 },
    BenchmarkInfo { name: "s8", states: 5, inputs: 4, outputs: 1, rows: 20, tested_bits: 2 },
    BenchmarkInfo { name: "s27", states: 6, inputs: 4, outputs: 1, rows: 34, tested_bits: 3 },
    BenchmarkInfo { name: "dk16", states: 27, inputs: 2, outputs: 3, rows: 108, tested_bits: 2 },
    BenchmarkInfo { name: "donfile", states: 24, inputs: 2, outputs: 1, rows: 96, tested_bits: 2 },
    BenchmarkInfo { name: "ex1", states: 20, inputs: 9, outputs: 19, rows: 80, tested_bits: 3 },
    BenchmarkInfo { name: "ex2", states: 19, inputs: 2, outputs: 2, rows: 72, tested_bits: 2 },
    BenchmarkInfo { name: "keyb", states: 19, inputs: 7, outputs: 2, rows: 100, tested_bits: 3 },
    BenchmarkInfo { name: "s386", states: 13, inputs: 7, outputs: 7, rows: 64, tested_bits: 3 },
    BenchmarkInfo { name: "s1", states: 20, inputs: 8, outputs: 6, rows: 80, tested_bits: 3 },
    BenchmarkInfo { name: "s1a", states: 20, inputs: 8, outputs: 6, rows: 80, tested_bits: 3 },
    BenchmarkInfo { name: "sand", states: 32, inputs: 11, outputs: 9, rows: 100, tested_bits: 3 },
    BenchmarkInfo { name: "tma", states: 20, inputs: 7, outputs: 6, rows: 44, tested_bits: 2 },
    BenchmarkInfo { name: "pma", states: 24, inputs: 8, outputs: 8, rows: 73, tested_bits: 2 },
    BenchmarkInfo { name: "styr", states: 30, inputs: 9, outputs: 10, rows: 100, tested_bits: 3 },
    BenchmarkInfo { name: "tbk", states: 32, inputs: 6, outputs: 3, rows: 120, tested_bits: 3 },
    BenchmarkInfo { name: "s420", states: 18, inputs: 19, outputs: 2, rows: 60, tested_bits: 3 },
    BenchmarkInfo { name: "s510", states: 47, inputs: 19, outputs: 7, rows: 77, tested_bits: 2 },
    BenchmarkInfo { name: "planet", states: 48, inputs: 7, outputs: 19, rows: 115, tested_bits: 2 },
    BenchmarkInfo { name: "s820", states: 25, inputs: 18, outputs: 19, rows: 80, tested_bits: 3 },
    BenchmarkInfo { name: "s832", states: 25, inputs: 18, outputs: 19, rows: 80, tested_bits: 3 },
    BenchmarkInfo { name: "scf", states: 121, inputs: 27, outputs: 56, rows: 120, tested_bits: 2 },
];

/// Benchmarks used for Table I (input-encoding / constraint implementation).
pub fn table1_names() -> Vec<&'static str> {
    BENCHMARKS.iter().map(|b| b.name).collect()
}

/// The larger machines used for Table II (full state assignment).
pub fn table2_names() -> Vec<&'static str> {
    [
        "s386", "s1", "dk16", "donfile", "ex1", "ex2", "keyb", "s1a", "sand", "tma", "pma",
        "styr", "tbk", "s420", "s510", "planet", "s820", "s832", "scf",
    ]
    .to_vec()
}

/// Looks up the static description of a benchmark.
pub fn benchmark_info(name: &str) -> Option<&'static BenchmarkInfo> {
    BENCHMARKS.iter().find(|b| b.name == name)
}

/// Synthesizes the named benchmark machine deterministically.
///
/// Returns `None` for names outside the suite. The machine only depends on
/// its name (which seeds the generator) and the static parameters, so every
/// build and run sees identical instances.
pub fn benchmark_fsm(name: &str) -> Option<Fsm> {
    let info = benchmark_info(name)?;
    let mut spec = FsmSpec::new(info.name, info.states, info.inputs, info.outputs);
    spec.max_rows = info.rows;
    spec.max_tested_bits = info.tested_bits;
    Some(generate_fsm(&spec))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_covers_all_table2_names() {
        for name in table2_names() {
            assert!(benchmark_info(name).is_some(), "{name} missing from suite");
        }
    }

    #[test]
    fn benchmarks_synthesize_with_declared_shape() {
        for info in BENCHMARKS.iter().filter(|b| b.states <= 32) {
            let m = benchmark_fsm(info.name).unwrap();
            assert_eq!(m.num_states(), info.states, "{}", info.name);
            assert_eq!(m.num_inputs(), info.inputs, "{}", info.name);
            assert_eq!(m.num_outputs(), info.outputs, "{}", info.name);
            assert!(m.transitions().len() >= info.states, "{}", info.name);
        }
    }

    #[test]
    fn synthesis_is_reproducible() {
        let a = benchmark_fsm("bbara").unwrap();
        let b = benchmark_fsm("bbara").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn unknown_names_are_rejected() {
        assert!(benchmark_fsm("nosuch").is_none());
    }

    #[test]
    fn scf_is_the_largest() {
        let scf = benchmark_info("scf").unwrap();
        assert!(BENCHMARKS.iter().all(|b| b.states <= scf.states));
        let m = benchmark_fsm("scf").unwrap();
        assert_eq!(m.min_code_length(), 7);
    }
}
