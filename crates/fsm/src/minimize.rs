//! State minimization by partition refinement (Moore/Hopcroft style).
//!
//! For completely specified machines this computes the exact equivalent-
//! state partition and rebuilds the reduced machine. Incompletely specified
//! rows are handled conservatively: two states are only merged when they
//! agree (including don't-cares verbatim) on every input minterm, so the
//! reduction is always behaviour-preserving, though not necessarily
//! maximal for ISFSMs (exact ISFSM minimization is NP-hard and out of
//! scope).

use crate::machine::{Fsm, Ternary, Transition};
use crate::simulate::Simulator;

/// The equivalence classes of states, `class[s]` = class id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatePartition {
    /// Class id per state.
    pub class: Vec<usize>,
    /// Number of classes.
    pub num_classes: usize,
}

/// Computes the conservative equivalent-state partition.
///
/// Two states start in the same class when, for every input minterm, the
/// matching rows have identical output fields (ternaries compared
/// verbatim) and identical specified-ness; refinement then splits classes
/// until next states land in equal classes everywhere.
///
/// Exponential in the input count; inputs are capped at 16.
///
/// # Panics
///
/// Panics if the machine has more than 16 inputs.
pub fn state_partition(fsm: &Fsm) -> StatePartition {
    assert!(fsm.num_inputs() <= 16, "too many inputs for minterm sweep");
    let n = fsm.num_states();
    let inputs = 1u32 << fsm.num_inputs();
    let sim = Simulator::new(fsm);

    // Signature: per input minterm, the output field (or None when
    // unspecified).
    let signature = |s: usize| -> Vec<Option<Vec<Ternary>>> {
        (0..inputs)
            .map(|i| sim.lookup(s, i).map(|t| t.output.clone()))
            .collect()
    };

    // Initial partition by output signatures.
    let mut class = vec![0usize; n];
    {
        let mut sigs: Vec<Vec<Option<Vec<Ternary>>>> = Vec::new();
        for (s, slot) in class.iter_mut().enumerate() {
            let sig = signature(s);
            match sigs.iter().position(|x| *x == sig) {
                Some(k) => *slot = k,
                None => {
                    *slot = sigs.len();
                    sigs.push(sig);
                }
            }
        }
    }

    // Refinement: split on next-state class vectors.
    loop {
        let mut table: Vec<(usize, Vec<Option<usize>>)> = Vec::new();
        let mut next = vec![0usize; n];
        for s in 0..n {
            let vector: Vec<Option<usize>> = (0..inputs)
                .map(|i| {
                    sim.lookup(s, i)
                        .and_then(|t| t.to)
                        .map(|to| class[to])
                })
                .collect();
            let key = (class[s], vector);
            match table.iter().position(|x| *x == key) {
                Some(k) => next[s] = k,
                None => {
                    next[s] = table.len();
                    table.push(key);
                }
            }
        }
        if next == class {
            break;
        }
        class = next;
    }

    let num_classes = class.iter().copied().max().map_or(0, |m| m + 1);
    StatePartition { class, num_classes }
}

/// Rebuilds the machine with equivalent states merged. State names are the
/// representative (lowest-index) member of each class; the reset state maps
/// to its class representative.
pub fn minimize_states(fsm: &Fsm) -> Fsm {
    let partition = state_partition(fsm);
    // representative per class = lowest member
    let mut rep: Vec<Option<usize>> = vec![None; partition.num_classes];
    for (s, &k) in partition.class.iter().enumerate() {
        if rep[k].is_none() {
            rep[k] = Some(s);
        }
    }
    // order classes by representative for stable naming
    let mut classes: Vec<usize> = (0..partition.num_classes).collect();
    // Every class has at least one member by construction of `partition`,
    // so a missing representative can only mean an internal inconsistency;
    // fall back to usize::MAX / the class's first name rather than panic.
    classes.sort_by_key(|&k| rep[k].unwrap_or(usize::MAX));
    let mut new_index = vec![0usize; partition.num_classes];
    let mut names = Vec::new();
    for (i, &k) in classes.iter().enumerate() {
        new_index[k] = i;
        let r = rep[k].unwrap_or(0);
        names.push(fsm.states()[r].clone());
    }

    let mut out = Fsm::new(fsm.name(), fsm.num_inputs(), fsm.num_outputs(), names);
    if let Some(r) = fsm.reset() {
        out.set_reset(new_index[partition.class[r]]);
    }
    let mut seen_rows: Vec<Transition> = Vec::new();
    for t in fsm.transitions() {
        // keep rows whose source is a representative (or `*`)
        let keep = match t.from {
            None => true,
            Some(s) => rep[partition.class[s]] == Some(s),
        };
        if !keep {
            continue;
        }
        let mapped = Transition {
            input: t.input.clone(),
            from: t.from.map(|s| new_index[partition.class[s]]),
            to: t.to.map(|s| new_index[partition.class[s]]),
            output: t.output.clone(),
        };
        if !seen_rows.contains(&mapped) {
            seen_rows.push(mapped);
        }
    }
    for t in seen_rows {
        out.push_transition(t);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kiss::parse_kiss;
    use crate::simulate::Simulator;

    /// b and c behave identically; d differs in output.
    const MERGEABLE: &str = "\
.i 1
.o 1
.r a
0 a b 0
1 a c 0
0 b a 1
1 b d 0
0 c a 1
1 c d 0
0 d a 0
1 d d 1
.e
";

    #[test]
    fn equivalent_states_are_found() {
        let m = parse_kiss("t", MERGEABLE).unwrap();
        let p = state_partition(&m);
        assert_eq!(p.class[1], p.class[2], "b and c are equivalent");
        assert_ne!(p.class[1], p.class[3], "d differs");
        assert_eq!(p.num_classes, 3);
    }

    #[test]
    fn minimized_machine_is_smaller_and_equivalent() {
        let m = parse_kiss("t", MERGEABLE).unwrap();
        let r = minimize_states(&m);
        assert_eq!(r.num_states(), 3);
        // behavioural equivalence on input sequences
        let mut a = Simulator::new(&m);
        let mut b = Simulator::new(&r);
        let mut x = 1u32;
        for _ in 0..64 {
            x = x.wrapping_mul(1103515245).wrapping_add(12345);
            let input = x >> 16 & 1;
            let sa = a.step(input);
            let sb = b.step(input);
            match (sa, sb) {
                (Some(sa), Some(sb)) => assert_eq!(sa.output, sb.output),
                (None, None) => {}
                other => panic!("specified-ness diverged: {other:?}"),
            }
        }
    }

    #[test]
    fn distinct_machines_stay_put() {
        let text = ".i 1\n.o 1\n0 a b 0\n1 a a 1\n0 b a 1\n1 b b 0\n.e\n";
        let m = parse_kiss("t", text).unwrap();
        let r = minimize_states(&m);
        assert_eq!(r.num_states(), 2);
    }

    #[test]
    fn refinement_separates_on_successors() {
        // a and b have equal outputs but successors of different classes.
        let text = "\
.i 1
.o 1
0 a c 0
1 a c 0
0 b d 0
1 b d 0
0 c c 1
1 c c 1
0 d d 0
1 d d 0
.e
";
        let m = parse_kiss("t", text).unwrap();
        let p = state_partition(&m);
        assert_ne!(p.class[0], p.class[1]);
    }

    #[test]
    fn generated_twins_are_merged() {
        // the suite generator seeds twin states; minimization must find
        // some of them on a twin-heavy machine
        let m = crate::suite::benchmark_fsm("ex3").unwrap();
        let r = minimize_states(&m);
        assert!(r.num_states() <= m.num_states());
    }
}
