//! The finite-state-machine data model (KISS2 semantics).

use std::collections::BTreeMap;
use std::fmt;

/// A ternary value of a primary-input literal or primary-output value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ternary {
    /// Logic 0.
    Zero,
    /// Logic 1.
    One,
    /// Don't care (`-`).
    DontCare,
}

impl Ternary {
    /// Parses one KISS2 character.
    pub fn from_char(c: char) -> Option<Self> {
        match c {
            '0' => Some(Ternary::Zero),
            '1' => Some(Ternary::One),
            '-' | '2' | '~' => Some(Ternary::DontCare),
            _ => None,
        }
    }

    /// The KISS2 character.
    pub fn to_char(self) -> char {
        match self {
            Ternary::Zero => '0',
            Ternary::One => '1',
            Ternary::DontCare => '-',
        }
    }
}

/// One row of a KISS2 state-transition table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transition {
    /// Primary-input field, one [`Ternary`] per input.
    pub input: Vec<Ternary>,
    /// Present state, `None` for the `*` (any state) row.
    pub from: Option<usize>,
    /// Next state, `None` for a `*` (unspecified) next state.
    pub to: Option<usize>,
    /// Primary-output field.
    pub output: Vec<Ternary>,
}

/// A symbolic finite state machine: named states plus a state-transition
/// table over ternary inputs/outputs, as read from a KISS2 file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fsm {
    name: String,
    num_inputs: usize,
    num_outputs: usize,
    states: Vec<String>,
    reset: Option<usize>,
    transitions: Vec<Transition>,
}

impl Fsm {
    /// Creates an FSM with the given interface and state names.
    ///
    /// # Panics
    ///
    /// Panics if state names are not unique.
    pub fn new(name: &str, num_inputs: usize, num_outputs: usize, states: Vec<String>) -> Self {
        let mut seen = BTreeMap::new();
        for (i, s) in states.iter().enumerate() {
            assert!(
                seen.insert(s.clone(), i).is_none(),
                "duplicate state name {s:?}"
            );
        }
        Fsm {
            name: name.to_owned(),
            num_inputs,
            num_outputs,
            states,
            reset: None,
            transitions: Vec::new(),
        }
    }

    /// The machine's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of primary outputs.
    pub fn num_outputs(&self) -> usize {
        self.num_outputs
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// State names in index order.
    pub fn states(&self) -> &[String] {
        &self.states
    }

    /// The state index of `name`.
    pub fn state_index(&self, name: &str) -> Option<usize> {
        self.states.iter().position(|s| s == name)
    }

    /// The reset state, if declared.
    pub fn reset(&self) -> Option<usize> {
        self.reset
    }

    /// Declares the reset state.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    pub fn set_reset(&mut self, state: usize) {
        assert!(state < self.states.len(), "reset state out of range");
        self.reset = Some(state);
    }

    /// The transition rows.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Appends a transition row.
    ///
    /// # Panics
    ///
    /// Panics if field widths or state indices are inconsistent with the
    /// machine.
    pub fn push_transition(&mut self, t: Transition) {
        assert_eq!(t.input.len(), self.num_inputs, "input width mismatch");
        assert_eq!(t.output.len(), self.num_outputs, "output width mismatch");
        if let Some(s) = t.from {
            assert!(s < self.states.len(), "present state out of range");
        }
        if let Some(s) = t.to {
            assert!(s < self.states.len(), "next state out of range");
        }
        self.transitions.push(t);
    }

    /// Minimum binary code length that distinguishes all states:
    /// `ceil(log2(num_states))`, at least 1.
    pub fn min_code_length(&self) -> usize {
        min_code_length(self.num_states())
    }

    /// States with at least one outgoing transition (by explicit row; `*`
    /// rows count for all states).
    pub fn states_with_transitions(&self) -> Vec<bool> {
        let mut seen = vec![false; self.num_states()];
        for t in &self.transitions {
            match t.from {
                Some(s) => seen[s] = true,
                None => seen.iter_mut().for_each(|b| *b = true),
            }
        }
        seen
    }
}

/// `ceil(log2(n))` clamped below by 1 — the minimum number of encoding bits
/// for `n` symbols.
pub fn min_code_length(n: usize) -> usize {
    if n <= 2 {
        1
    } else {
        (usize::BITS - (n - 1).leading_zeros()) as usize
    }
}

impl fmt::Display for Fsm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} states, {} inputs, {} outputs, {} transitions",
            self.name,
            self.num_states(),
            self.num_inputs,
            self.num_outputs,
            self.transitions.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple() -> Fsm {
        let mut m = Fsm::new(
            "toy",
            2,
            1,
            vec!["a".into(), "b".into(), "c".into()],
        );
        m.push_transition(Transition {
            input: vec![Ternary::One, Ternary::DontCare],
            from: Some(0),
            to: Some(1),
            output: vec![Ternary::One],
        });
        m
    }

    #[test]
    fn basic_accessors() {
        let m = simple();
        assert_eq!(m.num_states(), 3);
        assert_eq!(m.state_index("b"), Some(1));
        assert_eq!(m.state_index("z"), None);
        assert_eq!(m.transitions().len(), 1);
    }

    #[test]
    fn min_code_length_values() {
        assert_eq!(min_code_length(1), 1);
        assert_eq!(min_code_length(2), 1);
        assert_eq!(min_code_length(3), 2);
        assert_eq!(min_code_length(4), 2);
        assert_eq!(min_code_length(5), 3);
        assert_eq!(min_code_length(16), 4);
        assert_eq!(min_code_length(17), 5);
        assert_eq!(min_code_length(121), 7);
    }

    #[test]
    #[should_panic]
    fn duplicate_states_rejected() {
        let _ = Fsm::new("bad", 1, 1, vec!["a".into(), "a".into()]);
    }

    #[test]
    #[should_panic]
    fn wrong_width_transition_rejected() {
        let mut m = simple();
        m.push_transition(Transition {
            input: vec![Ternary::One],
            from: Some(0),
            to: Some(1),
            output: vec![Ternary::One],
        });
    }

    #[test]
    fn wildcard_rows_mark_all_states() {
        let mut m = simple();
        m.push_transition(Transition {
            input: vec![Ternary::DontCare, Ternary::DontCare],
            from: None,
            to: Some(0),
            output: vec![Ternary::DontCare],
        });
        assert!(m.states_with_transitions().iter().all(|&b| b));
    }
}
