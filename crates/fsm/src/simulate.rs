//! Symbolic FSM simulation.
//!
//! Executes a machine on concrete input vectors, row by row, producing the
//! next state and the (ternary) output vector. Used by the integration
//! tests to prove that an encoded, minimized implementation behaves exactly
//! like the symbolic machine, and by clients that want traces.

use crate::machine::{Fsm, Ternary};

/// The outcome of one simulation step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step {
    /// State before the step.
    pub from: usize,
    /// Applied input vector, bit `b` = input `b`.
    pub input: u32,
    /// Next state, `None` when the matching row leaves it unspecified
    /// (`*`).
    pub to: Option<usize>,
    /// Output vector, one ternary per primary output (don't-cares stay
    /// unresolved).
    pub output: Vec<Ternary>,
}

/// A deterministic simulator over an [`Fsm`].
#[derive(Debug, Clone)]
pub struct Simulator<'a> {
    fsm: &'a Fsm,
    state: usize,
}

impl<'a> Simulator<'a> {
    /// Starts at the machine's reset state (or state 0 when undeclared).
    pub fn new(fsm: &'a Fsm) -> Self {
        Simulator {
            fsm,
            state: fsm.reset().unwrap_or(0),
        }
    }

    /// Current state.
    pub fn state(&self) -> usize {
        self.state
    }

    /// Forces the current state.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn set_state(&mut self, state: usize) {
        assert!(state < self.fsm.num_states(), "state out of range");
        self.state = state;
    }

    /// Finds the transition row matching `(state, input)`: explicit rows
    /// first, then `*`-state rows. `None` when the behaviour is unspecified.
    pub fn lookup(&self, state: usize, input: u32) -> Option<&'a crate::machine::Transition> {
        let matches_input = |t: &crate::machine::Transition| {
            t.input.iter().enumerate().all(|(b, lit)| match lit {
                Ternary::Zero => input >> b & 1 == 0,
                Ternary::One => input >> b & 1 == 1,
                Ternary::DontCare => true,
            })
        };
        self.fsm
            .transitions()
            .iter()
            .find(|t| t.from == Some(state) && matches_input(t))
            .or_else(|| {
                self.fsm
                    .transitions()
                    .iter()
                    .find(|t| t.from.is_none() && matches_input(t))
            })
    }

    /// Applies one input vector. Returns `None` when no row matches (the
    /// machine's behaviour is unspecified for this input); the state is then
    /// left unchanged.
    pub fn step(&mut self, input: u32) -> Option<Step> {
        let t = self.lookup(self.state, input)?;
        let step = Step {
            from: self.state,
            input,
            to: t.to,
            output: t.output.clone(),
        };
        if let Some(to) = t.to {
            self.state = to;
        }
        Some(step)
    }

    /// Runs a whole input sequence, collecting the specified steps.
    pub fn run<I: IntoIterator<Item = u32>>(&mut self, inputs: I) -> Vec<Step> {
        inputs.into_iter().filter_map(|i| self.step(i)).collect()
    }
}

/// Whether the machine is *completely specified*: every (state, input
/// minterm) pair matches some row. Exponential in the input count; intended
/// for machines with few inputs.
pub fn completely_specified(fsm: &Fsm) -> bool {
    let sim = Simulator::new(fsm);
    let inputs = 1u32 << fsm.num_inputs().min(20);
    (0..fsm.num_states()).all(|s| (0..inputs).all(|i| sim.lookup(s, i).is_some()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kiss::parse_kiss;

    const TOY: &str = "\
.i 2
.o 1
.r a
-0 a a 0
01 a b 1
11 a c 1
-- b a -
0- c c 0
1- c b 1
.e
";

    #[test]
    fn steps_follow_the_table() {
        let m = parse_kiss("toy", TOY).unwrap();
        let mut sim = Simulator::new(&m);
        assert_eq!(sim.state(), 0);
        let s = sim.step(0b01).unwrap(); // input x0=1? bit0=1,bit1=0 -> "01"? note bit order
        // input bits: bit b corresponds to input column b; row "01" means
        // x0=0, x1=1 -> that is input = 0b10.
        assert_eq!(s.from, 0);
        let mut sim = Simulator::new(&m);
        let s = sim.step(0b10).unwrap(); // x0=0, x1=1 matches "01 a b 1"
        assert_eq!(s.to, Some(1));
        assert_eq!(sim.state(), 1);
        assert_eq!(s.output, vec![Ternary::One]);
    }

    #[test]
    fn run_executes_sequences() {
        let m = parse_kiss("toy", TOY).unwrap();
        let mut sim = Simulator::new(&m);
        let steps = sim.run([0b10, 0b00, 0b11]);
        assert_eq!(steps.len(), 3);
        // a -> b -> a -> c
        assert_eq!(sim.state(), 2);
    }

    #[test]
    fn toy_machine_is_completely_specified() {
        let m = parse_kiss("toy", TOY).unwrap();
        assert!(completely_specified(&m));
    }

    #[test]
    fn unspecified_inputs_return_none() {
        let text = ".i 1\n.o 1\n1 a a 1\n.e\n";
        let m = parse_kiss("partial", text).unwrap();
        let mut sim = Simulator::new(&m);
        assert!(sim.step(0).is_none());
        assert_eq!(sim.state(), 0);
        assert!(!completely_specified(&m));
    }

    #[test]
    fn star_state_rows_are_fallbacks() {
        let text = ".i 1\n.o 1\n1 a b 1\n- * a 0\n1 b b 1\n.e\n";
        let m = parse_kiss("star", text).unwrap();
        let mut sim = Simulator::new(&m);
        sim.set_state(1);
        let s = sim.step(0).unwrap(); // only the * row matches
        assert_eq!(s.to, Some(0));
    }

    #[test]
    fn generated_suite_machines_are_completely_specified_per_row_structure() {
        let m = crate::suite::benchmark_fsm("s8").unwrap();
        // generator states always have a branch for every tested-bit value
        assert!(completely_specified(&m));
    }
}
