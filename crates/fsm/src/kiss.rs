//! KISS2 state-transition-table parsing and printing.

use crate::machine::{Fsm, Ternary, Transition};
use picola_logic::chaos;
use picola_logic::error::ParseLimits;
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

/// Error produced when parsing a KISS2 file fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseKissError {
    line: usize,
    message: String,
}

impl ParseKissError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        ParseKissError {
            line,
            message: message.into(),
        }
    }

    /// 1-based line of the error, 0 for file-level problems.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseKissError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "invalid KISS2: {}", self.message)
        } else {
            write!(f, "invalid KISS2 at line {}: {}", self.line, self.message)
        }
    }
}

impl Error for ParseKissError {}

struct RawRow {
    line: usize,
    input: String,
    from: String,
    to: String,
    output: String,
}

/// Parses a KISS2 state-transition table with default [`ParseLimits`].
///
/// Recognized directives: `.i`, `.o`, `.p`, `.s`, `.r`, `.e`/`.end`;
/// comments start with `#`. State names are collected in order of first
/// appearance (present state first), with the `.r` reset state forced to
/// index 0 as NOVA and most state-assignment tools do.
///
/// # Errors
///
/// Returns [`ParseKissError`] on malformed directives, field-width
/// mismatches, unknown characters, or — when an explicit `.s` count is
/// given — a transition or `.r` line naming more states than declared.
pub fn parse_kiss(name: &str, text: &str) -> Result<Fsm, ParseKissError> {
    parse_kiss_with(name, text, &ParseLimits::default())
}

/// Parses a KISS2 state-transition table, enforcing explicit input
/// `limits` so untrusted files fail fast with a line-numbered diagnostic
/// instead of exhausting memory.
///
/// # Errors
///
/// As [`parse_kiss`], plus an error when any of the `limits` is exceeded.
pub fn parse_kiss_with(
    name: &str,
    text: &str,
    limits: &ParseLimits,
) -> Result<Fsm, ParseKissError> {
    if let Some(msg) = chaos::fail_point("kiss.parse") {
        return Err(ParseKissError::new(0, msg));
    }
    if text
        .lines()
        .all(|l| l.split('#').next().unwrap_or("").trim().is_empty())
    {
        // A zero-length frame is what a dropped socket delivers; name it
        // instead of the misleading "missing .i directive".
        return Err(ParseKissError::new(
            0,
            "empty input: zero-length or whitespace-only KISS2",
        ));
    }
    let mut ni: Option<usize> = None;
    let mut no: Option<usize> = None;
    let mut declared_states: Option<usize> = None;
    let mut reset_name: Option<(String, usize)> = None;
    let mut rows: Vec<RawRow> = Vec::new();
    let mut terminated = false;

    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        if raw.len() > limits.max_line_len {
            return Err(ParseKissError::new(
                lineno,
                format!(
                    "line length {} exceeds the limit of {} bytes",
                    raw.len(),
                    limits.max_line_len
                ),
            ));
        }
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('.') {
            let mut it = rest.split_whitespace();
            let key = it.next().unwrap_or("");
            match key {
                "i" => {
                    let n: usize = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| ParseKissError::new(lineno, ".i needs a count"))?;
                    if n > limits.max_inputs {
                        return Err(ParseKissError::new(
                            lineno,
                            format!(".i {n} exceeds the limit of {} inputs", limits.max_inputs),
                        ));
                    }
                    ni = Some(n);
                }
                "o" => {
                    let n: usize = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| ParseKissError::new(lineno, ".o needs a count"))?;
                    if n > limits.max_outputs {
                        return Err(ParseKissError::new(
                            lineno,
                            format!(".o {n} exceeds the limit of {} outputs", limits.max_outputs),
                        ));
                    }
                    no = Some(n);
                }
                "s" => {
                    let n: usize = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| ParseKissError::new(lineno, ".s needs a count"))?;
                    if n > limits.max_states {
                        return Err(ParseKissError::new(
                            lineno,
                            format!(".s {n} exceeds the limit of {} states", limits.max_states),
                        ));
                    }
                    declared_states = Some(n);
                }
                "p" => { /* informational */ }
                "r" => reset_name = it.next().map(|s| (s.to_owned(), lineno)),
                "e" | "end" => {
                    terminated = true;
                    break;
                }
                _ => {
                    return Err(ParseKissError::new(
                        lineno,
                        format!("unknown directive .{key}"),
                    ))
                }
            }
        } else {
            let fields: Vec<&str> = line.split_whitespace().collect();
            if fields.len() != 4 {
                return Err(ParseKissError::new(
                    lineno,
                    format!("expected 4 fields, found {}", fields.len()),
                ));
            }
            if rows.len() >= limits.max_terms {
                return Err(ParseKissError::new(
                    lineno,
                    format!("more than {} transitions", limits.max_terms),
                ));
            }
            rows.push(RawRow {
                line: lineno,
                input: fields[0].to_owned(),
                from: fields[1].to_owned(),
                to: fields[2].to_owned(),
                output: fields[3].to_owned(),
            });
        }
    }

    if !terminated && !text.ends_with('\n') {
        // No `.e` terminator and the final line is cut short: the frame
        // was truncated in transit (dropped socket, partial read).
        return Err(ParseKissError::new(
            text.lines().count(),
            "truncated input: final line is unterminated and no .e terminator was seen",
        ));
    }
    let ni = ni.ok_or_else(|| ParseKissError::new(0, "missing .i directive"))?;
    let no = no.ok_or_else(|| ParseKissError::new(0, "missing .o directive"))?;

    // Collect state names: reset first, then order of appearance. Under an
    // explicit `.s` count, a line naming a state beyond that count is an
    // error at that line.
    let mut states: Vec<String> = Vec::new();
    let add_state =
        |states: &mut Vec<String>, s: &str, lineno: usize| -> Result<(), ParseKissError> {
            if s == "*" || states.iter().any(|x| x == s) {
                return Ok(());
            }
            if let Some(n) = declared_states {
                if states.len() >= n {
                    return Err(ParseKissError::new(
                        lineno,
                        format!("state {s:?} exceeds the declared .s {n} state count"),
                    ));
                }
            }
            if states.len() >= limits.max_states {
                return Err(ParseKissError::new(
                    lineno,
                    format!("more than {} states", limits.max_states),
                ));
            }
            states.push(s.to_owned());
            Ok(())
        };
    if let Some((r, lineno)) = &reset_name {
        add_state(&mut states, r, *lineno)?;
    }
    for row in &rows {
        add_state(&mut states, &row.from, row.line)?;
        add_state(&mut states, &row.to, row.line)?;
    }
    if states.is_empty() {
        return Err(ParseKissError::new(0, "no states found"));
    }

    let mut fsm = Fsm::new(name, ni, no, states);
    if let Some((r, lineno)) = &reset_name {
        let idx = fsm.state_index(r).ok_or_else(|| {
            ParseKissError::new(*lineno, format!("reset state {r:?} was not registered"))
        })?;
        fsm.set_reset(idx);
    }

    for row in rows {
        let parse_field = |s: &str, width: usize, what: &str| -> Result<Vec<Ternary>, ParseKissError> {
            if s.len() != width {
                return Err(ParseKissError::new(
                    row.line,
                    format!("{what} field has width {}, expected {width}", s.len()),
                ));
            }
            s.chars()
                .map(|c| {
                    Ternary::from_char(c).ok_or_else(|| {
                        ParseKissError::new(row.line, format!("bad {what} character {c:?}"))
                    })
                })
                .collect()
        };
        let input = parse_field(&row.input, ni, "input")?;
        let output = parse_field(&row.output, no, "output")?;
        let state_of = |s: &str| -> Result<Option<usize>, ParseKissError> {
            if s == "*" {
                return Ok(None);
            }
            fsm.state_index(s)
                .map(Some)
                .ok_or_else(|| ParseKissError::new(row.line, format!("unknown state {s:?}")))
        };
        let from = state_of(&row.from)?;
        let to = state_of(&row.to)?;
        fsm.push_transition(Transition {
            input,
            from,
            to,
            output,
        });
    }

    Ok(fsm)
}

/// Serializes an FSM back to KISS2.
pub fn write_kiss(fsm: &Fsm) -> String {
    let mut out = String::new();
    let _ = writeln!(out, ".i {}", fsm.num_inputs());
    let _ = writeln!(out, ".o {}", fsm.num_outputs());
    let _ = writeln!(out, ".p {}", fsm.transitions().len());
    let _ = writeln!(out, ".s {}", fsm.num_states());
    if let Some(r) = fsm.reset() {
        let _ = writeln!(out, ".r {}", fsm.states()[r]);
    }
    for t in fsm.transitions() {
        let input: String = t.input.iter().map(|x| x.to_char()).collect();
        let output: String = t.output.iter().map(|x| x.to_char()).collect();
        let from = t.from.map_or("*".to_owned(), |s| fsm.states()[s].clone());
        let to = t.to.map_or("*".to_owned(), |s| fsm.states()[s].clone());
        let _ = writeln!(out, "{input} {from} {to} {output}");
    }
    let _ = writeln!(out, ".e");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const LION_LIKE: &str = "\
# a small 4-state machine
.i 2
.o 1
.r st0
-0 st0 st0 0
01 st0 st1 0
11 st1 st1 1
10 st1 st2 1
0- st2 st3 1
-1 st3 st0 0
.e
";

    #[test]
    fn parse_small_machine() {
        let m = parse_kiss("lionish", LION_LIKE).unwrap();
        assert_eq!(m.num_inputs(), 2);
        assert_eq!(m.num_outputs(), 1);
        assert_eq!(m.num_states(), 4);
        assert_eq!(m.reset(), Some(0));
        assert_eq!(m.transitions().len(), 6);
        assert_eq!(m.states()[0], "st0");
    }

    #[test]
    fn roundtrip() {
        let m = parse_kiss("lionish", LION_LIKE).unwrap();
        let text = write_kiss(&m);
        let back = parse_kiss("lionish", &text).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn wildcard_states() {
        let text = ".i 1\n.o 1\n1 * s1 1\n0 s1 * 0\n.e\n";
        let m = parse_kiss("w", text).unwrap();
        assert_eq!(m.transitions()[0].from, None);
        assert_eq!(m.transitions()[1].to, None);
        assert_eq!(m.num_states(), 1);
    }

    #[test]
    fn reset_state_is_index_zero() {
        let text = ".i 1\n.o 1\n.r sB\n1 sA sB 1\n0 sB sA 0\n.e\n";
        let m = parse_kiss("r", text).unwrap();
        assert_eq!(m.states()[0], "sB");
        assert_eq!(m.reset(), Some(0));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let text = ".i 2\n.o 1\n1 st0 st1 1\n.e\n";
        let err = parse_kiss("bad", text).unwrap_err();
        assert_eq!(err.line(), 3);
        assert!(err.to_string().contains("width"));
    }

    #[test]
    fn missing_directives_rejected() {
        assert!(parse_kiss("x", "1 a b 1\n").is_err());
    }

    #[test]
    fn bad_characters_rejected() {
        let text = ".i 1\n.o 1\nX s0 s1 1\n.e\n";
        assert!(parse_kiss("x", text).is_err());
    }

    #[test]
    fn undeclared_state_under_explicit_count_is_an_error() {
        let text = ".i 1\n.o 1\n.s 2\n1 s0 s1 1\n0 s1 s2 0\n.e\n";
        let err = parse_kiss("x", text).unwrap_err();
        assert_eq!(err.line(), 5);
        assert!(err.to_string().contains("s2"), "{err}");
    }

    #[test]
    fn reset_state_beyond_declared_count_is_an_error() {
        let text = ".i 1\n.o 1\n.s 2\n.r sR\n1 s0 s1 1\n0 s1 s0 0\n.e\n";
        let err = parse_kiss("x", text).unwrap_err();
        // `.r sR` claims the first slot; s0/s1 then overflow the count at
        // the first transition line.
        assert_eq!(err.line(), 5);
    }

    #[test]
    fn matching_declared_count_is_accepted() {
        let text = ".i 1\n.o 1\n.s 2\n1 s0 s1 1\n0 s1 s0 0\n.e\n";
        let m = parse_kiss("x", text).unwrap();
        assert_eq!(m.num_states(), 2);
    }

    #[test]
    fn state_limit_enforced() {
        let limits = ParseLimits {
            max_states: 1,
            ..ParseLimits::default()
        };
        let text = ".i 1\n.o 1\n1 s0 s1 1\n.e\n";
        let err = parse_kiss_with("x", text, &limits).unwrap_err();
        assert_eq!(err.line(), 3);
    }

    #[test]
    fn transition_limit_enforced() {
        let limits = ParseLimits {
            max_terms: 1,
            ..ParseLimits::default()
        };
        let text = ".i 1\n.o 1\n1 s0 s1 1\n0 s1 s0 0\n.e\n";
        let err = parse_kiss_with("x", text, &limits).unwrap_err();
        assert_eq!(err.line(), 4);
    }

    #[test]
    fn overlong_line_rejected() {
        let limits = ParseLimits {
            max_line_len: 8,
            ..ParseLimits::default()
        };
        let text = format!(".i 1\n.o 1\n1 {} s1 1\n.e\n", "s".repeat(32));
        let err = parse_kiss_with("x", &text, &limits).unwrap_err();
        assert_eq!(err.line(), 3);
    }

    #[test]
    fn injected_parse_fault_surfaces_as_error() {
        let _guard = chaos::arm("kiss.parse", 0);
        let err = parse_kiss("lionish", LION_LIKE).unwrap_err();
        assert!(err.to_string().contains("injected"), "{err}");
    }

    #[test]
    fn empty_input_named_explicitly() {
        for text in ["", "  \n\n", "# comment only\n"] {
            let err = parse_kiss("x", text).unwrap_err();
            assert!(err.to_string().contains("empty input"), "{text:?}: {err}");
            assert_eq!(err.line(), 0);
        }
    }

    #[test]
    fn truncated_frame_rejected_with_line_number() {
        // as if the socket dropped mid-field: no trailing newline, no .e
        let text = ".i 2\n.o 2\n-0 st0 st0 00\n01 st0 st1 0";
        let err = parse_kiss("x", text).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
        assert_eq!(err.line(), 4);
        // the same bytes with the frame completed parse fine
        assert!(parse_kiss("x", ".i 2\n.o 2\n-0 st0 st0 00\n01 st0 st1 01\n").is_ok());
        // an unterminated line is fine when .e closed the frame first
        assert!(parse_kiss("x", ".i 2\n.o 2\n-0 st0 st0 00\n.e").is_ok());
    }
}
