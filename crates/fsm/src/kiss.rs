//! KISS2 state-transition-table parsing and printing.

use crate::machine::{Fsm, Ternary, Transition};
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

/// Error produced when parsing a KISS2 file fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseKissError {
    line: usize,
    message: String,
}

impl ParseKissError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        ParseKissError {
            line,
            message: message.into(),
        }
    }

    /// 1-based line of the error, 0 for file-level problems.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseKissError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "invalid KISS2: {}", self.message)
        } else {
            write!(f, "invalid KISS2 at line {}: {}", self.line, self.message)
        }
    }
}

impl Error for ParseKissError {}

struct RawRow {
    line: usize,
    input: String,
    from: String,
    to: String,
    output: String,
}

/// Parses a KISS2 state-transition table.
///
/// Recognized directives: `.i`, `.o`, `.p`, `.s`, `.r`, `.e`/`.end`;
/// comments start with `#`. State names are collected in order of first
/// appearance (present state first), with the `.r` reset state forced to
/// index 0 as NOVA and most state-assignment tools do.
///
/// # Errors
///
/// Returns [`ParseKissError`] on malformed directives, field-width
/// mismatches, or unknown characters.
pub fn parse_kiss(name: &str, text: &str) -> Result<Fsm, ParseKissError> {
    let mut ni: Option<usize> = None;
    let mut no: Option<usize> = None;
    let mut reset_name: Option<String> = None;
    let mut rows: Vec<RawRow> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let lineno = lineno + 1;
        if let Some(rest) = line.strip_prefix('.') {
            let mut it = rest.split_whitespace();
            let key = it.next().unwrap_or("");
            match key {
                "i" => {
                    ni = Some(
                        it.next()
                            .and_then(|v| v.parse().ok())
                            .ok_or_else(|| ParseKissError::new(lineno, ".i needs a count"))?,
                    )
                }
                "o" => {
                    no = Some(
                        it.next()
                            .and_then(|v| v.parse().ok())
                            .ok_or_else(|| ParseKissError::new(lineno, ".o needs a count"))?,
                    )
                }
                "p" | "s" => { /* informational */ }
                "r" => reset_name = it.next().map(str::to_owned),
                "e" | "end" => break,
                _ => {
                    return Err(ParseKissError::new(
                        lineno,
                        format!("unknown directive .{key}"),
                    ))
                }
            }
        } else {
            let fields: Vec<&str> = line.split_whitespace().collect();
            if fields.len() != 4 {
                return Err(ParseKissError::new(
                    lineno,
                    format!("expected 4 fields, found {}", fields.len()),
                ));
            }
            rows.push(RawRow {
                line: lineno,
                input: fields[0].to_owned(),
                from: fields[1].to_owned(),
                to: fields[2].to_owned(),
                output: fields[3].to_owned(),
            });
        }
    }

    let ni = ni.ok_or_else(|| ParseKissError::new(0, "missing .i directive"))?;
    let no = no.ok_or_else(|| ParseKissError::new(0, "missing .o directive"))?;

    // Collect state names: reset first, then order of appearance.
    let mut states: Vec<String> = Vec::new();
    let add_state = |states: &mut Vec<String>, s: &str| {
        if s != "*" && !states.iter().any(|x| x == s) {
            states.push(s.to_owned());
        }
    };
    if let Some(r) = &reset_name {
        add_state(&mut states, r);
    }
    for row in &rows {
        add_state(&mut states, &row.from);
        add_state(&mut states, &row.to);
    }
    if states.is_empty() {
        return Err(ParseKissError::new(0, "no states found"));
    }

    let mut fsm = Fsm::new(name, ni, no, states);
    if let Some(r) = &reset_name {
        let idx = fsm.state_index(r).expect("reset state was registered");
        fsm.set_reset(idx);
    }

    for row in rows {
        let parse_field = |s: &str, width: usize, what: &str| -> Result<Vec<Ternary>, ParseKissError> {
            if s.len() != width {
                return Err(ParseKissError::new(
                    row.line,
                    format!("{what} field has width {}, expected {width}", s.len()),
                ));
            }
            s.chars()
                .map(|c| {
                    Ternary::from_char(c).ok_or_else(|| {
                        ParseKissError::new(row.line, format!("bad {what} character {c:?}"))
                    })
                })
                .collect()
        };
        let input = parse_field(&row.input, ni, "input")?;
        let output = parse_field(&row.output, no, "output")?;
        let from = if row.from == "*" {
            None
        } else {
            Some(fsm.state_index(&row.from).expect("state registered"))
        };
        let to = if row.to == "*" {
            None
        } else {
            Some(fsm.state_index(&row.to).expect("state registered"))
        };
        fsm.push_transition(Transition {
            input,
            from,
            to,
            output,
        });
    }

    Ok(fsm)
}

/// Serializes an FSM back to KISS2.
pub fn write_kiss(fsm: &Fsm) -> String {
    let mut out = String::new();
    let _ = writeln!(out, ".i {}", fsm.num_inputs());
    let _ = writeln!(out, ".o {}", fsm.num_outputs());
    let _ = writeln!(out, ".p {}", fsm.transitions().len());
    let _ = writeln!(out, ".s {}", fsm.num_states());
    if let Some(r) = fsm.reset() {
        let _ = writeln!(out, ".r {}", fsm.states()[r]);
    }
    for t in fsm.transitions() {
        let input: String = t.input.iter().map(|x| x.to_char()).collect();
        let output: String = t.output.iter().map(|x| x.to_char()).collect();
        let from = t.from.map_or("*".to_owned(), |s| fsm.states()[s].clone());
        let to = t.to.map_or("*".to_owned(), |s| fsm.states()[s].clone());
        let _ = writeln!(out, "{input} {from} {to} {output}");
    }
    let _ = writeln!(out, ".e");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const LION_LIKE: &str = "\
# a small 4-state machine
.i 2
.o 1
.r st0
-0 st0 st0 0
01 st0 st1 0
11 st1 st1 1
10 st1 st2 1
0- st2 st3 1
-1 st3 st0 0
.e
";

    #[test]
    fn parse_small_machine() {
        let m = parse_kiss("lionish", LION_LIKE).unwrap();
        assert_eq!(m.num_inputs(), 2);
        assert_eq!(m.num_outputs(), 1);
        assert_eq!(m.num_states(), 4);
        assert_eq!(m.reset(), Some(0));
        assert_eq!(m.transitions().len(), 6);
        assert_eq!(m.states()[0], "st0");
    }

    #[test]
    fn roundtrip() {
        let m = parse_kiss("lionish", LION_LIKE).unwrap();
        let text = write_kiss(&m);
        let back = parse_kiss("lionish", &text).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn wildcard_states() {
        let text = ".i 1\n.o 1\n1 * s1 1\n0 s1 * 0\n.e\n";
        let m = parse_kiss("w", text).unwrap();
        assert_eq!(m.transitions()[0].from, None);
        assert_eq!(m.transitions()[1].to, None);
        assert_eq!(m.num_states(), 1);
    }

    #[test]
    fn reset_state_is_index_zero() {
        let text = ".i 1\n.o 1\n.r sB\n1 sA sB 1\n0 sB sA 0\n.e\n";
        let m = parse_kiss("r", text).unwrap();
        assert_eq!(m.states()[0], "sB");
        assert_eq!(m.reset(), Some(0));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let text = ".i 2\n.o 1\n1 st0 st1 1\n.e\n";
        let err = parse_kiss("bad", text).unwrap_err();
        assert_eq!(err.line(), 3);
        assert!(err.to_string().contains("width"));
    }

    #[test]
    fn missing_directives_rejected() {
        assert!(parse_kiss("x", "1 a b 1\n").is_err());
    }

    #[test]
    fn bad_characters_rejected() {
        let text = ".i 1\n.o 1\nX s0 s1 1\n.e\n";
        assert!(parse_kiss("x", text).is_err());
    }
}
