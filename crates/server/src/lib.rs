//! # picola-server — the fault-tolerant encoding daemon
//!
//! Promotes the budget-bounded, panic-free PICOLA core into a long-running
//! service: KISS2 / MV-PLA encoding jobs arrive as newline-framed JSON over
//! TCP ([`protocol`]), pass admission control (bounded queue with
//! load-shedding — a full queue answers `rejected` + `retry_after_ms`
//! instead of queueing unboundedly), and run on a supervised worker pool
//! where every job executes under `catch_unwind` with a per-job
//! [`Budget`] deadline. The robustness contract, enforced by the chaos
//! sweep in `tests/server_lifecycle.rs`:
//!
//! * every accepted frame gets exactly one terminal response — `ok`,
//!   `degraded` (best-so-far result, never a dropped connection on
//!   timeout), `error` (permanent, with the CLI exit-code contract), or
//!   `rejected` (transient, retry after the hinted delay);
//! * a worker panic mid-job is contained by `catch_unwind`: the job
//!   answers `error`/70 and the worker thread lives on;
//! * minimization warmth is shared across requests through the engine's
//!   [`GlobalMinimizeCache`] without ever changing results (exact
//!   order-sensitive keying; poisoned shards degrade to honest misses);
//! * shutdown drains: in-flight jobs finish or degrade, queued jobs run,
//!   new jobs are refused, and every thread is joined — no leaks.
//!
//! Fault injection rides the workspace-wide [`chaos`] harness: trigger
//! points `server.queue` (admission reports a full queue), `server.worker`
//! (worker panics mid-job), `server.socket` (connection drops
//! mid-response), `cache.shard` (shared-cache shard poisoned), and
//! `store.io` (the content-addressed result store's disk fails — lookups
//! degrade to recomputation, inserts are skipped) are all deterministic
//! and sweepable.

#![warn(missing_docs)]

pub mod client;
pub mod json;
pub mod protocol;

pub use client::{Client, ClientError, RetryPolicy, SubmitOutcome};
pub use protocol::{JobKind, JobRequest, JobResponse, Status};

use crate::json::Object;
use crate::protocol::{CODE_INTERNAL, CODE_INVALID, CODE_OK, CODE_PARSE, CODE_TRANSIENT};
use picola_constraints::extract_constraints;
use picola_core::engine::{EngineConfig, EngineHandle, Job, JobOutput};
use picola_core::store::{key_for, ResultStore, StoredResult};
use picola_core::PicolaError;
use picola_fsm::{parse_kiss, symbolic_cover};
use picola_logic::{chaos, parse_mv_pla, Budget, CacheStats, Completion};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Configuration of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (reported by
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Admission-control bound: jobs queued beyond the workers. A full
    /// queue load-sheds with `rejected` + `retry_after_ms`.
    pub queue_depth: usize,
    /// Default per-job wall-clock budget when the request names none.
    pub default_budget_ms: u64,
    /// Hard ceiling on per-job wall-clock budgets (requests asking for
    /// more are clamped, so one client cannot pin a worker forever).
    pub max_budget_ms: u64,
    /// Back-off hint attached to load-shed rejections.
    pub retry_after_ms: u64,
    /// Compute engine configuration (cache capacity/shards, encoder
    /// options).
    pub engine: EngineConfig,
    /// Content-addressed result store directory (`None` = no persistent
    /// store). A warm entry answers an encode job without touching the
    /// engine; store faults (including the `store.io` chaos point)
    /// degrade to recomputation, never to a wrong or dropped answer.
    pub store_dir: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 2,
            queue_depth: 16,
            default_budget_ms: 2_000,
            max_budget_ms: 30_000,
            retry_after_ms: 25,
            engine: EngineConfig::default(),
            store_dir: None,
        }
    }
}

/// Point-in-time counters of a running (or drained) server.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: u64,
    /// Jobs answered `ok`.
    pub completed: u64,
    /// Jobs answered `degraded` (budget ran out, best-so-far returned).
    pub degraded: u64,
    /// Jobs answered `rejected` (admission control or drain).
    pub rejected: u64,
    /// Jobs answered `error` (parse/validity/internal).
    pub failed: u64,
    /// Worker panics contained by `catch_unwind`.
    pub worker_panics: u64,
    /// Responses dropped by the `server.socket` chaos point.
    pub socket_drops: u64,
    /// Encode jobs answered from the content-addressed store.
    pub store_hits: u64,
    /// Encode jobs the store could not answer (no entry, corrupt entry,
    /// injected fault) — always recomputed.
    pub store_misses: u64,
}

#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    completed: AtomicU64,
    degraded: AtomicU64,
    rejected: AtomicU64,
    failed: AtomicU64,
    worker_panics: AtomicU64,
    socket_drops: AtomicU64,
}

const STATE_RUNNING: u8 = 0;
const STATE_DRAINING: u8 = 1;

struct QueuedJob {
    request: JobRequest,
    reply: mpsc::Sender<JobResponse>,
}

struct Shared {
    config: ServerConfig,
    engine: EngineHandle,
    /// Content-addressed result store (`None` when not configured).
    store: Option<ResultStore>,
    queue: Mutex<VecDeque<QueuedJob>>,
    queue_cond: Condvar,
    state: AtomicU8,
    counters: Counters,
    /// Connection threads currently alive — drained to zero on shutdown.
    live_connections: AtomicUsize,
}

impl Shared {
    fn draining(&self) -> bool {
        self.state.load(Ordering::Relaxed) != STATE_RUNNING
    }

    fn stats(&self) -> ServerStats {
        ServerStats {
            connections: self.counters.connections.load(Ordering::Relaxed),
            completed: self.counters.completed.load(Ordering::Relaxed),
            degraded: self.counters.degraded.load(Ordering::Relaxed),
            rejected: self.counters.rejected.load(Ordering::Relaxed),
            failed: self.counters.failed.load(Ordering::Relaxed),
            worker_panics: self.counters.worker_panics.load(Ordering::Relaxed),
            socket_drops: self.counters.socket_drops.load(Ordering::Relaxed),
            store_hits: self.store.as_ref().map_or(0, |s| s.stats().hits),
            store_misses: self.store.as_ref().map_or(0, |s| s.stats().misses),
        }
    }
}

/// The daemon. Construct with [`Server::start`]; the returned
/// [`ServerHandle`] owns the lifecycle.
pub struct Server;

impl Server {
    /// Binds and starts the daemon: one accept thread plus
    /// `config.workers` worker threads.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn start(config: ServerConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let workers = config.workers.max(1);
        let store = match &config.store_dir {
            Some(dir) => Some(ResultStore::open(dir)?),
            None => None,
        };
        let shared = Arc::new(Shared {
            engine: EngineHandle::new(config.engine.clone()),
            store,
            config,
            queue: Mutex::new(VecDeque::new()),
            queue_cond: Condvar::new(),
            state: AtomicU8::new(STATE_RUNNING),
            counters: Counters::default(),
            live_connections: AtomicUsize::new(0),
        });
        let conn_handles: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = Arc::clone(&shared);
            let conn_handles = Arc::clone(&conn_handles);
            std::thread::Builder::new()
                .name("picola-accept".to_owned())
                .spawn(move || accept_loop(&listener, &shared, &conn_handles))?
        };
        let worker_handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("picola-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        Ok(ServerHandle {
            addr,
            shared,
            accept: Some(accept),
            workers: worker_handles,
            conn_handles,
        })
    }
}

/// Handle on a running server: address, statistics, and the graceful
/// drain.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    conn_handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServerHandle {
    /// The bound address (with the actual port when 0 was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current server counters.
    pub fn stats(&self) -> ServerStats {
        self.shared.stats()
    }

    /// Current shared-cache statistics
    /// (`hits + misses == minimize calls`, over all shards).
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.engine.cache_stats()
    }

    /// Whether a drain has begun (via [`ServerHandle::shutdown`] or a wire
    /// `shutdown` request).
    pub fn is_draining(&self) -> bool {
        self.shared.draining()
    }

    /// Begins the drain without blocking: new connections and jobs are
    /// refused, queued and in-flight jobs keep running.
    pub fn start_drain(&self) {
        self.shared.state.store(STATE_DRAINING, Ordering::Relaxed);
        self.shared.queue_cond.notify_all();
    }

    /// Graceful drain: refuse new work, let queued and in-flight jobs
    /// finish (or degrade under their budgets), join every thread.
    /// Consumes the handle; returns the final counters.
    pub fn shutdown(mut self) -> ServerStats {
        self.start_drain();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // Accept loop is gone: no new connection threads can spawn. Join
        // the existing ones (each exits after its client disconnects or
        // its pending jobs get terminal answers), then the workers.
        loop {
            let handles = {
                let Ok(mut guard) = self.conn_handles.lock() else {
                    break;
                };
                std::mem::take(&mut *guard)
            };
            if handles.is_empty() {
                break;
            }
            for h in handles {
                let _ = h.join();
            }
        }
        self.shared.queue_cond.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        debug_assert_eq!(
            self.shared.live_connections.load(Ordering::Relaxed),
            0,
            "drain must not leak connection threads"
        );
        self.shared.stats()
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    conn_handles: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    while !shared.draining() {
        match listener.accept() {
            Ok((stream, _)) => {
                shared.counters.connections.fetch_add(1, Ordering::Relaxed);
                shared.live_connections.fetch_add(1, Ordering::Relaxed);
                let conn_shared = Arc::clone(shared);
                let spawned = std::thread::Builder::new()
                    .name("picola-conn".to_owned())
                    .spawn(move || {
                        connection_loop(stream, &conn_shared);
                        conn_shared.live_connections.fetch_sub(1, Ordering::Relaxed);
                    });
                match spawned {
                    Ok(handle) => {
                        if let Ok(mut guard) = conn_handles.lock() {
                            guard.push(handle);
                        }
                    }
                    Err(_) => {
                        // Spawn failed (resource exhaustion): the stream
                        // drops, the client sees a transient I/O error and
                        // retries. Undo the live count.
                        shared.live_connections.fetch_sub(1, Ordering::Relaxed);
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Serves one client connection: parse frames, answer inline kinds, queue
/// compute kinds, stream responses back. Returns (closing the socket) on
/// client EOF, fatal I/O errors, or an injected `server.socket` drop.
fn connection_loop(stream: TcpStream, shared: &Arc<Shared>) {
    // Short read timeouts keep the thread responsive to drain even when
    // the client holds the connection open silently.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return, // client closed
            Ok(_) => {
                let frame = line.trim_end_matches(['\r', '\n']);
                if frame.is_empty() {
                    continue;
                }
                if !handle_frame(frame, &mut writer, shared) {
                    return;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Idle: when a drain begins, close idle connections —
                // clients with no frame in flight reconnect elsewhere.
                if shared.draining() {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Handles one frame; returns `false` when the connection must close.
fn handle_frame(frame: &str, writer: &mut TcpStream, shared: &Arc<Shared>) -> bool {
    let request = match JobRequest::from_frame(frame) {
        Ok(r) => r,
        Err(e) => {
            // Without a parseable id, echo a fixed one; the error is
            // permanent either way.
            let resp = JobResponse::terminal("?", Status::Error, CODE_PARSE)
                .with_body(Object::new().str("error", format!("bad request frame: {e}")));
            shared.counters.failed.fetch_add(1, Ordering::Relaxed);
            return send_response(writer, &resp, shared);
        }
    };
    match request.kind {
        JobKind::Ping => {
            let resp = JobResponse::terminal(request.id, Status::Ok, CODE_OK)
                .with_body(Object::new().str("pong", "picola"));
            send_response(writer, &resp, shared)
        }
        JobKind::Stats => {
            let s = shared.stats();
            let c = shared.engine.cache_stats();
            let resp = JobResponse::terminal(request.id, Status::Ok, CODE_OK).with_body(
                Object::new()
                    .uint("connections", s.connections)
                    .uint("completed", s.completed)
                    .uint("degraded", s.degraded)
                    .uint("rejected", s.rejected)
                    .uint("failed", s.failed)
                    .uint("worker_panics", s.worker_panics)
                    .uint("cache_hits", c.hits)
                    .uint("cache_misses", c.misses)
                    .uint("cache_entries", c.entries as u64)
                    .uint("cache_shards", c.shards as u64)
                    .uint("store_hits", s.store_hits)
                    .uint("store_misses", s.store_misses)
                    .bool("draining", shared.draining()),
            );
            send_response(writer, &resp, shared)
        }
        JobKind::Shutdown => {
            shared.state.store(STATE_DRAINING, Ordering::Relaxed);
            shared.queue_cond.notify_all();
            let resp = JobResponse::terminal(request.id, Status::Ok, CODE_OK)
                .with_body(Object::new().bool("draining", true));
            send_response(writer, &resp, shared)
        }
        JobKind::EncodeKiss | JobKind::EncodeMvPla => {
            let (reply_tx, reply_rx) = mpsc::channel();
            match admit(shared, QueuedJob { request, reply: reply_tx }) {
                Ok(()) => {}
                Err(resp) => {
                    shared.counters.rejected.fetch_add(1, Ordering::Relaxed);
                    return send_response(writer, &resp, shared);
                }
            }
            // Stream worker responses until the terminal line. The worker
            // always sends one (panics are caught), so the only way out of
            // this loop is a terminal line or a dead worker channel.
            loop {
                match reply_rx.recv() {
                    Ok(resp) => {
                        let terminal = resp.is_terminal();
                        if !send_response(writer, &resp, shared) {
                            return false;
                        }
                        if terminal {
                            return true;
                        }
                    }
                    Err(_) => {
                        // Channel died without a terminal line — a worker
                        // invariant broke. Answer structurally anyway.
                        let resp = JobResponse::terminal("?", Status::Error, CODE_INTERNAL)
                            .with_body(Object::new().str("error", "worker channel closed"));
                        shared.counters.failed.fetch_add(1, Ordering::Relaxed);
                        return send_response(writer, &resp, shared);
                    }
                }
            }
        }
    }
}

/// Admission control: queue the job or explain the rejection.
fn admit(shared: &Arc<Shared>, job: QueuedJob) -> Result<(), JobResponse> {
    let retry_ms = shared.config.retry_after_ms;
    if shared.draining() {
        return Err(
            JobResponse::terminal(job.request.id, Status::Rejected, CODE_TRANSIENT)
                .retry_after(retry_ms)
                .with_body(Object::new().str("error", "server is draining")),
        );
    }
    let Ok(mut queue) = shared.queue.lock() else {
        return Err(
            JobResponse::terminal(job.request.id, Status::Error, CODE_INTERNAL)
                .with_body(Object::new().str("error", "queue lock poisoned")),
        );
    };
    // The chaos point simulates losing the queue-full race: admission
    // observed capacity, but it vanished before the push.
    if queue.len() >= shared.config.queue_depth || chaos::should_fire("server.queue") {
        return Err(
            JobResponse::terminal(job.request.id, Status::Rejected, CODE_TRANSIENT)
                .retry_after(retry_ms)
                .with_body(
                    Object::new()
                        .str("error", "queue full")
                        .uint("queue_depth", shared.config.queue_depth as u64),
                ),
        );
    }
    queue.push_back(job);
    drop(queue);
    shared.queue_cond.notify_one();
    Ok(())
}

/// Writes one response line; returns `false` when the connection is gone
/// (real I/O failure or the `server.socket` chaos point dropping the
/// stream mid-response).
fn send_response(writer: &mut TcpStream, resp: &JobResponse, shared: &Arc<Shared>) -> bool {
    if chaos::should_fire("server.socket") {
        shared.counters.socket_drops.fetch_add(1, Ordering::Relaxed);
        let _ = writer.shutdown(std::net::Shutdown::Both);
        return false;
    }
    let mut frame = resp.to_frame();
    frame.push('\n');
    writer.write_all(frame.as_bytes()).is_ok()
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let Ok(mut queue) = shared.queue.lock() else {
                return;
            };
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                if shared.draining() {
                    return; // drained: queue empty and no new admissions
                }
                let Ok((guard, _)) = shared
                    .queue_cond
                    .wait_timeout(queue, Duration::from_millis(50))
                else {
                    return;
                };
                queue = guard;
            }
        };
        run_one(shared, &job);
    }
}

/// Executes one job start-to-terminal-response. Never lets a panic escape:
/// the catch_unwind boundary is what keeps worker threads alive across
/// faulty jobs.
fn run_one(shared: &Arc<Shared>, job: &QueuedJob) {
    let req = &job.request;
    let budget = job_budget(&shared.config, req);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        // The chaos point stands in for any bug that slips past the
        // panic-free discipline of the compute layer.
        #[allow(clippy::panic)] // documented contract: chaos test hook, contained by catch_unwind
        if chaos::should_fire("server.worker") {
            panic!("injected worker fault at server.worker");
        }
        execute(shared, req, &budget)
    }));
    let response = match outcome {
        Ok(Ok((body, completion))) => {
            if req.want_trace {
                let trace = JobResponse::trace(
                    req.id.clone(),
                    Object::new()
                        .uint("work", budget.work_done())
                        .bool("complete", completion.is_complete()),
                );
                let _ = job.reply.send(trace);
            }
            match completion {
                Completion::Complete => {
                    shared.counters.completed.fetch_add(1, Ordering::Relaxed);
                    JobResponse::terminal(req.id.clone(), Status::Ok, CODE_OK).with_body(body)
                }
                Completion::Degraded { reason, work_done } => {
                    shared.counters.degraded.fetch_add(1, Ordering::Relaxed);
                    JobResponse::terminal(req.id.clone(), Status::Degraded, CODE_OK).with_body(
                        body.str("degraded_reason", format!("{reason:?}"))
                            .uint("work_done", work_done),
                    )
                }
            }
        }
        Ok(Err(resp)) => {
            shared.counters.failed.fetch_add(1, Ordering::Relaxed);
            resp
        }
        Err(_) => {
            shared.counters.worker_panics.fetch_add(1, Ordering::Relaxed);
            shared.counters.failed.fetch_add(1, Ordering::Relaxed);
            JobResponse::terminal(req.id.clone(), Status::Error, CODE_INTERNAL)
                .with_body(Object::new().str("error", "worker panicked mid-job (contained)"))
        }
    };
    let _ = job.reply.send(response);
}

fn job_budget(config: &ServerConfig, req: &JobRequest) -> Budget {
    let ms = req
        .budget_ms
        .unwrap_or(config.default_budget_ms)
        .min(config.max_budget_ms);
    let mut budget = Budget::unlimited().deadline_in(Duration::from_millis(ms));
    if let Some(w) = req.budget_work {
        budget = budget.work_limit(w);
    }
    budget
}

/// Parses the payload, runs the engine, and shapes the result body.
/// Failures come back as complete terminal responses so the caller only
/// forwards them.
fn execute(
    shared: &Arc<Shared>,
    req: &JobRequest,
    budget: &Budget,
) -> Result<(Object, Completion), JobResponse> {
    let parse_err = |line: usize, msg: String| {
        JobResponse::terminal(req.id.clone(), Status::Error, CODE_PARSE).with_body(
            Object::new()
                .str("error", msg)
                .uint("error_line", line as u64),
        )
    };
    let (n, constraints) = match req.kind {
        JobKind::EncodeKiss => {
            let fsm = parse_kiss("job", &req.payload)
                .map_err(|e| parse_err(e.line(), e.to_string()))?;
            let constraints = extract_constraints(&symbolic_cover(&fsm));
            (fsm.num_states(), constraints)
        }
        JobKind::EncodeMvPla => {
            let (dom, cover) = parse_mv_pla(&req.payload)
                .map_err(|e| parse_err(e.line(), e.to_string()))?;
            let Some((n, constraints)) = mvpla_constraints(&dom, &cover) else {
                return Err(JobResponse::terminal(
                    req.id.clone(),
                    Status::Error,
                    CODE_INVALID,
                )
                .with_body(Object::new().str(
                    "error",
                    "payload has no multi-valued symbol variable to encode",
                )));
            };
            (n, constraints)
        }
        // Inline kinds never reach the queue.
        JobKind::Ping | JobKind::Stats | JobKind::Shutdown => {
            return Err(
                JobResponse::terminal(req.id.clone(), Status::Error, CODE_INTERNAL)
                    .with_body(Object::new().str("error", "inline kind routed to a worker")),
            )
        }
    };
    if n < 2 {
        return Err(
            JobResponse::terminal(req.id.clone(), Status::Error, CODE_INVALID).with_body(
                Object::new().str("error", format!("need at least two symbols, got {n}")),
            ),
        );
    }
    let job = Job::Encode { n, constraints };
    // Content-addressed store: a warm entry (always a *complete* result —
    // degraded outputs are never persisted) answers without computing. A
    // miss of any flavour — absent, corrupt, injected `store.io` fault —
    // falls through to the engine, and the fresh result is persisted for
    // the next identical job.
    let store_key = shared.store.as_ref().and_then(|_| key_for(&job, None));
    if let (Some(store), Some(key)) = (shared.store.as_ref(), store_key) {
        if let Some(stored) = store.lookup(key) {
            let codes = stored
                .codes
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(",");
            let body = Object::new()
                .uint("n", n as u64)
                .uint("nv", stored.nv as u64)
                .str("codes", codes)
                .uint("cubes", stored.total_cubes as u64)
                .uint("satisfied", stored.satisfied as u64)
                .uint("evaluated", stored.evaluated as u64);
            return Ok((body, Completion::Complete));
        }
    }
    match shared.engine.run(&job, budget) {
        Ok(JobOutput::Encoded {
            encoding,
            evaluation,
            completion,
        }) => {
            if completion.is_complete() {
                if let (Some(store), Some(key)) = (shared.store.as_ref(), store_key) {
                    store.insert(
                        key,
                        &StoredResult {
                            nv: encoding.nv(),
                            codes: encoding.codes().to_vec(),
                            total_cubes: evaluation.total_cubes,
                            satisfied: evaluation.satisfied,
                            evaluated: evaluation.evaluated,
                        },
                    );
                }
            }
            let codes = encoding
                .codes()
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(",");
            let body = Object::new()
                .uint("n", n as u64)
                .uint("nv", encoding.nv() as u64)
                .str("codes", codes)
                .uint("cubes", evaluation.total_cubes as u64)
                .uint("satisfied", evaluation.satisfied as u64)
                .uint("evaluated", evaluation.evaluated as u64);
            Ok((body, completion))
        }
        Ok(JobOutput::Evaluated { .. }) => Err(JobResponse::terminal(
            req.id.clone(),
            Status::Error,
            CODE_INTERNAL,
        )
        .with_body(Object::new().str("error", "encode job returned an evaluate output"))),
        Err(PicolaError::InvalidInput(m)) => Err(JobResponse::terminal(
            req.id.clone(),
            Status::Error,
            CODE_INVALID,
        )
        .with_body(Object::new().str("error", m))),
        Err(PicolaError::Internal(m)) => Err(JobResponse::terminal(
            req.id.clone(),
            Status::Error,
            CODE_INTERNAL,
        )
        .with_body(Object::new().str("error", m))),
    }
}

/// Derives an input-encoding problem from an MV PLA: the first
/// multi-valued (non-output, non-binary) variable is the symbol set, and
/// the cover is fed through the exact constraint-extraction pipeline the
/// KISS2 path uses — [`extract_constraints`] minimizes with multi-valued
/// ESPRESSO first (merging cubes is what *creates* group literals; a raw
/// symbolic cover has one symbol per cube and would yield no
/// constraints), then dedups, weights, and orders the extracted groups.
/// The same machine submitted in either format therefore poses the same
/// encoding problem. Returns `None` when no symbol variable exists.
fn mvpla_constraints(
    dom: &picola_logic::Domain,
    cover: &picola_logic::Cover,
) -> Option<(usize, Vec<picola_constraints::GroupConstraint>)> {
    let sv = (0..dom.num_vars())
        .find(|&v| dom.var(v).parts() > 2 && Some(v) != dom.output_var())?;
    let n = dom.var(sv).parts();
    let sc = picola_fsm::SymbolicCover {
        domain: dom.clone(),
        on: cover.clone(),
        dc: picola_logic::Cover::empty(dom),
        num_states: n,
        // `SymbolicCover::state_var()` is `num_inputs`: every variable
        // before the symbol one is a binary input by construction of `sv`.
        num_inputs: sv,
        num_outputs: dom
            .output_var()
            .map_or(0, |ov| dom.var(ov).parts().saturating_sub(n)),
    };
    Some((n, extract_constraints(&sc)))
}
