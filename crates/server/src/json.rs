//! A minimal, dependency-free JSON layer for the wire protocol.
//!
//! The protocol only ever exchanges **flat objects** with string, unsigned
//! integer, and boolean values — one object per newline-terminated frame —
//! so a full JSON tree is deliberately out of scope. The parser is strict
//! about what it accepts (a single flat object, nothing trailing) and the
//! writer escapes everything it must, so any payload byte sequence —
//! including the newlines inside a KISS2 file — survives the newline
//! framing.

use std::fmt::Write as _;

/// A value of a flat protocol object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// A JSON string.
    Str(String),
    /// A non-negative JSON integer (the protocol has no fractions and no
    /// negative quantities).
    UInt(u64),
    /// A JSON boolean.
    Bool(bool),
}

impl Value {
    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer content, if this is an integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean content, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// A flat JSON object in field order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Object {
    fields: Vec<(String, Value)>,
}

impl Object {
    /// An empty object.
    pub fn new() -> Object {
        Object::default()
    }

    /// Appends a string field.
    pub fn str(mut self, key: &str, value: impl Into<String>) -> Object {
        self.fields.push((key.to_owned(), Value::Str(value.into())));
        self
    }

    /// Appends an unsigned integer field.
    pub fn uint(mut self, key: &str, value: u64) -> Object {
        self.fields.push((key.to_owned(), Value::UInt(value)));
        self
    }

    /// Appends a boolean field.
    pub fn bool(mut self, key: &str, value: bool) -> Object {
        self.fields.push((key.to_owned(), Value::Bool(value)));
        self
    }

    /// Iterates fields in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.fields.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// First value under `key`, if present.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// String field accessor.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(Value::as_str)
    }

    /// Integer field accessor.
    pub fn get_u64(&self, key: &str) -> Option<u64> {
        self.get(key).and_then(Value::as_u64)
    }

    /// Boolean field accessor.
    pub fn get_bool(&self, key: &str) -> Option<bool> {
        self.get(key).and_then(Value::as_bool)
    }

    /// Serializes to a single-line JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64);
        out.push('{');
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_string(&mut out, k);
            out.push(':');
            match v {
                Value::Str(s) => push_json_string(&mut out, s),
                Value::UInt(n) => {
                    let _ = write!(out, "{n}");
                }
                Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            }
        }
        out.push('}');
        out
    }
}

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one flat JSON object from `text` (surrounding whitespace allowed,
/// nothing else trailing).
///
/// # Errors
///
/// A human-readable description of the first syntax problem; the server
/// maps it to a permanent protocol error (retrying identical bytes cannot
/// succeed).
pub fn parse_object(text: &str) -> Result<Object, String> {
    let mut p = Parser {
        chars: text.chars().collect(),
        pos: 0,
    };
    p.skip_ws();
    p.expect('{')?;
    let mut fields = Vec::new();
    p.skip_ws();
    if p.peek() == Some('}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.parse_string()?;
            p.skip_ws();
            p.expect(':')?;
            p.skip_ws();
            let value = p.parse_value()?;
            fields.push((key, value));
            p.skip_ws();
            match p.next() {
                Some(',') => continue,
                Some('}') => break,
                other => {
                    return Err(format!(
                        "expected ',' or '}}' after a field, found {other:?}"
                    ))
                }
            }
        }
    }
    p.skip_ws();
    if p.pos != p.chars.len() {
        return Err("trailing bytes after the object".to_owned());
    }
    Ok(Object { fields })
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: char) -> Result<(), String> {
        match self.next() {
            Some(c) if c == want => Ok(()),
            other => Err(format!("expected {want:?}, found {other:?}")),
        }
    }

    fn parse_value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some('"') => self.parse_string().map(Value::Str),
            Some('t') => self.parse_literal("true").map(|()| Value::Bool(true)),
            Some('f') => self.parse_literal("false").map(|()| Value::Bool(false)),
            Some(c) if c.is_ascii_digit() => self.parse_uint().map(Value::UInt),
            other => Err(format!("unexpected value start {other:?}")),
        }
    }

    fn parse_literal(&mut self, lit: &str) -> Result<(), String> {
        for want in lit.chars() {
            if self.next() != Some(want) {
                return Err(format!("malformed literal, expected {lit:?}"));
            }
        }
        Ok(())
    }

    fn parse_uint(&mut self) -> Result<u64, String> {
        let mut n: u64 = 0;
        let mut any = false;
        while let Some(c) = self.peek() {
            let Some(d) = c.to_digit(10) else { break };
            self.pos += 1;
            any = true;
            n = n
                .checked_mul(10)
                .and_then(|n| n.checked_add(u64::from(d)))
                .ok_or_else(|| "integer overflows u64".to_owned())?;
        }
        if !any {
            return Err("expected digits".to_owned());
        }
        Ok(n)
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                None => return Err("unterminated string".to_owned()),
                Some('"') => return Ok(out),
                Some('\\') => match self.next() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('b') => out.push('\u{8}'),
                    Some('f') => out.push('\u{c}'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .next()
                                .and_then(|c| c.to_digit(16))
                                .ok_or_else(|| "bad \\u escape".to_owned())?;
                            code = code * 16 + d;
                        }
                        // Surrogate pairs are not needed by the protocol;
                        // map unpaired surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(c) => out.push(c),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]
    use super::*;

    #[test]
    fn roundtrips_payloads_with_newlines_and_quotes() {
        let payload = ".i 2\n.o 1\n# \"quoted\" \\ backslash\n\t tab\n.e\n";
        let obj = Object::new()
            .str("id", "job-1")
            .str("payload", payload)
            .uint("budget_ms", 250)
            .bool("want_trace", true);
        let line = obj.to_json();
        assert!(!line.contains('\n'), "frames must stay single-line");
        let back = parse_object(&line).unwrap();
        assert_eq!(back.get_str("payload"), Some(payload));
        assert_eq!(back.get_u64("budget_ms"), Some(250));
        assert_eq!(back.get_bool("want_trace"), Some(true));
        assert_eq!(back, obj);
    }

    #[test]
    fn rejects_malformed_frames() {
        for bad in [
            "",
            "{",
            "{}x",
            "{\"a\"}",
            "{\"a\":}",
            "{\"a\":1,}",
            "{\"a\":\"unterminated}",
            "{\"a\":-1}",
            "{\"a\":1.5}",
            "{\"a\":99999999999999999999999}",
            "[1,2]",
        ] {
            assert!(parse_object(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn accepts_whitespace_and_empty_objects() {
        assert_eq!(parse_object(" {} ").unwrap(), Object::new());
        let o = parse_object("{ \"k\" : \"v\" , \"n\" : 7 }").unwrap();
        assert_eq!(o.get_str("k"), Some("v"));
        assert_eq!(o.get_u64("n"), Some(7));
    }

    #[test]
    fn control_chars_escape_as_unicode() {
        let obj = Object::new().str("s", "\u{1}\u{1f}");
        let line = obj.to_json();
        assert!(line.contains("\\u0001") && line.contains("\\u001f"), "{line}");
        assert_eq!(parse_object(&line).unwrap().get_str("s"), Some("\u{1}\u{1f}"));
    }
}
