//! The wire protocol: newline-framed JSON job requests and streamed
//! responses.
//!
//! One request is one line; the server answers with zero or more `trace`
//! lines followed by exactly one terminal line (`ok`, `degraded`, `error`,
//! or `rejected`), so a client reads until it sees a terminal status for
//! its job id. Response `code`s reuse the CLI exit-code contract (0
//! success/degraded, 3 I/O, 4 parse, 5 invalid input, 70 internal), with
//! one addition: [`CODE_TRANSIENT`] (75, mirroring BSD `EX_TEMPFAIL`) for
//! load-shed rejections that a client should retry after a delay.
//!
//! Retry classification is part of the protocol, not client guesswork:
//! every terminal failure carries `retryable`, and retryable responses may
//! carry `retry_after_ms`. Parse and validity errors are permanent —
//! resending identical bytes cannot succeed; queue-full and drain
//! rejections are transient.

use crate::json::Object;

/// Response/exit code: success (also used for degraded results — a
/// degraded answer is an answer).
pub const CODE_OK: u64 = 0;
/// Response/exit code: I/O failure.
pub const CODE_IO: u64 = 3;
/// Response/exit code: parse failure (permanent).
pub const CODE_PARSE: u64 = 4;
/// Response/exit code: invalid input (permanent).
pub const CODE_INVALID: u64 = 5;
/// Response/exit code: internal error / worker panic.
pub const CODE_INTERNAL: u64 = 70;
/// Response/exit code: transient rejection — retry after a delay
/// (admission control, drain).
pub const CODE_TRANSIENT: u64 = 75;

/// What kind of work a request asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// Encode the states of a KISS2 machine (payload = KISS2 text).
    EncodeKiss,
    /// Encode symbols of a multi-valued PLA input-encoding problem
    /// (payload = `.mv` PLA text).
    EncodeMvPla,
    /// Liveness probe; answered inline, never queued.
    Ping,
    /// Server + cache statistics; answered inline, never queued.
    Stats,
    /// Ask the server to drain and shut down.
    Shutdown,
}

impl JobKind {
    /// Wire name of the kind.
    pub fn name(self) -> &'static str {
        match self {
            JobKind::EncodeKiss => "encode_kiss",
            JobKind::EncodeMvPla => "encode_mvpla",
            JobKind::Ping => "ping",
            JobKind::Stats => "stats",
            JobKind::Shutdown => "shutdown",
        }
    }

    /// Parses a wire name.
    pub fn from_name(name: &str) -> Option<JobKind> {
        match name {
            "encode_kiss" => Some(JobKind::EncodeKiss),
            "encode_mvpla" => Some(JobKind::EncodeMvPla),
            "ping" => Some(JobKind::Ping),
            "stats" => Some(JobKind::Stats),
            "shutdown" => Some(JobKind::Shutdown),
            _ => None,
        }
    }
}

/// A parsed job request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobRequest {
    /// Client-chosen id echoed on every response line.
    pub id: String,
    /// What to do.
    pub kind: JobKind,
    /// The input text (KISS2 / MV-PLA) for encode kinds; empty otherwise.
    pub payload: String,
    /// Per-job wall-clock budget in milliseconds (`None` = server default).
    pub budget_ms: Option<u64>,
    /// Per-job work-unit budget (`None` = unlimited).
    pub budget_work: Option<u64>,
    /// Whether to stream a `trace` line (work/span summary) before the
    /// result.
    pub want_trace: bool,
}

impl JobRequest {
    /// A minimal request of the given kind.
    pub fn new(id: impl Into<String>, kind: JobKind, payload: impl Into<String>) -> JobRequest {
        JobRequest {
            id: id.into(),
            kind,
            payload: payload.into(),
            budget_ms: None,
            budget_work: None,
            want_trace: false,
        }
    }

    /// Serializes to one JSON frame (no trailing newline).
    pub fn to_frame(&self) -> String {
        let mut o = Object::new()
            .str("id", self.id.as_str())
            .str("kind", self.kind.name());
        if !self.payload.is_empty() {
            o = o.str("payload", self.payload.as_str());
        }
        if let Some(ms) = self.budget_ms {
            o = o.uint("budget_ms", ms);
        }
        if let Some(w) = self.budget_work {
            o = o.uint("budget_work", w);
        }
        if self.want_trace {
            o = o.bool("want_trace", true);
        }
        o.to_json()
    }

    /// Parses a request frame.
    ///
    /// # Errors
    ///
    /// A description of the first problem (malformed JSON, missing id,
    /// unknown kind). All such errors are permanent.
    pub fn from_frame(line: &str) -> Result<JobRequest, String> {
        let o = crate::json::parse_object(line)?;
        let id = o
            .get_str("id")
            .filter(|s| !s.is_empty())
            .ok_or("missing id")?
            .to_owned();
        let kind = o
            .get_str("kind")
            .ok_or("missing kind")
            .and_then(|k| JobKind::from_name(k).ok_or("unknown kind"))?;
        Ok(JobRequest {
            id,
            kind,
            payload: o.get_str("payload").unwrap_or("").to_owned(),
            budget_ms: o.get_u64("budget_ms"),
            budget_work: o.get_u64("budget_work"),
            want_trace: o.get_bool("want_trace").unwrap_or(false),
        })
    }
}

/// Terminal status of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Completed within budget.
    Ok,
    /// Budget ran out; the response carries the best-so-far result.
    Degraded,
    /// The job failed permanently (or internally).
    Error,
    /// The job was load-shed before running; retry after the hinted delay.
    Rejected,
}

impl Status {
    /// Wire name of the status.
    pub fn name(self) -> &'static str {
        match self {
            Status::Ok => "ok",
            Status::Degraded => "degraded",
            Status::Error => "error",
            Status::Rejected => "rejected",
        }
    }

    /// Parses a wire name.
    pub fn from_name(name: &str) -> Option<Status> {
        match name {
            "ok" => Some(Status::Ok),
            "degraded" => Some(Status::Degraded),
            "error" => Some(Status::Error),
            "rejected" => Some(Status::Rejected),
            _ => None,
        }
    }
}

/// One response line, either a streamed `trace` record or the terminal
/// answer for a job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobResponse {
    /// The request id this line answers.
    pub id: String,
    /// `None` for streamed trace lines; `Some` on the terminal line.
    pub status: Option<Status>,
    /// Exit-code-contract code (terminal lines only).
    pub code: u64,
    /// Whether resubmitting the same request may succeed.
    pub retryable: bool,
    /// Suggested client back-off before a retry, when `retryable`.
    pub retry_after_ms: Option<u64>,
    /// Everything else (result fields, error text, trace numbers) as the
    /// raw object for forward compatibility.
    pub body: Object,
}

impl JobResponse {
    /// Builds a terminal response.
    pub fn terminal(id: impl Into<String>, status: Status, code: u64) -> JobResponse {
        JobResponse {
            id: id.into(),
            status: Some(status),
            code,
            retryable: false,
            retry_after_ms: None,
            body: Object::new(),
        }
    }

    /// Builds a streamed (non-terminal) trace line.
    pub fn trace(id: impl Into<String>, body: Object) -> JobResponse {
        JobResponse {
            id: id.into(),
            status: None,
            code: CODE_OK,
            retryable: false,
            retry_after_ms: None,
            body,
        }
    }

    /// Marks the response retryable with a back-off hint.
    #[must_use]
    pub fn retry_after(mut self, ms: u64) -> JobResponse {
        self.retryable = true;
        self.retry_after_ms = Some(ms);
        self
    }

    /// Attaches body fields.
    #[must_use]
    pub fn with_body(mut self, body: Object) -> JobResponse {
        self.body = body;
        self
    }

    /// Whether this line terminates its job.
    pub fn is_terminal(&self) -> bool {
        self.status.is_some()
    }

    /// Serializes to one JSON frame (no trailing newline).
    pub fn to_frame(&self) -> String {
        let mut o = Object::new().str("id", self.id.as_str());
        match self.status {
            Some(s) => {
                o = o.str("status", s.name()).uint("code", self.code);
                if self.retryable {
                    o = o.bool("retryable", true);
                }
                if let Some(ms) = self.retry_after_ms {
                    o = o.uint("retry_after_ms", ms);
                }
            }
            None => o = o.str("stream", "trace"),
        }
        for (k, v) in self.body.iter() {
            o = match v {
                crate::json::Value::Str(s) => o.str(k, s.as_str()),
                crate::json::Value::UInt(n) => o.uint(k, *n),
                crate::json::Value::Bool(b) => o.bool(k, *b),
            };
        }
        o.to_json()
    }

    /// Parses a response frame.
    ///
    /// # Errors
    ///
    /// A description of the first problem; the client treats it as a
    /// transient I/O-level failure (a garbled frame says nothing about the
    /// job itself).
    pub fn from_frame(line: &str) -> Result<JobResponse, String> {
        let o = crate::json::parse_object(line)?;
        let id = o.get_str("id").ok_or("missing id")?.to_owned();
        let status = match o.get_str("status") {
            Some(s) => Some(Status::from_name(s).ok_or("unknown status")?),
            None => {
                if o.get_str("stream") != Some("trace") {
                    return Err("frame is neither terminal nor a trace stream".to_owned());
                }
                None
            }
        };
        let mut body = Object::new();
        for (k, v) in o.iter() {
            if matches!(
                k,
                "id" | "status" | "code" | "retryable" | "retry_after_ms" | "stream"
            ) {
                continue;
            }
            body = match v {
                crate::json::Value::Str(s) => body.str(k, s.as_str()),
                crate::json::Value::UInt(n) => body.uint(k, *n),
                crate::json::Value::Bool(b) => body.bool(k, *b),
            };
        }
        Ok(JobResponse {
            id,
            status,
            code: o.get_u64("code").unwrap_or(CODE_OK),
            retryable: o.get_bool("retryable").unwrap_or(false),
            retry_after_ms: o.get_u64("retry_after_ms"),
            body,
        })
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]
    use super::*;

    #[test]
    fn requests_roundtrip() {
        let mut req = JobRequest::new("a1", JobKind::EncodeKiss, ".i 1\n.o 1\n0 a b 0\n.e\n");
        req.budget_ms = Some(250);
        req.want_trace = true;
        let frame = req.to_frame();
        assert!(!frame.contains('\n'));
        assert_eq!(JobRequest::from_frame(&frame).unwrap(), req);
    }

    #[test]
    fn responses_roundtrip() {
        let resp = JobResponse::terminal("a1", Status::Rejected, CODE_TRANSIENT)
            .retry_after(40)
            .with_body(Object::new().str("error", "queue full"));
        let frame = resp.to_frame();
        let back = JobResponse::from_frame(&frame).unwrap();
        assert_eq!(back, resp);
        assert!(back.retryable);
        assert_eq!(back.retry_after_ms, Some(40));
        assert_eq!(back.body.get_str("error"), Some("queue full"));
    }

    #[test]
    fn trace_lines_are_not_terminal() {
        let t = JobResponse::trace("a1", Object::new().uint("work", 123));
        let back = JobResponse::from_frame(&t.to_frame()).unwrap();
        assert!(!back.is_terminal());
        assert_eq!(back.body.get_u64("work"), Some(123));
    }

    #[test]
    fn malformed_requests_are_rejected() {
        for bad in [
            "",
            "{}",
            "{\"id\":\"\"}",
            "{\"id\":\"x\"}",
            "{\"id\":\"x\",\"kind\":\"nope\"}",
            "not json",
        ] {
            assert!(JobRequest::from_frame(bad).is_err(), "{bad:?}");
        }
    }
}
