//! A retrying client for the picola-server wire protocol.
//!
//! The client owns the retry classification on its side of the wire:
//! transport failures (connect/read/write errors, garbled frames, a
//! connection dropped mid-response) and `rejected`+`retryable` terminal
//! responses are **transient** — retried with deterministic exponential
//! backoff, honoring the server's `retry_after_ms` hint when present.
//! `error` terminal responses (parse, invalid input, internal) are
//! **permanent** — returned immediately; resending identical bytes cannot
//! succeed.

use crate::protocol::{JobRequest, JobResponse, Status};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Why a submit failed at the client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// A transport-level failure (connect, read, write, or a response
    /// deadline missed). Transient: a retry may succeed.
    Io(String),
    /// The server sent a frame the client cannot parse. Treated as
    /// transient — a garbled frame says nothing about the job itself.
    Protocol(String),
    /// Every attempt was load-shed or lost; carries the last transient
    /// failure observed for diagnosis.
    RetriesExhausted(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(m) => write!(f, "i/o error: {m}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::RetriesExhausted(m) => write!(f, "retries exhausted: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// One submitted job's full answer: streamed trace lines plus the
/// terminal response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmitOutcome {
    /// Streamed `trace` lines, in arrival order.
    pub traces: Vec<JobResponse>,
    /// The terminal line (`ok`, `degraded`, `error`, or `rejected`).
    pub response: JobResponse,
}

impl SubmitOutcome {
    /// Whether the job produced a usable result (`ok` or `degraded`).
    pub fn is_answered(&self) -> bool {
        matches!(self.response.status, Some(Status::Ok | Status::Degraded))
    }
}

/// Deterministic exponential-backoff schedule for transient failures.
/// No jitter: retries must be reproducible in tests and chaos sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try included). 1 = no retries.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per subsequent retry.
    /// The server's `retry_after_ms` hint overrides the computed delay
    /// when larger.
    pub base_backoff: Duration,
    /// Ceiling on any single backoff.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
        }
    }
}

impl RetryPolicy {
    /// The delay before retry number `retry` (0-based), before applying
    /// any server hint.
    fn backoff(&self, retry: u32) -> Duration {
        let factor = 1u32 << retry.min(16);
        (self.base_backoff * factor).min(self.max_backoff)
    }
}

/// A client connection. Reconnects lazily after transport failures, so a
/// single [`Client`] survives the server dropping sockets under chaos.
pub struct Client {
    addr: String,
    stream: Option<BufReader<TcpStream>>,
    /// Ceiling on the wait for one job's terminal response.
    response_timeout: Duration,
}

impl Client {
    /// Creates a client for `addr` (e.g. `"127.0.0.1:4815"`). Connection
    /// is lazy: the first submit dials.
    pub fn new(addr: impl Into<String>) -> Client {
        Client {
            addr: addr.into(),
            stream: None,
            response_timeout: Duration::from_secs(30),
        }
    }

    /// Adjusts how long [`Client::submit`] waits for a terminal response
    /// before declaring the attempt lost.
    #[must_use]
    pub fn response_timeout(mut self, timeout: Duration) -> Client {
        self.response_timeout = timeout;
        self
    }

    fn ensure_connected(&mut self) -> Result<&mut BufReader<TcpStream>, ClientError> {
        if self.stream.is_none() {
            let stream =
                TcpStream::connect(&self.addr).map_err(|e| ClientError::Io(e.to_string()))?;
            stream
                .set_read_timeout(Some(Duration::from_millis(50)))
                .map_err(|e| ClientError::Io(e.to_string()))?;
            let _ = stream.set_nodelay(true);
            self.stream = Some(BufReader::new(stream));
        }
        // The branch above guarantees presence; avoid unwrap under the
        // workspace lint by re-matching.
        match self.stream.as_mut() {
            Some(s) => Ok(s),
            None => Err(ClientError::Io("connection vanished".to_owned())),
        }
    }

    /// Drops the connection so the next submit re-dials.
    fn disconnect(&mut self) {
        self.stream = None;
    }

    /// Submits one request and reads until its terminal response. Any
    /// transport failure tears down the connection (the next call
    /// re-dials) and comes back as a transient [`ClientError`].
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] on connect/read/write failures or a missed
    /// response deadline; [`ClientError::Protocol`] on unparseable frames.
    pub fn submit(&mut self, request: &JobRequest) -> Result<SubmitOutcome, ClientError> {
        let deadline = Instant::now() + self.response_timeout;
        let result = self.submit_once(request, deadline);
        if result.is_err() {
            self.disconnect();
        }
        result
    }

    fn submit_once(
        &mut self,
        request: &JobRequest,
        deadline: Instant,
    ) -> Result<SubmitOutcome, ClientError> {
        let want_id = request.id.clone();
        let mut frame = request.to_frame();
        frame.push('\n');
        let stream = self.ensure_connected()?;
        stream
            .get_mut()
            .write_all(frame.as_bytes())
            .map_err(|e| ClientError::Io(e.to_string()))?;
        let mut traces = Vec::new();
        let mut line = String::new();
        loop {
            line.clear();
            match stream.read_line(&mut line) {
                Ok(0) => {
                    return Err(ClientError::Io(
                        "connection closed before a terminal response".to_owned(),
                    ))
                }
                Ok(_) => {
                    let text = line.trim_end_matches(['\r', '\n']);
                    if text.is_empty() {
                        continue;
                    }
                    let resp =
                        JobResponse::from_frame(text).map_err(ClientError::Protocol)?;
                    if resp.id != want_id {
                        // Not ours (shouldn't happen on a private
                        // connection); skip rather than fail the job.
                        continue;
                    }
                    if resp.is_terminal() {
                        return Ok(SubmitOutcome {
                            traces,
                            response: resp,
                        });
                    }
                    traces.push(resp);
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    if Instant::now() >= deadline {
                        return Err(ClientError::Io(
                            "timed out waiting for a terminal response".to_owned(),
                        ));
                    }
                }
                Err(e) => return Err(ClientError::Io(e.to_string())),
            }
        }
    }

    /// Submits with retry: transient failures (transport errors, garbled
    /// frames, retryable rejections) back off exponentially — honoring the
    /// server's `retry_after_ms` hint — and try again; permanent failures
    /// (`error` responses) return on the first occurrence.
    ///
    /// # Errors
    ///
    /// [`ClientError::RetriesExhausted`] when every attempt failed
    /// transiently; the message names the last failure.
    pub fn submit_with_retry(
        &mut self,
        request: &JobRequest,
        policy: &RetryPolicy,
    ) -> Result<SubmitOutcome, ClientError> {
        let attempts = policy.max_attempts.max(1);
        let mut last_failure = String::new();
        for attempt in 0..attempts {
            if attempt > 0 {
                std::thread::sleep(policy.backoff(attempt - 1));
            }
            match self.submit(request) {
                Ok(outcome) => {
                    let transient_rejection = outcome.response.status == Some(Status::Rejected)
                        && outcome.response.retryable;
                    if !transient_rejection {
                        return Ok(outcome);
                    }
                    // Prefer the server's back-off hint when it is longer
                    // than our schedule — it knows its own queue.
                    if let Some(hint) = outcome.response.retry_after_ms {
                        let hint = Duration::from_millis(hint.min(5_000));
                        if attempt + 1 < attempts && hint > policy.backoff(attempt) {
                            std::thread::sleep(hint.saturating_sub(policy.backoff(attempt)));
                        }
                    }
                    last_failure = outcome
                        .response
                        .body
                        .get_str("error")
                        .unwrap_or("rejected")
                        .to_owned();
                }
                Err(ClientError::Io(m) | ClientError::Protocol(m)) => {
                    last_failure = m;
                }
                Err(e @ ClientError::RetriesExhausted(_)) => return Err(e),
            }
        }
        Err(ClientError::RetriesExhausted(last_failure))
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            max_attempts: 8,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(60),
        };
        assert_eq!(p.backoff(0), Duration::from_millis(10));
        assert_eq!(p.backoff(1), Duration::from_millis(20));
        assert_eq!(p.backoff(2), Duration::from_millis(40));
        assert_eq!(p.backoff(3), Duration::from_millis(60));
        assert_eq!(p.backoff(10), Duration::from_millis(60));
    }

    #[test]
    fn connect_failure_is_transient_io() {
        // Port 1 on localhost: nothing listens there.
        let mut c = Client::new("127.0.0.1:1").response_timeout(Duration::from_millis(200));
        let req = JobRequest::new("x", crate::protocol::JobKind::Ping, "");
        match c.submit(&req) {
            Err(ClientError::Io(_)) => {}
            other => panic!("expected Io error, got {other:?}"),
        }
        let policy = RetryPolicy {
            max_attempts: 2,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
        };
        match c.submit_with_retry(&req, &policy) {
            Err(ClientError::RetriesExhausted(_)) => {}
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
    }
}
