//! `Solve()` — generation of one encoding column (paper §3.4).
//!
//! The column starts at all-ones. Bits are assigned to 0 one at a time: a
//! flip is *forced* while some class of identically-coded symbols has too
//! many members left on the 1 side (the column must become a valid partial
//! encoding), and *opportunistic* while the best legal flip has strictly
//! positive weighted-dichotomy gain. Among legal candidates the flip
//! maximizing the gain is chosen, ties broken by the lowest symbol index so
//! runs are deterministic.

use crate::cost::CostModel;
use crate::validity::ValidityTracker;
use picola_constraints::{ConstraintMatrix, ConstraintStatus};

/// The role a symbol plays for one tracked constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    Member,
    UnsatOutsider,
}

/// Incremental scorer: per active constraint, how many members and
/// unsatisfied outsiders sit on each side of the working column.
struct ColumnScorer {
    weight: Vec<f64>,
    member_true: Vec<usize>,
    member_false: Vec<usize>,
    out_true: Vec<usize>,
    out_false: Vec<usize>,
    /// Per symbol: (local constraint index, role) pairs.
    touch: Vec<Vec<(usize, Role)>>,
    /// Fraction of a pending dichotomy's weight credited while the members
    /// stay together (see [`CostModel::together_potential`]).
    potential: f64,
}

impl ColumnScorer {
    fn new(matrix: &ConstraintMatrix, cost: CostModel) -> Self {
        let n = matrix.num_symbols();
        let mut s = ColumnScorer {
            weight: Vec::new(),
            member_true: Vec::new(),
            member_false: Vec::new(),
            out_true: Vec::new(),
            out_false: Vec::new(),
            touch: vec![Vec::new(); n],
            potential: cost.together_potential(),
        };
        for k in matrix.with_status(ConstraintStatus::Active) {
            let tc = matrix.constraint(k);
            let unsat = tc.unsatisfied_dichotomies();
            if unsat == 0 {
                continue;
            }
            let members = tc.constraint().members();
            let initial_outsiders = n - members.len();
            let local = s.weight.len();
            s.weight
                .push(cost.dichotomy_weight(tc, initial_outsiders));
            s.member_true.push(members.len());
            s.member_false.push(0);
            let mut unsat_out = 0;
            for j in 0..n {
                if members.contains(j) {
                    s.touch[j].push((local, Role::Member));
                } else if tc.entry(j) == 0 {
                    s.touch[j].push((local, Role::UnsatOutsider));
                    unsat_out += 1;
                }
            }
            s.out_true.push(unsat_out);
            s.out_false.push(0);
        }
        s
    }

    /// Score of constraint `k` for given side counts: dichotomies the
    /// column would satisfy if finalized now, plus the potential credit for
    /// pending dichotomies while the members remain together.
    fn score_counts(&self, k: usize, mt: usize, mf: usize, ot: usize, of: usize) -> f64 {
        let (sat, pending) = if mf == 0 {
            (of, ot)
        } else if mt == 0 {
            (ot, of)
        } else {
            (0, 0)
        };
        self.weight[k] * (sat as f64 + self.potential * pending as f64)
    }

    /// Score contribution of constraint `k` for the current side counts.
    fn score_one(&self, k: usize) -> f64 {
        self.score_counts(
            k,
            self.member_true[k],
            self.member_false[k],
            self.out_true[k],
            self.out_false[k],
        )
    }

    /// Gain of flipping symbol `i` from the 1 side to the 0 side.
    fn gain(&self, i: usize) -> f64 {
        let mut delta = 0.0;
        for &(k, role) in &self.touch[i] {
            let before = self.score_one(k);
            let after = match role {
                Role::Member => self.score_counts(
                    k,
                    self.member_true[k] - 1,
                    self.member_false[k] + 1,
                    self.out_true[k],
                    self.out_false[k],
                ),
                Role::UnsatOutsider => self.score_counts(
                    k,
                    self.member_true[k],
                    self.member_false[k],
                    self.out_true[k] - 1,
                    self.out_false[k] + 1,
                ),
            };
            delta += after - before;
        }
        delta
    }

    fn apply_flip(&mut self, i: usize) {
        for &(k, role) in &self.touch[i] {
            match role {
                Role::Member => {
                    self.member_true[k] -= 1;
                    self.member_false[k] += 1;
                }
                Role::UnsatOutsider => {
                    self.out_true[k] -= 1;
                    self.out_false[k] += 1;
                }
            }
        }
    }
}

/// Generates the next code column for the current matrix/validity state.
///
/// The returned column is guaranteed valid (see
/// [`ValidityTracker::column_is_valid`]).
///
/// # Panics
///
/// Panics if no columns remain to be generated.
pub fn solve_column(
    matrix: &ConstraintMatrix,
    validity: &ValidityTracker,
    cost: CostModel,
) -> Vec<bool> {
    let n = matrix.num_symbols();
    assert!(validity.columns_left() > 0, "no columns left to generate");
    let limit = validity.next_class_limit();
    let mut column = vec![true; n];
    let mut scorer = ColumnScorer::new(matrix, cost);
    let mut evals = 0u64;

    loop {
        let splits = validity.split_sizes(&column);
        let oversized: Vec<usize> = splits
            .iter()
            .enumerate()
            .filter(|&(_, &(t, _))| t > limit)
            .map(|(c, _)| c)
            .collect();
        let forced = !oversized.is_empty();

        let mut best: Option<(f64, usize)> = None;
        for (i, _) in column.iter().enumerate().filter(|&(_, &b)| b) {
            let class = validity.class_of(i);
            if forced && !oversized.contains(&class) {
                continue;
            }
            // Legal only if the 0 side of the class stays within the limit.
            if splits[class].1 >= limit {
                continue;
            }
            evals += 1;
            let g = scorer.gain(i);
            let better = match best {
                None => true,
                Some((bg, _)) => g > bg + 1e-12,
            };
            if better {
                best = Some((g, i));
            }
        }

        match best {
            Some((g, i)) if forced || g > 1e-12 => {
                column[i] = false;
                scorer.apply_flip(i);
            }
            _ => break,
        }
    }

    picola_logic::obs::count(picola_logic::obs::Counter::DichotomyEvals, evals);
    debug_assert!(validity.column_is_valid(&column));
    column
}

#[cfg(test)]
mod tests {
    use super::*;
    use picola_constraints::{ConstraintMatrix, GroupConstraint, SymbolSet};

    fn setup(n: usize, nv: usize, groups: &[&[usize]]) -> (ConstraintMatrix, ValidityTracker) {
        let cs = groups
            .iter()
            .map(|g| GroupConstraint::new(SymbolSet::from_members(n, g.iter().copied())))
            .collect();
        (ConstraintMatrix::new(n, nv, cs), ValidityTracker::new(n, nv))
    }

    #[test]
    fn column_is_valid_and_deterministic() {
        let (m, v) = setup(8, 3, &[&[0, 1], &[2, 3, 4]]);
        let c1 = solve_column(&m, &v, CostModel::PaperWeighted);
        let c2 = solve_column(&m, &v, CostModel::PaperWeighted);
        assert_eq!(c1, c2);
        assert!(v.column_is_valid(&c1));
    }

    #[test]
    fn column_separates_a_small_constraint() {
        // one constraint {0,1} among 4 symbols, nv = 2: the first column
        // should isolate {0,1} from the others (both dichotomies satisfied).
        let (mut m, mut v) = setup(4, 2, &[&[0, 1]]);
        let col = solve_column(&m, &v, CostModel::PaperWeighted);
        assert_eq!(col[0], col[1], "members must agree");
        assert_ne!(col[0], col[2], "outsider 2 must differ");
        assert_ne!(col[0], col[3], "outsider 3 must differ");
        m.apply_column(&col);
        v.commit(&col);
        assert_eq!(
            m.constraint(0).status(),
            picola_constraints::ConstraintStatus::Satisfied
        );
    }

    #[test]
    fn forced_flips_fix_oversized_classes() {
        // No constraints at all: flips happen only because validity forces
        // a split of the single 8-symbol class (limit 4).
        let (m, v) = setup(8, 3, &[]);
        let col = solve_column(&m, &v, CostModel::PaperWeighted);
        let zeros = col.iter().filter(|&&b| !b).count();
        let ones = col.len() - zeros;
        assert!(zeros <= 4 && ones <= 4, "split {ones}/{zeros} not valid");
    }

    #[test]
    fn full_encoding_distinguishes_everything() {
        let (mut m, mut v) = setup(8, 3, &[&[0, 1], &[2, 3, 4], &[5, 6]]);
        for _ in 0..3 {
            let col = solve_column(&m, &v, CostModel::PaperWeighted);
            m.apply_column(&col);
            v.commit(&col);
        }
        assert!(v.fully_distinguished());
    }

    #[test]
    fn uniform_cost_also_yields_valid_columns() {
        let (m, v) = setup(10, 4, &[&[0, 1, 2], &[4, 5], &[7, 8, 9]]);
        let col = solve_column(&m, &v, CostModel::UniformDichotomy);
        assert!(v.column_is_valid(&col));
    }
}
