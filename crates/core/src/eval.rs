//! Evaluation of encodings: the paper's cost measure.
//!
//! For every face constraint `L`, a Boolean function is associated with the
//! encoding: on-set = codes of the symbols in `L`, off-set = codes of the
//! symbols not in `L`, don't-care set = unused code words. The cost of an
//! encoding is the total number of product terms in minimized
//! sum-of-products implementations of these functions — a satisfied
//! constraint costs exactly one cube; a violated one costs more, and *how
//! much* more is what PICOLA optimizes where conventional tools only count
//! satisfactions.

use picola_constraints::{Encoding, GroupConstraint};
use picola_logic::{
    exact_minimize, CoverEngine, Domain, ExactOutcome, GlobalMinimizeCache, MinimizeCache,
};
use std::sync::Arc;

/// How constraint functions are minimized during evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvalMinimizer {
    /// The in-tree heuristic ESPRESSO (the reference evaluation).
    #[default]
    Espresso,
    /// Exact minimization (Quine–McCluskey + branch and bound) with a node
    /// budget; falls back to the best cover found when the budget runs out.
    Exact {
        /// Branch-and-bound node budget per constraint.
        max_nodes: usize,
    },
}

/// Knobs of the evaluation pipeline beyond the minimizer choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalOptions {
    /// Which minimizer prices each constraint function.
    pub minimizer: EvalMinimizer,
    /// Which cover engine ESPRESSO runs on (flat by default; legacy stays
    /// selectable as the differential reference and A/B bench leg).
    pub engine: CoverEngine,
    /// Whether repeat constraint functions are answered from the
    /// [`EvalContext`]'s memo. Off = honest recomputation on every call
    /// (bit-identical results either way).
    pub cache: bool,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            minimizer: EvalMinimizer::default(),
            engine: CoverEngine::default(),
            cache: true,
        }
    }
}

/// Long-lived state threaded through repeated evaluations: the minimization
/// memo plus its scratch pool. Search loops (ENC probes, portfolio sweeps)
/// keep one context per run so repeat covers cost a hash lookup and the
/// steady state allocates nothing.
///
/// By default the memo is per-run, never shared: traces stay independent of
/// thread count and interleaving. A long-running server instead attaches a
/// shared [`GlobalMinimizeCache`] via [`EvalContext::with_global`] so repeat
/// covers hit *across* requests; results stay bit-identical (the global
/// cache preserves the exact order-sensitive keying), only the work differs.
#[derive(Debug, Default)]
pub struct EvalContext {
    /// The memoized minimization cache (also the scratch/key buffer pool
    /// when a global cache is attached).
    pub cache: MinimizeCache,
    /// Cross-request shared memo; `None` keeps the per-run memo authoritative.
    global: Option<Arc<GlobalMinimizeCache>>,
}

impl EvalContext {
    /// A fresh (cold) context.
    pub fn new() -> EvalContext {
        EvalContext::default()
    }

    /// A fresh context whose per-run memo stops inserting at `capacity`
    /// entries (the deployment knob behind `--cache-capacity`).
    pub fn with_cache_capacity(capacity: usize) -> EvalContext {
        EvalContext {
            cache: MinimizeCache::with_capacity(capacity),
            global: None,
        }
    }

    /// A fresh context that answers cached minimizations from `global`
    /// instead of its private memo, sharing warm entries across requests.
    pub fn with_global(global: Arc<GlobalMinimizeCache>) -> EvalContext {
        EvalContext {
            cache: MinimizeCache::new(),
            global: Some(global),
        }
    }

    /// The attached shared cache, if any.
    pub fn global(&self) -> Option<&Arc<GlobalMinimizeCache>> {
        self.global.as_ref()
    }
}

/// Cost of one constraint under an encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConstraintCost {
    /// Index of the constraint in the evaluated slice.
    pub index: usize,
    /// Whether the face is embedded (cost is then exactly 1).
    pub satisfied: bool,
    /// Minimized product-term count of the constraint's function.
    pub cubes: usize,
}

/// The full evaluation of an encoding against a constraint set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodingEvaluation {
    /// Per-constraint breakdown (trivial constraints are skipped).
    pub per_constraint: Vec<ConstraintCost>,
    /// Sum of minimized cube counts — the paper's Table I metric.
    pub total_cubes: usize,
    /// Number of satisfied (face-embedded) constraints.
    pub satisfied: usize,
    /// Number of evaluated (non-trivial) constraints.
    pub evaluated: usize,
}

/// A fast combinatorial estimate of the Table I cube metric, usable inside
/// tight refinement loops.
///
/// Per non-trivial constraint it runs a greedy single-output cube cover
/// directly on the code words — grow a cube from each uncovered member
/// code by merging in further member codes (supercube accumulation) as long
/// as no non-member code slips inside; unused code words are don't-cares.
/// This is a micro two-level minimizer in pure bit arithmetic: exact on
/// satisfied faces (one cube — the supercube always merges completely) and
/// close to ESPRESSO on the irregular cases, at microseconds per
/// constraint.
pub fn estimate_cubes(enc: &Encoding, constraints: &[GroupConstraint]) -> usize {
    estimate_cubes_with(enc, constraints, &mut CubesScratch::default())
}

/// [`estimate_cubes`] with caller-provided scratch buffers.
///
/// Hot loops that estimate many encodings (the cost-model portfolio, the
/// state-assignment polish pass) call this with one long-lived
/// [`CubesScratch`] so no per-evaluation heap allocation happens.
pub fn estimate_cubes_with(
    enc: &Encoding,
    constraints: &[GroupConstraint],
    scratch: &mut CubesScratch,
) -> usize {
    estimate_codes_cubes_with(enc.codes(), constraints, scratch)
}

/// [`estimate_cubes_with`] directly over a raw codes slice, for proposal
/// loops that avoid per-candidate `Encoding` construction. The caller
/// guarantees distinct in-range codes.
pub fn estimate_codes_cubes_with(
    codes: &[u32],
    constraints: &[GroupConstraint],
    scratch: &mut CubesScratch,
) -> usize {
    constraints
        .iter()
        .filter(|c| !c.is_trivial())
        .map(|c| greedy_codes_cubes_into(codes, c.members(), scratch))
        .sum()
}

/// Greedy cube count for one constraint under `enc` (see
/// [`estimate_cubes`]).
pub fn greedy_constraint_cubes(
    enc: &Encoding,
    members: &picola_constraints::SymbolSet,
) -> usize {
    greedy_codes_cubes(enc.codes(), members)
}

/// Reusable buffers for [`greedy_codes_cubes_into`]: the uncovered member
/// codes and the forbidden (non-member) codes of the constraint under
/// evaluation. One instance serves any number of calls — the vectors are
/// cleared, never shrunk, so steady-state evaluation allocates nothing.
#[derive(Debug, Clone, Default)]
pub struct CubesScratch {
    pub(crate) uncovered: Vec<u32>,
    pub(crate) forbidden: Vec<u32>,
}

impl CubesScratch {
    /// Fresh, empty scratch. Buffers grow on first use and are then reused.
    #[must_use]
    pub fn new() -> CubesScratch {
        CubesScratch::default()
    }
}

/// [`greedy_constraint_cubes`] computed directly over a codes slice.
///
/// The refine hot path evaluates thousands of candidate code vectors; this
/// entry point skips `Encoding::new`'s `O(2^nv)` distinctness validation —
/// the caller guarantees the slice holds distinct in-range codes (swaps and
/// moves to free words preserve that by construction).
pub fn greedy_codes_cubes(codes: &[u32], members: &picola_constraints::SymbolSet) -> usize {
    greedy_codes_cubes_into(codes, members, &mut CubesScratch::default())
}

/// [`greedy_codes_cubes`] with caller-provided scratch buffers — the
/// zero-allocation entry point the refine engine and the baselines' hot
/// loops thread their per-worker scratch through. Returns exactly the same
/// count as [`greedy_codes_cubes`] for the same inputs.
pub fn greedy_codes_cubes_into(
    codes: &[u32],
    members: &picola_constraints::SymbolSet,
    scratch: &mut CubesScratch,
) -> usize {
    scratch.uncovered.clear();
    scratch.uncovered.extend(members.iter().map(|s| codes[s]));
    scratch.forbidden.clear();
    scratch.forbidden.extend(
        (0..codes.len())
            .filter(|&s| !members.contains(s))
            .map(|s| codes[s]),
    );
    greedy_cover_count(&mut scratch.uncovered, &scratch.forbidden)
}

/// The greedy cover loop proper, over prepared code lists. `uncovered` is
/// consumed (drained as cubes cover it); `forbidden` is read-only. The
/// incremental refine engine calls this directly on its cached,
/// incrementally-patched lists — the order of `uncovered` determines the
/// seed sequence, so callers must present member codes in ascending symbol
/// order to match [`greedy_codes_cubes`].
pub(crate) fn greedy_cover_count(uncovered: &mut Vec<u32>, forbidden: &[u32]) -> usize {
    let mut count = 0usize;
    while let Some(&seed) = uncovered.first() {
        // Grow a cube by merging member codes: take the supercube with each
        // further uncovered code as long as no non-member code slips in.
        // Unlike bit-at-a-time expansion this crosses multi-bit gaps (e.g.
        // merging 000 with 011), so a satisfied face always ends up as its
        // single supercube. Rescan until a fixpoint — each merge can make
        // more codes admissible.
        let mut fixed = u32::MAX;
        loop {
            let mut changed = false;
            for &c in uncovered.iter() {
                let cand = fixed & !(c ^ seed);
                if cand == fixed {
                    continue;
                }
                if forbidden.iter().all(|&f| (f ^ seed) & cand != 0) {
                    fixed = cand;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        uncovered.retain(|&c| (c ^ seed) & fixed != 0);
        count += 1;
    }
    count
}

/// Evaluates `enc` against `constraints` using the default (ESPRESSO)
/// minimizer.
pub fn evaluate_encoding(enc: &Encoding, constraints: &[GroupConstraint]) -> EncodingEvaluation {
    evaluate_encoding_with(enc, constraints, EvalMinimizer::Espresso)
}

/// Evaluates `enc` against `constraints` with an explicit minimizer choice
/// and a one-shot [`EvalContext`].
pub fn evaluate_encoding_with(
    enc: &Encoding,
    constraints: &[GroupConstraint],
    minimizer: EvalMinimizer,
) -> EncodingEvaluation {
    let opts = EvalOptions {
        minimizer,
        ..EvalOptions::default()
    };
    evaluate_encoding_cached(enc, constraints, &opts, &mut EvalContext::new())
}

/// The full evaluation entry point: explicit [`EvalOptions`] and a
/// caller-owned [`EvalContext`] whose memo and scratch survive across
/// calls. Returns bit-identical results for every (engine, cache) choice;
/// only the work performed differs.
pub fn evaluate_encoding_cached(
    enc: &Encoding,
    constraints: &[GroupConstraint],
    opts: &EvalOptions,
    ctx: &mut EvalContext,
) -> EncodingEvaluation {
    let dom = Domain::binary(enc.nv());
    let mut per_constraint = Vec::new();
    let mut total = 0usize;
    let mut satisfied = 0usize;

    for (index, c) in constraints.iter().enumerate() {
        if c.is_trivial() {
            continue;
        }
        let (on, dc) = enc.constraint_function(&dom, c.members());
        let cubes = match opts.minimizer {
            EvalMinimizer::Espresso => {
                if !opts.cache {
                    ctx.cache.minimized_cube_count_uncached(&on, &dc, opts.engine)
                } else if let Some(global) = &ctx.global {
                    ctx.cache
                        .minimized_cube_count_shared(global, &on, &dc, opts.engine)
                } else {
                    ctx.cache.minimized_cube_count(&on, &dc, opts.engine)
                }
            }
            EvalMinimizer::Exact { max_nodes } => match exact_minimize(&on, &dc, max_nodes) {
                ExactOutcome::Minimum(cv) | ExactOutcome::Truncated(cv) => cv.len(),
            },
        };
        let sat = enc.satisfies(c.members());
        if sat {
            // A fully minimized satisfied face costs exactly one cube, but
            // the minimizer may degrade under fault injection, so only the
            // lower bound is an invariant here.
            debug_assert!(cubes >= 1, "a satisfied face needs at least one cube");
            satisfied += 1;
        }
        total += cubes;
        per_constraint.push(ConstraintCost {
            index,
            satisfied: sat,
            cubes,
        });
    }

    EncodingEvaluation {
        evaluated: per_constraint.len(),
        per_constraint,
        total_cubes: total,
        satisfied,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use picola_constraints::SymbolSet;

    fn groups(n: usize, gs: &[&[usize]]) -> Vec<GroupConstraint> {
        gs.iter()
            .map(|g| GroupConstraint::new(SymbolSet::from_members(n, g.iter().copied())))
            .collect()
    }

    #[test]
    fn satisfied_constraints_cost_one() {
        // natural codes 00,01,10,11: {0,1} is the face 0-
        let enc = Encoding::natural(4);
        let cs = groups(4, &[&[0, 1]]);
        let ev = evaluate_encoding(&enc, &cs);
        assert_eq!(ev.total_cubes, 1);
        assert_eq!(ev.satisfied, 1);
    }

    #[test]
    fn violated_constraints_cost_more() {
        // {0, 3} under natural 2-bit codes: codes 00 and 11 -> two cubes.
        let enc = Encoding::natural(4);
        let cs = groups(4, &[&[0, 3]]);
        let ev = evaluate_encoding(&enc, &cs);
        assert_eq!(ev.satisfied, 0);
        assert_eq!(ev.total_cubes, 2);
    }

    #[test]
    fn unused_codes_are_dont_cares() {
        // 3 symbols in 2 bits; {0, 1} at 00, 01 plus symbol 2 at 10.
        // Constraint {0, 1}: cube 0- works. Constraint {1, 2}: codes 01,
        // 10; with dc 11 the pair minimizes to two cubes (01 + 1-), but
        // {0, 2} = 00, 10 -> -0 is one cube thanks to... -0 covers 00 and
        // 10 exactly: satisfied? supercube of {00,10} = -0 which contains
        // no other used code -> satisfied, 1 cube.
        let enc = Encoding::new(2, vec![0b00, 0b01, 0b10]).unwrap();
        let cs = groups(3, &[&[0, 1], &[0, 2], &[1, 2]]);
        let ev = evaluate_encoding(&enc, &cs);
        assert_eq!(ev.per_constraint[0].cubes, 1);
        assert_eq!(ev.per_constraint[1].cubes, 1);
        assert_eq!(ev.per_constraint[2].cubes, 2);
        assert_eq!(ev.satisfied, 2);
    }

    #[test]
    fn exact_and_espresso_agree_on_small_instances() {
        let enc = Encoding::new(3, (0..7).collect()).unwrap();
        let cs = groups(7, &[&[0, 2, 5], &[1, 3], &[2, 3, 4, 6]]);
        let a = evaluate_encoding(&enc, &cs);
        let b = evaluate_encoding_with(&enc, &cs, EvalMinimizer::Exact { max_nodes: 100_000 });
        assert!(b.total_cubes <= a.total_cubes);
        // espresso should be optimal on functions this small
        assert_eq!(a.total_cubes, b.total_cubes);
    }

    #[test]
    fn scratch_reuse_matches_fresh_allocation() {
        // One scratch across many (codes, members) pairs — including pairs
        // smaller than earlier ones, so stale buffer contents would show.
        let mut scratch = CubesScratch::new();
        let cases: &[(usize, Vec<u32>, Vec<usize>)] = &[
            (3, vec![0, 1, 2, 3, 4, 5, 6], vec![0, 2, 5]),
            (3, vec![6, 5, 4, 3, 2, 1, 0], vec![1, 3]),
            (2, vec![0, 3, 1], vec![0, 1]),
            (4, vec![0, 15, 7, 8, 3], vec![0, 1, 2, 3, 4]),
        ];
        for (_, codes, members) in cases {
            let ms = SymbolSet::from_members(codes.len(), members.iter().copied());
            assert_eq!(
                greedy_codes_cubes_into(codes, &ms, &mut scratch),
                greedy_codes_cubes(codes, &ms),
            );
        }
    }

    #[test]
    fn estimate_cubes_with_shares_one_scratch() {
        let enc = Encoding::natural(6);
        let cs = groups(6, &[&[0, 1], &[0, 3], &[2, 3, 4]]);
        let mut scratch = CubesScratch::new();
        let a = estimate_cubes_with(&enc, &cs, &mut scratch);
        let b = estimate_cubes_with(&enc, &cs, &mut scratch);
        assert_eq!(a, estimate_cubes(&enc, &cs));
        assert_eq!(a, b);
    }

    #[test]
    fn trivial_constraints_are_skipped() {
        let enc = Encoding::natural(4);
        let cs = groups(4, &[&[2], &[0, 1, 2, 3]]);
        let ev = evaluate_encoding(&enc, &cs);
        assert_eq!(ev.evaluated, 0);
        assert_eq!(ev.total_cubes, 0);
    }
}
