//! The workspace-facing error type of the PICOLA core.

use std::error::Error;
use std::fmt;

/// Errors surfaced by the fallible PICOLA entry points
/// ([`crate::try_picola_encode_with`] and friends).
///
/// Budget exhaustion is **not** an error: bounded runs degrade gracefully
/// and report a [`picola_logic::Completion::Degraded`] status alongside a
/// valid result. `PicolaError` covers the cases where no meaningful result
/// exists at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PicolaError {
    /// The caller's input is unusable: too few symbols, an `nv_override`
    /// that cannot distinguish the symbols, or a constraint naming a
    /// symbol outside the universe.
    InvalidInput(String),
    /// An internal invariant failed. Returned instead of panicking so
    /// callers (in particular the CLI) always stay in control.
    Internal(String),
}

impl PicolaError {
    /// Builds an [`PicolaError::InvalidInput`].
    pub fn invalid(msg: impl Into<String>) -> Self {
        PicolaError::InvalidInput(msg.into())
    }

    /// Builds an [`PicolaError::Internal`].
    pub fn internal(msg: impl Into<String>) -> Self {
        PicolaError::Internal(msg.into())
    }
}

impl fmt::Display for PicolaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PicolaError::InvalidInput(m) => write!(f, "invalid input: {m}"),
            PicolaError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl Error for PicolaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_distinguishes_kinds() {
        assert!(PicolaError::invalid("n < 2").to_string().starts_with("invalid input"));
        assert!(PicolaError::internal("oops").to_string().starts_with("internal error"));
    }
}
