//! A parallel portfolio of encoders racing on one instance.
//!
//! The paper's evaluation compares PICOLA against NOVA-, ENC- and
//! annealing-style encoders on every benchmark; at corpus scale the
//! comparison only stays cheap if the members run concurrently. The
//! portfolio spawns each member on its own worker, all drawing work from
//! one shared [`Budget`] pool ([`Budget::worker`]), and keeps the best
//! result by the combinatorial cube estimate.
//!
//! Degradation contract: a real budget limit (deadline or work cap) stops
//! *every* member — each returns its best-so-far result and the outcome is
//! tagged [`Completion::Degraded`]. An **injected** chaos fault or a panic
//! inside one member degrades that member alone; the join never poisons or
//! hangs, and the other members' results stand.
//!
//! Determinism: members are themselves deterministic (seeded RNGs, fixed
//! iteration orders), the winner is chosen by `(cost, member index)`, and
//! worker threads only change *when* members run, never what they compute —
//! so under an unlimited budget the outcome is bit-identical for any
//! thread count. Under a *finite* budget, thread interleaving on the shared
//! work pool shifts where each member degrades; results remain valid but
//! may differ run to run (the same caveat a wall-clock deadline always
//! carries).

use crate::eval::estimate_cubes;
use crate::picola::Encoder;
use picola_constraints::{Encoding, GroupConstraint};
use picola_logic::{obs, Budget, Completion, ExhaustReason};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One portfolio member's result.
#[derive(Debug, Clone)]
pub struct MemberOutcome {
    /// The member's [`Encoder::name`].
    pub name: String,
    /// The encoding it produced (always valid; a panicking member is
    /// substituted by the natural encoding).
    pub encoding: Encoding,
    /// How the member's run ended.
    pub completion: Completion,
    /// Combinatorial cube estimate of `encoding`
    /// ([`crate::eval::estimate_cubes`]) — the ranking key. The estimate is
    /// deliberately memo-free (microseconds per member, computed once);
    /// callers that want the exact Table I price re-evaluate winners through
    /// the cached pipeline ([`crate::eval::evaluate_encoding_cached`]).
    pub cost: usize,
    /// Non-trivial constraints the encoding face-embeds.
    pub satisfied: usize,
    /// Wall time of this member's run.
    pub wall: Duration,
}

/// The result of an [`EncoderPortfolio`] run.
#[derive(Debug, Clone)]
pub struct PortfolioOutcome {
    /// Per-member outcomes, in member order (not completion order).
    pub members: Vec<MemberOutcome>,
    /// Index into `members` of the winner: lowest `cost`, ties broken by
    /// completeness (a complete run beats a degraded one), then member
    /// order.
    pub winner: usize,
    /// Fold of all members' completions (degraded wins).
    pub completion: Completion,
}

impl PortfolioOutcome {
    /// The winning member.
    pub fn best(&self) -> &MemberOutcome {
        &self.members[self.winner]
    }
}

/// A set of encoders raced in parallel over one instance.
pub struct EncoderPortfolio {
    members: Vec<Box<dyn Encoder + Send + Sync>>,
    /// Worker threads; `0` means one worker per member (capped by the
    /// member count either way).
    pub threads: usize,
}

impl EncoderPortfolio {
    /// A portfolio over the given members.
    pub fn new(members: Vec<Box<dyn Encoder + Send + Sync>>) -> Self {
        EncoderPortfolio {
            members,
            threads: 0,
        }
    }

    /// Sets the worker-thread count (builder style).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the portfolio has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The member names, in member order.
    pub fn names(&self) -> Vec<&str> {
        self.members.iter().map(|m| m.name()).collect()
    }

    /// Races every member on the instance and returns all outcomes plus
    /// the winner. Returns `None` for an empty portfolio.
    ///
    /// Each member runs on a worker view of `budget`
    /// ([`Budget::worker`]): work accounting is global across members,
    /// while injected faults stay local to the member that hit them. Real
    /// exhaustion reasons (deadline, work cap) are propagated back to
    /// `budget`'s own latch.
    pub fn run(
        &self,
        n: usize,
        constraints: &[GroupConstraint],
        budget: &Budget,
    ) -> Option<PortfolioOutcome> {
        let k = self.members.len();
        if k == 0 {
            return None;
        }
        let workers = match self.threads {
            0 => k,
            t => t.min(k),
        };

        // Per-member spans are created here, in member order on the calling
        // thread, so the trace's child order never depends on worker
        // scheduling; each worker installs its member's recorder while it
        // runs, which attributes every tick and counter to that member.
        let pspan = obs::current_or(budget.recorder()).span("portfolio");
        let member_spans: Vec<obs::SpanGuard> = self
            .members
            .iter()
            .map(|m| pspan.recorder().span(&format!("member.{}", m.name())))
            .collect();

        let next = AtomicUsize::new(0);
        let collected: Mutex<Vec<(usize, MemberOutcome)>> = Mutex::new(Vec::with_capacity(k));
        rayon::scope(|s| {
            for _ in 0..workers {
                s.spawn(|_| {
                    loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        if idx >= k {
                            break;
                        }
                        let outcome = run_member(
                            self.members[idx].as_ref(),
                            n,
                            constraints,
                            budget,
                            &member_spans[idx],
                        );
                        if let Ok(mut out) = collected.lock() {
                            out.push((idx, outcome));
                        }
                    }
                });
            }
        });

        let mut members: Vec<(usize, MemberOutcome)> = match collected.into_inner() {
            Ok(v) => v,
            // The mutex cannot be poisoned (pushes don't panic), but fail
            // soft rather than unwrap on the theoretical path.
            Err(poisoned) => poisoned.into_inner(),
        };
        members.sort_by_key(|&(idx, _)| idx);
        let members: Vec<MemberOutcome> = members.into_iter().map(|(_, m)| m).collect();
        if members.len() != k {
            // A worker died without reporting — should be impossible with
            // catch_unwind in place; refuse to fabricate a partial result.
            return None;
        }

        let mut completion = Completion::Complete;
        for m in &members {
            completion = completion.and(m.completion);
            if let Completion::Degraded { reason, .. } = m.completion {
                if reason != ExhaustReason::Injected {
                    budget.exhaust(reason);
                }
            }
        }
        let winner = members
            .iter()
            .enumerate()
            .min_by_key(|(idx, m)| (m.cost, !m.completion.is_complete(), *idx))
            .map(|(idx, _)| idx)?;
        Some(PortfolioOutcome {
            members,
            winner,
            completion,
        })
    }
}

impl std::fmt::Debug for EncoderPortfolio {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EncoderPortfolio")
            .field("members", &self.names())
            .field("threads", &self.threads)
            .finish()
    }
}

/// Runs one member on its own budget view, absorbing panics so a broken
/// member cannot poison the portfolio join.
fn run_member(
    member: &dyn Encoder,
    n: usize,
    constraints: &[GroupConstraint],
    budget: &Budget,
    span: &obs::SpanGuard,
) -> MemberOutcome {
    let _cur = obs::enter(span.recorder());
    let worker_budget = budget.worker();
    let start = Instant::now();
    let result = catch_unwind(AssertUnwindSafe(|| {
        member.encode_bounded(n, constraints, &worker_budget)
    }));
    let wall = start.elapsed();
    if result.is_err() {
        obs::count(obs::Counter::PanicsCaught, 1);
    }
    let (encoding, completion) = match result {
        Ok(r) => r,
        Err(_) => (
            // A panicked member degrades alone: substitute the weakest
            // valid encoding, tagged as an injected-style failure.
            Encoding::natural(n),
            Completion::Degraded {
                reason: ExhaustReason::Injected,
                work_done: worker_budget.work_done(),
            },
        ),
    };
    let satisfied = constraints
        .iter()
        .filter(|c| !c.is_trivial() && encoding.satisfies(c.members()))
        .count();
    MemberOutcome {
        name: member.name().to_string(),
        cost: estimate_cubes(&encoding, constraints),
        satisfied,
        encoding,
        completion,
        wall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::picola::PicolaEncoder;
    use picola_constraints::SymbolSet;

    fn groups(n: usize, gs: &[&[usize]]) -> Vec<GroupConstraint> {
        gs.iter()
            .map(|g| GroupConstraint::new(SymbolSet::from_members(n, g.iter().copied())))
            .collect()
    }

    struct FixedEncoder {
        name: &'static str,
        codes: Vec<u32>,
        nv: usize,
    }

    impl Encoder for FixedEncoder {
        fn name(&self) -> &str {
            self.name
        }
        #[allow(clippy::expect_used)] // test helper with hand-picked codes
        fn encode(&self, _n: usize, _constraints: &[GroupConstraint]) -> Encoding {
            Encoding::new(self.nv, self.codes.clone()).expect("test codes are valid")
        }
    }

    struct PanickingEncoder;

    impl Encoder for PanickingEncoder {
        fn name(&self) -> &str {
            "panics"
        }
        #[allow(clippy::panic)] // the point of this test double
        fn encode(&self, _n: usize, _constraints: &[GroupConstraint]) -> Encoding {
            panic!("deliberately broken member")
        }
    }

    #[test]
    fn empty_portfolio_returns_none() {
        let p = EncoderPortfolio::new(Vec::new());
        assert!(p.run(4, &[], &Budget::unlimited()).is_none());
        assert!(p.is_empty());
    }

    #[test]
    fn winner_has_lowest_cost_ties_to_first() {
        // natural codes satisfy {0,1} (face 0-); the rigged encoder does not.
        let cs = groups(4, &[&[0, 3]]);
        let p = EncoderPortfolio::new(vec![
            Box::new(FixedEncoder {
                name: "bad",
                codes: vec![0, 1, 2, 3],
                nv: 2,
            }),
            Box::new(FixedEncoder {
                name: "good",
                codes: vec![0, 2, 3, 1], // {0,3}: codes 00,01 -> face 0-
                nv: 2,
            }),
        ]);
        let out = p.run(4, &cs, &Budget::unlimited()).into_iter().next();
        let out = out.unwrap_or_else(|| panic!("portfolio produced no outcome"));
        assert_eq!(out.best().name, "good");
        assert_eq!(out.best().cost, 1);
        assert_eq!(out.best().satisfied, 1);
        assert!(out.completion.is_complete());
        assert_eq!(out.members.len(), 2);
        assert_eq!(out.members[0].name, "bad");
    }

    #[test]
    fn panicking_member_degrades_alone() {
        let cs = groups(8, &[&[0, 1], &[2, 3]]);
        let p = EncoderPortfolio::new(vec![
            Box::new(PanickingEncoder),
            Box::<PicolaEncoder>::default(),
        ]);
        let out = p.run(8, &cs, &Budget::unlimited());
        let out = out.unwrap_or_else(|| panic!("join must survive a panic"));
        assert!(matches!(
            out.members[0].completion,
            Completion::Degraded {
                reason: ExhaustReason::Injected,
                ..
            }
        ));
        assert!(out.members[1].completion.is_complete());
        assert_eq!(out.best().name, "picola");
        assert!(!out.completion.is_complete(), "fold reports the degradation");
    }

    #[test]
    fn thread_count_does_not_change_the_outcome() {
        let cs = groups(8, &[&[0, 1], &[2, 3], &[4, 5, 6]]);
        let build = || {
            EncoderPortfolio::new(vec![
                Box::<PicolaEncoder>::default() as Box<dyn Encoder + Send + Sync>,
                Box::new(FixedEncoder {
                    name: "natural",
                    codes: (0..8).collect(),
                    nv: 3,
                }),
            ])
        };
        let seq = build().with_threads(1).run(8, &cs, &Budget::unlimited());
        let par = build().with_threads(4).run(8, &cs, &Budget::unlimited());
        let (seq, par) = match (seq, par) {
            (Some(a), Some(b)) => (a, b),
            _ => panic!("both runs must produce outcomes"),
        };
        assert_eq!(seq.winner, par.winner);
        assert_eq!(seq.best().cost, par.best().cost);
        assert_eq!(seq.best().encoding, par.best().encoding);
    }

    #[test]
    fn work_cap_degrades_every_member_but_join_returns() {
        let cs = groups(8, &[&[0, 1], &[2, 3]]);
        let p = EncoderPortfolio::new(vec![
            Box::<PicolaEncoder>::default() as Box<dyn Encoder + Send + Sync>,
            Box::<PicolaEncoder>::default(),
        ]);
        let budget = Budget::with_work_limit(1);
        let out = p.run(8, &cs, &budget);
        let out = out.unwrap_or_else(|| panic!("degraded, not dead"));
        assert!(!out.completion.is_complete());
        for m in &out.members {
            assert_eq!(m.encoding.num_symbols(), 8);
        }
        // The real reason propagates to the parent budget's latch.
        assert_eq!(budget.exhaustion(), Some(ExhaustReason::WorkLimit));
    }
}
