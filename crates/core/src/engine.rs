//! The stable compute boundary behind the encoding daemon: a [`Job`] goes
//! in, a [`JobOutput`] comes out, and everything stateful (options, the
//! shared minimization memo) lives in a cheaply clonable [`EngineHandle`].
//!
//! The split exists so orchestration — sockets, queues, worker threads,
//! retries — never reaches into algorithm internals: `picola-server` owns
//! the lifecycle, this module owns the compute. Every entry point is
//! panic-free, budget-bounded, and deterministic: two engines with the same
//! config produce bit-identical outputs for the same job regardless of what
//! else ran through them first (the shared [`GlobalMinimizeCache`] preserves
//! the exact order-sensitive keying, so warmth changes work, never results).

use crate::error::PicolaError;
use crate::eval::{evaluate_encoding_cached, EncodingEvaluation, EvalContext, EvalOptions};
use crate::picola::{try_picola_encode_with, PicolaOptions};
use picola_constraints::{Encoding, GroupConstraint};
use picola_logic::{Budget, CacheStats, Completion, GlobalMinimizeCache};
use std::sync::Arc;

/// Configuration shared by every job an [`EngineHandle`] runs.
#[derive(Debug, Clone, Default)]
pub struct EngineConfig {
    /// Options of the PICOLA encoder (cost model, ablations, threads,
    /// refine engine).
    pub picola: PicolaOptions,
    /// Options of the evaluation pipeline (minimizer, cover engine, cache).
    pub eval: EvalOptions,
    /// Total entry budget of the shared minimization memo; `None` takes
    /// [`picola_logic::DEFAULT_CACHE_CAPACITY`]. The deployment knob behind
    /// the CLI's `--cache-capacity`.
    pub cache_capacity: Option<usize>,
    /// Shard count of the shared memo; `None` takes
    /// [`picola_logic::DEFAULT_CACHE_SHARDS`].
    pub cache_shards: Option<usize>,
}

/// One unit of work accepted by [`EngineHandle::run`].
#[derive(Debug, Clone)]
pub enum Job {
    /// Encode `n` symbols under face constraints and price the result.
    Encode {
        /// Number of symbols to encode.
        n: usize,
        /// Face constraints over those symbols.
        constraints: Vec<GroupConstraint>,
    },
    /// Price an existing encoding against face constraints.
    Evaluate {
        /// The encoding to price.
        encoding: Encoding,
        /// Face constraints over its symbols.
        constraints: Vec<GroupConstraint>,
    },
}

/// The result of a [`Job`], always carrying a [`Completion`] so degraded
/// (budget-exhausted) runs are first-class answers, not errors.
#[derive(Debug, Clone)]
pub enum JobOutput {
    /// Output of [`Job::Encode`].
    Encoded {
        /// The produced encoding (valid even when degraded).
        encoding: Encoding,
        /// Its evaluation against the job's constraints.
        evaluation: EncodingEvaluation,
        /// Whether the run finished within budget.
        completion: Completion,
    },
    /// Output of [`Job::Evaluate`].
    Evaluated {
        /// The evaluation of the given encoding.
        evaluation: EncodingEvaluation,
        /// Always [`Completion::Complete`] today — evaluation is priced by
        /// the minimize memo, not the job budget.
        completion: Completion,
    },
}

impl JobOutput {
    /// The completion status of the job.
    pub fn completion(&self) -> &Completion {
        match self {
            JobOutput::Encoded { completion, .. } | JobOutput::Evaluated { completion, .. } => {
                completion
            }
        }
    }

    /// The evaluation carried by the output.
    pub fn evaluation(&self) -> &EncodingEvaluation {
        match self {
            JobOutput::Encoded { evaluation, .. } | JobOutput::Evaluated { evaluation, .. } => {
                evaluation
            }
        }
    }
}

#[derive(Debug)]
struct EngineInner {
    config: EngineConfig,
    global: Arc<GlobalMinimizeCache>,
}

/// A cheaply clonable handle on the compute engine: configuration plus the
/// shared cross-request minimization memo. Every worker thread of the
/// daemon clones one handle; jobs run on the caller's thread under the
/// caller's [`Budget`].
#[derive(Debug, Clone)]
pub struct EngineHandle {
    inner: Arc<EngineInner>,
}

impl Default for EngineHandle {
    fn default() -> Self {
        EngineHandle::new(EngineConfig::default())
    }
}

impl EngineHandle {
    /// Builds an engine with a fresh (cold) shared memo sized by `config`.
    pub fn new(config: EngineConfig) -> EngineHandle {
        let capacity = config
            .cache_capacity
            .unwrap_or(picola_logic::DEFAULT_CACHE_CAPACITY);
        let shards = config
            .cache_shards
            .unwrap_or(picola_logic::DEFAULT_CACHE_SHARDS);
        EngineHandle {
            inner: Arc::new(EngineInner {
                config,
                global: Arc::new(GlobalMinimizeCache::with_capacity_and_shards(
                    capacity, shards,
                )),
            }),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.inner.config
    }

    /// The shared minimization memo (for benches wiring their own
    /// [`EvalContext`]s to the same warmth).
    pub fn global_cache(&self) -> Arc<GlobalMinimizeCache> {
        Arc::clone(&self.inner.global)
    }

    /// Point-in-time statistics of the shared memo
    /// (`hits + misses == calls` across all shards).
    pub fn cache_stats(&self) -> CacheStats {
        self.inner.global.stats()
    }

    /// Builds an [`EvalContext`] wired to the shared memo — honoring the
    /// config's `cache` switch (off = private uncached context, for the
    /// differential cache-on/off legs).
    fn eval_context(&self) -> EvalContext {
        if self.inner.config.eval.cache {
            EvalContext::with_global(self.global_cache())
        } else {
            EvalContext::new()
        }
    }

    /// Runs one job to completion (or graceful degradation) under `budget`.
    ///
    /// # Errors
    ///
    /// [`PicolaError::InvalidInput`] for unusable jobs (mismatched symbol
    /// universes, too few symbols); [`PicolaError::Internal`] if a solver
    /// invariant breaks. Budget exhaustion is **not** an error — the output
    /// carries a [`Completion::Degraded`] alongside a valid best-so-far
    /// result.
    pub fn run(&self, job: &Job, budget: &Budget) -> Result<JobOutput, PicolaError> {
        match job {
            Job::Encode { n, constraints } => {
                let result =
                    try_picola_encode_with(*n, constraints, &self.inner.config.picola, budget)?;
                let mut ctx = self.eval_context();
                let evaluation = evaluate_encoding_cached(
                    &result.encoding,
                    constraints,
                    &self.inner.config.eval,
                    &mut ctx,
                );
                Ok(JobOutput::Encoded {
                    encoding: result.encoding,
                    evaluation,
                    completion: result.completion,
                })
            }
            Job::Evaluate {
                encoding,
                constraints,
            } => {
                for (i, c) in constraints.iter().enumerate() {
                    if c.members().universe() != encoding.num_symbols() {
                        return Err(PicolaError::invalid(format!(
                            "constraint {i} ranges over {} symbols, encoding has {}",
                            c.members().universe(),
                            encoding.num_symbols()
                        )));
                    }
                }
                let mut ctx = self.eval_context();
                let evaluation = evaluate_encoding_cached(
                    encoding,
                    constraints,
                    &self.inner.config.eval,
                    &mut ctx,
                );
                Ok(JobOutput::Evaluated {
                    evaluation,
                    completion: Completion::Complete,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use picola_constraints::SymbolSet;

    fn groups(n: usize, gs: &[&[usize]]) -> Vec<GroupConstraint> {
        gs.iter()
            .map(|g| GroupConstraint::new(SymbolSet::from_members(n, g.iter().copied())))
            .collect()
    }

    #[test]
    fn encode_jobs_run_and_warm_the_shared_cache() {
        let engine = EngineHandle::default();
        let job = Job::Encode {
            n: 8,
            constraints: groups(8, &[&[0, 1, 2], &[4, 5], &[1, 3, 6]]),
        };
        let first = engine.run(&job, &Budget::unlimited()).expect("first run");
        let second = engine.run(&job, &Budget::unlimited()).expect("second run");
        let (JobOutput::Encoded { encoding: e1, evaluation: v1, .. },
             JobOutput::Encoded { encoding: e2, evaluation: v2, .. }) = (first, second)
        else {
            panic!("encode jobs return Encoded outputs");
        };
        assert_eq!(e1, e2, "same job, same encoding, warm or cold");
        assert_eq!(v1, v2);
        let stats = engine.cache_stats();
        assert_eq!(
            stats.hits + stats.misses,
            u64::try_from(2 * v1.evaluated).expect("fits"),
            "conservation across both runs"
        );
        #[cfg(feature = "minimize-cache")]
        assert!(stats.hits >= u64::try_from(v1.evaluated).expect("fits"));
    }

    #[test]
    fn evaluate_jobs_price_existing_encodings() {
        let engine = EngineHandle::default();
        let job = Job::Evaluate {
            encoding: Encoding::natural(4),
            constraints: groups(4, &[&[0, 1], &[0, 3]]),
        };
        let out = engine.run(&job, &Budget::unlimited()).expect("runs");
        assert!(out.completion().is_complete());
        assert_eq!(out.evaluation().evaluated, 2);
    }

    #[test]
    fn invalid_jobs_are_errors_not_panics() {
        let engine = EngineHandle::default();
        let too_few = Job::Encode {
            n: 1,
            constraints: vec![],
        };
        assert!(matches!(
            engine.run(&too_few, &Budget::unlimited()),
            Err(PicolaError::InvalidInput(_))
        ));
        let mismatched = Job::Evaluate {
            encoding: Encoding::natural(4),
            constraints: groups(6, &[&[0, 5]]),
        };
        assert!(matches!(
            engine.run(&mismatched, &Budget::unlimited()),
            Err(PicolaError::InvalidInput(_))
        ));
    }

    #[test]
    fn exhausted_budgets_degrade_instead_of_failing() {
        let engine = EngineHandle::default();
        let job = Job::Encode {
            n: 16,
            constraints: groups(16, &[&[0, 1, 2, 3], &[4, 5, 6], &[8, 9], &[10, 12, 14]]),
        };
        let budget = Budget::with_work_limit(1);
        let out = engine.run(&job, &budget).expect("degrades, not errors");
        let JobOutput::Encoded { encoding, completion, .. } = out else {
            panic!("encode jobs return Encoded outputs");
        };
        assert!(!completion.is_complete(), "budget of 1 cannot finish");
        assert_eq!(encoding.num_symbols(), 16, "degraded result is still valid");
    }
}
