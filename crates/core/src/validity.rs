//! Valid-partial-encoding tracking.
//!
//! A partial encoding (some columns of the code matrix) is *valid* when
//! every group of symbols sharing the same partial code can still be told
//! apart by the remaining columns: each such class must have at most
//! `2^(remaining columns)` members.

/// Tracks the equivalence classes induced by the generated code columns.
#[derive(Debug, Clone)]
pub struct ValidityTracker {
    n: usize,
    nv: usize,
    /// Class id per symbol under the columns committed so far.
    class: Vec<usize>,
    columns_done: usize,
}

impl ValidityTracker {
    /// A fresh tracker: all `n` symbols in one class, `nv` columns to come.
    ///
    /// # Panics
    ///
    /// Panics unless `n` symbols fit in `nv` bits.
    pub fn new(n: usize, nv: usize) -> Self {
        assert!(
            (n as u64) <= 1u64 << nv,
            "{n} symbols cannot be distinguished by {nv} bits"
        );
        ValidityTracker {
            n,
            nv,
            class: vec![0; n],
            columns_done: 0,
        }
    }

    /// Number of symbols.
    pub fn num_symbols(&self) -> usize {
        self.n
    }

    /// Columns committed so far.
    pub fn columns_done(&self) -> usize {
        self.columns_done
    }

    /// Remaining columns.
    pub fn columns_left(&self) -> usize {
        self.nv - self.columns_done
    }

    /// The class id of a symbol.
    pub fn class_of(&self, symbol: usize) -> usize {
        self.class[symbol]
    }

    /// Class populations indexed by class id.
    pub fn class_sizes(&self) -> Vec<usize> {
        let max = self.class.iter().copied().max().unwrap_or(0);
        let mut sizes = vec![0usize; max + 1];
        for &c in &self.class {
            sizes[c] += 1;
        }
        sizes
    }

    /// Maximum members one class may hold *after* the next column is
    /// committed (`2^(columns_left − 1)`).
    ///
    /// # Panics
    ///
    /// Panics when no columns remain.
    pub fn next_class_limit(&self) -> usize {
        assert!(self.columns_left() > 0, "no columns left");
        1usize << (self.columns_left() - 1)
    }

    /// Whether committing `column` keeps the partial encoding valid.
    pub fn column_is_valid(&self, column: &[bool]) -> bool {
        assert_eq!(column.len(), self.n, "column length mismatch");
        if self.columns_left() == 0 {
            return false;
        }
        let limit = self.next_class_limit();
        let sizes = self.split_sizes(column);
        sizes.iter().all(|&(t, f)| t <= limit && f <= limit)
    }

    /// Per existing class, how many members would land on the (true, false)
    /// side of `column`.
    pub fn split_sizes(&self, column: &[bool]) -> Vec<(usize, usize)> {
        let max = self.class.iter().copied().max().unwrap_or(0);
        let mut sizes = vec![(0usize, 0usize); max + 1];
        for (i, &c) in self.class.iter().enumerate() {
            if column[i] {
                sizes[c].0 += 1;
            } else {
                sizes[c].1 += 1;
            }
        }
        sizes
    }

    /// Commits a column, refining the classes.
    ///
    /// # Panics
    ///
    /// Panics if the column is invalid (see [`ValidityTracker::column_is_valid`]).
    pub fn commit(&mut self, column: &[bool]) {
        assert!(self.column_is_valid(column), "invalid column committed");
        // New class id = old id * 2 + bit, then compact.
        let mut raw: Vec<usize> = self
            .class
            .iter()
            .zip(column)
            .map(|(&c, &b)| c * 2 + usize::from(b))
            .collect();
        let mut ids: Vec<usize> = raw.clone();
        ids.sort_unstable();
        ids.dedup();
        for r in &mut raw {
            // `ids` is a sorted, deduplicated copy of `raw`, so every raw
            // id is found by construction.
            *r = ids.binary_search(r).unwrap_or_else(|_| unreachable!("id present"));
        }
        self.class = raw;
        self.columns_done += 1;
    }

    /// Whether the committed columns already give every symbol a unique
    /// partial code.
    pub fn fully_distinguished(&self) -> bool {
        self.class_sizes().iter().all(|&s| s <= 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_state_one_class() {
        let v = ValidityTracker::new(6, 3);
        assert_eq!(v.class_sizes(), vec![6]);
        assert_eq!(v.next_class_limit(), 4);
    }

    #[test]
    fn balanced_column_is_valid_and_splits() {
        let mut v = ValidityTracker::new(6, 3);
        let col = vec![true, true, true, false, false, false];
        assert!(v.column_is_valid(&col));
        v.commit(&col);
        let mut sizes = v.class_sizes();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![3, 3]);
        assert_eq!(v.columns_left(), 2);
    }

    #[test]
    fn oversized_side_is_invalid() {
        let v = ValidityTracker::new(6, 3);
        // all six on one side: 6 > 2^2
        let col = vec![true; 6];
        assert!(!v.column_is_valid(&col));
        // 5/1 split still invalid
        let col2 = vec![true, true, true, true, true, false];
        assert!(!v.column_is_valid(&col2));
    }

    #[test]
    fn full_run_distinguishes_all() {
        let mut v = ValidityTracker::new(4, 2);
        v.commit(&[true, true, false, false]);
        assert!(!v.fully_distinguished());
        v.commit(&[true, false, true, false]);
        assert!(v.fully_distinguished());
        assert_eq!(v.columns_left(), 0);
    }

    #[test]
    #[should_panic]
    fn committing_invalid_column_panics() {
        let mut v = ValidityTracker::new(4, 2);
        v.commit(&[true, true, true, false]);
    }

    #[test]
    #[should_panic]
    fn too_many_symbols_rejected() {
        let _ = ValidityTracker::new(9, 3);
    }

    #[test]
    fn exact_capacity_is_tight() {
        // 8 symbols in 3 bits: every column must split 4/4, then 2/2 ...
        let mut v = ValidityTracker::new(8, 3);
        let col: Vec<bool> = (0..8).map(|i| i < 4).collect();
        assert!(v.column_is_valid(&col));
        let skew: Vec<bool> = (0..8).map(|i| i < 5).collect();
        assert!(!v.column_is_valid(&skew));
        v.commit(&col);
        assert_eq!(v.next_class_limit(), 2);
    }
}
