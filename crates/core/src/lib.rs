//! # picola-core — the PICOLA encoding algorithm
//!
//! The paper's contribution: a column-based algorithm for the *partial
//! face-constrained encoding problem* — encode `n` symbols in the minimum
//! `ceil(log2 n)` bits so that the face constraints are implemented with as
//! few product terms as possible, not merely satisfied-or-ignored.
//!
//! The driver ([`picola_encode`]) follows the paper's Figure 2:
//!
//! ```text
//! PICOLA() {
//!     get_constraint_matrix();
//!     for each column { Update_constraints(); Solve(); }
//! }
//! ```
//!
//! - [`solve::solve_column`] builds one column greedily under the
//!   valid-partial-encoding condition ([`validity::ValidityTracker`]),
//!   scoring flips by weighted satisfied seed dichotomies ([`cost::CostModel`]).
//! - [`classify::update_constraints`] detects constraints that became
//!   unsatisfiable (nv-compatibility, dimension bounds) and substitutes
//!   guide constraints over their intruder sets.
//! - [`eval::evaluate_encoding`] measures the result the way the paper's
//!   Table I does: total minimized cube count of the encoded constraint
//!   functions.
//!
//! ```
//! use picola_constraints::{GroupConstraint, SymbolSet};
//! use picola_core::{evaluate_encoding, picola_encode};
//!
//! let n = 8;
//! let constraints = vec![
//!     GroupConstraint::new(SymbolSet::from_members(n, [0, 1, 2])),
//!     GroupConstraint::new(SymbolSet::from_members(n, [4, 5])),
//! ];
//! let result = picola_encode(n, &constraints);
//! let eval = evaluate_encoding(&result.encoding, &constraints);
//! assert!(eval.total_cubes >= eval.evaluated); // one cube per constraint is the floor
//! ```

#![warn(missing_docs)]

pub mod classify;
pub mod cost;
pub mod engine;
pub mod error;
pub mod eval;
pub mod picola;
pub mod portfolio;
pub mod refine;
pub mod report;
pub mod solve;
pub mod store;
pub mod validity;

pub use classify::{geometry, update_constraints, ClassifyOutcome};
pub use cost::CostModel;
pub use engine::{EngineConfig, EngineHandle, Job, JobOutput};
pub use error::PicolaError;
pub use eval::{
    estimate_codes_cubes_with, estimate_cubes, estimate_cubes_with, evaluate_encoding,
    evaluate_encoding_cached, evaluate_encoding_with,
    greedy_codes_cubes, greedy_codes_cubes_into, greedy_constraint_cubes, ConstraintCost,
    CubesScratch, EncodingEvaluation, EvalContext, EvalMinimizer, EvalOptions,
};
pub use picola::{
    picola_encode, picola_encode_portfolio, picola_encode_with, try_picola_encode_portfolio,
    try_picola_encode_with, Encoder, PicolaEncoder, PicolaOptions, PicolaResult,
};
pub use portfolio::{EncoderPortfolio, MemberOutcome, PortfolioOutcome};
pub use refine::{CandCursor, CodeTable, RefineCand, RefineEngine, RefineScratch};
pub use report::RunReport;
pub use solve::solve_column;
pub use store::{
    canonical_job_bytes, job_key, key_for, ResultStore, StoreKey, StoreStats, StoredResult,
};
pub use validity::ValidityTracker;

// Budgeting and fault injection live in picola-logic (the dependency root);
// re-export them here so encoder-level callers need only picola-core. The
// cover-engine selector and minimization cache ride along for the same
// reason.
pub use picola_logic::{
    chaos, Budget, CacheStats, Completion, CoverEngine, ExhaustReason, GlobalMinimizeCache,
    MinimizeCache,
};
