//! The incremental refine engine: cached constraint code-tables and
//! reusable per-worker scratch.
//!
//! The refine hill-climb evaluates thousands of candidate swaps/moves per
//! pass, and each evaluation needs, per touched constraint, the member
//! codes and the forbidden (non-member) codes of that constraint under the
//! candidate code vector. The naive path re-derives both lists from the
//! full codes slice on every evaluation — an `O(n)` scan and two heap
//! allocations per (candidate, constraint) pair. This module replaces that
//! with a [`CodeTable`]: per-constraint member/forbidden code lists kept as
//! flat arrays in **ascending symbol order**, a per-symbol slot map into
//! those lists, the cached supercube, and the cached greedy cube count.
//! Evaluating a candidate patches at most two entries of a scratch copy of
//! the cached lists (`O(moved symbols)` setup instead of `O(n)`), and
//! applying an accepted candidate updates the table in place — no rescans,
//! no allocation.
//!
//! Two engine variants share the table so benches can race them:
//!
//! - [`RefineEngine::Incremental`] (default) evaluates off the cached
//!   lists and short-circuits satisfied faces through the cached-supercube
//!   fast path (see [`CodeTable::eval`]).
//! - [`RefineEngine::Naive`] re-derives the lists from the candidate codes
//!   exactly like the pre-table engine did, per-candidate allocations
//!   included — the reference both for the property suite and for honest
//!   before/after bench numbers.
//!
//! Both produce **bit-identical** results: the greedy cover count depends
//! only on the order of the uncovered member codes, and the cached lists
//! preserve ascending symbol order under in-place patching.

use crate::eval::{greedy_cover_count, CubesScratch};
use picola_constraints::{CodeCube, GroupConstraint};
use picola_logic::simd::{self, Mask1, Mask2, MaskKernel, MaskN};
use picola_logic::WordSet;

/// Which evaluation kernel the refinement pass uses. Both kernels return
/// identical results; they differ only in speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RefineEngine {
    /// Cached incremental [`CodeTable`] evaluation (the default).
    #[default]
    Incremental,
    /// From-scratch list derivation per evaluation — the pre-table
    /// reference engine, kept selectable for differential tests and
    /// before/after benchmarks.
    Naive,
}

/// A refinement candidate: swap two symbols' codes, or move one symbol to
/// a (currently free) code word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefineCand {
    /// Swap the codes of symbols `.0` and `.1` (`.0 < .1` by enumeration).
    Swap(usize, usize),
    /// Move symbol `.0`'s code to the free word `.1`.
    Move(usize, u32),
}

/// The `(symbol, old code, new code)` entries a candidate moves — two for a
/// `Swap`, one for a `Move`. Each variant builds exactly the entries it
/// uses (no duplicated placeholder row).
fn moved_entries(cand: RefineCand, codes: &[u32], out: &mut [(usize, u32, u32); 2]) -> usize {
    match cand {
        RefineCand::Swap(i, j) => {
            out[0] = (i, codes[i], codes[j]);
            out[1] = (j, codes[j], codes[i]);
            2
        }
        RefineCand::Move(i, w) => {
            out[0] = (i, codes[i], w);
            1
        }
    }
}

/// Lazy enumerator of the refine candidate order: all swaps `(i, j)` with
/// `i < j` in lexicographic order, then all moves `(i, w)` with `w` over
/// the whole code space. Replaces the up-front `O(n² + n·2^nv)` candidate
/// vector — the cursor is three words, and a copy of it doubles as the
/// resume point after an accepted candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CandCursor {
    n: usize,
    size: usize,
    state: CursorState,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CursorState {
    Swap { i: usize, j: usize },
    Move { i: usize, w: u32 },
    Done,
}

impl CandCursor {
    /// A cursor at the start of one pass over `n` symbols and `size = 2^nv`
    /// code words.
    #[must_use]
    pub fn start(n: usize, size: usize) -> CandCursor {
        let state = if n >= 2 {
            CursorState::Swap { i: 0, j: 1 }
        } else if n == 1 && size > 0 {
            CursorState::Move { i: 0, w: 0 }
        } else {
            CursorState::Done
        };
        CandCursor { n, size, state }
    }
}

/// Yields candidates in enumeration order. Move candidates are *not*
/// filtered for target freeness — the chunk builder does that against
/// current occupancy. (The cursor is `Copy`; a copy taken before a call
/// to `next` is the resume point for that candidate.)
impl Iterator for CandCursor {
    type Item = RefineCand;

    fn next(&mut self) -> Option<RefineCand> {
        let out = match self.state {
            CursorState::Swap { i, j } => RefineCand::Swap(i, j),
            CursorState::Move { i, w } => RefineCand::Move(i, w),
            CursorState::Done => return None,
        };
        self.state = match self.state {
            CursorState::Swap { i, j } => {
                if j + 1 < self.n {
                    CursorState::Swap { i, j: j + 1 }
                } else if i + 2 < self.n {
                    CursorState::Swap { i: i + 1, j: i + 2 }
                } else if self.size > 0 {
                    CursorState::Move { i: 0, w: 0 }
                } else {
                    CursorState::Done
                }
            }
            CursorState::Move { i, w } => {
                if (w as usize) + 1 < self.size {
                    CursorState::Move { i, w: w + 1 }
                } else if i + 1 < self.n {
                    CursorState::Move { i: i + 1, w: 0 }
                } else {
                    CursorState::Done
                }
            }
            CursorState::Done => CursorState::Done,
        };
        Some(out)
    }
}

/// Reusable per-worker buffers for candidate evaluation. One instance per
/// worker thread: after warm-up, neither engine allocates per candidate.
#[derive(Debug, Clone, Default)]
pub struct RefineScratch {
    /// Uncovered/forbidden code lists for the greedy cover loop.
    pub cubes: CubesScratch,
    /// Scratch set of touched constraint indices (lazily sized to the
    /// active constraint count on first use).
    touched: WordSet,
    /// Patched member-code bitset over the `2^nv` code space (masked path).
    member_words: WordSet,
    /// Patched forbidden-code bitset over the code space (masked path).
    forbidden_words: WordSet,
    /// Cube word-mask buffer for the masked containment checks.
    cube_mask: Vec<u64>,
    /// Trial-expansion buffer for the multi-word masked greedy.
    cube_trial: Vec<u64>,
}

impl RefineScratch {
    /// Fresh scratch; buffers grow on first use and are then reused.
    #[must_use]
    pub fn new() -> RefineScratch {
        RefineScratch::default()
    }

    /// The touched-set buffer, cleared and sized for `num_constraints`.
    fn touched_for(&mut self, num_constraints: usize) -> &mut WordSet {
        if self.touched.universe() != num_constraints {
            self.touched = WordSet::new(num_constraints);
        } else {
            self.touched.clear();
        }
        &mut self.touched
    }

    /// Sizes the code-space bitsets for a `2^nv = size` word universe.
    fn code_space_for(&mut self, size: usize) {
        if self.member_words.universe() != size {
            self.member_words = WordSet::new(size);
            self.forbidden_words = WordSet::new(size);
        }
    }
}

/// Per-constraint cached state: the code lists in ascending symbol order,
/// the slot of each symbol inside them, and the derived supercube/cost.
#[derive(Debug, Clone)]
struct ConstraintCache {
    /// Codes of the member symbols, ascending symbol order.
    members: Vec<u32>,
    /// Codes of the non-member symbols, ascending symbol order.
    forbidden: Vec<u32>,
    /// Per symbol: `(index << 1) | is_member` into the list above.
    slot: Vec<u32>,
    /// Member codes as a bitset over the `2^nv` code space (masked path).
    member_words: WordSet,
    /// Supercube of `members` under the current codes.
    supercube: CodeCube,
    /// Number of forbidden codes inside `supercube`. Zero iff the face is
    /// satisfied (cost exactly 1); for a move of a non-member symbol the
    /// patched count is `intruders - (old ∈ sc) + (new ∈ sc)`, giving the
    /// satisfied-face answer with two containment tests and no set work.
    intruders: usize,
    /// Greedy cube count under the current codes.
    cost: usize,
}

/// Incrementally maintained evaluation state for the refine hill-climb:
/// the current code vector, per-constraint [cached code lists +
/// supercube + cost](ConstraintCache), per-symbol constraint membership,
/// and the occupied-word bitset over the `2^nv` code space.
///
/// Built once per refine run in `O(n · constraints)`; candidate evaluation
/// ([`CodeTable::eval`]) and application ([`CodeTable::apply`]) then cost
/// `O(moved symbols)` bookkeeping plus greedy-cover work on the touched
/// constraints only.
#[derive(Debug, Clone)]
pub struct CodeTable {
    nv: usize,
    codes: Vec<u32>,
    caches: Vec<ConstraintCache>,
    /// Per symbol: bitset of active-constraint indices it belongs to.
    membership: Vec<WordSet>,
    /// Occupied code words over the `2^nv` space.
    occupied: WordSet,
}

/// The supercube of a list of codes; the full cube when the list is empty
/// (active constraints are non-trivial, hence non-empty — the identity is
/// the safe fallback if that ever changes).
fn supercube_of(codes: &[u32], nv: usize) -> CodeCube {
    let Some((&first, rest)) = codes.split_first() else {
        return CodeCube {
            fixed: 0,
            values: 0,
            nv,
        };
    };
    let mut and = first;
    let mut or = first;
    for &c in rest {
        and &= c;
        or |= c;
    }
    let full = ((1u64 << nv) - 1) as u32;
    let fixed = full & !(and ^ or);
    CodeCube {
        fixed,
        values: and & fixed,
        nv,
    }
}

/// Greedy cube count over prepared lists, with the satisfied-face fast
/// path: any intermediate greedy cube is the supercube of the codes merged
/// so far, hence contained in the supercube of all members — so when no
/// forbidden code lies inside that supercube, every merge check passes and
/// the cover is exactly one cube. The `O(members + forbidden)` test
/// replaces the `O(members² · forbidden)` merge loop on satisfied faces,
/// and is exact (not a heuristic): the greedy loop would return 1 too.
fn covered_count_fast(uncovered: &mut Vec<u32>, forbidden: &[u32], nv: usize) -> usize {
    let sc = supercube_of(uncovered, nv);
    if forbidden.iter().all(|&f| !sc.contains(f)) {
        return 1;
    }
    greedy_cover_count(uncovered, forbidden)
}

/// The masked (word-parallel) evaluation path is used when the `2^nv` code
/// space packs into at most this many `u64` words (`nv ≤ 9`). Beyond that
/// the per-check cube masks would outgrow the list scans they replace, so
/// the engine falls back to the cached-list path — both paths return
/// identical counts, only speed differs.
const MASKED_WORDS_MAX: usize = 8;

/// Whether any bit of `forbidden` lies inside the cube `{x : (x ^ seed) &
/// cand & full == 0}` — the word-parallel form of the greedy loop's
/// `forbidden.iter().any(|&f| (f ^ seed) & cand == 0)` scan. The cube's
/// word mask is built by shift-OR doubling: start from the base word
/// (`seed` restricted to the fixed bits) and fold in each free bit.
fn cube_hits(forbidden: &[u64], seed: u32, cand: u32, nv: usize, mask: &mut Vec<u64>) -> bool {
    let full = ((1u64 << nv) - 1) as u32;
    let fixed = cand & full;
    mask.clear();
    mask.resize(forbidden.len(), 0);
    let base = (seed & fixed) as usize;
    mask[base / 64] |= 1u64 << (base % 64);
    for b in 0..nv {
        if fixed >> b & 1 == 0 {
            simd::expand_mask(mask, 1usize << b, false);
        }
    }
    !simd::disjoint(mask, forbidden)
}

/// [`greedy_cover_count`] with the forbidden codes given as a code-space
/// bitset instead of a list: identical iteration structure and identical
/// counts (each merge check is the same boolean, computed word-parallel).
/// The current cube's word mask is carried across merge attempts — a trial
/// merge only expands it by the bits the merge frees (usually one shift-OR)
/// instead of rebuilding it — so each check costs `O(freed bits · words)`
/// instead of `O(forbidden)`.
///
/// The mask arithmetic lives in the shared [`MaskKernel`] implementations
/// (`picola_logic::simd`): one-word and two-word code spaces stay in
/// registers, wider spaces use the caller's scratch slices and the
/// dispatched wide disjointness kernel. All three widths walk the *same*
/// greedy loop below, so merge decisions — and hence counts — are
/// bit-identical across widths and backends.
fn greedy_cover_count_masked(
    uncovered: &mut Vec<u32>,
    forbidden: &[u64],
    mask: &mut Vec<u64>,
    trial: &mut Vec<u64>,
) -> usize {
    match forbidden.len() {
        // Single-word code space (`nv ≤ 6`): the cube mask is one `u64`.
        1 => greedy_masked(uncovered, forbidden, &mut Mask1::new()),
        // Two-word code space (`nv == 7`): the mask is a register pair.
        2 => greedy_masked(uncovered, forbidden, &mut Mask2::new()),
        words => greedy_masked(uncovered, forbidden, &mut MaskN::new(mask, trial, words)),
    }
}

/// The width-independent greedy merge loop over a [`MaskKernel`]. Each
/// candidate grows a trial cube by the freed bits only — `fixed ^ cand` is
/// the set of newly freed bit positions, all below `nv` (a subset of
/// `c ^ seed`); every code in the current cube carries the seed's value at
/// a freed bit, so the flipped half lies above (seed bit 0) or below (seed
/// bit 1) — then keeps the trial iff it avoids every forbidden code.
fn greedy_masked<M: MaskKernel>(
    uncovered: &mut Vec<u32>,
    forbidden: &[u64],
    kernel: &mut M,
) -> usize {
    let mut count = 0usize;
    while let Some(&seed) = uncovered.first() {
        let mut fixed = u32::MAX;
        kernel.seed(seed);
        loop {
            let mut changed = false;
            for &c in uncovered.iter() {
                let cand = fixed & !(c ^ seed);
                if cand == fixed {
                    continue;
                }
                kernel.begin();
                let mut freed = fixed ^ cand;
                while freed != 0 {
                    let b = freed.trailing_zeros();
                    kernel.grow(b, seed >> b & 1 == 1);
                    freed &= freed - 1;
                }
                if kernel.disjoint(forbidden) {
                    fixed = cand;
                    kernel.commit();
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        uncovered.retain(|&c| (c ^ seed) & fixed != 0);
        count += 1;
    }
    count
}

impl CodeTable {
    /// Builds the table for `codes` against the `active` (non-trivial)
    /// constraints. The initial per-constraint costs equal
    /// [`crate::eval::greedy_codes_cubes`] on the same inputs.
    #[must_use]
    pub fn build(
        nv: usize,
        codes: Vec<u32>,
        active: &[&GroupConstraint],
        scratch: &mut RefineScratch,
    ) -> CodeTable {
        let n = codes.len();
        let size = 1usize << nv;
        let mut membership = vec![WordSet::new(active.len()); n];
        let mut occupied = WordSet::new(size);
        for &c in &codes {
            occupied.insert(c as usize);
        }
        let mut caches = Vec::with_capacity(active.len());
        for (k, c) in active.iter().enumerate() {
            let mut members = Vec::with_capacity(c.len());
            let mut forbidden = Vec::with_capacity(n.saturating_sub(c.len()));
            let mut slot = vec![0u32; n];
            let mut member_words = WordSet::new(size);
            for (s, &code) in codes.iter().enumerate() {
                if c.members().contains(s) {
                    membership[s].insert(k);
                    slot[s] = ((members.len() as u32) << 1) | 1;
                    member_words.insert(code as usize);
                    members.push(code);
                } else {
                    slot[s] = (forbidden.len() as u32) << 1;
                    forbidden.push(code);
                }
            }
            let supercube = supercube_of(&members, nv);
            let intruders = forbidden.iter().filter(|&&f| supercube.contains(f)).count();
            scratch.cubes.uncovered.clear();
            scratch.cubes.uncovered.extend_from_slice(&members);
            let cost = covered_count_fast(&mut scratch.cubes.uncovered, &forbidden, nv);
            caches.push(ConstraintCache {
                members,
                forbidden,
                slot,
                member_words,
                supercube,
                intruders,
                cost,
            });
        }
        CodeTable {
            nv,
            codes,
            caches,
            membership,
            occupied,
        }
    }

    /// The current code vector.
    #[must_use]
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// Consumes the table, returning the final code vector.
    #[must_use]
    pub fn into_codes(self) -> Vec<u32> {
        self.codes
    }

    /// Cached greedy cube count of active constraint `k`.
    #[must_use]
    pub fn cost(&self, k: usize) -> usize {
        self.caches[k].cost
    }

    /// Sum of the cached per-constraint costs.
    #[must_use]
    pub fn total_cost(&self) -> usize {
        self.caches.iter().map(|c| c.cost).sum()
    }

    /// Number of active constraints the table tracks.
    #[must_use]
    pub fn num_constraints(&self) -> usize {
        self.caches.len()
    }

    /// Whether code word `w` is currently unassigned — the `O(1)`
    /// replacement for scanning the codes slice per move candidate.
    #[must_use]
    pub fn is_free(&self, w: u32) -> bool {
        !self.occupied.contains(w as usize)
    }

    /// Collects into `scratch.touched` the constraints whose cost can
    /// change under `moved`: those owning a moved symbol, plus — for a
    /// move (`moved.len() == 1`) — those whose cached supercube contains
    /// the vacated or the entered code word. Everything else provably
    /// keeps its cost: forbidden codes outside the supercube never block a
    /// greedy merge (every candidate merge cube is contained in the
    /// supercube), and a swap of two non-member symbols permutes two codes
    /// *within* the forbidden set, leaving the set — and hence the greedy
    /// count, which never depends on forbidden order — unchanged.
    fn collect_touched(&self, moved: &[(usize, u32, u32)], scratch: &mut RefineScratch) {
        let touched = scratch.touched_for(self.caches.len());
        for &(s, _, _) in moved {
            touched.union_with(&self.membership[s]);
        }
        if let [(_, old, new)] = *moved {
            for (k, cache) in self.caches.iter().enumerate() {
                if cache.supercube.contains(old) || cache.supercube.contains(new) {
                    touched.insert(k);
                }
            }
        }
    }

    /// Cost delta of applying `cand`, evaluated **read-only** off the
    /// cached lists: per touched constraint, the moved entries are patched
    /// into a scratch copy of the cached member list (preserving ascending
    /// symbol order, hence the greedy seed sequence) and the greedy cover
    /// re-counted with the satisfied-face fast path. When the code space
    /// fits [`MASKED_WORDS_MAX`] words, the forbidden side is handled
    /// entirely word-parallel — the patched forbidden set is `occupied \
    /// members` in a few word ops, and every containment check is a cube
    /// mask intersection — so no `O(n)` forbidden list is ever copied or
    /// scanned. Zero heap allocation once `scratch` is warm; candidates
    /// touching no constraint return 0 without any greedy work.
    #[must_use]
    pub fn eval(&self, cand: RefineCand, scratch: &mut RefineScratch) -> i64 {
        let mut buf = [(0usize, 0u32, 0u32); 2];
        let m = moved_entries(cand, &self.codes, &mut buf);
        let moved = &buf[..m];
        self.collect_touched(moved, scratch);
        let size = 1usize << self.nv;
        let masked = size.div_ceil(64) <= MASKED_WORDS_MAX;
        if masked {
            scratch.code_space_for(size);
        }
        let RefineScratch {
            cubes,
            touched,
            member_words,
            forbidden_words,
            cube_mask,
            cube_trial,
            ..
        } = scratch;
        let mut delta = 0i64;
        for k in touched.iter_ones() {
            let cache = &self.caches[k];
            // A move of a non-member symbol leaves the members — and hence
            // the supercube — untouched, so the patched intruder count is
            // two containment tests away. Zero intruders is the satisfied
            // face: cost exactly 1, no set or greedy work at all.
            let nonmember_move = match *moved {
                [(s, old, new)] if cache.slot[s] & 1 == 0 => {
                    let sc = &cache.supercube;
                    Some(
                        cache.intruders - usize::from(sc.contains(old))
                            + usize::from(sc.contains(new)),
                    )
                }
                _ => None,
            };
            if nonmember_move == Some(0) {
                delta += 1 - cache.cost as i64;
                continue;
            }
            cubes.uncovered.clear();
            cubes.uncovered.extend_from_slice(&cache.members);
            for &(s, _, new) in moved {
                let e = cache.slot[s];
                if e & 1 == 1 {
                    cubes.uncovered[(e >> 1) as usize] = new;
                }
            }
            let count = if masked {
                // Patched forbidden set = patched occupancy minus patched
                // members; swaps leave occupancy unchanged, a move shifts
                // one word.
                forbidden_words.copy_from(&self.occupied);
                if let RefineCand::Move(i, w) = cand {
                    forbidden_words.remove(self.codes[i] as usize);
                    forbidden_words.insert(w as usize);
                }
                if nonmember_move.is_some() {
                    // Members unchanged: subtract the cached member set; a
                    // positive intruder count means the supercube fast
                    // check would fail, so go straight to the greedy.
                    forbidden_words.difference_with(&cache.member_words);
                    greedy_cover_count_masked(
                        &mut cubes.uncovered,
                        forbidden_words.words(),
                        cube_mask,
                        cube_trial,
                    )
                } else {
                    // Patched member-code set: remove all old codes first,
                    // then insert the new ones (a swap inside the face
                    // permutes two codes — remove-then-insert keeps both).
                    member_words.copy_from(&cache.member_words);
                    for &(s, old, _) in moved {
                        if cache.slot[s] & 1 == 1 {
                            member_words.remove(old as usize);
                        }
                    }
                    for &(s, _, new) in moved {
                        if cache.slot[s] & 1 == 1 {
                            member_words.insert(new as usize);
                        }
                    }
                    forbidden_words.difference_with(member_words);
                    let sc = supercube_of(&cubes.uncovered, self.nv);
                    if !cube_hits(
                        forbidden_words.words(),
                        sc.values,
                        sc.fixed,
                        self.nv,
                        cube_mask,
                    ) {
                        1
                    } else {
                        greedy_cover_count_masked(
                            &mut cubes.uncovered,
                            forbidden_words.words(),
                            cube_mask,
                            cube_trial,
                        )
                    }
                }
            } else {
                cubes.forbidden.clear();
                cubes.forbidden.extend_from_slice(&cache.forbidden);
                for &(s, _, new) in moved {
                    let e = cache.slot[s];
                    if e & 1 == 0 {
                        cubes.forbidden[(e >> 1) as usize] = new;
                    }
                }
                if nonmember_move.is_some() {
                    // Known violated — skip the supercube fast path.
                    greedy_cover_count(&mut cubes.uncovered, &cubes.forbidden)
                } else {
                    covered_count_fast(&mut cubes.uncovered, &cubes.forbidden, self.nv)
                }
            };
            delta += count as i64 - cache.cost as i64;
        }
        delta
    }

    /// Cost delta of applying `cand`, evaluated the pre-table way: allocate
    /// the full candidate code vector and re-derive each touched
    /// constraint's lists from it with the allocating greedy — a faithful
    /// reproduction of the engine this table replaced, per-candidate heap
    /// traffic included, so the bench A/B measures the real before/after.
    /// The one deliberate deviation is the touched filter, which both
    /// engines now share in its corrected form (a moved forbidden code
    /// staying *inside* a supercube can still change that constraint's
    /// cover — the old `contains(old) != contains(new)` test missed it).
    /// Identical results to [`CodeTable::eval`] (the property suite diffs
    /// the two).
    #[must_use]
    pub fn eval_naive(&self, cand: RefineCand, active: &[&GroupConstraint]) -> i64 {
        use crate::eval::greedy_codes_cubes;

        let mut buf = [(0usize, 0u32, 0u32); 2];
        let m = moved_entries(cand, &self.codes, &mut buf);
        let moved = &buf[..m];
        let mut touched = WordSet::new(self.caches.len());
        for &(s, _, _) in moved {
            touched.union_with(&self.membership[s]);
        }
        if let [(_, old, new)] = *moved {
            for (k, cache) in self.caches.iter().enumerate() {
                if cache.supercube.contains(old) || cache.supercube.contains(new) {
                    touched.insert(k);
                }
            }
        }
        if touched.is_empty() {
            return 0;
        }
        let mut new_codes = self.codes.to_vec();
        match cand {
            RefineCand::Swap(i, j) => new_codes.swap(i, j),
            RefineCand::Move(i, w) => new_codes[i] = w,
        }
        let mut delta = 0i64;
        for k in touched.iter_ones() {
            let count = greedy_codes_cubes(&new_codes, active[k].members());
            delta += count as i64 - self.caches[k].cost as i64;
        }
        delta
    }

    /// Applies `cand` to the table: the code vector, the occupancy bitset,
    /// and every constraint's slot-mapped list entries are patched in
    /// `O(moved symbols · constraints)` word work; supercube and cost are
    /// then refreshed for the touched constraints only.
    pub fn apply(&mut self, cand: RefineCand, scratch: &mut RefineScratch) {
        let mut buf = [(0usize, 0u32, 0u32); 2];
        let m = moved_entries(cand, &self.codes, &mut buf);
        let moved = &buf[..m];
        // Touched must be collected against the *old* supercubes, exactly
        // as eval saw them.
        self.collect_touched(moved, scratch);

        match cand {
            RefineCand::Swap(i, j) => self.codes.swap(i, j),
            RefineCand::Move(i, w) => {
                self.occupied.remove(self.codes[i] as usize);
                self.occupied.insert(w as usize);
                self.codes[i] = w;
            }
        }
        for cache in &mut self.caches {
            // List entries are per-symbol slots, so they can be patched one
            // moved entry at a time; the member-code bitset needs all
            // removals before all insertions (a swap inside the face keeps
            // both codes).
            for &(s, old, new) in moved {
                let e = cache.slot[s];
                if e & 1 == 1 {
                    cache.members[(e >> 1) as usize] = new;
                    cache.member_words.remove(old as usize);
                } else {
                    cache.forbidden[(e >> 1) as usize] = new;
                }
            }
            for &(s, _, new) in moved {
                if cache.slot[s] & 1 == 1 {
                    cache.member_words.insert(new as usize);
                }
            }
        }

        let nv = self.nv;
        let RefineScratch { cubes, touched, .. } = scratch;
        for k in touched.iter_ones() {
            let cache = &mut self.caches[k];
            cache.supercube = supercube_of(&cache.members, nv);
            let sc = &cache.supercube;
            cache.intruders = cache.forbidden.iter().filter(|&&f| sc.contains(f)).count();
            cubes.uncovered.clear();
            cubes.uncovered.extend_from_slice(&cache.members);
            cache.cost = covered_count_fast(&mut cubes.uncovered, &cache.forbidden, nv);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::greedy_codes_cubes;
    use picola_constraints::SymbolSet;

    fn groups(n: usize, gs: &[&[usize]]) -> Vec<GroupConstraint> {
        gs.iter()
            .map(|g| GroupConstraint::new(SymbolSet::from_members(n, g.iter().copied())))
            .collect()
    }

    #[test]
    fn cursor_matches_materialized_order() {
        for (n, size) in [(2usize, 4usize), (5, 8), (8, 8), (1, 4), (3, 16)] {
            let mut expect = Vec::new();
            for i in 0..n {
                for j in (i + 1)..n {
                    expect.push(RefineCand::Swap(i, j));
                }
            }
            for i in 0..n {
                for w in 0..size as u32 {
                    expect.push(RefineCand::Move(i, w));
                }
            }
            let got: Vec<RefineCand> = CandCursor::start(n, size).collect();
            assert_eq!(got, expect, "n={n} size={size}");
        }
    }

    #[test]
    fn cursor_copy_resumes_mid_stream() {
        let all: Vec<RefineCand> = CandCursor::start(6, 8).collect();
        let mut replay = CandCursor::start(6, 8);
        for (idx, &expect) in all.iter().enumerate() {
            let resume = replay; // copy taken *before* yielding
            let mut forked = resume;
            assert_eq!(forked.next(), Some(expect), "resume point {idx}");
            assert_eq!(replay.next(), Some(expect));
        }
    }

    #[test]
    fn moved_entries_builds_exactly_what_each_variant_uses() {
        let codes = [5u32, 9, 3];
        let mut buf = [(0usize, 0u32, 0u32); 2];
        assert_eq!(moved_entries(RefineCand::Swap(0, 2), &codes, &mut buf), 2);
        assert_eq!(&buf[..2], &[(0, 5, 3), (2, 3, 5)]);
        assert_eq!(moved_entries(RefineCand::Move(1, 7), &codes, &mut buf), 1);
        assert_eq!(buf[0], (1, 9, 7));
    }

    #[test]
    fn build_costs_match_from_scratch_greedy() {
        let cs = groups(6, &[&[0, 1, 2], &[3, 4, 5], &[0, 5]]);
        let active: Vec<&GroupConstraint> = cs.iter().collect();
        let codes: Vec<u32> = vec![0, 1, 4, 3, 6, 7];
        let mut scratch = RefineScratch::new();
        let table = CodeTable::build(3, codes.clone(), &active, &mut scratch);
        for (k, c) in active.iter().enumerate() {
            assert_eq!(table.cost(k), greedy_codes_cubes(&codes, c.members()), "{k}");
        }
        assert_eq!(table.num_constraints(), 3);
        for w in 0..8u32 {
            assert_eq!(table.is_free(w), !codes.contains(&w), "word {w}");
        }
    }

    #[test]
    fn eval_matches_naive_and_full_recompute() {
        let cs = groups(7, &[&[0, 1, 2], &[2, 3], &[4, 5, 6], &[0, 6]]);
        let active: Vec<&GroupConstraint> = cs.iter().collect();
        let codes: Vec<u32> = vec![0, 1, 2, 3, 4, 5, 6];
        let mut scratch = RefineScratch::new();
        let table = CodeTable::build(3, codes.clone(), &active, &mut scratch);
        let full = |cs_: &[u32]| -> i64 {
            active
                .iter()
                .map(|c| greedy_codes_cubes(cs_, c.members()) as i64)
                .sum()
        };
        let base = full(&codes);
        let mut cands = vec![RefineCand::Move(2, 7)];
        for i in 0..7 {
            for j in (i + 1)..7 {
                cands.push(RefineCand::Swap(i, j));
            }
        }
        for cand in cands {
            let mut new_codes = codes.clone();
            match cand {
                RefineCand::Swap(i, j) => new_codes.swap(i, j),
                RefineCand::Move(i, w) => new_codes[i] = w,
            }
            let expect = full(&new_codes) - base;
            assert_eq!(table.eval(cand, &mut scratch), expect, "{cand:?}");
            assert_eq!(table.eval_naive(cand, &active), expect, "naive {cand:?}");
        }
    }

    #[test]
    fn apply_keeps_the_table_consistent() {
        let cs = groups(6, &[&[0, 1, 2], &[3, 4], &[1, 5]]);
        let active: Vec<&GroupConstraint> = cs.iter().collect();
        let mut codes: Vec<u32> = vec![0, 1, 2, 3, 4, 5];
        let mut scratch = RefineScratch::new();
        let mut table = CodeTable::build(3, codes.clone(), &active, &mut scratch);
        let seq = [
            RefineCand::Swap(0, 3),
            RefineCand::Move(2, 7),
            RefineCand::Swap(1, 5),
            RefineCand::Move(4, 2), // word 2 was freed by the earlier move
            RefineCand::Swap(2, 4),
        ];
        for cand in seq {
            if let RefineCand::Move(_, w) = cand {
                assert!(table.is_free(w), "{cand:?} target must be free");
            }
            table.apply(cand, &mut scratch);
            match cand {
                RefineCand::Swap(i, j) => codes.swap(i, j),
                RefineCand::Move(i, w) => codes[i] = w,
            }
            assert_eq!(table.codes(), codes.as_slice(), "{cand:?}");
            for (k, c) in active.iter().enumerate() {
                assert_eq!(
                    table.cost(k),
                    greedy_codes_cubes(&codes, c.members()),
                    "cost {k} after {cand:?}"
                );
            }
            for w in 0..8u32 {
                assert_eq!(table.is_free(w), !codes.contains(&w), "{cand:?} word {w}");
            }
        }
        assert_eq!(table.total_cost(), (0..3).map(|k| table.cost(k)).sum());
        assert_eq!(table.into_codes(), codes);
    }

    #[test]
    fn masked_greedy_and_cube_hits_match_the_list_forms() {
        for nv in [3usize, 6, 7, 8] {
            let size = 1usize << nv;
            // A deterministic scattered selection of distinct codes.
            let picked: Vec<u32> = (0..size as u32)
                .filter(|&w| w.wrapping_mul(2_654_435_761) >> 28 & 3 != 0)
                .take(24)
                .collect();
            let full = ((1u64 << nv) - 1) as u32;
            for split in [2usize, 3, 5, 8] {
                if split >= picked.len() {
                    continue;
                }
                let (mem, forb) = picked.split_at(split);
                let mut words = vec![0u64; size.div_ceil(64)];
                for &f in forb {
                    words[f as usize / 64] |= 1 << (f % 64);
                }
                let mut a = mem.to_vec();
                let mut b = mem.to_vec();
                let mut mask = Vec::new();
                let mut trial = Vec::new();
                assert_eq!(
                    greedy_cover_count_masked(&mut a, &words, &mut mask, &mut trial),
                    greedy_cover_count(&mut b, forb),
                    "nv={nv} split={split}"
                );
                assert_eq!(a, b, "nv={nv} split={split}: leftover lists differ");
            }
            let forb: Vec<u32> = picked.iter().copied().skip(5).collect();
            let mut words = vec![0u64; size.div_ceil(64)];
            for &f in &forb {
                words[f as usize / 64] |= 1 << (f % 64);
            }
            let mut mask = Vec::new();
            for &seed in picked.iter().take(5) {
                for cand in [0u32, 1, full, 0b101, u32::MAX] {
                    let scan = forb.iter().any(|&f| (f ^ seed) & cand & full == 0);
                    assert_eq!(
                        cube_hits(&words, seed, cand, nv, &mut mask),
                        scan,
                        "nv={nv} seed={seed} cand={cand:b}"
                    );
                }
            }
        }
    }

    #[test]
    fn fast_path_agrees_with_greedy_on_satisfied_and_violated_faces() {
        // satisfied: members {0,1} at codes 0,1 → supercube 00- excludes 2..
        let mut unc = vec![0u32, 1];
        let forb = vec![2u32, 3, 4, 5, 6, 7];
        assert_eq!(covered_count_fast(&mut unc, &forb, 3), 1);
        // violated: members at 0 and 7 → supercube is the full cube
        let mut unc2 = vec![0u32, 7];
        let mut unc2_ref = unc2.clone();
        let forb2 = vec![1u32, 2, 3];
        assert_eq!(
            covered_count_fast(&mut unc2, &forb2, 3),
            greedy_cover_count(&mut unc2_ref, &forb2)
        );
        // empty forbidden list: everything merges either way
        let mut unc3 = vec![1u32, 2, 4];
        assert_eq!(covered_count_fast(&mut unc3, &[], 3), 1);
    }
}
