//! Human-readable reports of encoding runs.
//!
//! The [`EncodingEvaluation`] a report renders comes from the evaluation
//! pipeline (`evaluate_encoding` and friends), which since PR 5 runs on the
//! flat cover engine with the minimization memo by default — same numbers,
//! produced faster; reports are engine- and cache-agnostic.

use crate::eval::EncodingEvaluation;
use crate::picola::PicolaResult;
use picola_constraints::{ConstraintStatus, GroupConstraint};
use std::fmt;

/// A printable summary of a PICOLA run plus its evaluation.
#[derive(Debug, Clone)]
pub struct RunReport<'a> {
    /// The algorithm result.
    pub result: &'a PicolaResult,
    /// The evaluated constraint costs.
    pub evaluation: &'a EncodingEvaluation,
    /// The constraint set the evaluation refers to.
    pub constraints: &'a [GroupConstraint],
}

impl fmt::Display for RunReport<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let enc = &self.result.encoding;
        writeln!(
            f,
            "encoding: {} symbols x {} bits; {} original constraints satisfied, {} guides",
            enc.num_symbols(),
            enc.nv(),
            self.result.satisfied_originals(),
            self.result.guides_generated()
        )?;
        writeln!(
            f,
            "cost: {} cubes over {} constraints ({} satisfied)",
            self.evaluation.total_cubes, self.evaluation.evaluated, self.evaluation.satisfied
        )?;
        for cost in &self.evaluation.per_constraint {
            let c = &self.constraints[cost.index];
            let status = self
                .result
                .matrix
                .constraints()
                .get(cost.index)
                .map(|tc| tc.status());
            writeln!(
                f,
                "  {c}: {} cube(s){}{}",
                cost.cubes,
                if cost.satisfied { " [satisfied]" } else { "" },
                match status {
                    Some(ConstraintStatus::Infeasible) => " [infeasible]",
                    _ => "",
                }
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate_encoding;
    use crate::picola::picola_encode;
    use picola_constraints::SymbolSet;

    #[test]
    fn report_renders_all_sections() {
        let n = 8;
        let cs = vec![
            GroupConstraint::new(SymbolSet::from_members(n, [0, 1])),
            GroupConstraint::new(SymbolSet::from_members(n, [2, 3, 4])),
        ];
        let result = picola_encode(n, &cs);
        let evaluation = evaluate_encoding(&result.encoding, &cs);
        let report = RunReport {
            result: &result,
            evaluation: &evaluation,
            constraints: &cs,
        };
        let text = report.to_string();
        assert!(text.contains("8 symbols x 3 bits"), "{text}");
        assert!(text.contains("cubes over 2 constraints"), "{text}");
        assert!(text.contains("cube(s)"), "{text}");
    }
}
