//! The PICOLA driver: `get_constraint_matrix(); for each column {
//! Update_constraints(); Solve(); }` (paper Figure 2).

use crate::classify::{update_constraints, ClassifyOutcome};
use crate::cost::CostModel;
use crate::solve::solve_column;
use crate::validity::ValidityTracker;
use picola_constraints::{
    min_code_length, ConstraintMatrix, ConstraintStatus, Encoding, GroupConstraint,
};

/// Options for [`picola_encode_with`].
#[derive(Debug, Clone, Default)]
pub struct PicolaOptions {
    /// Dichotomy weighting used by `Solve()`.
    pub cost: CostModel,
    /// Substitute infeasible constraints by guide constraints (§3.2). The
    /// paper's algorithm has this on; turning it off is the ablation.
    pub disable_guides: bool,
    /// Skip dynamic infeasibility detection entirely (a second ablation —
    /// the algorithm degenerates to plain weighted dichotomy encoding).
    pub disable_classify: bool,
    /// Skip the final refinement pass (code swaps driven by the
    /// combinatorial Theorem-I cube estimate, see
    /// [`crate::eval::estimate_cubes`]). The two-page paper does not spell
    /// out a polish phase; this reproduction adds one guided by the paper's
    /// own cost theory — it uses no logic minimization and keeps PICOLA
    /// orders of magnitude cheaper than ENC. Disabling it is an ablation.
    pub disable_refine: bool,
    /// Encode with this many bits instead of `ceil(log2 n)`.
    pub nv_override: Option<usize>,
}

/// Result of a PICOLA run.
#[derive(Debug, Clone)]
pub struct PicolaResult {
    /// The produced minimum-length encoding (after the refinement pass,
    /// unless disabled).
    pub encoding: Encoding,
    /// Final state of the enriched constraint matrix. It documents the
    /// *constructive (column) phase*: the refinement pass may further trade
    /// one constraint for another, so judge the delivered `encoding` with
    /// [`crate::eval::evaluate_encoding`].
    pub matrix: ConstraintMatrix,
    /// Classification outcome per column round.
    pub rounds: Vec<ClassifyOutcome>,
}

impl PicolaResult {
    /// Number of original constraints fully satisfied.
    pub fn satisfied_originals(&self) -> usize {
        self.matrix
            .constraints()
            .iter()
            .filter(|tc| {
                tc.status() == ConstraintStatus::Satisfied
                    && matches!(
                        tc.constraint().kind(),
                        picola_constraints::ConstraintKind::Original
                    )
            })
            .count()
    }

    /// Number of guide constraints generated over the whole run.
    pub fn guides_generated(&self) -> usize {
        self.rounds.iter().map(|r| r.guides_added.len()).sum()
    }
}

/// Encodes `n` symbols under `constraints` with default options.
///
/// # Examples
///
/// ```
/// use picola_core::picola_encode;
/// use picola_constraints::{GroupConstraint, SymbolSet};
///
/// let constraints = vec![
///     GroupConstraint::new(SymbolSet::from_members(6, [0, 1])),
///     GroupConstraint::new(SymbolSet::from_members(6, [2, 3, 4])),
/// ];
/// let result = picola_encode(6, &constraints);
/// assert_eq!(result.encoding.nv(), 3);
/// // both faces are embeddable in 3 bits and PICOLA finds them
/// assert!(result.encoding.satisfies(constraints[0].members()));
/// assert!(result.encoding.satisfies(constraints[1].members()));
/// ```
pub fn picola_encode(n: usize, constraints: &[GroupConstraint]) -> PicolaResult {
    picola_encode_with(n, constraints, &PicolaOptions::default())
}

/// Encodes `n` symbols under `constraints` with explicit options.
///
/// # Panics
///
/// Panics if `n < 2` or an `nv_override` smaller than `ceil(log2 n)` is
/// given.
pub fn picola_encode_with(
    n: usize,
    constraints: &[GroupConstraint],
    opts: &PicolaOptions,
) -> PicolaResult {
    assert!(n >= 2, "need at least two symbols");
    let nv = opts.nv_override.unwrap_or_else(|| min_code_length(n));
    assert!(
        nv >= min_code_length(n),
        "nv = {nv} cannot distinguish {n} symbols"
    );

    let mut matrix = ConstraintMatrix::new(n, nv, constraints.to_vec());
    let mut validity = ValidityTracker::new(n, nv);
    let mut rounds = Vec::with_capacity(nv);

    for _ in 0..nv {
        let outcome = if opts.disable_classify {
            ClassifyOutcome::default()
        } else {
            update_constraints(&mut matrix, !opts.disable_guides)
        };
        rounds.push(outcome);
        let column = solve_column(&matrix, &validity, opts.cost);
        matrix.apply_column(&column);
        validity.commit(&column);
    }
    // Final classification pass so the matrix reports end-of-run statuses.
    if !opts.disable_classify {
        rounds.push(update_constraints(&mut matrix, false));
    }

    let columns: Vec<Vec<bool>> = matrix.columns().to_vec();
    let mut encoding = Encoding::from_columns(&columns)
        .expect("validity tracking guarantees distinct codes");

    if !opts.disable_refine {
        encoding = refine(encoding, constraints);
    }

    PicolaResult {
        encoding,
        matrix,
        rounds,
    }
}

/// Refinement: first-improvement hill climbing over code swaps and moves to
/// free code words, driven by the combinatorial greedy cube-cover estimate
/// (never by logic minimization).
///
/// Evaluation is incremental: a candidate move can change a constraint's
/// cost only when a moved symbol is one of its members (the supercube
/// changes) or its code enters/leaves the cached supercube (intrusion
/// changes); all other constraints keep their cached cost.
fn refine(enc: Encoding, constraints: &[GroupConstraint]) -> Encoding {
    use crate::eval::greedy_constraint_cubes;

    let active: Vec<&GroupConstraint> =
        constraints.iter().filter(|c| !c.is_trivial()).collect();
    if active.is_empty() {
        return enc;
    }
    let n = enc.num_symbols();
    let nv = enc.nv();
    let size = 1usize << nv;

    // Per symbol: constraints it belongs to.
    let mut membership: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (k, c) in active.iter().enumerate() {
        for s in c.members().iter() {
            membership[s].push(k);
        }
    }

    let mut enc = enc;
    let mut cost: Vec<usize> = active
        .iter()
        .map(|c| greedy_constraint_cubes(&enc, c.members()))
        .collect();
    let mut supers: Vec<picola_constraints::CodeCube> =
        active.iter().map(|c| enc.supercube(c.members())).collect();

    // Constraints whose cost may change when symbols in `moved` change
    // codes as described by (old, new) pairs.
    let affected = |membership: &[Vec<usize>],
                    supers: &[picola_constraints::CodeCube],
                    moved: &[(usize, u32, u32)]| {
        let mut out: Vec<usize> = Vec::new();
        for &(s, old, new) in moved {
            for &k in &membership[s] {
                if !out.contains(&k) {
                    out.push(k);
                }
            }
            for (k, sc) in supers.iter().enumerate() {
                if sc.contains(old) != sc.contains(new) && !out.contains(&k) {
                    out.push(k);
                }
            }
        }
        out
    };

    for _ in 0..4 {
        let mut improved = false;
        let try_move = |enc: &mut Encoding,
                            cost: &mut Vec<usize>,
                            supers: &mut Vec<picola_constraints::CodeCube>,
                            codes: Vec<u32>,
                            moved: &[(usize, u32, u32)]|
         -> bool {
            let touched = affected(&membership, supers, moved);
            if touched.is_empty() {
                return false;
            }
            let cand = Encoding::new(nv, codes).expect("refine moves keep codes distinct");
            let mut delta: i64 = 0;
            let mut new_costs = Vec::with_capacity(touched.len());
            for &k in &touched {
                let c = greedy_constraint_cubes(&cand, active[k].members());
                delta += c as i64 - cost[k] as i64;
                new_costs.push(c);
            }
            if delta < 0 {
                *enc = cand;
                for (&k, &c) in touched.iter().zip(&new_costs) {
                    cost[k] = c;
                    supers[k] = enc.supercube(active[k].members());
                }
                true
            } else {
                false
            }
        };

        for i in 0..n {
            for j in (i + 1)..n {
                let (ci, cj) = (enc.code(i), enc.code(j));
                let mut codes = enc.codes().to_vec();
                codes.swap(i, j);
                if try_move(
                    &mut enc,
                    &mut cost,
                    &mut supers,
                    codes,
                    &[(i, ci, cj), (j, cj, ci)],
                ) {
                    improved = true;
                }
            }
        }
        for i in 0..n {
            for w in 0..size as u32 {
                if enc.codes().contains(&w) {
                    continue;
                }
                let old = enc.code(i);
                let mut codes = enc.codes().to_vec();
                codes[i] = w;
                if try_move(&mut enc, &mut cost, &mut supers, codes, &[(i, old, w)]) {
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }
    enc
}

/// Runs PICOLA once per cost model and keeps the result whose encoding has
/// the lowest combinatorial cube estimate ([`crate::eval::estimate_cubes`]),
/// ties broken by model order. A deterministic portfolio: the paper leaves
/// the cost function's exact shape open, and the three models explore the
/// main alternatives for the price of three (still millisecond) runs.
pub fn picola_encode_portfolio(
    n: usize,
    constraints: &[GroupConstraint],
    base: &PicolaOptions,
    models: &[crate::cost::CostModel],
) -> PicolaResult {
    use crate::eval::estimate_cubes;
    assert!(!models.is_empty(), "portfolio needs at least one cost model");
    let mut best: Option<(usize, PicolaResult)> = None;
    for &cost in models {
        let opts = PicolaOptions {
            cost,
            ..base.clone()
        };
        let r = picola_encode_with(n, constraints, &opts);
        let est = estimate_cubes(&r.encoding, constraints);
        if best.as_ref().is_none_or(|&(b, _)| est < b) {
            best = Some((est, r));
        }
    }
    best.expect("at least one model ran").1
}

/// A minimum-length symbol encoder: PICOLA and every baseline implement
/// this, letting the state-assignment flow and the benches switch encoders
/// freely.
pub trait Encoder {
    /// Short identifier used in reports (e.g. `"picola"`, `"nova-ih"`).
    fn name(&self) -> &str;

    /// Produces a minimum-length encoding of `n` symbols that respects the
    /// face constraints as well as the strategy allows.
    fn encode(&self, n: usize, constraints: &[GroupConstraint]) -> Encoding;
}

/// The PICOLA encoder as an [`Encoder`] implementation.
///
/// By default it runs the three-cost-model portfolio
/// ([`picola_encode_portfolio`]); set `portfolio: false` for a single run
/// with `options.cost`.
#[derive(Debug, Clone)]
pub struct PicolaEncoder {
    /// Options applied on every call.
    pub options: PicolaOptions,
    /// Run all cost models and keep the best by estimate.
    pub portfolio: bool,
}

impl Default for PicolaEncoder {
    fn default() -> Self {
        PicolaEncoder {
            options: PicolaOptions::default(),
            portfolio: true,
        }
    }
}

impl Encoder for PicolaEncoder {
    fn name(&self) -> &str {
        "picola"
    }

    fn encode(&self, n: usize, constraints: &[GroupConstraint]) -> Encoding {
        if self.portfolio {
            picola_encode_portfolio(
                n,
                constraints,
                &self.options,
                &[
                    crate::cost::CostModel::PaperWeighted,
                    crate::cost::CostModel::UniformDichotomy,
                    crate::cost::CostModel::ConstraintCompletion,
                ],
            )
            .encoding
        } else {
            picola_encode_with(n, constraints, &self.options).encoding
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use picola_constraints::SymbolSet;

    fn groups(n: usize, gs: &[&[usize]]) -> Vec<GroupConstraint> {
        gs.iter()
            .map(|g| GroupConstraint::new(SymbolSet::from_members(n, g.iter().copied())))
            .collect()
    }

    #[test]
    fn codes_are_distinct_and_min_length() {
        for n in [2usize, 3, 5, 8, 12, 17, 33] {
            let cs = groups(n, &[&[0, 1]]);
            let r = picola_encode(n, &cs);
            assert_eq!(r.encoding.num_symbols(), n);
            assert_eq!(r.encoding.nv(), min_code_length(n));
        }
    }

    #[test]
    fn satisfiable_instances_are_satisfied() {
        // 8 symbols, 3 bits: three disjoint faces of sizes 2/2/2 all fit.
        let cs = groups(8, &[&[0, 1], &[2, 3], &[4, 5]]);
        let r = picola_encode(8, &cs);
        for c in &cs {
            assert!(
                r.encoding.satisfies(c.members()),
                "unsatisfied {c}; encoding:\n{}",
                r.encoding
            );
        }
    }

    #[test]
    fn infeasible_constraints_get_guides() {
        // n = 8, nv = 3, no spare codes: a 3-member face needs a spare word
        // inside its 4-code cube, so both constraints are unembeddable.
        // Classification must detect this up front and substitute guides.
        let cs = groups(8, &[&[0, 1, 2], &[3, 4, 5]]);
        let r = picola_encode(8, &cs);
        for c in &cs {
            assert!(!r.encoding.satisfies(c.members()));
        }
        let infeasible = r
            .matrix
            .constraints()
            .iter()
            .filter(|tc| tc.status() == ConstraintStatus::Infeasible)
            .count();
        assert!(infeasible >= 2, "both originals are unembeddable");
        assert!(
            r.guides_generated() >= 2,
            "each original spawns a guide over its intruders"
        );
    }

    #[test]
    fn rival_constraints_with_spare_codes() {
        // n = 6, nv = 3: two spare code words. Two disjoint 3-member faces
        // each need one spare — the budget just suffices and PICOLA should
        // embed both: e.g. codes 00x/0x0-ish faces.
        let cs = groups(6, &[&[0, 1, 2], &[3, 4, 5]]);
        let r = picola_encode(6, &cs);
        let sat = cs
            .iter()
            .filter(|c| r.encoding.satisfies(c.members()))
            .count();
        assert!(sat >= 1, "at least one face must embed:\n{}", r.encoding);
    }

    #[test]
    fn options_toggle_guides() {
        let cs = groups(8, &[&[0, 1, 2], &[3, 4, 5]]);
        let with = picola_encode(8, &cs);
        let without = picola_encode_with(
            8,
            &cs,
            &PicolaOptions {
                disable_guides: true,
                ..PicolaOptions::default()
            },
        );
        assert!(without.guides_generated() == 0);
        // with guides, the run *may* add them (not guaranteed, but the
        // rounds bookkeeping must be consistent)
        assert_eq!(with.rounds.len(), 4);
    }

    #[test]
    fn nv_override_gives_room() {
        let cs = groups(8, &[&[0, 1, 2], &[3, 4, 5]]);
        let r = picola_encode_with(
            8,
            &cs,
            &PicolaOptions {
                nv_override: Some(4),
                ..PicolaOptions::default()
            },
        );
        // with 4 bits both 3-member faces fit
        assert!(r.encoding.satisfies(cs[0].members()));
        assert!(r.encoding.satisfies(cs[1].members()));
    }

    #[test]
    fn encoder_trait_is_usable_as_object() {
        let enc: Box<dyn Encoder> = Box::<PicolaEncoder>::default();
        let cs = groups(4, &[&[0, 1]]);
        let e = enc.encode(4, &cs);
        assert_eq!(e.nv(), 2);
        assert_eq!(enc.name(), "picola");
    }

    #[test]
    fn paper_figure1_style_instance() {
        // 15 symbols, 4 bits, the four constraints of Figure 1b:
        // L1 = {s2, s6, s8, s14}, L2 = {s1, s2}, L3 = {s9, s14},
        // L4 = {s6, s7, s8, s9, s14} (1-based symbol names, 0-based here).
        let n = 15;
        let cs = groups(
            n,
            &[&[1, 5, 7, 13], &[0, 1], &[8, 13], &[5, 6, 7, 8, 13]],
        );
        let r = picola_encode(n, &cs);
        // L4 has 5 members: its supercube needs dim >= 3, i.e. 8 codes for
        // 5 members + room to exclude the other 10 symbols in 16 codes; the
        // instance forces trade-offs. PICOLA must satisfy at least two of
        // the four (the paper's encodings satisfy rows 1-3).
        let sat = cs
            .iter()
            .filter(|c| r.encoding.satisfies(c.members()))
            .count();
        assert!(sat >= 2, "only {sat} constraints satisfied:\n{}", r.encoding);
    }
}
