//! The PICOLA driver: `get_constraint_matrix(); for each column {
//! Update_constraints(); Solve(); }` (paper Figure 2).

use crate::classify::{update_constraints, ClassifyOutcome};
use crate::cost::CostModel;
use crate::error::PicolaError;
use crate::refine::{CandCursor, CodeTable, RefineCand, RefineEngine, RefineScratch};
use crate::solve::solve_column;
use crate::validity::ValidityTracker;
use picola_constraints::{
    min_code_length, ConstraintMatrix, ConstraintStatus, Encoding, GroupConstraint,
};
use picola_logic::{obs, Budget, Completion};

/// Options for [`picola_encode_with`].
#[derive(Debug, Clone, Default)]
pub struct PicolaOptions {
    /// Dichotomy weighting used by `Solve()`.
    pub cost: CostModel,
    /// Substitute infeasible constraints by guide constraints (§3.2). The
    /// paper's algorithm has this on; turning it off is the ablation.
    pub disable_guides: bool,
    /// Skip dynamic infeasibility detection entirely (a second ablation —
    /// the algorithm degenerates to plain weighted dichotomy encoding).
    pub disable_classify: bool,
    /// Skip the final refinement pass (code swaps driven by the
    /// combinatorial Theorem-I cube estimate, see
    /// [`crate::eval::estimate_cubes`]). The two-page paper does not spell
    /// out a polish phase; this reproduction adds one guided by the paper's
    /// own cost theory — it uses no logic minimization and keeps PICOLA
    /// orders of magnitude cheaper than ENC. Disabling it is an ablation.
    pub disable_refine: bool,
    /// Encode with this many bits instead of `ceil(log2 n)`.
    pub nv_override: Option<usize>,
    /// Worker threads for the refinement pass's candidate evaluation.
    /// `0` or `1` run sequentially; any value produces **bit-identical**
    /// results — candidates are evaluated read-only in fixed-size chunks
    /// and the first improvement in enumeration order is applied, so the
    /// thread count changes only wall time.
    pub threads: usize,
    /// Which refine evaluation kernel to run (see [`RefineEngine`]).
    /// Both produce bit-identical encodings; the default incremental
    /// engine is faster, the naive one is the differential/bench
    /// reference.
    pub engine: RefineEngine,
}

/// Result of a PICOLA run.
#[derive(Debug, Clone)]
pub struct PicolaResult {
    /// The produced minimum-length encoding (after the refinement pass,
    /// unless disabled).
    pub encoding: Encoding,
    /// Final state of the enriched constraint matrix. It documents the
    /// *constructive (column) phase*: the refinement pass may further trade
    /// one constraint for another, so judge the delivered `encoding` with
    /// [`crate::eval::evaluate_encoding`].
    pub matrix: ConstraintMatrix,
    /// Classification outcome per column round.
    pub rounds: Vec<ClassifyOutcome>,
    /// Whether the run finished within its [`Budget`] or degraded to a
    /// best-effort result.
    pub completion: Completion,
}

impl PicolaResult {
    /// Number of original constraints fully satisfied.
    pub fn satisfied_originals(&self) -> usize {
        self.matrix
            .constraints()
            .iter()
            .filter(|tc| {
                tc.status() == ConstraintStatus::Satisfied
                    && matches!(
                        tc.constraint().kind(),
                        picola_constraints::ConstraintKind::Original
                    )
            })
            .count()
    }

    /// Number of guide constraints generated over the whole run.
    pub fn guides_generated(&self) -> usize {
        self.rounds.iter().map(|r| r.guides_added.len()).sum()
    }
}

/// Encodes `n` symbols under `constraints` with default options.
///
/// # Examples
///
/// ```
/// use picola_core::picola_encode;
/// use picola_constraints::{GroupConstraint, SymbolSet};
///
/// let constraints = vec![
///     GroupConstraint::new(SymbolSet::from_members(6, [0, 1])),
///     GroupConstraint::new(SymbolSet::from_members(6, [2, 3, 4])),
/// ];
/// let result = picola_encode(6, &constraints);
/// assert_eq!(result.encoding.nv(), 3);
/// // both faces are embeddable in 3 bits and PICOLA finds them
/// assert!(result.encoding.satisfies(constraints[0].members()));
/// assert!(result.encoding.satisfies(constraints[1].members()));
/// ```
pub fn picola_encode(n: usize, constraints: &[GroupConstraint]) -> PicolaResult {
    picola_encode_with(n, constraints, &PicolaOptions::default())
}

/// Encodes `n` symbols under `constraints` with explicit options.
///
/// # Panics
///
/// Panics if `n < 2`, an `nv_override` too small (or too large) is given,
/// or a constraint's universe does not match `n`. Use
/// [`try_picola_encode_with`] for a fully fallible entry point.
#[allow(clippy::panic)] // documented panic contract of the legacy entry point
pub fn picola_encode_with(
    n: usize,
    constraints: &[GroupConstraint],
    opts: &PicolaOptions,
) -> PicolaResult {
    match try_picola_encode_with(n, constraints, opts, &Budget::unlimited()) {
        Ok(r) => r,
        Err(e) => panic!("picola_encode_with: {e}"),
    }
}

/// Encodes `n` symbols under `constraints` with explicit options and an
/// execution [`Budget`].
///
/// The budget is polled once per column round (trigger point
/// `"picola.column"`) and once per candidate move of the refinement pass
/// (`"picola.refine"`). On exhaustion the run returns early with a **valid**
/// encoding — distinct codes of the correct length — and
/// [`PicolaResult::completion`] reports the degradation; if the constructive
/// phase itself was cut short, the codes fall back to plain binary counting
/// and constraint satisfaction is whatever that happens to give.
///
/// # Errors
///
/// [`PicolaError::InvalidInput`] when `n < 2`, `nv_override` is too small
/// to distinguish `n` symbols, or a constraint's symbol universe differs
/// from `n`. [`PicolaError::Internal`] if a solver invariant breaks (never
/// expected; returned instead of panicking).
pub fn try_picola_encode_with(
    n: usize,
    constraints: &[GroupConstraint],
    opts: &PicolaOptions,
    budget: &Budget,
) -> Result<PicolaResult, PicolaError> {
    if n < 2 {
        return Err(PicolaError::invalid(format!(
            "need at least two symbols, got {n}"
        )));
    }
    let nv = opts.nv_override.unwrap_or_else(|| min_code_length(n));
    if nv < min_code_length(n) {
        return Err(PicolaError::invalid(format!(
            "nv = {nv} cannot distinguish {n} symbols (need {})",
            min_code_length(n)
        )));
    }
    if nv >= u32::BITS as usize {
        return Err(PicolaError::invalid(format!(
            "nv = {nv} exceeds the supported code length of {} bits",
            u32::BITS - 1
        )));
    }
    for (i, c) in constraints.iter().enumerate() {
        if c.members().universe() != n {
            return Err(PicolaError::invalid(format!(
                "constraint {i} is over a universe of {} symbols, expected {n}",
                c.members().universe()
            )));
        }
    }

    let span = obs::current_or(budget.recorder()).span("picola");
    let _cur = obs::enter(span.recorder());

    let mut matrix = ConstraintMatrix::new(n, nv, constraints.to_vec());
    let mut validity = ValidityTracker::new(n, nv);
    let mut rounds = Vec::with_capacity(nv);
    let mut constructive_complete = true;

    for col in 0..nv {
        if !budget.tick("picola.column", 1) {
            constructive_complete = false;
            break;
        }
        let col_span = span.recorder().span(&format!("column.{col}"));
        let _col_cur = obs::enter(col_span.recorder());
        let outcome = if opts.disable_classify {
            ClassifyOutcome::default()
        } else {
            update_constraints(&mut matrix, !opts.disable_guides)
        };
        obs::count(obs::Counter::GuidesAdded, outcome.guides_added.len() as u64);
        rounds.push(outcome);
        let column = solve_column(&matrix, &validity, opts.cost);
        matrix.apply_column(&column);
        validity.commit(&column);
        obs::count(obs::Counter::ColumnsSolved, 1);
    }
    // Final classification pass so the matrix reports end-of-run statuses.
    if constructive_complete && !opts.disable_classify {
        rounds.push(update_constraints(&mut matrix, false));
    }

    let mut encoding = if constructive_complete {
        let columns: Vec<Vec<bool>> = matrix.columns().to_vec();
        Encoding::from_columns(&columns).map_err(|e| {
            PicolaError::internal(format!(
                "validity tracking failed to keep codes distinct: {e}"
            ))
        })?
    } else {
        // The column phase was cut short, so the matrix holds a partial
        // (possibly non-distinct) code set. Fall back to binary counting:
        // valid by construction, quality left to whatever luck provides.
        Encoding::new(nv, (0..n as u32).collect()).map_err(|e| {
            PicolaError::internal(format!("binary fallback encoding failed: {e}"))
        })?
    };

    if !opts.disable_refine {
        encoding = refine(encoding, constraints, budget, opts.threads, opts.engine);
    }

    Ok(PicolaResult {
        encoding,
        matrix,
        rounds,
        completion: budget.completion(),
    })
}

/// How many valid candidates are evaluated per batch. Fixed — it shapes
/// the search trajectory, so it must not depend on the thread count.
const REFINE_CHUNK: usize = 64;

/// Refinement: first-improvement hill climbing over code swaps and moves to
/// free code words, driven by the combinatorial greedy cube-cover estimate
/// (never by logic minimization).
///
/// Candidates are enumerated lazily ([`CandCursor`]) in a fixed order — all
/// swaps `(i, j)` with `i < j`, then all moves `(i, w)` — and evaluated
/// read-only against a [`CodeTable`] in chunks of [`REFINE_CHUNK`]; the
/// first improving candidate in order is applied and enumeration resumes
/// right after it against the new state. Chunk evaluation runs on
/// `threads` workers when `threads > 1`, each with its own long-lived
/// [`RefineScratch`], with **bit-identical** results for any thread count
/// and either [`RefineEngine`]: the evaluation is pure and the applied
/// candidate is chosen by enumeration order, never by completion order.
///
/// Budget-aware: each chunk ticks `"picola.refine"` by the number of
/// candidates it holds; on exhaustion the current (always valid) encoding
/// is returned as-is.
fn refine(
    enc: Encoding,
    constraints: &[GroupConstraint],
    budget: &Budget,
    threads: usize,
    engine: RefineEngine,
) -> Encoding {
    let span = obs::current_or(budget.recorder()).span("refine");
    let _cur = obs::enter(span.recorder());

    let active: Vec<&GroupConstraint> =
        constraints.iter().filter(|c| !c.is_trivial()).collect();
    if active.is_empty() {
        return enc;
    }
    let n = enc.num_symbols();
    let nv = enc.nv();
    let size = 1usize << nv;

    // One scratch per worker, alive for the whole run: chunk evaluation
    // allocates nothing after the first few candidates warm the buffers.
    let mut scratches: Vec<RefineScratch> =
        (0..threads.max(1)).map(|_| RefineScratch::new()).collect();
    let mut table = CodeTable::build(nv, enc.codes().to_vec(), &active, &mut scratches[0]);

    let mut chunk: Vec<(CandCursor, RefineCand)> = Vec::with_capacity(REFINE_CHUNK);
    let mut results: Vec<i64> = vec![0; REFINE_CHUNK];

    'passes: for _ in 0..4 {
        let mut improved = false;
        let mut gen = CandCursor::start(n, size);
        'pass: loop {
            // Collect the next chunk of *valid* candidates (swaps always;
            // moves only to words free under the current codes), each with
            // the cursor to resume from if it is the one applied.
            chunk.clear();
            while chunk.len() < REFINE_CHUNK {
                let Some(cand) = gen.next() else { break };
                if let RefineCand::Move(_, w) = cand {
                    if !table.is_free(w) {
                        continue;
                    }
                }
                chunk.push((gen, cand));
            }
            if chunk.is_empty() {
                break;
            }
            if !budget.tick("picola.refine", chunk.len() as u64) {
                break 'passes;
            }

            let workers = threads.min(chunk.len());
            if workers > 1 {
                let per = chunk.len().div_ceil(workers);
                let (chunk, table) = (&chunk, &table);
                let active = &active;
                rayon::scope(|s| {
                    let mut rest: &mut [i64] = &mut results[..chunk.len()];
                    let mut free_scratch: &mut [RefineScratch] = &mut scratches;
                    let mut offset = 0usize;
                    while !rest.is_empty() {
                        let take = per.min(rest.len());
                        let (slots, tail) = rest.split_at_mut(take);
                        rest = tail;
                        let (mine, others) = free_scratch.split_at_mut(1);
                        free_scratch = others;
                        let scratch = &mut mine[0];
                        let start = offset;
                        offset += take;
                        s.spawn(move |_| {
                            for (t, out) in slots.iter_mut().enumerate() {
                                let cand = chunk[start + t].1;
                                *out = match engine {
                                    RefineEngine::Incremental => table.eval(cand, scratch),
                                    RefineEngine::Naive => table.eval_naive(cand, active),
                                };
                            }
                        });
                    }
                });
            } else {
                let scratch = &mut scratches[0];
                for (t, out) in results[..chunk.len()].iter_mut().enumerate() {
                    let cand = chunk[t].1;
                    *out = match engine {
                        RefineEngine::Incremental => table.eval(cand, scratch),
                        RefineEngine::Naive => table.eval_naive(cand, &active),
                    };
                }
            }

            // Apply the first improving candidate in enumeration order and
            // resume right after it; later results in the chunk are stale
            // against the new state and are discarded.
            obs::count(obs::Counter::RefineEvals, chunk.len() as u64);
            if engine == RefineEngine::Incremental {
                obs::count(obs::Counter::RefineScratchReuse, chunk.len() as u64);
            }
            let mut applied = None;
            for (t, &(resume, cand)) in chunk.iter().enumerate() {
                if results[t] < 0 {
                    obs::count(obs::Counter::RefineAccepts, 1);
                    obs::count(obs::Counter::RefineRejects, t as u64);
                    applied = Some((resume, cand));
                    break;
                }
            }
            if let Some((resume, cand)) = applied {
                table.apply(cand, &mut scratches[0]);
                gen = resume;
                improved = true;
                continue 'pass;
            }
            obs::count(obs::Counter::RefineRejects, chunk.len() as u64);
        }
        if !improved || budget.is_exhausted() {
            break;
        }
    }
    // Swaps and moves-to-free-words keep codes distinct by construction;
    // fall back to the input encoding rather than panic if not.
    Encoding::new(nv, table.into_codes()).unwrap_or(enc)
}

/// Runs PICOLA once per cost model and keeps the result whose encoding has
/// the lowest combinatorial cube estimate ([`crate::eval::estimate_cubes`]),
/// ties broken by model order. A deterministic portfolio: the paper leaves
/// the cost function's exact shape open, and the three models explore the
/// main alternatives for the price of three (still millisecond) runs.
pub fn picola_encode_portfolio(
    n: usize,
    constraints: &[GroupConstraint],
    base: &PicolaOptions,
    models: &[crate::cost::CostModel],
) -> PicolaResult {
    match try_picola_encode_portfolio(n, constraints, base, models, &Budget::unlimited()) {
        Ok(r) => r,
        #[allow(clippy::panic)] // documented panic contract of the legacy entry point
        Err(e) => panic!("picola_encode_portfolio: {e}"),
    }
}

/// Budget-aware [`picola_encode_portfolio`]: the runs share one `budget`.
/// Models that cannot start (budget already exhausted) are skipped, but at
/// least one run always completes — possibly degraded — so a result is
/// always produced.
///
/// # Errors
///
/// As [`try_picola_encode_with`], plus [`PicolaError::InvalidInput`] when
/// `models` is empty.
pub fn try_picola_encode_portfolio(
    n: usize,
    constraints: &[GroupConstraint],
    base: &PicolaOptions,
    models: &[crate::cost::CostModel],
    budget: &Budget,
) -> Result<PicolaResult, PicolaError> {
    use crate::eval::estimate_cubes_with;
    if models.is_empty() {
        return Err(PicolaError::invalid("portfolio needs at least one cost model"));
    }
    let mut best: Option<(usize, PicolaResult)> = None;
    // One scratch across all model evaluations — the winner selection
    // allocates nothing per model.
    let mut scratch = crate::eval::CubesScratch::new();
    for &cost in models {
        let opts = PicolaOptions {
            cost,
            ..base.clone()
        };
        let r = try_picola_encode_with(n, constraints, &opts, budget)?;
        let est = estimate_cubes_with(&r.encoding, constraints, &mut scratch);
        if best.as_ref().is_none_or(|&(b, _)| est < b) {
            best = Some((est, r));
        }
        // Later models would only produce the same degraded fallback.
        if budget.is_exhausted() {
            break;
        }
    }
    match best {
        Some((_, r)) => Ok(r),
        None => Err(PicolaError::internal("no portfolio model produced a result")),
    }
}

/// A minimum-length symbol encoder: PICOLA and every baseline implement
/// this, letting the state-assignment flow and the benches switch encoders
/// freely.
pub trait Encoder {
    /// Short identifier used in reports (e.g. `"picola"`, `"nova-ih"`).
    fn name(&self) -> &str;

    /// Produces a minimum-length encoding of `n` symbols that respects the
    /// face constraints as well as the strategy allows.
    fn encode(&self, n: usize, constraints: &[GroupConstraint]) -> Encoding;

    /// Budget-aware [`Encoder::encode`]: stops refining when `budget` runs
    /// out and reports how the run ended. The returned encoding is always
    /// valid (distinct codes, minimum length).
    ///
    /// The default implementation ignores the budget and runs [`Encoder::encode`]
    /// to completion; budget-aware encoders override it.
    fn encode_bounded(
        &self,
        n: usize,
        constraints: &[GroupConstraint],
        budget: &Budget,
    ) -> (Encoding, Completion) {
        let enc = self.encode(n, constraints);
        (enc, budget.completion())
    }
}

/// The PICOLA encoder as an [`Encoder`] implementation.
///
/// By default it runs the three-cost-model portfolio
/// ([`picola_encode_portfolio`]); set `portfolio: false` for a single run
/// with `options.cost`.
#[derive(Debug, Clone)]
pub struct PicolaEncoder {
    /// Options applied on every call.
    pub options: PicolaOptions,
    /// Run all cost models and keep the best by estimate.
    pub portfolio: bool,
}

impl Default for PicolaEncoder {
    fn default() -> Self {
        PicolaEncoder {
            options: PicolaOptions::default(),
            portfolio: true,
        }
    }
}

impl Encoder for PicolaEncoder {
    fn name(&self) -> &str {
        "picola"
    }

    fn encode(&self, n: usize, constraints: &[GroupConstraint]) -> Encoding {
        self.encode_bounded(n, constraints, &Budget::unlimited()).0
    }

    // The Encoder trait's infallible contract mirrors picola_encode_with's
    // documented panics on invalid input (n < 2, undersized nv_override);
    // fallible callers use try_picola_encode_with directly.
    #[allow(clippy::panic)]
    fn encode_bounded(
        &self,
        n: usize,
        constraints: &[GroupConstraint],
        budget: &Budget,
    ) -> (Encoding, Completion) {
        let result = if self.portfolio {
            try_picola_encode_portfolio(
                n,
                constraints,
                &self.options,
                &[
                    crate::cost::CostModel::PaperWeighted,
                    crate::cost::CostModel::UniformDichotomy,
                    crate::cost::CostModel::ConstraintCompletion,
                ],
                budget,
            )
        } else {
            try_picola_encode_with(n, constraints, &self.options, budget)
        };
        match result {
            Ok(r) => (r.encoding, r.completion),
            Err(e) => panic!("PicolaEncoder: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use picola_constraints::SymbolSet;
    use picola_logic::{chaos, ExhaustReason};

    fn groups(n: usize, gs: &[&[usize]]) -> Vec<GroupConstraint> {
        gs.iter()
            .map(|g| GroupConstraint::new(SymbolSet::from_members(n, g.iter().copied())))
            .collect()
    }

    #[test]
    fn codes_are_distinct_and_min_length() {
        for n in [2usize, 3, 5, 8, 12, 17, 33] {
            let cs = groups(n, &[&[0, 1]]);
            let r = picola_encode(n, &cs);
            assert_eq!(r.encoding.num_symbols(), n);
            assert_eq!(r.encoding.nv(), min_code_length(n));
        }
    }

    #[test]
    fn satisfiable_instances_are_satisfied() {
        // 8 symbols, 3 bits: three disjoint faces of sizes 2/2/2 all fit.
        let cs = groups(8, &[&[0, 1], &[2, 3], &[4, 5]]);
        let r = picola_encode(8, &cs);
        for c in &cs {
            assert!(
                r.encoding.satisfies(c.members()),
                "unsatisfied {c}; encoding:\n{}",
                r.encoding
            );
        }
    }

    #[test]
    fn infeasible_constraints_get_guides() {
        // n = 8, nv = 3, no spare codes: a 3-member face needs a spare word
        // inside its 4-code cube, so both constraints are unembeddable.
        // Classification must detect this up front and substitute guides.
        let cs = groups(8, &[&[0, 1, 2], &[3, 4, 5]]);
        let r = picola_encode(8, &cs);
        for c in &cs {
            assert!(!r.encoding.satisfies(c.members()));
        }
        let infeasible = r
            .matrix
            .constraints()
            .iter()
            .filter(|tc| tc.status() == ConstraintStatus::Infeasible)
            .count();
        assert!(infeasible >= 2, "both originals are unembeddable");
        assert!(
            r.guides_generated() >= 2,
            "each original spawns a guide over its intruders"
        );
    }

    #[test]
    fn rival_constraints_with_spare_codes() {
        // n = 6, nv = 3: two spare code words. Two disjoint 3-member faces
        // each need one spare — the budget just suffices and PICOLA should
        // embed both: e.g. codes 00x/0x0-ish faces.
        let cs = groups(6, &[&[0, 1, 2], &[3, 4, 5]]);
        let r = picola_encode(6, &cs);
        let sat = cs
            .iter()
            .filter(|c| r.encoding.satisfies(c.members()))
            .count();
        assert!(sat >= 1, "at least one face must embed:\n{}", r.encoding);
    }

    #[test]
    fn options_toggle_guides() {
        let cs = groups(8, &[&[0, 1, 2], &[3, 4, 5]]);
        let with = picola_encode(8, &cs);
        let without = picola_encode_with(
            8,
            &cs,
            &PicolaOptions {
                disable_guides: true,
                ..PicolaOptions::default()
            },
        );
        assert!(without.guides_generated() == 0);
        // with guides, the run *may* add them (not guaranteed, but the
        // rounds bookkeeping must be consistent)
        assert_eq!(with.rounds.len(), 4);
    }

    #[test]
    fn nv_override_gives_room() {
        let cs = groups(8, &[&[0, 1, 2], &[3, 4, 5]]);
        let r = picola_encode_with(
            8,
            &cs,
            &PicolaOptions {
                nv_override: Some(4),
                ..PicolaOptions::default()
            },
        );
        // with 4 bits both 3-member faces fit
        assert!(r.encoding.satisfies(cs[0].members()));
        assert!(r.encoding.satisfies(cs[1].members()));
    }

    #[test]
    fn encoder_trait_is_usable_as_object() {
        let enc: Box<dyn Encoder> = Box::<PicolaEncoder>::default();
        let cs = groups(4, &[&[0, 1]]);
        let e = enc.encode(4, &cs);
        assert_eq!(e.nv(), 2);
        assert_eq!(enc.name(), "picola");
    }

    #[test]
    fn try_encode_rejects_bad_input() {
        let budget = Budget::unlimited();
        let cs = groups(4, &[&[0, 1]]);
        let opts = PicolaOptions::default();
        assert!(matches!(
            try_picola_encode_with(1, &[], &opts, &budget),
            Err(PicolaError::InvalidInput(_))
        ));
        let small = PicolaOptions {
            nv_override: Some(1),
            ..PicolaOptions::default()
        };
        assert!(matches!(
            try_picola_encode_with(4, &cs, &small, &budget),
            Err(PicolaError::InvalidInput(_))
        ));
        let huge = PicolaOptions {
            nv_override: Some(40),
            ..PicolaOptions::default()
        };
        assert!(matches!(
            try_picola_encode_with(4, &cs, &huge, &budget),
            Err(PicolaError::InvalidInput(_))
        ));
        // constraint universe mismatch: members sized for 8 symbols, n = 4
        let wrong = groups(8, &[&[0, 1]]);
        assert!(matches!(
            try_picola_encode_with(4, &wrong, &opts, &budget),
            Err(PicolaError::InvalidInput(_))
        ));
    }

    #[test]
    fn exhausted_budget_still_yields_valid_encoding() {
        let cs = groups(8, &[&[0, 1], &[2, 3], &[4, 5]]);
        let budget = Budget::with_work_limit(0);
        let r = try_picola_encode_with(8, &cs, &PicolaOptions::default(), &budget)
            .expect("degraded, not failed");
        assert_eq!(r.encoding.num_symbols(), 8);
        assert_eq!(r.encoding.nv(), 3);
        assert!(matches!(r.completion, Completion::Degraded { .. }));
    }

    #[test]
    fn tight_budget_degrades_but_unbounded_result_matches_legacy() {
        let cs = groups(8, &[&[0, 1], &[2, 3], &[4, 5]]);
        let unbounded =
            try_picola_encode_with(8, &cs, &PicolaOptions::default(), &Budget::unlimited())
                .unwrap();
        assert!(matches!(unbounded.completion, Completion::Complete));
        let legacy = picola_encode(8, &cs);
        assert_eq!(unbounded.encoding, legacy.encoding);
        // a budget of a few ticks cuts the column phase or refinement short
        for limit in [1u64, 2, 4] {
            let budget = Budget::with_work_limit(limit);
            let r = try_picola_encode_with(8, &cs, &PicolaOptions::default(), &budget).unwrap();
            assert_eq!(r.encoding.num_symbols(), 8);
        }
    }

    #[test]
    fn injected_fault_at_column_phase_degrades() {
        let _guard = chaos::arm("picola.column", 0);
        let cs = groups(8, &[&[0, 1], &[2, 3]]);
        let budget = Budget::unlimited();
        let r = try_picola_encode_with(8, &cs, &PicolaOptions::default(), &budget).unwrap();
        assert!(matches!(
            r.completion,
            Completion::Degraded {
                reason: ExhaustReason::Injected,
                ..
            }
        ));
        assert_eq!(r.encoding.num_symbols(), 8);
    }

    #[test]
    fn injected_fault_at_refine_degrades() {
        let _guard = chaos::arm("picola.refine", 0);
        let cs = groups(8, &[&[0, 1], &[2, 3]]);
        let budget = Budget::unlimited();
        let r = try_picola_encode_with(8, &cs, &PicolaOptions::default(), &budget).unwrap();
        assert_eq!(r.encoding.num_symbols(), 8);
        assert!(matches!(r.completion, Completion::Degraded { .. }));
    }

    #[test]
    fn portfolio_shares_one_budget() {
        let cs = groups(8, &[&[0, 1], &[2, 3]]);
        let opts = PicolaOptions::default();
        let models = [CostModel::PaperWeighted, CostModel::UniformDichotomy];
        let budget = Budget::unlimited();
        let r = try_picola_encode_portfolio(8, &cs, &opts, &models, &budget).unwrap();
        assert_eq!(r.encoding.num_symbols(), 8);
        assert!(matches!(r.completion, Completion::Complete));
        assert!(matches!(
            try_picola_encode_portfolio(8, &cs, &opts, &[], &budget),
            Err(PicolaError::InvalidInput(_))
        ));
    }

    #[test]
    fn encode_bounded_reports_completion() {
        let enc = PicolaEncoder::default();
        let cs = groups(8, &[&[0, 1]]);
        let budget = Budget::with_work_limit(0);
        let (e, completion) = enc.encode_bounded(8, &cs, &budget);
        assert_eq!(e.num_symbols(), 8);
        assert!(matches!(completion, Completion::Degraded { .. }));
    }

    #[test]
    fn paper_figure1_style_instance() {
        // 15 symbols, 4 bits, the four constraints of Figure 1b:
        // L1 = {s2, s6, s8, s14}, L2 = {s1, s2}, L3 = {s9, s14},
        // L4 = {s6, s7, s8, s9, s14} (1-based symbol names, 0-based here).
        let n = 15;
        let cs = groups(
            n,
            &[&[1, 5, 7, 13], &[0, 1], &[8, 13], &[5, 6, 7, 8, 13]],
        );
        let r = picola_encode(n, &cs);
        // L4 has 5 members: its supercube needs dim >= 3, i.e. 8 codes for
        // 5 members + room to exclude the other 10 symbols in 16 codes; the
        // instance forces trade-offs. PICOLA must satisfy at least two of
        // the four (the paper's encodings satisfy rows 1-3).
        let sat = cs
            .iter()
            .filter(|c| r.encoding.satisfies(c.members()))
            .count();
        assert!(sat >= 2, "only {sat} constraints satisfied:\n{}", r.encoding);
    }
}
