//! Content-addressed on-disk store of minimized encoding results.
//!
//! Repeated bench/CI/daemon runs re-minimize the same instances from
//! scratch; this store makes the second run nearly free. The key is the
//! FNV-1a digest of the *canonical job bytes* (symbol count, optional code
//! length override, and the sorted member list of every constraint — see
//! [`canonical_job_bytes`]), so two textually different descriptions of
//! the same job share one entry; the value is a compact binary
//! [`StoredResult`] record (DESIGN.md §18 has the byte-layout tables).
//!
//! Durability discipline:
//!
//! - **Atomic inserts** — records are written to a unique tmpfile in the
//!   store directory and `rename`d into place, so readers never observe a
//!   half-written entry and concurrent writers race benignly (both write
//!   identical bytes for the same key; either rename wins).
//! - **Corruption-tolerant reads** — a missing file is a miss; a
//!   truncated, garbled, or semantically invalid record (codes that fail
//!   [`Encoding::new`]) is an *honest counted miss*: the caller recomputes
//!   and overwrites, and [`StoreStats::corrupt`] records the event. The
//!   store never invents results and never panics on hostile bytes.
//! - **Only complete results** — callers must not insert degraded
//!   (budget-exhausted) outputs; [`StoredResult::from_output`] enforces
//!   this by returning `None` for them. A warm lookup therefore always
//!   reproduces what an unbounded in-memory run would have produced.
//! - **Chaos-reachable I/O** — every lookup and insert passes the
//!   `store.io` trigger point ([`picola_logic::chaos`]); a firing lookup
//!   degrades to a counted miss and a firing insert is skipped, modeling
//!   a failing disk without inventing data.

use crate::engine::{Job, JobOutput};
use picola_constraints::{Encoding, GroupConstraint};
use picola_logic::binio::{ByteReader, ByteWriter, Fnv64};
use picola_logic::chaos;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Record-kind tag of canonical job bytes (digest input, never persisted).
pub const KIND_JOB: u8 = 1;
/// Record-kind tag of a stored result record.
pub const KIND_RESULT: u8 = 2;

/// Upper bound accepted for symbol counts / constraint counts when
/// decoding store records — far above anything the encoders accept, low
/// enough that corrupt counts cannot drive huge allocations.
const MAX_DECODE_COUNT: u64 = 1 << 24;

/// Content address of one encode job: the FNV-1a digest of its canonical
/// bytes. Displayed and used on disk as 16 lowercase hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StoreKey(pub u64);

impl StoreKey {
    /// The on-disk file name of this key.
    #[must_use]
    pub fn file_name(self) -> String {
        format!("{:016x}.rec", self.0)
    }
}

/// Canonical binary form of an encode job: versioned header, `n`, the
/// `nv` override (0 = none, else `nv + 1`), then each constraint as a
/// sorted, length-prefixed member list. Constraint *order* is preserved —
/// evaluation reports per-constraint costs positionally — but member
/// order inside a constraint is normalized.
#[must_use]
pub fn canonical_job_bytes(
    n: usize,
    nv_override: Option<usize>,
    constraints: &[GroupConstraint],
) -> Vec<u8> {
    let mut w = ByteWriter::with_capacity(16 + constraints.len() * 8);
    w.header(KIND_JOB);
    w.varint(n as u64);
    w.varint(nv_override.map_or(0, |nv| nv as u64 + 1));
    w.varint(constraints.len() as u64);
    let mut members: Vec<u64> = Vec::new();
    for c in constraints {
        members.clear();
        members.extend(c.members().iter().map(|m| m as u64));
        members.sort_unstable();
        w.varint(members.len() as u64);
        for &m in &members {
            w.varint(m);
        }
    }
    w.into_bytes()
}

/// The content address of an encode job under `nv_override`.
#[must_use]
pub fn job_key(n: usize, nv_override: Option<usize>, constraints: &[GroupConstraint]) -> StoreKey {
    let bytes = canonical_job_bytes(n, nv_override, constraints);
    let mut h = Fnv64::new();
    h.update(&bytes);
    StoreKey(h.finish())
}

/// The content address of a [`Job`], or `None` for job kinds the store
/// does not cache (evaluation jobs are already nearly free through the
/// minimize memo).
#[must_use]
pub fn key_for(job: &Job, nv_override: Option<usize>) -> Option<StoreKey> {
    match job {
        Job::Encode { n, constraints } => Some(job_key(*n, nv_override, constraints)),
        Job::Evaluate { .. } => None,
    }
}

/// One minimized result as persisted: everything a warm path needs to
/// reproduce the cold answer bit-identically at the job-output surface
/// (codes plus the aggregate evaluation the daemon and bench report).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredResult {
    /// Code length in bits.
    pub nv: usize,
    /// One code per symbol, distinct, each `< 1 << nv`.
    pub codes: Vec<u32>,
    /// Total minimized cube count across evaluated constraints.
    pub total_cubes: usize,
    /// Constraints embedded as faces.
    pub satisfied: usize,
    /// Constraints evaluated.
    pub evaluated: usize,
}

impl StoredResult {
    /// Captures a *complete* encode output; `None` when the output is
    /// degraded (never cached — budgets vary across runs) or not an
    /// encode result.
    #[must_use]
    pub fn from_output(output: &JobOutput) -> Option<StoredResult> {
        match output {
            JobOutput::Encoded {
                encoding,
                evaluation,
                completion,
            } if completion.is_complete() => Some(StoredResult {
                nv: encoding.nv(),
                codes: encoding.codes().to_vec(),
                total_cubes: evaluation.total_cubes,
                satisfied: evaluation.satisfied,
                evaluated: evaluation.evaluated,
            }),
            _ => None,
        }
    }

    /// The stored encoding, re-validated (the decode path has already
    /// checked it, so this cannot fail for records produced by
    /// [`ResultStore::lookup`]).
    #[must_use]
    pub fn encoding(&self) -> Option<Encoding> {
        Encoding::new(self.nv, self.codes.clone()).ok()
    }

    /// Serializes the record (DESIGN.md §18).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::with_capacity(16 + self.codes.len() * 3);
        w.header(KIND_RESULT);
        w.varint(self.nv as u64);
        w.varint(self.codes.len() as u64);
        for &c in &self.codes {
            w.varint(u64::from(c));
        }
        w.varint(self.total_cubes as u64);
        w.varint(self.satisfied as u64);
        w.varint(self.evaluated as u64);
        w.into_bytes()
    }

    /// Decodes and *semantically validates* a record: structural errors,
    /// trailing bytes, out-of-range or duplicate codes all return `None`
    /// (the store treats that as a corrupt entry).
    #[must_use]
    pub fn from_bytes(bytes: &[u8]) -> Option<StoredResult> {
        let mut r = ByteReader::new(bytes);
        r.header(KIND_RESULT).ok()?;
        let nv = usize::try_from(r.varint_capped(64, "code length").ok()?).ok()?;
        let count = r.varint_capped(MAX_DECODE_COUNT, "code count").ok()?;
        let mut codes = Vec::with_capacity(usize::try_from(count).ok()?);
        for _ in 0..count {
            codes.push(u32::try_from(r.varint_capped(u64::from(u32::MAX), "code").ok()?).ok()?);
        }
        let total_cubes = usize::try_from(r.varint().ok()?).ok()?;
        let satisfied = usize::try_from(r.varint().ok()?).ok()?;
        let evaluated = usize::try_from(r.varint().ok()?).ok()?;
        r.finish().ok()?;
        // Semantic validation through the same gate the encoders use.
        Encoding::new(nv, codes.clone()).ok()?;
        Some(StoredResult {
            nv,
            codes,
            total_cubes,
            satisfied,
            evaluated,
        })
    }
}

/// Monotonic store counters, snapshot by [`ResultStore::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Lookups answered from disk.
    pub hits: u64,
    /// Lookups with no usable entry (includes corrupt entries and
    /// injected I/O faults).
    pub misses: u64,
    /// Misses caused by an unreadable or invalid entry specifically.
    pub corrupt: u64,
    /// Records durably renamed into place.
    pub inserts: u64,
    /// Inserts skipped or failed (I/O error, injected fault, degraded
    /// result offered).
    pub insert_failures: u64,
}

#[derive(Debug, Default)]
struct StatsInner {
    hits: AtomicU64,
    misses: AtomicU64,
    corrupt: AtomicU64,
    inserts: AtomicU64,
    insert_failures: AtomicU64,
}

/// A content-addressed directory of [`StoredResult`] records, safe for
/// concurrent readers and writers in any number of processes.
#[derive(Debug)]
pub struct ResultStore {
    dir: PathBuf,
    stats: StatsInner,
    tmp_seq: AtomicU64,
}

impl ResultStore {
    /// Opens (creating if needed) the store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// The directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<ResultStore> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(ResultStore {
            dir,
            stats: StatsInner::default(),
            tmp_seq: AtomicU64::new(0),
        })
    }

    /// The store's root directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Looks `key` up. A missing entry is a miss; an unreadable or
    /// invalid entry is a *corrupt* miss; an injected `store.io` fault is
    /// a plain miss (the disk "failed"). Never panics, never errors —
    /// the caller's fallback is always "recompute".
    pub fn lookup(&self, key: StoreKey) -> Option<StoredResult> {
        if chaos::should_fire("store.io") {
            self.stats.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let path = self.dir.join(key.file_name());
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
            Err(_) => {
                self.stats.corrupt.fetch_add(1, Ordering::Relaxed);
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match StoredResult::from_bytes(&bytes) {
            Some(result) => {
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                Some(result)
            }
            None => {
                self.stats.corrupt.fetch_add(1, Ordering::Relaxed);
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts `result` under `key` atomically (tmpfile + rename).
    /// Returns `true` when the record is durably in place. Failures —
    /// I/O errors, injected `store.io` faults — are counted and absorbed:
    /// a store that cannot write degrades the *next* run, never this one.
    pub fn insert(&self, key: StoreKey, result: &StoredResult) -> bool {
        if chaos::should_fire("store.io") {
            self.stats.insert_failures.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let seq = self.tmp_seq.fetch_add(1, Ordering::Relaxed);
        let tmp = self.dir.join(format!(
            ".tmp-{:016x}-{}-{seq}",
            key.0,
            std::process::id()
        ));
        let finish = self.dir.join(key.file_name());
        let written = fs::write(&tmp, result.to_bytes())
            .and_then(|()| fs::rename(&tmp, &finish))
            .is_ok();
        if written {
            self.stats.inserts.fetch_add(1, Ordering::Relaxed);
        } else {
            let _ = fs::remove_file(&tmp);
            self.stats.insert_failures.fetch_add(1, Ordering::Relaxed);
        }
        written
    }

    /// Inserts the result of `output` if (and only if) it is a complete
    /// encode output; degraded results are counted as insert failures so
    /// cache-poisoning attempts stay visible.
    pub fn insert_output(&self, key: StoreKey, output: &JobOutput) -> bool {
        match StoredResult::from_output(output) {
            Some(result) => self.insert(key, &result),
            None => {
                self.stats.insert_failures.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// A snapshot of the counters.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.stats.hits.load(Ordering::Relaxed),
            misses: self.stats.misses.load(Ordering::Relaxed),
            corrupt: self.stats.corrupt.load(Ordering::Relaxed),
            inserts: self.stats.inserts.load(Ordering::Relaxed),
            insert_failures: self.stats.insert_failures.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;
    use picola_constraints::SymbolSet;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "picola-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_result() -> StoredResult {
        StoredResult {
            nv: 3,
            codes: vec![0, 1, 2, 3, 4, 5],
            total_cubes: 7,
            satisfied: 2,
            evaluated: 3,
        }
    }

    #[test]
    fn records_round_trip() {
        let r = sample_result();
        let bytes = r.to_bytes();
        assert_eq!(StoredResult::from_bytes(&bytes), Some(r.clone()));
        assert_eq!(StoredResult::from_bytes(&bytes).unwrap().to_bytes(), bytes);
    }

    #[test]
    fn corrupt_records_decode_to_none() {
        let bytes = sample_result().to_bytes();
        for cut in 0..bytes.len() {
            assert!(StoredResult::from_bytes(&bytes[..cut]).is_none());
        }
        // Duplicate codes fail the semantic gate.
        let bad = StoredResult {
            codes: vec![1, 1, 2],
            ..sample_result()
        };
        assert!(StoredResult::from_bytes(&bad.to_bytes()).is_none());
        // Out-of-range code for nv.
        let bad = StoredResult {
            nv: 1,
            codes: vec![0, 5],
            ..sample_result()
        };
        assert!(StoredResult::from_bytes(&bad.to_bytes()).is_none());
    }

    #[test]
    fn canonical_bytes_normalize_member_order_only() {
        let n = 8;
        let a = [GroupConstraint::new(SymbolSet::from_members(n, [2, 5, 1]))];
        let b = [GroupConstraint::new(SymbolSet::from_members(n, [1, 2, 5]))];
        assert_eq!(job_key(n, None, &a), job_key(n, None, &b));
        assert_ne!(
            job_key(n, None, &a),
            job_key(n, Some(4), &a),
            "nv override is part of the address"
        );
        let c = [GroupConstraint::new(SymbolSet::from_members(n, [1, 2, 6]))];
        assert_ne!(job_key(n, None, &a), job_key(n, None, &c));
    }

    #[test]
    fn hit_miss_and_corrupt_paths_count_honestly() {
        let dir = tmp_dir("paths");
        let store = ResultStore::open(&dir).unwrap();
        let key = StoreKey(0xdead_beef);
        assert!(store.lookup(key).is_none(), "empty store misses");
        let r = sample_result();
        assert!(store.insert(key, &r));
        assert_eq!(store.lookup(key), Some(r));
        // Garble the entry on disk: the next lookup is a corrupt miss.
        fs::write(dir.join(key.file_name()), b"not a record").unwrap();
        assert!(store.lookup(key).is_none());
        let s = store.stats();
        assert_eq!((s.hits, s.misses, s.corrupt, s.inserts), (1, 2, 1, 1));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_store_faults_degrade_to_misses() {
        let dir = tmp_dir("chaos");
        let store = ResultStore::open(&dir).unwrap();
        let key = StoreKey(7);
        let r = sample_result();
        {
            let _guard = chaos::arm("store.io", 0);
            assert!(!store.insert(key, &r), "firing insert is skipped");
            assert!(store.lookup(key).is_none());
        }
        assert!(store.insert(key, &r), "disarmed store works again");
        assert_eq!(store.lookup(key), Some(r));
        let s = store.stats();
        assert_eq!(s.insert_failures, 1);
        assert!(s.misses >= 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
