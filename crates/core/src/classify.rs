//! `Classify()` and `Update_constraints()` — dynamic infeasibility detection
//! (paper §3.3) and guide-constraint substitution (paper §3.2).

use picola_constraints::{
    nv_compatible, ConstraintKind, ConstraintMatrix, ConstraintStatus, Geometry,
};

/// What one `Update_constraints()` round did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClassifyOutcome {
    /// Constraints newly marked infeasible this round.
    pub newly_infeasible: Vec<usize>,
    /// Guide constraints added this round (their matrix indices).
    pub guides_added: Vec<usize>,
}

/// The current dimension range of constraint `k`'s implementing cube.
pub fn geometry(matrix: &ConstraintMatrix, k: usize) -> Geometry {
    Geometry {
        size: matrix.constraint(k).constraint().len(),
        lower: matrix.dim_super_lower(k),
        upper: matrix.dim_super_upper(k),
    }
}

/// Runs one classification round: active constraints that can no longer be
/// satisfied are marked infeasible and (for original constraints, when
/// `use_guides` is set) replaced by the guide constraint over their pending
/// intruders.
///
/// A constraint is declared infeasible when
/// 1. its own geometry admits no embeddable cube dimension — no dimension in
///    `[lower, upper]` both holds the members and leaves the `n − size`
///    outside symbols room (`2^d − size ≤ 2^nv − n`), or
/// 2. all `nv` columns are generated and dichotomies remain unsatisfied, or
/// 3. it is not nv-compatible with some already-*satisfied*, non-trivial
///    constraint (the paper's trigger: “once a constraint is satisfied,
///    those ones which are not nv-compatible to it are identified as
///    infeasible”).
pub fn update_constraints(matrix: &mut ConstraintMatrix, use_guides: bool) -> ClassifyOutcome {
    let nv = matrix.nv();
    let n = matrix.num_symbols();
    let done = matrix.columns_done();
    let mut outcome = ClassifyOutcome::default();

    let satisfied: Vec<usize> = matrix
        .with_status(ConstraintStatus::Satisfied)
        .into_iter()
        .filter(|&s| !matrix.constraint(s).constraint().is_trivial())
        .collect();

    for k in matrix.with_status(ConstraintStatus::Active) {
        let gk = geometry(matrix, k);
        let mut infeasible = !gk.feasible_in(nv, n);
        if !infeasible && done == nv && matrix.constraint(k).unsatisfied_dichotomies() > 0 {
            infeasible = true;
        }
        if !infeasible {
            for &s in &satisfied {
                let gs = geometry(matrix, s);
                let a = matrix.constraint(k).constraint().members();
                let b = matrix.constraint(s).constraint().members();
                if !nv_compatible(a, gk, b, gs, nv, n) {
                    infeasible = true;
                    break;
                }
            }
        }
        if infeasible {
            matrix.mark_infeasible(k);
            outcome.newly_infeasible.push(k);
        }
    }

    if use_guides && done < nv {
        for &k in &outcome.newly_infeasible {
            // Only original constraints spawn guides; a guide that fails is
            // simply dropped (one level of guiding, see DESIGN.md §7).
            if matrix.constraint(k).constraint().kind() == ConstraintKind::Original
                && !matrix.constraint(k).guided()
            {
                if let Some(g) = matrix.add_guide(k) {
                    outcome.guides_added.push(g);
                }
            }
        }
    }

    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use picola_constraints::{GroupConstraint, SymbolSet};

    fn mk(n: usize, nv: usize, groups: &[&[usize]]) -> ConstraintMatrix {
        let cs = groups
            .iter()
            .map(|g| GroupConstraint::new(SymbolSet::from_members(n, g.iter().copied())))
            .collect();
        ConstraintMatrix::new(n, nv, cs)
    }

    #[test]
    fn no_infeasibility_at_start_for_sane_constraints() {
        // power-of-two faces need no spare codes; both embed in 3 bits.
        let mut m = mk(8, 3, &[&[0, 1], &[2, 3, 4, 5]]);
        let out = update_constraints(&mut m, true);
        assert!(out.newly_infeasible.is_empty());
        // with spare codes available, odd-sized faces are fine too
        let mut m2 = mk(6, 3, &[&[0, 1, 2], &[3, 4]]);
        let out2 = update_constraints(&mut m2, true);
        assert!(out2.newly_infeasible.is_empty());
    }

    #[test]
    fn splitting_columns_make_a_big_constraint_infeasible() {
        // Constraint of 4 symbols needs dim >= 2 = all free columns of nv=3
        // once two columns split its members.
        let mut m = mk(8, 3, &[&[0, 1, 2, 3]]);
        // Column 1 splits members 0,1 from 2,3.
        m.apply_column(&[true, true, false, false, true, false, true, false]);
        // Column 2 splits members 0,2 from 1,3.
        m.apply_column(&[true, false, true, false, false, true, true, false]);
        // Now lower bound = max(ceil(log2 4), 2 disagreeing) = 2, upper =
        // 3 - 0 participating = 3: still feasible geometrically...
        let g = geometry(&m, 0);
        assert!(g.feasible());
        // ...but a third splitting column kills it: lower 3 > upper 3? No —
        // force participation impossibility instead: after the final column
        // with remaining dichotomies unsatisfied it must be infeasible.
        m.apply_column(&[true, false, false, true, true, true, true, true]);
        let out = update_constraints(&mut m, true);
        assert_eq!(out.newly_infeasible, vec![0]);
    }

    #[test]
    fn incompatible_with_satisfied_constraint_is_detected() {
        // n = 8, nv = 3, zero spare codes. Two disjoint 3-member
        // constraints cannot both hold: each needs a 4-code cube with one
        // spare word, but dc(S) = 2^3 - 8 = 0.
        let mut m = mk(8, 3, &[&[0, 1, 2], &[3, 4, 5]]);
        // One column separating {0,1,2} from everything else satisfies
        // constraint 0 outright.
        m.apply_column(&[false, false, false, true, true, true, true, true]);
        assert_eq!(m.constraint(0).status(), ConstraintStatus::Satisfied);
        let out = update_constraints(&mut m, true);
        assert_eq!(out.newly_infeasible, vec![1]);
        // Outsiders 6 and 7 still share the members' side: they are the
        // pending intruders and become the guide constraint.
        assert_eq!(out.guides_added.len(), 1);
        let g = out.guides_added[0];
        assert_eq!(m.constraint(g).constraint().members().to_vec(), vec![6, 7]);
    }

    #[test]
    fn guides_are_added_once_and_only_for_originals() {
        let mut m = mk(8, 3, &[&[0, 1, 2, 3, 4]]);
        // Split the members heavily so the constraint dies.
        m.apply_column(&[true, true, false, false, true, false, true, false]);
        m.apply_column(&[true, false, true, false, false, true, true, false]);
        m.apply_column(&[false, true, true, false, true, true, false, true]);
        let out = update_constraints(&mut m, true);
        assert_eq!(out.newly_infeasible, vec![0]);
        // done == nv, so no guides are added at the end.
        assert!(out.guides_added.is_empty());
    }

    #[test]
    fn dc_budget_rule_fires_immediately() {
        // A 3-member face among n = 2^nv symbols can never be embedded: it
        // needs a 4-code cube with a spare word, and there are none. The
        // unary rule fires before any column exists, and the guide spans
        // all pending intruders (every outsider).
        let mut m = mk(8, 3, &[&[0, 1, 2]]);
        let out = update_constraints(&mut m, true);
        assert_eq!(out.newly_infeasible, vec![0]);
        assert_eq!(out.guides_added.len(), 1);
        let g = out.guides_added[0];
        assert_eq!(
            m.constraint(g).constraint().members().to_vec(),
            vec![3, 4, 5, 6, 7]
        );
    }

    #[test]
    fn unary_geometry_rule_is_a_safety_net() {
        // The matrix itself does not enforce valid partial encodings; when
        // fed a column in which five members of a min_dim-3 constraint
        // participate (impossible under validity), the geometry rule still
        // catches the contradiction and spawns a guide over the pending
        // intruders mid-run.
        let mut m = mk(8, 3, &[&[0, 1, 2, 3, 4]]);
        m.apply_column(&[false, false, false, false, false, false, false, true]);
        // participating = [0] -> upper = 2 < lower = 3
        let out = update_constraints(&mut m, true);
        assert_eq!(out.newly_infeasible, vec![0]);
        assert_eq!(out.guides_added.len(), 1);
        let g = out.guides_added[0];
        // outsiders 5 and 6 share the members' side: pending intruders
        assert_eq!(m.constraint(g).constraint().members().to_vec(), vec![5, 6]);
    }
}
