//! Cost models for column generation (paper §3.4).
//!
//! `Solve()` scores each candidate bit assignment by a weighted sum of the
//! seed dichotomies the column would satisfy. The paper specifies that a
//! dichotomy's weight depends on the *size* and *type* (original vs. guide)
//! of its face constraint and on the columns generated so far; the exact
//! shape is left open, so the default model below is our instantiation and
//! the alternatives exist for the ablation study.

use picola_constraints::{ConstraintKind, TrackedConstraint};

/// Selectable weighting of seed dichotomies.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum CostModel {
    /// The paper-guided default: original constraints count double, weights
    /// are normalized by the constraint's outsider count, scaled by its
    /// extraction multiplicity, and boosted as the constraint approaches
    /// full satisfaction (so nearly-embedded faces get finished).
    #[default]
    PaperWeighted,
    /// Every unsatisfied seed dichotomy weighs 1 — the classic
    /// dichotomy-maximization objective.
    UniformDichotomy,
    /// Only completing a constraint scores: a dichotomy weighs 1 when it is
    /// the constraint's last unsatisfied one, else a small epsilon. Mimics
    /// the conventional satisfied-constraint-count objective.
    ConstraintCompletion,
}

impl CostModel {
    /// Weight of keeping a constraint's members together, per dichotomy the
    /// column leaves unsatisfied on the members' own side.
    ///
    /// The immediate score of a column counts only dichotomies it satisfies;
    /// without a potential term, splitting the members of a face whose
    /// outsiders have not yet been separated costs *nothing now* but
    /// forfeits the whole face. Pricing each still-pending dichotomy at this
    /// fraction of its weight keeps `Solve()` from trading live faces for
    /// marginal gains — the paper's “weight … depend\[s\] on the encoding
    /// column generated so far” hook.
    pub fn together_potential(self) -> f64 {
        match self {
            CostModel::PaperWeighted => 0.5,
            CostModel::UniformDichotomy => 0.0,
            CostModel::ConstraintCompletion => 0.0,
        }
    }

    /// Weight of one yet-unsatisfied seed dichotomy of `tc`.
    ///
    /// `initial_outsiders` is the constraint's dichotomy count before any
    /// column was generated (used for normalization).
    pub fn dichotomy_weight(self, tc: &TrackedConstraint, initial_outsiders: usize) -> f64 {
        let unsat = tc.unsatisfied_dichotomies();
        match self {
            CostModel::PaperWeighted => {
                let type_factor = match tc.constraint().kind() {
                    ConstraintKind::Original => 2.0,
                    ConstraintKind::Guide { .. } => 1.0,
                };
                let multiplicity = tc.constraint().weight() as f64;
                let total = initial_outsiders.max(1) as f64;
                let progress = 1.0 - (unsat as f64 / total);
                type_factor * multiplicity * (1.0 + progress) / total
            }
            CostModel::UniformDichotomy => 1.0,
            CostModel::ConstraintCompletion => {
                if unsat == 1 {
                    1.0
                } else {
                    0.01
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use picola_constraints::{ConstraintMatrix, GroupConstraint, SymbolSet};

    fn tracked(members: &[usize], n: usize) -> ConstraintMatrix {
        let c = GroupConstraint::new(SymbolSet::from_members(n, members.iter().copied()));
        ConstraintMatrix::new(n, 3, vec![c])
    }

    #[test]
    fn paper_weight_boosts_progress() {
        let mut m = tracked(&[0, 1], 6);
        let w0 = CostModel::PaperWeighted.dichotomy_weight(m.constraint(0), 4);
        // satisfy two dichotomies
        let col = vec![false, false, true, true, false, false];
        m.apply_column(&col);
        let w1 = CostModel::PaperWeighted.dichotomy_weight(m.constraint(0), 4);
        assert!(w1 > w0, "progress should raise the weight: {w0} -> {w1}");
    }

    #[test]
    fn originals_outweigh_guides() {
        let n = 6;
        let orig = GroupConstraint::new(SymbolSet::from_members(n, [0, 1]));
        let guide = GroupConstraint::guide(SymbolSet::from_members(n, [2, 3]), 0);
        let m = ConstraintMatrix::new(n, 3, vec![orig, guide]);
        let wo = CostModel::PaperWeighted.dichotomy_weight(m.constraint(0), 4);
        let wg = CostModel::PaperWeighted.dichotomy_weight(m.constraint(1), 4);
        assert!(wo > wg);
    }

    #[test]
    fn uniform_is_constant() {
        let m = tracked(&[0, 1, 2], 8);
        assert_eq!(
            CostModel::UniformDichotomy.dichotomy_weight(m.constraint(0), 5),
            1.0
        );
    }

    #[test]
    fn completion_spikes_on_last_dichotomy() {
        let mut m = tracked(&[0, 1], 4);
        // satisfy one of the two dichotomies (outsiders 2 and 3): members
        // get false, outsider 2 true, outsider 3 false.
        m.apply_column(&[false, false, true, false]);
        assert_eq!(m.constraint(0).unsatisfied_dichotomies(), 1);
        let w = CostModel::ConstraintCompletion.dichotomy_weight(m.constraint(0), 2);
        assert_eq!(w, 1.0);
    }
}
