//! Property tests of the PICOLA core: column validity, end-to-end encoding
//! invariants, and cost-model consistency.

// Tests are exempt from the panic-freedom policy; clippy's in-tests
// exemption misses integration-test helpers, so waive it explicitly.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use picola_constraints::{ConstraintMatrix, GroupConstraint, SymbolSet};
use picola_core::{picola_encode_with, solve_column, CostModel, PicolaOptions, ValidityTracker};
use proptest::prelude::*;

fn group_sets(n: usize) -> impl Strategy<Value = Vec<GroupConstraint>> {
    proptest::collection::vec(proptest::collection::vec(0..n, 2..5), 0..6).prop_map(
        move |groups| {
            groups
                .into_iter()
                .map(|g| GroupConstraint::new(SymbolSet::from_members(n, g)))
                .collect()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn solve_column_always_returns_valid_columns(
        groups in group_sets(12),
        cost_pick in 0u8..3,
    ) {
        let n = 12;
        let nv = 4;
        let cost = match cost_pick {
            0 => CostModel::PaperWeighted,
            1 => CostModel::UniformDichotomy,
            _ => CostModel::ConstraintCompletion,
        };
        let mut matrix = ConstraintMatrix::new(n, nv, groups);
        let mut validity = ValidityTracker::new(n, nv);
        for _ in 0..nv {
            let col = solve_column(&matrix, &validity, cost);
            prop_assert!(validity.column_is_valid(&col));
            matrix.apply_column(&col);
            validity.commit(&col);
        }
        prop_assert!(validity.fully_distinguished());
    }

    #[test]
    fn all_option_combinations_yield_legal_encodings(
        groups in group_sets(10),
        disable_guides in any::<bool>(),
        disable_classify in any::<bool>(),
        disable_refine in any::<bool>(),
    ) {
        let n = 10;
        let opts = PicolaOptions {
            disable_guides,
            disable_classify,
            disable_refine,
            ..PicolaOptions::default()
        };
        let r = picola_encode_with(n, &groups, &opts);
        prop_assert_eq!(r.encoding.num_symbols(), n);
        prop_assert_eq!(r.encoding.nv(), 4);
        // Encoding::new inside guarantees distinctness; double-check.
        let mut codes = r.encoding.codes().to_vec();
        codes.sort_unstable();
        codes.dedup();
        prop_assert_eq!(codes.len(), n);
    }

    #[test]
    fn refine_never_increases_the_estimate(groups in group_sets(10)) {
        use picola_core::estimate_cubes;
        let n = 10;
        let plain = picola_encode_with(
            n,
            &groups,
            &PicolaOptions {
                disable_refine: true,
                ..PicolaOptions::default()
            },
        );
        let refined = picola_encode_with(n, &groups, &PicolaOptions::default());
        prop_assert!(
            estimate_cubes(&refined.encoding, &groups)
                <= estimate_cubes(&plain.encoding, &groups)
        );
    }
}
