//! Property suite diffing the incremental refine engine against the
//! from-scratch reference paths.
//!
//! Three layers, matching the engine's structure:
//!
//! - **Table maintenance**: after any valid sequence of swap/move
//!   applications, the [`CodeTable`]'s cached per-constraint costs equal a
//!   full greedy recompute from the current codes, and every candidate's
//!   [`CodeTable::eval`] delta equals both [`CodeTable::eval_naive`] and
//!   the recompute-the-world difference. Exercised at three code-space
//!   sizes so the single-word masked, multi-word masked, and unmasked
//!   list evaluation paths are all covered.
//! - **Scratch reuse**: [`greedy_codes_cubes_into`] through one reused
//!   [`CubesScratch`] returns exactly [`greedy_codes_cubes`].
//! - **End to end**: PICOLA encodings are bit-identical across
//!   [`RefineEngine`] choices and thread counts.

// Tests are exempt from the panic-freedom policy; clippy's in-tests
// exemption misses integration-test helpers, so waive it explicitly.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use picola_constraints::{GroupConstraint, SymbolSet};
use picola_core::{
    greedy_codes_cubes, greedy_codes_cubes_into, picola_encode_with, CodeTable, CubesScratch,
    PicolaOptions, RefineCand, RefineEngine, RefineScratch,
};
use proptest::prelude::*;

const N: usize = 10;

fn group_sets(n: usize) -> impl Strategy<Value = Vec<GroupConstraint>> {
    proptest::collection::vec(proptest::collection::vec(0..n, 2..6), 1..8).prop_map(
        move |groups| {
            groups
                .into_iter()
                .map(|g| GroupConstraint::new(SymbolSet::from_members(n, g)))
                .collect()
        },
    )
}

/// Uniformly scattered distinct codes: a shuffle of the code space,
/// truncated to `N` entries.
fn scattered_codes(nv: usize) -> impl Strategy<Value = Vec<u32>> {
    Just((0..1u32 << nv).collect::<Vec<u32>>())
        .prop_shuffle()
        .prop_map(|mut v| {
            v.truncate(N);
            v
        })
}

/// Raw `(is_swap, a, b)` action scripts, decoded against the evolving
/// occupancy by [`decode_action`].
fn action_scripts() -> impl Strategy<Value = Vec<(bool, usize, usize)>> {
    proptest::collection::vec((any::<bool>(), 0..64usize, 0..64usize), 0..10)
}

/// Turns a raw action into a valid candidate for the current codes: swaps
/// of two distinct symbols, moves onto a currently free word only.
fn decode_action(
    (is_swap, a, b): (bool, usize, usize),
    codes: &[u32],
    size: usize,
) -> Option<RefineCand> {
    let n = codes.len();
    if is_swap {
        let (i, j) = (a % n, b % n);
        (i != j).then(|| RefineCand::Swap(i.min(j), i.max(j)))
    } else {
        let free: Vec<u32> = (0..size as u32).filter(|w| !codes.contains(w)).collect();
        (!free.is_empty()).then(|| RefineCand::Move(a % n, free[b % free.len()]))
    }
}

fn full_costs(codes: &[u32], active: &[&GroupConstraint]) -> Vec<usize> {
    active
        .iter()
        .map(|c| greedy_codes_cubes(codes, c.members()))
        .collect()
}

/// The shared body of the per-`nv` maintenance properties: replay an
/// action script through the table, diffing eval/eval_naive/full-recompute
/// before each application and the cached costs after it.
fn check_table_maintenance(
    nv: usize,
    groups: &[GroupConstraint],
    mut codes: Vec<u32>,
    script: &[(bool, usize, usize)],
    extra_cands: &[(bool, usize, usize)],
) -> Result<(), TestCaseError> {
    let size = 1usize << nv;
    let active: Vec<&GroupConstraint> = groups.iter().filter(|c| !c.is_trivial()).collect();
    let mut scratch = RefineScratch::new();
    let mut table = CodeTable::build(nv, codes.clone(), &active, &mut scratch);

    for &action in script {
        // A handful of read-only evaluations against the current state —
        // the extra candidates probe moves/swaps that are *not* applied.
        for &probe in extra_cands.iter().chain([&action]) {
            let Some(cand) = decode_action(probe, &codes, size) else {
                continue;
            };
            let mut after = codes.clone();
            match cand {
                RefineCand::Swap(i, j) => after.swap(i, j),
                RefineCand::Move(i, w) => after[i] = w,
            }
            let expect: i64 = full_costs(&after, &active)
                .iter()
                .zip(full_costs(&codes, &active))
                .map(|(&a, b)| a as i64 - b as i64)
                .sum();
            prop_assert_eq!(table.eval(cand, &mut scratch), expect, "eval {:?}", cand);
            prop_assert_eq!(table.eval_naive(cand, &active), expect, "naive {:?}", cand);
        }

        let Some(cand) = decode_action(action, &codes, size) else {
            continue;
        };
        table.apply(cand, &mut scratch);
        match cand {
            RefineCand::Swap(i, j) => codes.swap(i, j),
            RefineCand::Move(i, w) => codes[i] = w,
        }
        prop_assert_eq!(table.codes(), codes.as_slice());
        let fresh = full_costs(&codes, &active);
        for (k, &want) in fresh.iter().enumerate() {
            prop_assert_eq!(table.cost(k), want, "constraint {} after {:?}", k, cand);
        }
        prop_assert_eq!(table.total_cost(), fresh.iter().sum::<usize>());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `nv = 4`: 16 code words — the single-`u64` masked evaluation path.
    #[test]
    fn table_maintenance_single_word_masked(
        groups in group_sets(N),
        codes in scattered_codes(4),
        script in action_scripts(),
        extra in action_scripts(),
    ) {
        check_table_maintenance(4, &groups, codes, &script, &extra)?;
    }

    /// `nv = 7`: 128 code words — the multi-word masked path.
    #[test]
    fn table_maintenance_multi_word_masked(
        groups in group_sets(N),
        codes in scattered_codes(7),
        script in action_scripts(),
        extra in action_scripts(),
    ) {
        check_table_maintenance(7, &groups, codes, &script, &extra)?;
    }

    /// `nv = 10`: 1024 code words — beyond `MASKED_WORDS_MAX`, the cached
    /// list path.
    #[test]
    fn table_maintenance_unmasked_lists(
        groups in group_sets(N),
        codes in scattered_codes(10),
        script in action_scripts(),
    ) {
        check_table_maintenance(10, &groups, codes, &script, &[])?;
    }

    /// One reused scratch returns exactly what the allocating greedy does,
    /// across constraints evaluated back to back (stale-buffer detector).
    #[test]
    fn scratch_reuse_matches_allocating_greedy(
        groups in group_sets(N),
        codes in scattered_codes(5),
    ) {
        let mut scratch = CubesScratch::default();
        for c in groups.iter().filter(|c| !c.is_trivial()) {
            prop_assert_eq!(
                greedy_codes_cubes_into(&codes, c.members(), &mut scratch),
                greedy_codes_cubes(&codes, c.members())
            );
        }
    }

    /// Encodings are bit-identical across engines and thread counts.
    #[test]
    fn engines_and_threads_agree(groups in group_sets(N)) {
        let runs: Vec<Vec<u32>> = [
            (RefineEngine::Incremental, 1),
            (RefineEngine::Incremental, 4),
            (RefineEngine::Naive, 1),
            (RefineEngine::Naive, 4),
        ]
        .into_iter()
        .map(|(engine, threads)| {
            let opts = PicolaOptions { engine, threads, ..PicolaOptions::default() };
            picola_encode_with(N, &groups, &opts).encoding.codes().to_vec()
        })
        .collect();
        for r in &runs[1..] {
            prop_assert_eq!(r, &runs[0]);
        }
    }
}
