//! # picola-bench — experiment harness
//!
//! Regenerates the paper's evaluation:
//!
//! - `table1` — constraint-implementation cost (cubes) under minimum-length
//!   encodings: NOVA-like vs. ENC-like vs. PICOLA (paper Table I).
//! - `table2` — state-assignment size and normalized runtime: NOVA
//!   `i_hybrid` / `io_hybrid` vs. the PICOLA-based tool (paper Table II).
//! - `ablation` — guide constraints and cost-model variants (DESIGN.md §7).
//!
//! Each binary accepts `--kiss-dir DIR` to run on real IWLS'93 KISS2 files
//! instead of the synthetic suite, and `--fsm NAME` (repeatable) to select
//! machines.

#![warn(missing_docs)]

pub mod artifact;
pub mod corpus;
pub mod stream;

pub use artifact::{
    decode_instance, decode_records, encode_instance, encode_records, instance_json,
    records_json, StreamRecord,
};
pub use corpus::{corpus, corpus_tier, generate_iter, Instance, Tier};
pub use stream::{codes_digest, run_stream, StreamConfig, StreamReport};

use picola_baselines::{EncLikeEncoder, NovaEncoder};
use picola_constraints::{ExtractMethod, GroupConstraint};
use picola_core::{evaluate_encoding, Encoder, PicolaEncoder};
use picola_fsm::{benchmark_fsm, parse_kiss, Fsm};
use picola_stassign::{
    assign_states, fsm_constraints, next_state_adjacency, FlowOptions, PicolaStateEncoder,
    StateAssignment,
};
use std::path::Path;
use std::time::{Duration, Instant};

/// Common command-line options of the table binaries.
#[derive(Debug, Clone, Default)]
pub struct HarnessOptions {
    /// Load machines from this directory (`<name>.kiss2` / `<name>.kiss`)
    /// instead of synthesizing them.
    pub kiss_dir: Option<String>,
    /// Restrict the run to these machine names (all when empty).
    pub only: Vec<String>,
    /// Quick mode: cheaper constraint extraction, smaller ENC budget.
    pub quick: bool,
}

impl HarnessOptions {
    /// Parses `--kiss-dir`, `--fsm`, `--quick` from command-line arguments.
    ///
    /// # Errors
    ///
    /// Returns a message for unknown flags or missing values.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut opts = HarnessOptions::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--kiss-dir" => {
                    opts.kiss_dir =
                        Some(it.next().ok_or("--kiss-dir needs a directory")?)
                }
                "--fsm" => opts.only.push(it.next().ok_or("--fsm needs a name")?),
                "--quick" => opts.quick = true,
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        Ok(opts)
    }

    /// The machines to run, resolved against the suite or the KISS dir.
    pub fn machines(&self, names: &[&str]) -> Vec<Fsm> {
        let selected: Vec<&str> = if self.only.is_empty() {
            names.to_vec()
        } else {
            names
                .iter()
                .copied()
                .filter(|n| self.only.iter().any(|o| o == n))
                .collect()
        };
        selected
            .iter()
            .filter_map(|name| self.load(name))
            .collect()
    }

    fn load(&self, name: &str) -> Option<Fsm> {
        if let Some(dir) = &self.kiss_dir {
            for ext in ["kiss2", "kiss"] {
                let path = Path::new(dir).join(format!("{name}.{ext}"));
                if let Ok(text) = std::fs::read_to_string(&path) {
                    match parse_kiss(name, &text) {
                        Ok(fsm) => return Some(fsm),
                        Err(e) => {
                            eprintln!("warning: skipping {name}: {e}");
                            return None;
                        }
                    }
                }
            }
            eprintln!("warning: {name} not found in {dir}, synthesizing");
        }
        benchmark_fsm(name)
    }

    /// Extraction method: full ESPRESSO normally, quick pass in quick mode
    /// or for very large machines.
    pub fn extract_method(&self, fsm: &Fsm) -> ExtractMethod {
        if self.quick || fsm.num_states() > 64 {
            ExtractMethod::Quick
        } else {
            ExtractMethod::Espresso
        }
    }
}

/// One row of the Table I reproduction.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Machine name.
    pub name: String,
    /// Non-trivial face constraints extracted.
    pub num_constraints: usize,
    /// Cubes to implement all constraints under the NOVA-like encoding.
    pub nova_cubes: usize,
    /// Cubes under the ENC-like encoding (`None` when the evaluation budget
    /// was exhausted before reaching a local optimum — the paper's `*` and
    /// the `scf` failure).
    pub enc_cubes: Option<usize>,
    /// Cubes under the PICOLA encoding.
    pub picola_cubes: usize,
    /// Wall-clock time of each encoder (NOVA, ENC, PICOLA).
    pub times: [Duration; 3],
}

/// Computes one Table I row for a machine.
pub fn table1_row(fsm: &Fsm, opts: &HarnessOptions) -> Table1Row {
    let constraints: Vec<GroupConstraint> = fsm_constraints(fsm, opts.extract_method(fsm));
    let n = fsm.num_states();
    let nontrivial = constraints.iter().filter(|c| !c.is_trivial()).count();

    let timed = |enc: &dyn Encoder| -> (usize, Duration) {
        let t = Instant::now();
        let e = enc.encode(n, &constraints);
        let dt = t.elapsed();
        (evaluate_encoding(&e, &constraints).total_cubes, dt)
    };

    let (nova_cubes, t_nova) = timed(&NovaEncoder::i_hybrid());
    let (picola_cubes, t_picola) = timed(&PicolaEncoder::default());

    // ENC: the budget shrinks with instance size, mirroring its published
    // impracticality on medium/large machines.
    let budget = if opts.quick {
        200
    } else {
        (40_000 / n.max(1)).clamp(60, 3000)
    };
    let enc = EncLikeEncoder {
        max_evaluations: budget,
        ..EncLikeEncoder::default()
    };
    let t = Instant::now();
    let (enc_encoding, info) = enc.encode_detailed(n, &constraints);
    let t_enc = t.elapsed();
    let enc_cubes = if info.budget_exhausted {
        None
    } else {
        Some(evaluate_encoding(&enc_encoding, &constraints).total_cubes)
    };

    Table1Row {
        name: fsm.name().to_owned(),
        num_constraints: nontrivial,
        nova_cubes,
        enc_cubes,
        picola_cubes,
        times: [t_nova, t_enc, t_picola],
    }
}

/// One row of the Table II reproduction.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Machine name.
    pub name: String,
    /// NOVA `i_hybrid` result.
    pub nova_ih: StateAssignment,
    /// NOVA `io_hybrid` result.
    pub nova_ioh: StateAssignment,
    /// PICOLA-based tool result.
    pub new_tool: StateAssignment,
}

impl Table2Row {
    /// Whole-tool runtime of a column normalized to NOVA `i_hybrid` — the
    /// paper normalizes complete tool executions, which include constraint
    /// extraction and the final minimization.
    pub fn time_ratio(&self, which: &StateAssignment) -> f64 {
        let base = self.nova_ih.total_time().as_secs_f64().max(1e-9);
        which.total_time().as_secs_f64() / base
    }
}

/// Computes one Table II row for a machine.
pub fn table2_row(fsm: &Fsm, opts: &HarnessOptions) -> Table2Row {
    let flow = FlowOptions {
        extract: opts.extract_method(fsm),
        ..FlowOptions::default()
    };
    let adjacency = next_state_adjacency(fsm);
    let nova_ih = assign_states(fsm, &NovaEncoder::i_hybrid(), &flow);
    let nova_ioh = assign_states(fsm, &NovaEncoder::io_hybrid(adjacency), &flow);
    let new_tool = assign_states(fsm, &PicolaStateEncoder::for_fsm(fsm), &flow);
    Table2Row {
        name: fsm.name().to_owned(),
        nova_ih,
        nova_ioh,
        new_tool,
    }
}

/// Formats a duration in seconds with millisecond resolution.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_parse_flags() {
        let opts = HarnessOptions::parse(
            ["--quick", "--fsm", "bbara", "--fsm", "cse"]
                .map(String::from),
        )
        .unwrap();
        assert!(opts.quick);
        assert_eq!(opts.only, vec!["bbara", "cse"]);
        assert!(HarnessOptions::parse(["--bogus".to_owned()]).is_err());
    }

    #[test]
    fn machines_filters_names() {
        let opts = HarnessOptions {
            only: vec!["bbara".into()],
            ..HarnessOptions::default()
        };
        let ms = opts.machines(&["bbara", "cse"]);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].name(), "bbara");
    }

    #[test]
    fn table1_row_runs_on_a_small_machine() {
        let opts = HarnessOptions {
            quick: true,
            ..HarnessOptions::default()
        };
        let fsm = benchmark_fsm("s8").unwrap();
        let row = table1_row(&fsm, &opts);
        assert!(row.picola_cubes >= row.num_constraints.min(1));
        assert!(row.nova_cubes >= row.num_constraints.min(1));
    }
}
