//! Compact binary artifact codecs for bench corpora and stream records.
//!
//! The huge tier moves thousands of instances and result records per run;
//! serialized as JSON they were the dominant I/O cost of the bench path.
//! These codecs put them in the `picola_logic::binio` wire format
//! (versioned self-describing header, LEB128 varints, length-prefixed
//! strings — byte layouts in DESIGN.md §18), with JSON kept as a *debug
//! export*: every artifact also renders as deterministic JSON, and the
//! decode of a binary artifact re-encodes bit-identically (pinned by the
//! test suite across the standard and large tiers).
//!
//! Decoding never panics: hostile bytes yield structured
//! [`BinioError`]s, the same bar as the store records and the PR 1
//! parsers.

use crate::corpus::Instance;
use picola_constraints::{GroupConstraint, SymbolSet};
use picola_logic::binio::{BinioError, ByteReader, ByteWriter};

/// Record-kind tag of one corpus instance.
pub const KIND_INSTANCE: u8 = 3;
/// Record-kind tag of a stream-record batch (one bench run's results).
pub const KIND_STREAM: u8 = 4;

/// Caps on decoded counts — generous versus anything the generators
/// produce, tight enough that corrupt counts cannot drive allocations.
const MAX_SYMBOLS: u64 = 1 << 20;
const MAX_CONSTRAINTS: u64 = 1 << 20;
const MAX_RECORDS: u64 = 1 << 26;

/// One processed instance as the streaming pipeline records it: the full
/// result fingerprint (codes digest + aggregate evaluation) in a few
/// dozen bytes, instead of the multi-KB JSON row the small tiers emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamRecord {
    /// Corpus index of the instance.
    pub index: u64,
    /// Content address of the job (see `picola_core::store::job_key`).
    pub key: u64,
    /// Symbol count.
    pub n: u64,
    /// Code length of the produced encoding.
    pub nv: u64,
    /// FNV-1a digest of the code words (little-endian `u32`s, in symbol
    /// order) — result identity without carrying the codes themselves.
    pub codes_digest: u64,
    /// Total minimized cube count.
    pub total_cubes: u64,
    /// Constraints embedded as faces.
    pub satisfied: u64,
    /// Constraints evaluated.
    pub evaluated: u64,
    /// Whether the result came from the on-disk store.
    pub store_hit: bool,
    /// Whether the run completed within budget.
    pub complete: bool,
}

/// Serializes one instance (DESIGN.md §18). Constraint members are
/// written in ascending order — [`SymbolSet`] iteration order — which is
/// exactly what the generator's set semantics preserve, so decode →
/// re-encode is bit-identical.
#[must_use]
pub fn encode_instance(inst: &Instance) -> Vec<u8> {
    let mut w = ByteWriter::with_capacity(32 + inst.constraints.len() * 8);
    w.header(KIND_INSTANCE);
    w.str(&inst.name);
    w.varint(inst.n as u64);
    w.varint(inst.seed);
    w.varint(inst.nv_override.map_or(0, |nv| nv as u64 + 1));
    w.varint(inst.constraints.len() as u64);
    for c in inst.constraints.iter() {
        let members: Vec<u64> = c.members().iter().map(|m| m as u64).collect();
        w.varint(members.len() as u64);
        for &m in &members {
            w.varint(m);
        }
    }
    w.into_bytes()
}

/// Decodes one instance, validating counts, member ranges, and that no
/// trailing bytes follow.
///
/// # Errors
///
/// Structural corruption (truncation, bad header, oversized counts) or
/// semantic corruption (members outside `0..n`).
pub fn decode_instance(bytes: &[u8]) -> Result<Instance, BinioError> {
    let mut r = ByteReader::new(bytes);
    r.header(KIND_INSTANCE)?;
    let name = r.str()?.to_owned();
    let n_at = r.position();
    let n = usize_field(r.varint_capped(MAX_SYMBOLS, "symbol count")?, n_at)?;
    let seed = r.varint()?;
    let nv_at = r.position();
    let nv_raw = r.varint_capped(65, "nv override")?;
    let nv_override = if nv_raw == 0 {
        None
    } else {
        Some(usize_field(nv_raw - 1, nv_at)?)
    };
    let count = r.varint_capped(MAX_CONSTRAINTS, "constraint count")?;
    let mut constraints = Vec::with_capacity(usize_field(count, r.position())?);
    for _ in 0..count {
        let size = r.varint_capped(MAX_SYMBOLS, "member count")?;
        let mut members = Vec::with_capacity(usize_field(size, r.position())?);
        for _ in 0..size {
            let at = r.position();
            let m = r.varint()?;
            if m >= n as u64 {
                return Err(BinioError {
                    offset: at,
                    message: format!("member {m} outside the {n}-symbol universe"),
                });
            }
            members.push(usize_field(m, at)?);
        }
        constraints.push(GroupConstraint::new(SymbolSet::from_members(n, members)));
    }
    r.finish()?;
    Ok(Instance {
        name,
        n,
        constraints,
        seed,
        nv_override,
    })
}

/// The deterministic JSON debug export of one instance — field-for-field
/// what the binary artifact carries, for human eyes and `jq`.
#[must_use]
pub fn instance_json(inst: &Instance) -> String {
    use std::fmt::Write as _;
    let mut s = String::with_capacity(128);
    let _ = write!(
        s,
        "{{\"name\":\"{}\",\"n\":{},\"seed\":{},\"nv_override\":",
        inst.name, inst.n, inst.seed
    );
    match inst.nv_override {
        Some(nv) => {
            let _ = write!(s, "{nv}");
        }
        None => s.push_str("null"),
    }
    s.push_str(",\"constraints\":[");
    for (i, c) in inst.constraints.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push('[');
        for (j, m) in c.members().iter().enumerate() {
            if j > 0 {
                s.push(',');
            }
            let _ = write!(s, "{m}");
        }
        s.push(']');
    }
    s.push_str("]}");
    s
}

/// Serializes a batch of stream records as one artifact (DESIGN.md §18).
#[must_use]
pub fn encode_records(records: &[StreamRecord]) -> Vec<u8> {
    let mut w = ByteWriter::with_capacity(16 + records.len() * 24);
    w.header(KIND_STREAM);
    w.varint(records.len() as u64);
    for rec in records {
        w.varint(rec.index);
        w.varint(rec.key);
        w.varint(rec.n);
        w.varint(rec.nv);
        w.varint(rec.codes_digest);
        w.varint(rec.total_cubes);
        w.varint(rec.satisfied);
        w.varint(rec.evaluated);
        w.u8(u8::from(rec.store_hit) | (u8::from(rec.complete) << 1));
    }
    w.into_bytes()
}

/// Decodes a stream-record batch.
///
/// # Errors
///
/// Structural corruption; unknown flag bits are corruption too (a record
/// written by a future writer would carry a bumped format version, not
/// stray bits).
pub fn decode_records(bytes: &[u8]) -> Result<Vec<StreamRecord>, BinioError> {
    let mut r = ByteReader::new(bytes);
    r.header(KIND_STREAM)?;
    let count = r.varint_capped(MAX_RECORDS, "record count")?;
    let mut records = Vec::with_capacity(usize_field(count.min(1 << 16), r.position())?);
    for _ in 0..count {
        let index = r.varint()?;
        let key = r.varint()?;
        let n = r.varint()?;
        let nv = r.varint()?;
        let codes_digest = r.varint()?;
        let total_cubes = r.varint()?;
        let satisfied = r.varint()?;
        let evaluated = r.varint()?;
        let at = r.position();
        let flags = r.u8()?;
        if flags > 0b11 {
            return Err(BinioError {
                offset: at,
                message: format!("unknown flag bits 0b{flags:b}"),
            });
        }
        records.push(StreamRecord {
            index,
            key,
            n,
            nv,
            codes_digest,
            total_cubes,
            satisfied,
            evaluated,
            store_hit: flags & 1 != 0,
            complete: flags & 2 != 0,
        });
    }
    r.finish()?;
    Ok(records)
}

/// The deterministic JSON debug export of a record batch.
#[must_use]
pub fn records_json(records: &[StreamRecord]) -> String {
    use std::fmt::Write as _;
    let mut s = String::with_capacity(64 + records.len() * 96);
    s.push('[');
    for (i, rec) in records.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"index\":{},\"key\":\"{:016x}\",\"n\":{},\"nv\":{},\
             \"codes_digest\":\"{:016x}\",\"total_cubes\":{},\"satisfied\":{},\
             \"evaluated\":{},\"store_hit\":{},\"complete\":{}}}",
            rec.index,
            rec.key,
            rec.n,
            rec.nv,
            rec.codes_digest,
            rec.total_cubes,
            rec.satisfied,
            rec.evaluated,
            rec.store_hit,
            rec.complete
        );
    }
    s.push(']');
    s
}

fn usize_field(v: u64, offset: usize) -> Result<usize, BinioError> {
    usize::try_from(v).map_err(|_| BinioError {
        offset,
        message: format!("value {v} does not fit usize"),
    })
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;
    use crate::corpus::{generate_iter, Tier};

    #[test]
    fn instances_round_trip_bit_identically_on_small_tiers() {
        for tier in [Tier::Standard, Tier::Large] {
            for inst in generate_iter(6, 0xA11CE, tier) {
                let bytes = encode_instance(&inst);
                let back = decode_instance(&bytes).unwrap();
                assert_eq!(encode_instance(&back), bytes, "{}", inst.name);
                assert_eq!(instance_json(&back), instance_json(&inst));
            }
        }
    }

    #[test]
    fn instance_truncations_and_flips_never_panic() {
        let inst = generate_iter(1, 3, Tier::Standard).next().unwrap();
        let bytes = encode_instance(&inst);
        for cut in 0..bytes.len() {
            assert!(decode_instance(&bytes[..cut]).is_err());
        }
        for i in 0..bytes.len() {
            let mut garbled = bytes.clone();
            garbled[i] ^= 0x41;
            let _ = decode_instance(&garbled); // must not panic
        }
    }

    #[test]
    fn record_batches_round_trip() {
        let records = vec![
            StreamRecord {
                index: 0,
                key: u64::MAX,
                n: 9,
                nv: 4,
                codes_digest: 0xabc,
                total_cubes: 7,
                satisfied: 2,
                evaluated: 3,
                store_hit: true,
                complete: true,
            },
            StreamRecord {
                index: 1,
                key: 0,
                n: 6,
                nv: 3,
                codes_digest: 1,
                total_cubes: 4,
                satisfied: 3,
                evaluated: 3,
                store_hit: false,
                complete: false,
            },
        ];
        let bytes = encode_records(&records);
        assert_eq!(decode_records(&bytes).unwrap(), records);
        assert!(decode_records(&bytes[..bytes.len() - 1]).is_err());
        assert!(records_json(&records).starts_with("[{\"index\":0"));
    }
}
