//! The bounded-memory streaming pipeline over the huge tier.
//!
//! generate → encode → minimize → record, as a producer/consumer pipeline
//! with real backpressure: one producer thread draws instances lazily from
//! [`crate::corpus::generate_iter`] (never materializing the corpus) and
//! feeds a `sync_channel` of configured depth; worker threads pull from
//! the shared receiver, answer each instance from the content-addressed
//! [`ResultStore`] when warm or from the [`EngineHandle`] (shared
//! `GlobalMinimizeCache`, one [`Budget::worker`] view per thread) when
//! cold, and emit a compact [`StreamRecord`].
//!
//! **Bounded memory is proved, not hoped for.** Every in-flight instance
//! holds a [`LiveGuard`]; the guard counter's high-water mark is reported
//! as [`StreamReport::peak_live`] and must stay ≤ [`StreamReport::live_bound`]
//! = `depth + threads + 1` (channel slots + one per worker + the one in
//! the producer's hand). The pipeline asserts this itself — a leak of
//! instance lifetimes fails the run, not just a metric.
//!
//! Determinism: records are collected unordered and sorted by corpus
//! index, and only `Complete` results enter the store, so a warm run is
//! record-for-record identical to a cold one (the `stream_ab` bench leg
//! and `tests/stream_store.rs` both assert exactly that).

use crate::artifact::StreamRecord;
use crate::corpus::{generate_iter, Instance, Tier};
use picola_core::store::{job_key, ResultStore, StoreStats, StoredResult};
use picola_core::{Budget, EngineHandle, Job, JobOutput};
use picola_logic::binio::Fnv64;
use picola_logic::CacheStats;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::sync_channel;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Configuration of one streaming run.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Instances to draw from the generator.
    pub count: usize,
    /// Master seed of the corpus.
    pub master_seed: u64,
    /// Corpus tier to stream (the huge tier in production; tests stream
    /// the small tiers too).
    pub tier: Tier,
    /// Worker threads consuming the channel.
    pub threads: usize,
    /// Bounded-channel depth — the backpressure knob and the dominant
    /// term of the peak-live bound.
    pub depth: usize,
    /// Content-addressed result store directory (`None` = no store; every
    /// instance is computed).
    pub store_dir: Option<PathBuf>,
    /// Work limit shared by all workers (`None` = unlimited).
    pub work_limit: Option<u64>,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            count: 1000,
            master_seed: 0x0001_C01A,
            tier: Tier::Huge,
            threads: 4,
            depth: 16,
            store_dir: None,
            work_limit: None,
        }
    }
}

/// What one streaming run produced and proved.
#[derive(Debug, Clone)]
pub struct StreamReport {
    /// One record per instance, sorted by corpus index.
    pub records: Vec<StreamRecord>,
    /// High-water mark of simultaneously live instances.
    pub peak_live: usize,
    /// The bound `peak_live` is asserted against (`depth + threads + 1`).
    pub live_bound: usize,
    /// Wall time of the whole pipeline.
    pub wall: Duration,
    /// Work units spent (shared pool across workers).
    pub work: u64,
    /// Store counters for the run (zeros when no store was configured).
    pub store: StoreStats,
    /// Shared minimize-memo counters for the run.
    pub cache: CacheStats,
}

impl StreamReport {
    /// Store hit rate over lookups (0.0 with no store).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.store.hits + self.store.misses;
        if lookups == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)] // bench reporting
            {
                self.store.hits as f64 / lookups as f64
            }
        }
    }
}

/// Live-instance accounting: incremented when the producer materializes
/// an instance, decremented when a worker finishes with it; the peak is
/// maintained with a CAS loop so concurrent increments never under-report.
#[derive(Debug, Default)]
struct LiveCounter {
    live: AtomicUsize,
    peak: AtomicUsize,
}

impl LiveCounter {
    fn peak(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }
}

/// RAII view of one live instance.
#[derive(Debug)]
struct LiveGuard {
    counter: Arc<LiveCounter>,
}

impl LiveGuard {
    fn new(counter: Arc<LiveCounter>) -> LiveGuard {
        let now = counter.live.fetch_add(1, Ordering::Relaxed) + 1;
        counter.peak.fetch_max(now, Ordering::Relaxed);
        LiveGuard { counter }
    }
}

impl Drop for LiveGuard {
    fn drop(&mut self) {
        self.counter.live.fetch_sub(1, Ordering::Relaxed);
    }
}

/// One in-flight instance: the payload plus its lifetime witness.
struct LiveItem {
    index: u64,
    inst: Instance,
    /// Held, not read: dropping the item is what decrements the live
    /// counter, which is the entire point.
    _guard: LiveGuard,
}

/// Digest of the code words, little-endian in symbol order.
#[must_use]
pub fn codes_digest(codes: &[u32]) -> u64 {
    let mut h = Fnv64::new();
    for &c in codes {
        h.update(&c.to_le_bytes());
    }
    h.finish()
}

/// Runs the pipeline to completion.
///
/// # Errors
///
/// The store directory cannot be opened, or a pipeline thread panicked
/// (which indicates a bug — the compute path itself is panic-free).
pub fn run_stream(engine: &EngineHandle, config: &StreamConfig) -> Result<StreamReport, String> {
    let store = match &config.store_dir {
        Some(dir) => Some(Arc::new(
            ResultStore::open(dir).map_err(|e| format!("store {}: {e}", dir.display()))?,
        )),
        None => None,
    };
    let threads = config.threads.max(1);
    let depth = config.depth.max(1);
    let live_bound = depth + threads + 1;
    let counter = Arc::new(LiveCounter::default());
    let budget = match config.work_limit {
        Some(limit) => Budget::with_work_limit(limit),
        None => Budget::unlimited(),
    };

    let (tx, rx) = sync_channel::<LiveItem>(depth);
    let rx = Arc::new(Mutex::new(rx));
    let (record_tx, record_rx) = std::sync::mpsc::channel::<StreamRecord>();

    let started = Instant::now();
    let producer = {
        let counter = Arc::clone(&counter);
        let count = config.count;
        let master_seed = config.master_seed;
        let tier = config.tier;
        std::thread::spawn(move || {
            for (i, inst) in generate_iter(count, master_seed, tier).enumerate() {
                let item = LiveItem {
                    index: i as u64,
                    inst,
                    _guard: LiveGuard::new(Arc::clone(&counter)),
                };
                // A send error means every worker is gone (only possible
                // after a worker panic); stop producing.
                if tx.send(item).is_err() {
                    return;
                }
            }
        })
    };

    let workers: Vec<_> = (0..threads)
        .map(|_| {
            let rx = Arc::clone(&rx);
            let record_tx = record_tx.clone();
            let engine = engine.clone();
            let store = store.clone();
            let budget = budget.worker();
            std::thread::spawn(move || loop {
                let item = {
                    let Ok(shared) = rx.lock() else { return };
                    match shared.recv() {
                        Ok(item) => item,
                        Err(_) => return, // producer done, channel drained
                    }
                };
                let record = process(&engine, store.as_deref(), &budget, &item);
                drop(item); // release the LiveGuard before blocking on send
                if record_tx.send(record).is_err() {
                    return;
                }
            })
        })
        .collect();
    drop(record_tx);

    let mut records: Vec<StreamRecord> = record_rx.iter().collect();
    producer
        .join()
        .map_err(|_| "stream producer panicked".to_owned())?;
    for worker in workers {
        worker
            .join()
            .map_err(|_| "stream worker panicked".to_owned())?;
    }
    let wall = started.elapsed();
    records.sort_unstable_by_key(|r| r.index);

    let peak_live = counter.peak();
    if peak_live > live_bound {
        // The tripwire itself: a lifetime leak is a pipeline bug, and the
        // run fails loudly rather than reporting an unbounded "success".
        return Err(format!(
            "peak live instances {peak_live} exceeded the bound {live_bound}"
        ));
    }
    Ok(StreamReport {
        records,
        peak_live,
        live_bound,
        wall,
        work: budget.work_done(),
        store: store.as_deref().map(ResultStore::stats).unwrap_or_default(),
        cache: engine.cache_stats(),
    })
}

/// Answers one instance: store-warm when possible, engine-cold otherwise;
/// complete cold results are persisted for the next run.
fn process(
    engine: &EngineHandle,
    store: Option<&ResultStore>,
    budget: &Budget,
    item: &LiveItem,
) -> StreamRecord {
    let inst = &item.inst;
    let key = job_key(inst.n, inst.nv_override, &inst.constraints);
    if let Some(stored) = store.and_then(|s| s.lookup(key)) {
        return StreamRecord {
            index: item.index,
            key: key.0,
            n: inst.n as u64,
            nv: stored.nv as u64,
            codes_digest: codes_digest(&stored.codes),
            total_cubes: stored.total_cubes as u64,
            satisfied: stored.satisfied as u64,
            evaluated: stored.evaluated as u64,
            store_hit: true,
            complete: true,
        };
    }
    let job = Job::Encode {
        n: inst.n,
        constraints: inst.constraints.clone(),
    };
    match engine.run(&job, budget) {
        Ok(output) => {
            if let Some(store) = store {
                if StoredResult::from_output(&output).is_some() {
                    store.insert_output(key, &output);
                }
            }
            let complete = output.completion().is_complete();
            match output {
                JobOutput::Encoded {
                    encoding,
                    evaluation,
                    ..
                } => StreamRecord {
                    index: item.index,
                    key: key.0,
                    n: inst.n as u64,
                    nv: encoding.nv() as u64,
                    codes_digest: codes_digest(encoding.codes()),
                    total_cubes: evaluation.total_cubes as u64,
                    satisfied: evaluation.satisfied as u64,
                    evaluated: evaluation.evaluated as u64,
                    store_hit: false,
                    complete,
                },
                JobOutput::Evaluated { .. } => unreachable_record(item, key.0),
            }
        }
        // Encode jobs over generated instances cannot fail validation;
        // an error here still yields an honest (empty) record rather than
        // killing the pipeline.
        Err(_) => unreachable_record(item, key.0),
    }
}

/// A sentinel record for can't-happen paths: all-zero result fields,
/// `complete = false`, so any appearance fails the bench's mismatch and
/// completeness gates instead of passing silently.
fn unreachable_record(item: &LiveItem, key: u64) -> StreamRecord {
    StreamRecord {
        index: item.index,
        key,
        n: item.inst.n as u64,
        nv: 0,
        codes_digest: 0,
        total_cubes: 0,
        satisfied: 0,
        evaluated: 0,
        store_hit: false,
        complete: false,
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;
    use picola_core::EngineConfig;

    #[test]
    fn storeless_stream_is_deterministic_and_bounded() {
        let config = StreamConfig {
            count: 24,
            threads: 3,
            depth: 4,
            ..StreamConfig::default()
        };
        let a = run_stream(&EngineHandle::new(EngineConfig::default()), &config).unwrap();
        let b = run_stream(&EngineHandle::new(EngineConfig::default()), &config).unwrap();
        assert_eq!(a.records.len(), 24);
        assert_eq!(a.records, b.records, "two cold runs are record-identical");
        assert!(a.records.iter().all(|r| r.complete && !r.store_hit));
        assert!(
            a.peak_live <= a.live_bound,
            "peak {} over bound {}",
            a.peak_live,
            a.live_bound
        );
        assert_eq!(a.live_bound, 4 + 3 + 1);
        assert_eq!(
            a.records.iter().map(|r| r.index).collect::<Vec<_>>(),
            (0..24).collect::<Vec<_>>()
        );
    }

    #[test]
    fn depth_one_single_thread_still_drains_everything() {
        let config = StreamConfig {
            count: 10,
            threads: 1,
            depth: 1,
            ..StreamConfig::default()
        };
        let report = run_stream(&EngineHandle::new(EngineConfig::default()), &config).unwrap();
        assert_eq!(report.records.len(), 10);
        assert!(report.peak_live <= 3);
    }
}
