//! A deterministic synthetic instance corpus.
//!
//! The JSON bench (`bench_json`) and the differential test layer
//! (`tests/differential_encoders.rs`) iterate the same generated instances:
//! everything is a pure function of the master seed, so a bench number and
//! a test failure always refer to the same constraint set.

use picola_baselines::splitmix64;
use picola_constraints::{GroupConstraint, SymbolSet};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// One synthetic face-constrained encoding instance.
#[derive(Debug, Clone)]
pub struct Instance {
    /// Stable name (`gen-NN`), used in bench output and test messages.
    pub name: String,
    /// Number of symbols to encode.
    pub n: usize,
    /// The face constraints.
    pub constraints: Vec<GroupConstraint>,
    /// The per-instance seed the generator used (for reproducing one
    /// instance in isolation).
    pub seed: u64,
}

/// Generate `count` instances from `master_seed`.
///
/// Instance `i` depends only on `(master_seed, i)` — extending the corpus
/// never changes existing instances.
#[must_use]
pub fn corpus(count: usize, master_seed: u64) -> Vec<Instance> {
    (0..count)
        .map(|i| generate(i, splitmix64(master_seed.wrapping_add(i as u64 + 1))))
        .collect()
}

fn generate(index: usize, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    // 5..=20 symbols spans nv = 3..5 — big enough for the encoders to
    // disagree, small enough that fifty instances stay test-suite cheap.
    let n = rng.random_range(5..=20usize);
    let num_constraints = rng.random_range(2..=n / 2 + 2);
    let constraints = (0..num_constraints)
        .map(|_| {
            let size = rng.random_range(2..=4usize.min(n - 1));
            let mut members: Vec<usize> = Vec::with_capacity(size);
            while members.len() < size {
                let s = rng.random_range(0..n);
                if !members.contains(&s) {
                    members.push(s);
                }
            }
            GroupConstraint::new(SymbolSet::from_members(n, members))
        })
        .collect();
    Instance {
        name: format!("gen-{index:02}"),
        n,
        constraints,
        seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic_and_prefix_stable() {
        let a = corpus(10, 99);
        let b = corpus(10, 99);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.n, y.n);
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.constraints.len(), y.constraints.len());
        }
        // A longer corpus starts with the same instances.
        let c = corpus(12, 99);
        assert_eq!(a[9].seed, c[9].seed);
        assert_eq!(a[9].n, c[9].n);
    }

    #[test]
    fn instances_are_well_formed() {
        for inst in corpus(20, 7) {
            assert!((5..=20).contains(&inst.n));
            assert!(!inst.constraints.is_empty());
            for c in &inst.constraints {
                let sz = c.len();
                assert!((2..=4).contains(&sz), "{}: constraint size {sz}", inst.name);
                assert!(sz < inst.n, "constraints must be proper subsets");
                assert!(c.members().iter().all(|s| s < inst.n));
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = corpus(5, 1);
        let b = corpus(5, 2);
        assert!(a.iter().zip(&b).any(|(x, y)| x.seed != y.seed));
    }
}
