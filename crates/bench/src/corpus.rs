//! A deterministic synthetic instance corpus.
//!
//! The JSON bench (`bench_json`) and the differential test layer
//! (`tests/differential_encoders.rs`) iterate the same generated instances:
//! everything is a pure function of the master seed, so a bench number and
//! a test failure always refer to the same constraint set.

use picola_baselines::splitmix64;
use picola_constraints::{min_code_length, GroupConstraint, SymbolSet};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Which instance generator a corpus draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Tier {
    /// 5–20 symbols, a handful of small constraints — cheap enough for the
    /// differential test layer and the smoke bench.
    #[default]
    Standard,
    /// 24–128 symbols, dense rival constraints (biased toward a shared hot
    /// pool so faces fight over the same subcubes), and an occasional spare
    /// code bit via `nv_override` — sized so refine throughput dominates.
    Large,
    /// 6–16 symbols, a few small constraints — individually tiny, but
    /// drawn by the thousands through [`generate_iter`] and processed as a
    /// stream (never materialized as a `Vec`). The scale tier behind the
    /// `stream_ab` bench leg and the content-addressed result store.
    Huge,
}

impl Tier {
    /// The tier's name as used by `bench_json --tier`.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Tier::Standard => "standard",
            Tier::Large => "large",
            Tier::Huge => "huge",
        }
    }
}

/// One synthetic face-constrained encoding instance.
#[derive(Debug, Clone)]
pub struct Instance {
    /// Stable name (`gen-NN` / `large-NN`), used in bench output and test
    /// messages.
    pub name: String,
    /// Number of symbols to encode.
    pub n: usize,
    /// The face constraints.
    pub constraints: Vec<GroupConstraint>,
    /// The per-instance seed the generator used (for reproducing one
    /// instance in isolation).
    pub seed: u64,
    /// Encode with this many bits instead of `ceil(log2 n)` (large-tier
    /// instances occasionally grant one spare bit; `None` elsewhere).
    pub nv_override: Option<usize>,
}

/// Generate `count` standard-tier instances from `master_seed`.
///
/// Instance `i` depends only on `(master_seed, i)` — extending the corpus
/// never changes existing instances.
#[must_use]
pub fn corpus(count: usize, master_seed: u64) -> Vec<Instance> {
    corpus_tier(count, master_seed, Tier::Standard)
}

/// Generate `count` instances of the given [`Tier`] from `master_seed`.
///
/// Prefix-stability holds per tier: instance `i` of a tier depends only on
/// `(master_seed, i)`, and the standard tier is byte-identical to what
/// [`corpus`] always produced.
#[must_use]
pub fn corpus_tier(count: usize, master_seed: u64, tier: Tier) -> Vec<Instance> {
    generate_iter(count, master_seed, tier).collect()
}

/// Generate `count` instances of `tier` lazily — instance `i` is built
/// only when the iterator reaches it, so a million-instance corpus costs
/// one instance of memory at a time. This is the generator every tier
/// (and the streaming pipeline) draws from; [`corpus_tier`] is just
/// `generate_iter(..).collect()`, so the small tiers stay byte-identical
/// to what they always were.
///
/// Prefix-stability holds per tier: instance `i` depends only on
/// `(master_seed, i)`.
pub fn generate_iter(
    count: usize,
    master_seed: u64,
    tier: Tier,
) -> impl Iterator<Item = Instance> {
    (0..count).map(move |i| {
        let seed = splitmix64(master_seed.wrapping_add(i as u64 + 1));
        match tier {
            Tier::Standard => generate(i, seed),
            Tier::Large => generate_large(i, seed),
            Tier::Huge => generate_huge(i, seed),
        }
    })
}

fn generate(index: usize, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    // 5..=20 symbols spans nv = 3..5 — big enough for the encoders to
    // disagree, small enough that fifty instances stay test-suite cheap.
    let n = rng.random_range(5..=20usize);
    let num_constraints = rng.random_range(2..=n / 2 + 2);
    let constraints = (0..num_constraints)
        .map(|_| {
            let size = rng.random_range(2..=4usize.min(n - 1));
            let mut members: Vec<usize> = Vec::with_capacity(size);
            while members.len() < size {
                let s = rng.random_range(0..n);
                if !members.contains(&s) {
                    members.push(s);
                }
            }
            GroupConstraint::new(SymbolSet::from_members(n, members))
        })
        .collect();
    Instance {
        name: format!("gen-{index:02}"),
        n,
        constraints,
        seed,
        nv_override: None,
    }
}

fn generate_large(index: usize, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    // Mostly 24..=64 symbols (nv = 5..6), with a quarter of the instances
    // stretching to 128 (nv = 7) — the regime where the refine pass's
    // candidate count, not setup cost, dominates wall time.
    let n = if rng.random_bool(0.25) {
        rng.random_range(65..=128usize)
    } else {
        rng.random_range(24..=64usize)
    };
    // A hot pool of symbols that most constraints dip into: rival faces
    // that overlap fight over the same subcubes, so candidate moves touch
    // many constraints at once.
    let pool = n / 4;
    let num_constraints = rng.random_range(n / 4..=n / 2);
    let constraints = (0..num_constraints)
        .map(|_| {
            let size = rng.random_range(2..=6usize.min(n - 1));
            let mut members: Vec<usize> = Vec::with_capacity(size);
            while members.len() < size {
                let s = if rng.random_bool(0.5) {
                    rng.random_range(0..pool)
                } else {
                    rng.random_range(0..n)
                };
                if !members.contains(&s) {
                    members.push(s);
                }
            }
            GroupConstraint::new(SymbolSet::from_members(n, members))
        })
        .collect();
    // Half the instances get one spare code bit: free code words turn the
    // move arm of the refine enumeration on, which is exactly the path the
    // incremental engine accelerates hardest.
    let nv_override = if rng.random_bool(0.5) {
        Some(min_code_length(n) + 1)
    } else {
        None
    };
    Instance {
        name: format!("large-{index:02}"),
        n,
        constraints,
        seed,
        nv_override,
    }
}

fn generate_huge(index: usize, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    // 6..=16 symbols, 2–5 small constraints: each instance minimizes in
    // well under a millisecond, so throughput — channel backpressure, the
    // store, the shared memo — is what the huge tier measures, not any
    // single solve. The n range deliberately overlaps the standard tier's
    // so the store and memo see genuine cross-instance collisions.
    let n = rng.random_range(6..=16usize);
    let num_constraints = rng.random_range(2..=5usize);
    let constraints = (0..num_constraints)
        .map(|_| {
            let size = rng.random_range(2..=4usize.min(n - 1));
            let mut members: Vec<usize> = Vec::with_capacity(size);
            while members.len() < size {
                let s = rng.random_range(0..n);
                if !members.contains(&s) {
                    members.push(s);
                }
            }
            GroupConstraint::new(SymbolSet::from_members(n, members))
        })
        .collect();
    Instance {
        name: format!("huge-{index:04}"),
        n,
        constraints,
        seed,
        nv_override: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic_and_prefix_stable() {
        let a = corpus(10, 99);
        let b = corpus(10, 99);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.n, y.n);
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.constraints.len(), y.constraints.len());
        }
        // A longer corpus starts with the same instances.
        let c = corpus(12, 99);
        assert_eq!(a[9].seed, c[9].seed);
        assert_eq!(a[9].n, c[9].n);
    }

    #[test]
    fn instances_are_well_formed() {
        for inst in corpus(20, 7) {
            assert!((5..=20).contains(&inst.n));
            assert!(!inst.constraints.is_empty());
            for c in &inst.constraints {
                let sz = c.len();
                assert!((2..=4).contains(&sz), "{}: constraint size {sz}", inst.name);
                assert!(sz < inst.n, "constraints must be proper subsets");
                assert!(c.members().iter().all(|s| s < inst.n));
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = corpus(5, 1);
        let b = corpus(5, 2);
        assert!(a.iter().zip(&b).any(|(x, y)| x.seed != y.seed));
    }

    #[test]
    fn standard_tier_is_the_plain_corpus() {
        let a = corpus(6, 42);
        let b = corpus_tier(6, 42, Tier::Standard);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.n, y.n);
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.nv_override, None);
            assert_eq!(y.nv_override, None);
        }
    }

    #[test]
    fn large_tier_is_well_formed_and_prefix_stable() {
        let a = corpus_tier(8, 7, Tier::Large);
        let b = corpus_tier(10, 7, Tier::Large);
        for (i, inst) in a.iter().enumerate() {
            assert_eq!(inst.name, format!("large-{i:02}"));
            assert!((24..=128).contains(&inst.n), "{}: n = {}", inst.name, inst.n);
            assert!(inst.constraints.len() >= inst.n / 4);
            for c in &inst.constraints {
                assert!((2..=6).contains(&c.len()));
                assert!(c.members().iter().all(|s| s < inst.n));
            }
            if let Some(nv) = inst.nv_override {
                assert_eq!(nv, min_code_length(inst.n) + 1, "{}", inst.name);
            }
            assert_eq!(inst.seed, b[i].seed);
            assert_eq!(inst.n, b[i].n);
        }
        // Both nv flavours appear over a small sample.
        let c = corpus_tier(16, 3, Tier::Large);
        assert!(c.iter().any(|i| i.nv_override.is_some()));
        assert!(c.iter().any(|i| i.nv_override.is_none()));
    }

    #[test]
    fn generate_iter_matches_collected_corpus_on_every_tier() {
        for tier in [Tier::Standard, Tier::Large, Tier::Huge] {
            let eager = corpus_tier(8, 0x5eed, tier);
            let lazy: Vec<Instance> = generate_iter(8, 0x5eed, tier).collect();
            assert_eq!(eager.len(), lazy.len());
            for (a, b) in eager.iter().zip(&lazy) {
                assert_eq!(a.name, b.name);
                assert_eq!(a.n, b.n);
                assert_eq!(a.seed, b.seed);
                assert_eq!(a.nv_override, b.nv_override);
                assert_eq!(a.constraints.len(), b.constraints.len());
                for (ca, cb) in a.constraints.iter().zip(&b.constraints) {
                    let ma: Vec<usize> = ca.members().iter().collect();
                    let mb: Vec<usize> = cb.members().iter().collect();
                    assert_eq!(ma, mb);
                }
            }
        }
    }

    #[test]
    fn huge_tier_is_well_formed_and_prefix_stable() {
        let a: Vec<Instance> = generate_iter(64, 9, Tier::Huge).collect();
        let b: Vec<Instance> = generate_iter(80, 9, Tier::Huge).collect();
        for (i, inst) in a.iter().enumerate() {
            assert_eq!(inst.name, format!("huge-{i:04}"));
            assert!((6..=16).contains(&inst.n), "{}: n = {}", inst.name, inst.n);
            assert!((2..=5).contains(&inst.constraints.len()));
            for c in &inst.constraints {
                assert!((2..=4).contains(&c.len()));
                assert!(c.members().iter().all(|s| s < inst.n));
            }
            assert_eq!(inst.nv_override, None);
            assert_eq!(inst.seed, b[i].seed);
            assert_eq!(inst.n, b[i].n);
        }
    }
}
