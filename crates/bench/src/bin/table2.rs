//! Reproduces **Table II** of the paper: two-level implementation size of
//! the combinational component after state assignment, and encoder runtimes
//! normalized to NOVA `i_hybrid`, for NOVA `i_hybrid`, NOVA `io_hybrid` and
//! the PICOLA-based tool.
//!
//! ```text
//! cargo run -p picola-bench --release --bin table2 [-- --quick --fsm NAME --kiss-dir DIR]
//! ```

use picola_bench::{table2_row, HarnessOptions};
use picola_fsm::table2_names;

fn main() {
    let opts = match HarnessOptions::parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    println!("Table II — state assignment: two-level size and normalized encode time");
    println!("(synthetic IWLS'93-parameter suite unless --kiss-dir is given; see DESIGN.md §4)");
    println!();
    println!(
        "{:<10} {:>8} {:>8} | {:>8} {:>8} | {:>8} {:>8}",
        "FSM", "ih.size", "ih.time", "ioh.size", "ioh.time", "new.size", "new.time"
    );

    let mut totals = [0usize; 3];
    for fsm in opts.machines(&table2_names()) {
        let row = table2_row(&fsm, &opts);
        println!(
            "{:<10} {:>8} {:>8.2} | {:>8} {:>8.2} | {:>8} {:>8.2}",
            row.name,
            row.nova_ih.size,
            1.00,
            row.nova_ioh.size,
            row.time_ratio(&row.nova_ioh),
            row.new_tool.size,
            row.time_ratio(&row.new_tool),
        );
        totals[0] += row.nova_ih.size;
        totals[1] += row.nova_ioh.size;
        totals[2] += row.new_tool.size;
    }

    println!();
    println!(
        "Total    {:>8}          | {:>8}          | {:>8}",
        totals[0], totals[1], totals[2]
    );
    if totals[2] > 0 {
        println!(
            "new tool vs nova-ih: {:+.1}% size (paper: the new tool wins overall)",
            100.0 * (totals[2] as f64 - totals[0] as f64) / totals[0] as f64
        );
    }
}
