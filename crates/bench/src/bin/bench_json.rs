//! JSON bench harness over the synthetic corpus.
//!
//! Races every member of the standard portfolio on each corpus instance —
//! individually on private budgets (attributing wall time and work units
//! per encoder), then as a portfolio sequentially and in parallel — and
//! writes one machine-readable JSON report (`BENCH_pr3.json` by default),
//! including a deterministic per-instance `metrics` block (the obs span /
//! counter tree of the sequential portfolio run).
//! See README.md ("Reading the bench JSON") for the schema.
//!
//! ```text
//! cargo run -p picola-bench --release --bin bench_json [-- --smoke]
//!     [--out PATH] [--threads N] [--seed N] [--instances N]
//! ```

use picola_baselines::{standard_members, standard_portfolio};
use picola_bench::corpus::{corpus, Instance};
use picola_core::{estimate_cubes, Budget};
use picola_logic::{SpanSnapshot, Trace};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

struct Options {
    smoke: bool,
    out: String,
    threads: usize,
    seed: u64,
    instances: usize,
}

impl Options {
    fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Options, String> {
        let mut opts = Options {
            smoke: false,
            out: "BENCH_pr3.json".to_owned(),
            threads: 4,
            seed: 0x0001_C01A,
            instances: 0,
        };
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--smoke" => opts.smoke = true,
                "--out" => opts.out = it.next().ok_or("--out needs a path")?,
                "--threads" => {
                    opts.threads = parse_num(&it.next().ok_or("--threads needs a count")?)?;
                }
                "--seed" => {
                    opts.seed = parse_num(&it.next().ok_or("--seed needs a number")?)? as u64;
                }
                "--instances" => {
                    opts.instances =
                        parse_num(&it.next().ok_or("--instances needs a count")?)?;
                }
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        if opts.instances == 0 {
            opts.instances = if opts.smoke { 3 } else { 12 };
        }
        Ok(opts)
    }
}

fn parse_num(s: &str) -> Result<usize, String> {
    s.parse().map_err(|_| format!("not a number: {s:?}"))
}

struct EncoderRow {
    name: String,
    wall: Duration,
    work: u64,
    cost: usize,
    satisfied: usize,
    complete: bool,
}

struct InstanceReport {
    inst: Instance,
    nontrivial: usize,
    encoders: Vec<EncoderRow>,
    winner: String,
    winning_cost: usize,
    parallel_matches: bool,
    seq_wall: Duration,
    par_wall: Duration,
    /// Span/counter tree of the sequential portfolio run (deterministic:
    /// created without a wall clock, so re-runs produce identical blocks).
    metrics: SpanSnapshot,
    metrics_work: u64,
}

fn run_instance(inst: Instance, opts: &Options) -> Result<InstanceReport, String> {
    let nontrivial = inst.constraints.iter().filter(|c| !c.is_trivial()).count();

    let encoders = standard_members(opts.seed)
        .iter()
        .map(|member| {
            let budget = Budget::unlimited();
            let t = Instant::now();
            let (enc, completion) =
                member.encode_bounded(inst.n, &inst.constraints, &budget);
            let wall = t.elapsed();
            let satisfied = inst
                .constraints
                .iter()
                .filter(|c| !c.is_trivial() && enc.satisfies(c.members()))
                .count();
            EncoderRow {
                name: member.name().to_owned(),
                wall,
                work: budget.work_done(),
                cost: estimate_cubes(&enc, &inst.constraints),
                satisfied,
                complete: completion.is_complete(),
            }
        })
        .collect();

    let timed_portfolio = |threads: usize, budget: &Budget| {
        let p = standard_portfolio(opts.seed).with_threads(threads);
        let t = Instant::now();
        let out = p.run(inst.n, &inst.constraints, budget);
        (out, t.elapsed())
    };
    let trace = Trace::new();
    let seq_budget = Budget::unlimited().with_recorder(trace.recorder());
    let (seq, seq_wall) = timed_portfolio(1, &seq_budget);
    let (par, par_wall) = timed_portfolio(opts.threads, &Budget::unlimited());
    let (seq, par) = match (seq, par) {
        (Some(a), Some(b)) => (a, b),
        _ => return Err(format!("{}: portfolio produced no outcome", inst.name)),
    };

    Ok(InstanceReport {
        nontrivial,
        encoders,
        metrics: trace.snapshot(),
        metrics_work: trace.total_work(),
        winner: seq.best().name.clone(),
        winning_cost: seq.best().cost,
        parallel_matches: seq.best().cost == par.best().cost
            && seq.best().encoding == par.best().encoding,
        seq_wall,
        par_wall,
        inst,
    })
}

fn ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1000.0)
}

fn emit(reports: &[InstanceReport], opts: &Options) -> String {
    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"schema\": \"picola-bench/bench_json/v2\",");
    let _ = writeln!(j, "  \"seed\": {},", opts.seed);
    let _ = writeln!(j, "  \"threads\": {},", opts.threads);
    let _ = writeln!(j, "  \"smoke\": {},", opts.smoke);
    let _ = writeln!(j, "  \"instances\": [");
    for (ri, r) in reports.iter().enumerate() {
        let _ = writeln!(j, "    {{");
        let _ = writeln!(j, "      \"name\": \"{}\",", r.inst.name);
        let _ = writeln!(j, "      \"n\": {},", r.inst.n);
        let _ = writeln!(j, "      \"constraints\": {},", r.inst.constraints.len());
        let _ = writeln!(j, "      \"nontrivial\": {},", r.nontrivial);
        let _ = writeln!(j, "      \"encoders\": [");
        for (ei, e) in r.encoders.iter().enumerate() {
            let _ = write!(
                j,
                "        {{\"name\": \"{}\", \"wall_ms\": {}, \"work\": {}, \
                 \"cost\": {}, \"satisfied\": {}, \"complete\": {}}}",
                e.name,
                ms(e.wall),
                e.work,
                e.cost,
                e.satisfied,
                e.complete
            );
            let _ = writeln!(j, "{}", if ei + 1 < r.encoders.len() { "," } else { "" });
        }
        let _ = writeln!(j, "      ],");
        let _ = writeln!(j, "      \"portfolio\": {{");
        let _ = writeln!(j, "        \"winner\": \"{}\",", r.winner);
        let _ = writeln!(j, "        \"winning_cost\": {},", r.winning_cost);
        let _ = writeln!(j, "        \"parallel_matches_sequential\": {},", r.parallel_matches);
        let _ = writeln!(j, "        \"sequential_wall_ms\": {},", ms(r.seq_wall));
        let _ = writeln!(j, "        \"parallel_wall_ms\": {}", ms(r.par_wall));
        let _ = writeln!(j, "      }},");
        let _ = writeln!(
            j,
            "      \"metrics\": {{\"total_work\": {}, \"spans\": {}}}",
            r.metrics_work,
            r.metrics.to_json()
        );
        let _ = write!(j, "    }}");
        let _ = writeln!(j, "{}", if ri + 1 < reports.len() { "," } else { "" });
    }
    let _ = writeln!(j, "  ],");

    let names: Vec<&str> = reports
        .first()
        .map(|r| r.encoders.iter().map(|e| e.name.as_str()).collect())
        .unwrap_or_default();
    let _ = writeln!(j, "  \"totals\": {{");
    let _ = writeln!(j, "    \"encoders\": [");
    for (i, name) in names.iter().enumerate() {
        let cost: usize = reports.iter().map(|r| r.encoders[i].cost).sum();
        let work: u64 = reports.iter().map(|r| r.encoders[i].work).sum();
        let wall: Duration = reports.iter().map(|r| r.encoders[i].wall).sum();
        let wins = reports.iter().filter(|r| r.winner == *name).count();
        let _ = write!(
            j,
            "      {{\"name\": \"{name}\", \"total_cost\": {cost}, \
             \"total_work\": {work}, \"total_wall_ms\": {}, \"wins\": {wins}}}",
            ms(wall)
        );
        let _ = writeln!(j, "{}", if i + 1 < names.len() { "," } else { "" });
    }
    let _ = writeln!(j, "    ],");
    let seq: Duration = reports.iter().map(|r| r.seq_wall).sum();
    let par: Duration = reports.iter().map(|r| r.par_wall).sum();
    let _ = writeln!(j, "    \"portfolio_sequential_wall_ms\": {},", ms(seq));
    let _ = writeln!(j, "    \"portfolio_parallel_wall_ms\": {},", ms(par));
    let _ = writeln!(
        j,
        "    \"parallel_speedup\": {:.3},",
        seq.as_secs_f64() / par.as_secs_f64().max(1e-9)
    );
    let mismatches = reports.iter().filter(|r| !r.parallel_matches).count();
    let _ = writeln!(j, "    \"parallel_mismatches\": {mismatches}");
    let _ = writeln!(j, "  }}");
    let _ = writeln!(j, "}}");
    j
}

fn main() {
    let opts = match Options::parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    let mut reports = Vec::new();
    for inst in corpus(opts.instances, opts.seed) {
        let name = inst.name.clone();
        match run_instance(inst, &opts) {
            Ok(r) => {
                eprintln!(
                    "{name}: winner {} (cost {}), seq {} ms / par {} ms",
                    r.winner,
                    r.winning_cost,
                    ms(r.seq_wall),
                    ms(r.par_wall)
                );
                reports.push(r);
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }

    let json = emit(&reports, &opts);
    if let Err(e) = std::fs::write(&opts.out, &json) {
        eprintln!("error: cannot write {}: {e}", opts.out);
        std::process::exit(1);
    }
    eprintln!("wrote {} ({} instances)", opts.out, reports.len());
}
