//! JSON bench harness over the synthetic corpus.
//!
//! Races every member of the standard portfolio on each corpus instance —
//! individually on private budgets (attributing wall time and work units
//! per encoder), then as a portfolio sequentially and in parallel — plus
//! three A/B comparisons, encodings cross-checked bit-identical:
//!
//! * refine engines (incremental vs naive, threads 1 and N);
//! * the evaluation pipeline (flat+memo vs flat-uncached vs
//!   legacy-uncached), pricing every member encoding repeatedly;
//! * the ENC-style baseline (minimization-in-the-loop) on the cached flat
//!   pipeline vs the legacy uncached one;
//! * multi-valued covers (`mv_ab`): the instance's constraints rendered as
//!   a symbol×tag MV cover and minimized flat vs legacy — the domains the
//!   flat engine used to silently fall back on, now first-class;
//! * the kernel backend (`kernel_ab`): the same MV cover minimized with the
//!   wide (AVX2/portable) cube kernels pinned vs scalar pinned — work and
//!   costs must be bit-identical, so wall-per-work is the honest kernel
//!   speedup;
//! * the optimality gap (`sat_ab`): on instances inside the SAT oracle's
//!   size guard (`nv <= 4`), the proven optimum vs every heuristic
//!   member's exact cost — the oracle's witness must re-cost bit-for-bit
//!   under the exact evaluator and no heuristic may beat it;
//! * the streaming store (`stream_ab`): the huge tier drawn lazily through
//!   the bounded pipeline three times — memoryless (no store), cold
//!   (fresh content-addressed store), warm (the store the cold leg left
//!   behind) — records asserted identical across all three legs, warm
//!   hit rate and cold-over-warm speedup reported, peak-live instances
//!   bounded (the pipeline fails itself on a lifetime leak).
//!
//! Writes one machine-readable JSON report (`BENCH_pr10.json` by default),
//! including a deterministic per-instance `metrics` block (the obs span /
//! counter tree of the sequential portfolio run), plus the warm leg's
//! stream records as a compact binary artifact (`--format bin`, the
//! default) or its JSON debug export (`--format json`) next to the report.
//! See README.md ("Reading the bench JSON") for the schema.
//!
//! `--tier huge` is stream-only: the per-instance suite is skipped
//! (`instances` is empty) and the report carries just the `stream` block —
//! thousands of generated instances, never materialized as a `Vec`.
//!
//! ```text
//! cargo run -p picola-bench --release --bin bench_json [-- --smoke]
//!     [--tier standard|large|huge] [--out PATH] [--threads N] [--seed N]
//!     [--instances N] [--stream-instances N] [--store DIR]
//!     [--format json|bin]
//! ```

use picola_baselines::{standard_members, standard_portfolio, EncLikeEncoder};
use picola_bench::artifact::{decode_records, encode_records, records_json, StreamRecord};
use picola_bench::corpus::{generate_iter, Instance, Tier};
use picola_bench::stream::{run_stream, StreamConfig, StreamReport};
use picola_constraints::{min_code_length, Encoding};
use picola_core::{
    estimate_cubes, evaluate_encoding_cached, try_picola_encode_with, Budget, CoverEngine,
    EngineConfig, EngineHandle, EvalContext, EvalOptions, GlobalMinimizeCache, PicolaOptions,
    RefineEngine,
};
use picola_logic::{
    obs, set_backend_override, Counter, Cover, Cube, DomainBuilder, KernelBackend, MinimizeCache,
    SpanSnapshot, Trace,
};
use picola_sat::{exact_cost, ExactOracle};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// On-disk format of the stream-record artifact written next to the report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ArtifactFormat {
    /// Compact `picola_logic::binio` artifact — the hot-path default.
    Bin,
    /// The deterministic JSON debug export.
    Json,
}

struct Options {
    smoke: bool,
    tier: Tier,
    out: String,
    threads: usize,
    seed: u64,
    instances: usize,
    /// Instances the `stream_ab` leg draws through the pipeline.
    stream_instances: usize,
    /// Result-store directory for the stream leg (a temp dir when unset;
    /// either way the leg's subdirectory is cleared so cold is cold).
    store: Option<String>,
    format: ArtifactFormat,
}

impl Options {
    fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Options, String> {
        let mut opts = Options {
            smoke: false,
            tier: Tier::Standard,
            out: "BENCH_pr10.json".to_owned(),
            threads: 4,
            seed: 0x0001_C01A,
            instances: 0,
            stream_instances: 0,
            store: None,
            format: ArtifactFormat::Bin,
        };
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--smoke" => opts.smoke = true,
                "--tier" => {
                    opts.tier = match it.next().ok_or("--tier needs a name")?.as_str() {
                        "standard" => Tier::Standard,
                        "large" => Tier::Large,
                        "huge" => Tier::Huge,
                        other => return Err(format!("unknown tier {other:?}")),
                    };
                }
                "--out" => opts.out = it.next().ok_or("--out needs a path")?,
                "--threads" => {
                    opts.threads = parse_num(&it.next().ok_or("--threads needs a count")?)?;
                }
                "--seed" => {
                    opts.seed = parse_num(&it.next().ok_or("--seed needs a number")?)? as u64;
                }
                "--instances" => {
                    opts.instances =
                        parse_num(&it.next().ok_or("--instances needs a count")?)?;
                }
                "--stream-instances" => {
                    opts.stream_instances =
                        parse_num(&it.next().ok_or("--stream-instances needs a count")?)?;
                }
                "--store" => opts.store = Some(it.next().ok_or("--store needs a directory")?),
                "--format" => {
                    opts.format = match it.next().ok_or("--format needs a name")?.as_str() {
                        "bin" => ArtifactFormat::Bin,
                        "json" => ArtifactFormat::Json,
                        other => return Err(format!("unknown format {other:?}")),
                    };
                }
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        if opts.instances == 0 {
            opts.instances = if opts.smoke {
                3
            } else if opts.tier == Tier::Large {
                8
            } else {
                12
            };
        }
        if opts.stream_instances == 0 {
            opts.stream_instances = if opts.smoke { 96 } else { 600 };
        }
        Ok(opts)
    }
}

fn parse_num(s: &str) -> Result<usize, String> {
    s.parse().map_err(|_| format!("not a number: {s:?}"))
}

struct EncoderRow {
    name: String,
    wall: Duration,
    work: u64,
    cost: usize,
    satisfied: usize,
    complete: bool,
}

struct InstanceReport {
    inst: Instance,
    nontrivial: usize,
    encoders: Vec<EncoderRow>,
    winner: String,
    winning_cost: usize,
    parallel_matches: bool,
    seq_wall: Duration,
    par_wall: Duration,
    /// Span/counter tree of the sequential portfolio run (deterministic:
    /// created without a wall clock, so re-runs produce identical blocks).
    metrics: SpanSnapshot,
    metrics_work: u64,
    refine: RefineReport,
    eval_ab: AbReport,
    enc_ab: AbReport,
    mv_ab: AbReport,
    kernel_ab: AbReport,
    serve_ab: ServeAbReport,
    sat_ab: SatAbReport,
}

/// One heuristic member in the optimality-gap comparison.
struct SatGapRow {
    name: String,
    /// Exact Table I cost of the member's encoding (branch-and-bound
    /// minimizer, not the heuristic estimate in `EncoderRow::cost`).
    exact_cost: usize,
    /// `exact_cost - optimum`; always `>= 0` when the oracle is sound.
    gap: usize,
}

/// Optimality-gap report: the SAT oracle's proven optimum against every
/// portfolio member's exact cost. Instances outside the guard (`nv > 4`,
/// a forced non-minimum code length, or a probe that hits the
/// deterministic conflict cap before the final UNSAT proof) are emitted
/// as skipped — the bench never reports an unproven "optimum".
struct SatAbReport {
    skipped: bool,
    optimum: usize,
    /// UNSAT at `optimum - 1` was proven.
    proved: bool,
    /// The oracle's witness re-costs to exactly `optimum` under the
    /// independent exact evaluator.
    oracle_matches_exact: bool,
    /// `proved`, the cross-check, and `gap >= 0` for every member all hold.
    matches: bool,
    rounds: usize,
    conflicts: u64,
    wall_ns: u64,
    rows: Vec<SatGapRow>,
}

/// The `sat_ab` size guard: `nv <= 4` bounds the CNF size so most
/// standard-tier probes prove in milliseconds to seconds.
const SAT_AB_MAX_NV: usize = 4;

/// Deterministic per-probe conflict cap. Final UNSAT proofs grow
/// exponentially with symbol count on the hardest instances; conflicts
/// are machine-independent (the solver has no randomness or clock), so
/// the cap deterministically partitions the corpus into proved and
/// skipped instances — identical on every machine, unlike a timeout.
/// The hardest instance this cap admits needs ~45k conflicts in its
/// UNSAT step; the cap also bounds each pre-proof improvement probe, so
/// the whole leg stays within tens of seconds per instance.
const SAT_AB_CONFLICT_CAP: u64 = 50_000;

/// Runs the optimality-gap leg. The oracle is warm-started from the best
/// member encoding (fewest SAT rounds) on an unlimited budget under the
/// deterministic conflict cap; a capped, unproven run reports as skipped.
fn run_sat_ab(
    inst: &Instance,
    rows: &[EncoderRow],
    encodings: &[Encoding],
) -> Result<SatAbReport, String> {
    let skipped = SatAbReport {
        skipped: true,
        optimum: 0,
        proved: false,
        oracle_matches_exact: false,
        matches: true,
        rounds: 0,
        conflicts: 0,
        wall_ns: 0,
        rows: Vec::new(),
    };
    if inst.nv_override.is_some() || min_code_length(inst.n) > SAT_AB_MAX_NV {
        return Ok(skipped);
    }
    let costs: Vec<usize> = encodings
        .iter()
        .map(|e| exact_cost(e, &inst.constraints))
        .collect();
    let warm = costs
        .iter()
        .zip(encodings)
        .min_by_key(|(c, _)| **c)
        .map(|(_, e)| e);
    let oracle = ExactOracle {
        conflict_limit: Some(SAT_AB_CONFLICT_CAP),
        ..ExactOracle::default()
    };
    let t = Instant::now();
    let out = oracle
        .prove_from(inst.n, &inst.constraints, warm, &Budget::unlimited())
        .map_err(|e| format!("{}: sat A/B: {e}", inst.name))?;
    let wall_ns = t.elapsed().as_nanos() as u64;
    if !out.optimal {
        // The cap ended the loop before the UNSAT step: an honest skip,
        // not an "optimum" the report cannot back.
        return Ok(skipped);
    }
    let oracle_matches_exact = exact_cost(&out.encoding, &inst.constraints) == out.cost;
    let sound = costs.iter().all(|&c| c >= out.cost);
    let gap_rows: Vec<SatGapRow> = rows
        .iter()
        .zip(&costs)
        .map(|(r, &c)| SatGapRow {
            name: r.name.clone(),
            exact_cost: c,
            gap: c.saturating_sub(out.cost),
        })
        .collect();
    Ok(SatAbReport {
        skipped: false,
        optimum: out.cost,
        proved: out.optimal,
        oracle_matches_exact,
        matches: out.optimal && oracle_matches_exact && sound,
        rounds: out.rounds,
        conflicts: out.stats.conflicts,
        wall_ns,
        rows: gap_rows,
    })
}

/// Cold-vs-warm shared-cache ENC throughput: the daemon's cross-request
/// warmth measured without sockets. Cold runs against a fresh
/// [`GlobalMinimizeCache`]; warm re-runs the identical job through the
/// same global with a fresh per-run context — exactly what a second
/// `encode` request sees on a running `picola serve`.
struct ServeAbReport {
    cold_wall_ns: u64,
    warm_wall_ns: u64,
    /// Full-cost evaluations per leg (identical by determinism).
    work: u64,
    warm_hits: u64,
    warm_misses: u64,
    /// `warm_hits / (warm_hits + warm_misses)` — the fraction of warm-leg
    /// minimizations answered by entries the cold leg left behind.
    warm_hit_rate: f64,
    /// Cold and warm legs produced bit-identical encodings and costs.
    matches: bool,
    /// Cold wall over warm wall — ≥ 1 when warmth pays.
    speedup: f64,
}

/// Runs the cold/warm shared-cache A/B. Best-of-`AB_REPS` wall per leg;
/// each repetition uses its own fresh global so every cold leg is honestly
/// cold. Work and cost are asserted identical across repetitions.
fn run_serve_ab(inst: &Instance) -> Result<ServeAbReport, String> {
    const SERVE_AB_EVALS: usize = 120;
    const AB_REPS: usize = 3;
    let encoder = EncLikeEncoder {
        max_evaluations: SERVE_AB_EVALS,
        eval: EvalOptions::default(),
    };
    let mut best: Option<ServeAbReport> = None;
    for _ in 0..AB_REPS {
        let global = Arc::new(GlobalMinimizeCache::new());
        let budget = Budget::unlimited();

        let mut cold_ctx = EvalContext::with_global(Arc::clone(&global));
        let t = Instant::now();
        let (cold_enc, cold_info) =
            encoder.encode_detailed_in_context(inst.n, &inst.constraints, &budget, &mut cold_ctx);
        let cold_wall_ns = t.elapsed().as_nanos() as u64;

        let mut warm_ctx = EvalContext::with_global(Arc::clone(&global));
        let t = Instant::now();
        let (warm_enc, warm_info) =
            encoder.encode_detailed_in_context(inst.n, &inst.constraints, &budget, &mut warm_ctx);
        let warm_wall_ns = t.elapsed().as_nanos() as u64;

        let matches = cold_enc == warm_enc
            && cold_info.total_cubes == warm_info.total_cubes
            && cold_info.evaluations == warm_info.evaluations;
        let denom = (warm_info.cache_hits + warm_info.cache_misses).max(1);
        let rep = ServeAbReport {
            cold_wall_ns,
            warm_wall_ns,
            work: cold_info.evaluations as u64,
            warm_hits: warm_info.cache_hits,
            warm_misses: warm_info.cache_misses,
            warm_hit_rate: warm_info.cache_hits as f64 / denom as f64,
            matches,
            speedup: cold_wall_ns as f64 / warm_wall_ns.max(1) as f64,
        };
        if let Some(prev) = &best {
            if (prev.work, prev.warm_hits, prev.warm_misses)
                != (rep.work, rep.warm_hits, rep.warm_misses)
            {
                return Err(format!(
                    "{}: serve A/B: nondeterministic repetition (work {} vs {}, \
                     hits {} vs {})",
                    inst.name, prev.work, rep.work, prev.warm_hits, rep.warm_hits
                ));
            }
        }
        if !rep.matches {
            return Err(format!(
                "{}: serve A/B: warm leg diverged from cold — the shared cache \
                 changed a result",
                inst.name
            ));
        }
        if best
            .as_ref()
            .is_none_or(|p| rep.cold_wall_ns + rep.warm_wall_ns < p.cold_wall_ns + p.warm_wall_ns)
        {
            best = Some(rep);
        }
    }
    best.ok_or_else(|| "serve A/B: no repetitions ran".to_owned())
}

/// One leg of an evaluation-pipeline or ENC A/B comparison.
struct AbLeg {
    engine: &'static str,
    cache: bool,
    wall_ns: u64,
    /// Deterministic work units: minimize calls (eval leg) or full-cost
    /// evaluations (ENC leg). Identical across repetitions and across legs.
    work: u64,
    cache_hits: u64,
    cache_misses: u64,
    cost: usize,
}

struct AbReport {
    legs: Vec<AbLeg>,
    /// Every leg produced bit-identical results (costs, and for ENC the
    /// final encoding too).
    matches: bool,
    /// Baseline (last leg: legacy engine, cache off) wall-per-work divided
    /// by the cached flat leg's wall-per-work — ≥ 1 when the new pipeline
    /// wins.
    speedup_per_work: f64,
}

fn per_work_speedup(legs: &[AbLeg]) -> f64 {
    let per = |l: &AbLeg| l.wall_ns as f64 / l.work.max(1) as f64;
    let fast = legs.first().map(per).unwrap_or(1.0);
    let slow = legs.last().map(per).unwrap_or(1.0);
    slow / fast.max(1e-9)
}

/// The (engine, cache) legs of the evaluation A/B: the new default first,
/// the cache's contribution in the middle, the pre-PR-5 pipeline (legacy
/// engine, no memo) last as the baseline.
const EVAL_LEGS: [(CoverEngine, bool, &str); 3] = [
    (CoverEngine::Flat, true, "flat"),
    (CoverEngine::Flat, false, "flat"),
    (CoverEngine::Legacy, false, "legacy"),
];

/// Evaluation-pipeline A/B: prices every member encoding `EVAL_PASSES`
/// times per leg (repeat passes are what search loops do, and what the memo
/// accelerates), best-of-`AB_REPS` wall per leg, work = minimize calls
/// (asserted identical across repetitions *and* legs).
fn run_eval_ab(inst: &Instance, encodings: &[Encoding]) -> Result<AbReport, String> {
    const EVAL_PASSES: usize = 3;
    const AB_REPS: usize = 3;
    let mut legs = Vec::new();
    for (engine, cache, engine_name) in EVAL_LEGS {
        let opts = EvalOptions {
            engine,
            cache,
            ..EvalOptions::default()
        };
        let mut best: Option<AbLeg> = None;
        for _ in 0..AB_REPS {
            let trace = Trace::new();
            let mut ctx = EvalContext::new();
            let mut cost = 0usize;
            let t = Instant::now();
            {
                let span = trace.recorder().span("eval-ab");
                let _cur = obs::enter(span.recorder());
                for _ in 0..EVAL_PASSES {
                    for enc in encodings {
                        cost += evaluate_encoding_cached(enc, &inst.constraints, &opts, &mut ctx)
                            .total_cubes;
                    }
                }
            }
            let wall_ns = t.elapsed().as_nanos() as u64;
            let work = trace.counter_total(Counter::MinimizeCalls);
            let leg = AbLeg {
                engine: engine_name,
                cache,
                wall_ns,
                work,
                cache_hits: ctx.cache.hits(),
                cache_misses: ctx.cache.misses(),
                cost,
            };
            if let Some(prev) = &best {
                if (prev.work, prev.cost) != (leg.work, leg.cost) {
                    return Err(format!(
                        "{}: eval {engine_name}/cache={cache}: nondeterministic leg \
                         (work {} vs {}, cost {} vs {})",
                        inst.name, prev.work, leg.work, prev.cost, leg.cost
                    ));
                }
            }
            if best.as_ref().is_none_or(|p| leg.wall_ns < p.wall_ns) {
                best = Some(leg);
            }
        }
        legs.push(best.ok_or("eval A/B: no repetitions ran")?);
    }
    let matches = legs.iter().all(|l| l.cost == legs[0].cost && l.work == legs[0].work);
    let speedup_per_work = per_work_speedup(&legs);
    Ok(AbReport {
        legs,
        matches,
        speedup_per_work,
    })
}

/// ENC-baseline A/B: the full minimization-in-the-loop local search on the
/// cached flat pipeline vs the pre-PR-5 one (legacy engine, no memo). Work
/// = full-cost evaluations — bit-identical costs mean bit-identical search
/// trajectories, so both legs must report the same count and encoding.
fn run_enc_ab(inst: &Instance) -> Result<AbReport, String> {
    const ENC_AB_EVALS: usize = 120;
    const AB_REPS: usize = 3;
    let enc_legs: [(CoverEngine, bool, &str); 2] = [
        (CoverEngine::Flat, true, "flat"),
        (CoverEngine::Legacy, false, "legacy"),
    ];
    let mut legs = Vec::new();
    let mut encodings: Vec<Encoding> = Vec::new();
    for (engine, cache, engine_name) in enc_legs {
        let encoder = EncLikeEncoder {
            max_evaluations: ENC_AB_EVALS,
            eval: EvalOptions {
                engine,
                cache,
                ..EvalOptions::default()
            },
        };
        let mut best: Option<AbLeg> = None;
        let mut encoding = None;
        for _ in 0..AB_REPS {
            let t = Instant::now();
            let (enc, info) = encoder.encode_detailed(inst.n, &inst.constraints);
            let wall_ns = t.elapsed().as_nanos() as u64;
            let leg = AbLeg {
                engine: engine_name,
                cache,
                wall_ns,
                work: info.evaluations as u64,
                cache_hits: info.cache_hits,
                cache_misses: info.cache_misses,
                cost: info.total_cubes,
            };
            if let Some(prev) = &best {
                if (prev.work, prev.cost) != (leg.work, leg.cost) {
                    return Err(format!(
                        "{}: enc {engine_name}/cache={cache}: nondeterministic leg \
                         (work {} vs {}, cost {} vs {})",
                        inst.name, prev.work, leg.work, prev.cost, leg.cost
                    ));
                }
            }
            if best.as_ref().is_none_or(|p| leg.wall_ns < p.wall_ns) {
                best = Some(leg);
            }
            encoding.get_or_insert(enc);
        }
        legs.push(best.ok_or("enc A/B: no repetitions ran")?);
        encodings.push(encoding.ok_or("enc A/B: no encoding produced")?);
    }
    let matches = encodings.iter().all(|e| *e == encodings[0])
        && legs
            .iter()
            .all(|l| l.cost == legs[0].cost && l.work == legs[0].work);
    let speedup_per_work = per_work_speedup(&legs);
    Ok(AbReport {
        legs,
        matches,
        speedup_per_work,
    })
}

/// Renders the instance's constraint set as a genuinely multi-valued cover:
/// one MV variable over the `n` symbols, one over the constraint tags, and
/// one cube per constraint whose symbol literal is the member set and whose
/// tag literal is that constraint's index. On the large tier this spans
/// several cube words (128 symbol parts alone is two words), so minimizing
/// it exercises the flat engine's multi-word specialization rungs — the
/// domains that used to fall back to the legacy engine silently.
fn mv_cover(inst: &Instance) -> (Cover, Cover) {
    let tags = inst.constraints.len().max(2);
    let dom = DomainBuilder::new()
        .multi("s", inst.n.max(2))
        .multi("t", tags)
        .build();
    let sym_off = dom.var(0).offset();
    let mut on = Cover::empty(&dom);
    for (i, c) in inst.constraints.iter().enumerate() {
        let mut cube = Cube::full(&dom);
        for p in 0..inst.n.max(2) {
            if !c.members().contains(p) {
                cube.clear_part(sym_off + p);
            }
        }
        cube.restrict(&dom, 1, i);
        on.push(cube);
    }
    (on, Cover::empty(&dom))
}

/// Multi-valued cover A/B: minimizes the instance's symbol×tag constraint
/// cover `MV_PASSES` times per leg through a [`MinimizeCache`] — cached
/// flat, uncached flat, then uncached legacy as the baseline. Work =
/// minimize calls (identical across legs by the counter discipline); costs
/// must be bit-identical across all three legs, which is exactly the
/// flat-vs-legacy MV identity the property suite proves on random covers,
/// re-proven here on the bench corpus.
fn run_mv_ab(inst: &Instance) -> Result<AbReport, String> {
    const MV_PASSES: usize = 4;
    const AB_REPS: usize = 3;
    let (on, dc) = mv_cover(inst);
    let mut legs = Vec::new();
    for (engine, cache_on, engine_name) in EVAL_LEGS {
        let mut best: Option<AbLeg> = None;
        for _ in 0..AB_REPS {
            let trace = Trace::new();
            let mut cache = MinimizeCache::new();
            let mut cost = 0usize;
            let t = Instant::now();
            {
                let span = trace.recorder().span("mv-ab");
                let _cur = obs::enter(span.recorder());
                for _ in 0..MV_PASSES {
                    cost += if cache_on {
                        cache.minimized_cube_count(&on, &dc, engine)
                    } else {
                        cache.minimized_cube_count_uncached(&on, &dc, engine)
                    };
                }
            }
            let wall_ns = t.elapsed().as_nanos() as u64;
            let work = trace.counter_total(Counter::MinimizeCalls);
            let leg = AbLeg {
                engine: engine_name,
                cache: cache_on,
                wall_ns,
                work,
                cache_hits: cache.hits(),
                cache_misses: cache.misses(),
                cost,
            };
            if let Some(prev) = &best {
                if (prev.work, prev.cost) != (leg.work, leg.cost) {
                    return Err(format!(
                        "{}: mv {engine_name}/cache={cache_on}: nondeterministic leg \
                         (work {} vs {}, cost {} vs {})",
                        inst.name, prev.work, leg.work, prev.cost, leg.cost
                    ));
                }
            }
            if best.as_ref().is_none_or(|p| leg.wall_ns < p.wall_ns) {
                best = Some(leg);
            }
        }
        legs.push(best.ok_or("mv A/B: no repetitions ran")?);
    }
    let matches = legs.iter().all(|l| l.cost == legs[0].cost && l.work == legs[0].work);
    let speedup_per_work = per_work_speedup(&legs);
    Ok(AbReport {
        legs,
        matches,
        speedup_per_work,
    })
}

/// Kernel backend A/B (`kernel_ab`): minimizes the instance's symbol×tag
/// MV cover `KERNEL_PASSES` times per leg on the flat engine with the
/// kernel backend pinned per leg — Wide first, Scalar as the baseline.
/// Uncached lookups both legs, so every pass runs the minimizer; work =
/// minimize calls. The kernels' bit-identity contract makes costs and work
/// identical across legs (asserted here, gated again in
/// `scripts/check_bench_metrics.py`), so wall-per-work compares pure kernel
/// throughput. Each leg also enforces the dispatch tripwire: a pinned
/// backend must actually serve every dispatched multi-word run.
fn run_kernel_ab(inst: &Instance) -> Result<AbReport, String> {
    const KERNEL_PASSES: usize = 24;
    const AB_REPS: usize = 3;
    let (on, dc) = mv_cover(inst);
    let backends = [(KernelBackend::Wide, "wide"), (KernelBackend::Scalar, "scalar")];
    let mut bests: [Option<AbLeg>; 2] = [None, None];
    // Repetitions interleave the two backends (wide, scalar, wide, …) so
    // drift on a shared box hits both legs alike instead of biasing
    // whichever leg happens to run later.
    for _ in 0..AB_REPS {
        for (slot, &(backend, leg_name)) in backends.iter().enumerate() {
            let best = &mut bests[slot];
            let prev = set_backend_override(Some(backend));
            let trace = Trace::new();
            let mut cache = MinimizeCache::new();
            let mut cost = 0usize;
            let t = Instant::now();
            {
                let span = trace.recorder().span("kernel-ab");
                let _cur = obs::enter(span.recorder());
                for _ in 0..KERNEL_PASSES {
                    cost += cache.minimized_cube_count_uncached(&on, &dc, CoverEngine::Flat);
                }
            }
            let wall_ns = t.elapsed().as_nanos() as u64;
            set_backend_override(prev);
            let work = trace.counter_total(Counter::MinimizeCalls);
            let dispatches = trace.counter_total(Counter::KernelDispatches);
            let served = match backend {
                KernelBackend::Wide if cfg!(feature = "simd") => {
                    trace.counter_total(Counter::KernelWideCalls)
                }
                _ => trace.counter_total(Counter::KernelScalarCalls),
            };
            if served != dispatches {
                return Err(format!(
                    "{}: kernel {leg_name}: backend not exercised \
                     ({served} of {dispatches} dispatches)",
                    inst.name
                ));
            }
            let leg = AbLeg {
                engine: leg_name,
                cache: false,
                wall_ns,
                work,
                cache_hits: cache.hits(),
                cache_misses: cache.misses(),
                cost,
            };
            if let Some(prev) = best.as_ref() {
                if (prev.work, prev.cost) != (leg.work, leg.cost) {
                    return Err(format!(
                        "{}: kernel {leg_name}: nondeterministic leg \
                         (work {} vs {}, cost {} vs {})",
                        inst.name, prev.work, leg.work, prev.cost, leg.cost
                    ));
                }
            }
            if best.as_ref().is_none_or(|p| leg.wall_ns < p.wall_ns) {
                *best = Some(leg);
            }
        }
    }
    let mut legs = Vec::new();
    for best in bests {
        legs.push(best.ok_or("kernel A/B: no repetitions ran")?);
    }
    let matches = legs.iter().all(|l| l.cost == legs[0].cost && l.work == legs[0].work);
    let speedup_per_work = per_work_speedup(&legs);
    Ok(AbReport {
        legs,
        matches,
        speedup_per_work,
    })
}

/// One leg of the streaming-store A/B.
struct StreamLeg {
    name: &'static str,
    wall_ms: f64,
    /// Engine work units spent (near zero on a fully warm leg).
    work: u64,
    peak_live: usize,
    store_hits: u64,
    store_misses: u64,
    hit_rate: f64,
}

/// The `stream_ab` leg: the huge tier drawn lazily through the bounded
/// pipeline, memoryless vs store-cold vs store-warm.
struct StreamAb {
    count: usize,
    threads: usize,
    depth: usize,
    live_bound: usize,
    /// Highest peak-live over the three legs (each already ≤ the bound —
    /// `run_stream` fails the run otherwise).
    peak_live: usize,
    legs: Vec<StreamLeg>,
    /// Records that differ (provenance flag aside) between any pair of
    /// legs — the store must never change a result.
    mismatches: usize,
    /// Warm-leg store hit rate.
    hit_rate: f64,
    /// Cold wall over warm wall — the store's payoff on a repeat run.
    speedup: f64,
    /// Warm-leg records, for the on-disk artifact.
    records: Vec<StreamRecord>,
}

fn stream_leg(name: &'static str, report: &StreamReport) -> StreamLeg {
    StreamLeg {
        name,
        wall_ms: report.wall.as_secs_f64() * 1000.0,
        work: report.work,
        peak_live: report.peak_live,
        store_hits: report.store.hits,
        store_misses: report.store.misses,
        hit_rate: report.hit_rate(),
    }
}

/// Everything about a record except where the answer came from.
fn stream_result_fields(r: &StreamRecord) -> (u64, u64, u64, u64, u64, u64, u64, u64) {
    (
        r.index,
        r.key,
        r.n,
        r.nv,
        r.codes_digest,
        r.total_cubes,
        r.satisfied,
        r.evaluated,
    )
}

/// Runs the stream A/B. Each leg gets a fresh engine (so warm measures
/// the *store*, not leftover memo warmth); the cold and warm legs share
/// one store directory that is cleared up front so cold is honestly cold.
fn run_stream_ab(opts: &Options) -> Result<StreamAb, String> {
    const STREAM_DEPTH: usize = 16;
    let store_root = match &opts.store {
        Some(dir) => std::path::PathBuf::from(dir),
        None => std::env::temp_dir().join(format!("picola-bench-{}", std::process::id())),
    };
    let ab_dir = store_root.join("stream-ab");
    let _ = std::fs::remove_dir_all(&ab_dir);
    let config = |store_dir| StreamConfig {
        count: opts.stream_instances,
        master_seed: opts.seed,
        tier: Tier::Huge,
        threads: opts.threads.max(1),
        depth: STREAM_DEPTH,
        store_dir,
        work_limit: None,
    };
    let run = |store_dir| run_stream(&EngineHandle::new(EngineConfig::default()), &config(store_dir));
    let memoryless = run(None)?;
    let cold = run(Some(ab_dir.clone()))?;
    let warm = run(Some(ab_dir.clone()))?;
    if opts.store.is_none() {
        let _ = std::fs::remove_dir_all(&store_root);
    }

    let mut mismatches = 0usize;
    for ((m, c), w) in memoryless
        .records
        .iter()
        .zip(&cold.records)
        .zip(&warm.records)
    {
        let reference = stream_result_fields(m);
        if stream_result_fields(c) != reference || stream_result_fields(w) != reference {
            mismatches += 1;
        }
    }
    let hit_rate = warm.hit_rate();
    let speedup =
        cold.wall.as_secs_f64() / warm.wall.as_secs_f64().max(1e-9);
    let peak_live = memoryless
        .peak_live
        .max(cold.peak_live)
        .max(warm.peak_live);
    let live_bound = warm.live_bound;
    let records = warm.records.clone();
    Ok(StreamAb {
        count: opts.stream_instances,
        threads: opts.threads.max(1),
        depth: STREAM_DEPTH,
        live_bound,
        peak_live,
        legs: vec![
            stream_leg("memoryless", &memoryless),
            stream_leg("cold", &cold),
            stream_leg("warm", &warm),
        ],
        mismatches,
        hit_rate,
        speedup,
        records,
    })
}

/// Writes the warm leg's records next to the report — compact binary by
/// default (round-trip verified in-process before the write), JSON debug
/// export with `--format json`.
fn write_records_artifact(ab: &StreamAb, opts: &Options) -> Result<String, String> {
    let stem = opts.out.strip_suffix(".json").unwrap_or(&opts.out);
    let path = match opts.format {
        ArtifactFormat::Bin => format!("{stem}.records.bin"),
        ArtifactFormat::Json => format!("{stem}.records.json"),
    };
    match opts.format {
        ArtifactFormat::Bin => {
            let bytes = encode_records(&ab.records);
            let back = decode_records(&bytes).map_err(|e| format!("artifact self-check: {e}"))?;
            if back != ab.records {
                return Err("artifact self-check: round-trip diverged".to_owned());
            }
            std::fs::write(&path, &bytes).map_err(|e| format!("cannot write {path}: {e}"))?;
        }
        ArtifactFormat::Json => {
            std::fs::write(&path, records_json(&ab.records))
                .map_err(|e| format!("cannot write {path}: {e}"))?;
        }
    }
    Ok(path)
}

/// One refine engine A/B leg: a full PICOLA run with the given engine and
/// thread count, attributing the refine span's wall time and work.
struct RefineRun {
    engine: &'static str,
    threads: usize,
    total_wall: Duration,
    refine_wall_ns: u64,
    refine_work: u64,
}

struct RefineReport {
    runs: Vec<RefineRun>,
    /// Incremental and naive engines produced bit-identical encodings (at
    /// every thread count).
    engines_match: bool,
    /// Each engine produced bit-identical encodings at 1 and N threads.
    parallel_matches: bool,
    /// Naive wall-per-work divided by incremental wall-per-work on the
    /// single-thread legs — the kernel speedup, ≥ 1 when incremental wins.
    speedup_per_work: f64,
}

/// Sum `(wall_ns, work)` over all `refine` spans in the snapshot tree.
fn refine_span_totals(snap: &SpanSnapshot) -> (u64, u64) {
    if snap.name == "refine" {
        return (snap.wall_ns.unwrap_or(0), snap.total_work());
    }
    snap.children.iter().fold((0, 0), |(wall, work), c| {
        let (w, k) = refine_span_totals(c);
        (wall + w, work + k)
    })
}

fn run_refine_ab(inst: &Instance, opts: &Options) -> Result<RefineReport, String> {
    let engines = [
        (RefineEngine::Incremental, "incremental"),
        (RefineEngine::Naive, "naive"),
    ];
    let thread_counts = [1usize, opts.threads.max(2)];
    // Best-of-`REFINE_REPS` wall time per leg: the minimum is the standard
    // noise-robust estimator, and the deterministic work counter is
    // asserted identical across repetitions.
    const REFINE_REPS: usize = 3;
    let mut runs = Vec::new();
    let mut encodings = Vec::new();
    for (engine, engine_name) in engines {
        for threads in thread_counts {
            let mut best: Option<RefineRun> = None;
            let mut encoding = None;
            for _ in 0..REFINE_REPS {
                let trace = Trace::with_wall_clock();
                let budget = Budget::unlimited().with_recorder(trace.recorder());
                let popts = PicolaOptions {
                    nv_override: inst.nv_override,
                    threads,
                    engine,
                    ..PicolaOptions::default()
                };
                let t = Instant::now();
                let result =
                    try_picola_encode_with(inst.n, &inst.constraints, &popts, &budget)
                        .map_err(|e| format!("{}: {engine_name}/t{threads}: {e}", inst.name))?;
                let total_wall = t.elapsed();
                let (refine_wall_ns, refine_work) = refine_span_totals(&trace.snapshot());
                if let Some(prev) = &best {
                    if prev.refine_work != refine_work {
                        return Err(format!(
                            "{}: {engine_name}/t{threads}: nondeterministic refine work \
                             ({} vs {})",
                            inst.name, prev.refine_work, refine_work
                        ));
                    }
                }
                if best.as_ref().is_none_or(|p| refine_wall_ns < p.refine_wall_ns) {
                    best = Some(RefineRun {
                        engine: engine_name,
                        threads,
                        total_wall,
                        refine_wall_ns,
                        refine_work,
                    });
                }
                encoding.get_or_insert(result.encoding);
            }
            runs.push(best.ok_or("refine A/B: no repetitions ran")?);
            encodings.push(encoding.ok_or("refine A/B: no encoding produced")?);
        }
    }
    // Index layout: [inc/t1, inc/tN, naive/t1, naive/tN].
    let engines_match = encodings[0] == encodings[2] && encodings[1] == encodings[3];
    let parallel_matches = encodings[0] == encodings[1] && encodings[2] == encodings[3];
    let per_work = |r: &RefineRun| r.refine_wall_ns as f64 / r.refine_work.max(1) as f64;
    let speedup_per_work = per_work(&runs[2]) / per_work(&runs[0]).max(1e-9);
    Ok(RefineReport {
        runs,
        engines_match,
        parallel_matches,
        speedup_per_work,
    })
}

fn run_instance(inst: Instance, opts: &Options) -> Result<InstanceReport, String> {
    let nontrivial = inst.constraints.iter().filter(|c| !c.is_trivial()).count();

    let mut member_encodings = Vec::new();
    let encoders: Vec<EncoderRow> = standard_members(opts.seed)
        .iter()
        .map(|member| {
            let budget = Budget::unlimited();
            let t = Instant::now();
            let (enc, completion) =
                member.encode_bounded(inst.n, &inst.constraints, &budget);
            let wall = t.elapsed();
            let satisfied = inst
                .constraints
                .iter()
                .filter(|c| !c.is_trivial() && enc.satisfies(c.members()))
                .count();
            let row = EncoderRow {
                name: member.name().to_owned(),
                wall,
                work: budget.work_done(),
                cost: estimate_cubes(&enc, &inst.constraints),
                satisfied,
                complete: completion.is_complete(),
            };
            member_encodings.push(enc);
            row
        })
        .collect();

    let timed_portfolio = |threads: usize, budget: &Budget| {
        let p = standard_portfolio(opts.seed).with_threads(threads);
        let t = Instant::now();
        let out = p.run(inst.n, &inst.constraints, budget);
        (out, t.elapsed())
    };
    let trace = Trace::new();
    let seq_budget = Budget::unlimited().with_recorder(trace.recorder());
    let (seq, seq_wall) = timed_portfolio(1, &seq_budget);
    let (par, par_wall) = timed_portfolio(opts.threads, &Budget::unlimited());
    let (seq, par) = match (seq, par) {
        (Some(a), Some(b)) => (a, b),
        _ => return Err(format!("{}: portfolio produced no outcome", inst.name)),
    };

    let refine = run_refine_ab(&inst, opts)?;
    let eval_ab = run_eval_ab(&inst, &member_encodings)?;
    let enc_ab = run_enc_ab(&inst)?;
    let mv_ab = run_mv_ab(&inst)?;
    let kernel_ab = run_kernel_ab(&inst)?;
    let serve_ab = run_serve_ab(&inst)?;
    let sat_ab = run_sat_ab(&inst, &encoders, &member_encodings)?;

    Ok(InstanceReport {
        nontrivial,
        encoders,
        refine,
        eval_ab,
        enc_ab,
        mv_ab,
        kernel_ab,
        serve_ab,
        sat_ab,
        metrics: trace.snapshot(),
        metrics_work: trace.total_work(),
        winner: seq.best().name.clone(),
        winning_cost: seq.best().cost,
        parallel_matches: seq.best().cost == par.best().cost
            && seq.best().encoding == par.best().encoding,
        seq_wall,
        par_wall,
        inst,
    })
}

fn ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1000.0)
}

fn emit(reports: &[InstanceReport], stream: &StreamAb, opts: &Options) -> String {
    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"schema\": \"picola-bench/bench_json/v9\",");
    let _ = writeln!(j, "  \"seed\": {},", opts.seed);
    let _ = writeln!(j, "  \"threads\": {},", opts.threads);
    let _ = writeln!(j, "  \"smoke\": {},", opts.smoke);
    let _ = writeln!(j, "  \"tier\": \"{}\",", opts.tier.name());
    let _ = writeln!(
        j,
        "  \"format\": \"{}\",",
        match opts.format {
            ArtifactFormat::Bin => "bin",
            ArtifactFormat::Json => "json",
        }
    );
    let _ = writeln!(j, "  \"instances\": [");
    for (ri, r) in reports.iter().enumerate() {
        let _ = writeln!(j, "    {{");
        let _ = writeln!(j, "      \"name\": \"{}\",", r.inst.name);
        let _ = writeln!(j, "      \"n\": {},", r.inst.n);
        let _ = match r.inst.nv_override {
            Some(nv) => writeln!(j, "      \"nv_override\": {nv},"),
            None => writeln!(j, "      \"nv_override\": null,"),
        };
        let _ = writeln!(j, "      \"constraints\": {},", r.inst.constraints.len());
        let _ = writeln!(j, "      \"nontrivial\": {},", r.nontrivial);
        let _ = writeln!(j, "      \"encoders\": [");
        for (ei, e) in r.encoders.iter().enumerate() {
            let _ = write!(
                j,
                "        {{\"name\": \"{}\", \"wall_ms\": {}, \"work\": {}, \
                 \"cost\": {}, \"satisfied\": {}, \"complete\": {}}}",
                e.name,
                ms(e.wall),
                e.work,
                e.cost,
                e.satisfied,
                e.complete
            );
            let _ = writeln!(j, "{}", if ei + 1 < r.encoders.len() { "," } else { "" });
        }
        let _ = writeln!(j, "      ],");
        let _ = writeln!(j, "      \"portfolio\": {{");
        let _ = writeln!(j, "        \"winner\": \"{}\",", r.winner);
        let _ = writeln!(j, "        \"winning_cost\": {},", r.winning_cost);
        let _ = writeln!(j, "        \"parallel_matches_sequential\": {},", r.parallel_matches);
        let _ = writeln!(j, "        \"sequential_wall_ms\": {},", ms(r.seq_wall));
        let _ = writeln!(j, "        \"parallel_wall_ms\": {}", ms(r.par_wall));
        let _ = writeln!(j, "      }},");
        let _ = writeln!(j, "      \"refine\": {{");
        let _ = writeln!(j, "        \"runs\": [");
        for (ki, run) in r.refine.runs.iter().enumerate() {
            let _ = write!(
                j,
                "          {{\"engine\": \"{}\", \"threads\": {}, \
                 \"total_wall_ms\": {}, \"refine_wall_ms\": {:.3}, \
                 \"refine_work\": {}}}",
                run.engine,
                run.threads,
                ms(run.total_wall),
                run.refine_wall_ns as f64 / 1e6,
                run.refine_work
            );
            let _ = writeln!(j, "{}", if ki + 1 < r.refine.runs.len() { "," } else { "" });
        }
        let _ = writeln!(j, "        ],");
        let _ = writeln!(j, "        \"engines_match\": {},", r.refine.engines_match);
        let _ = writeln!(
            j,
            "        \"parallel_matches_sequential\": {},",
            r.refine.parallel_matches
        );
        let _ = writeln!(
            j,
            "        \"speedup_per_work\": {:.3}",
            r.refine.speedup_per_work
        );
        let _ = writeln!(j, "      }},");
        for (label, ab) in [
            ("eval_ab", &r.eval_ab),
            ("enc_ab", &r.enc_ab),
            ("mv_ab", &r.mv_ab),
            ("kernel_ab", &r.kernel_ab),
        ] {
            let _ = writeln!(j, "      \"{label}\": {{");
            let _ = writeln!(j, "        \"legs\": [");
            for (li, leg) in ab.legs.iter().enumerate() {
                let _ = write!(
                    j,
                    "          {{\"engine\": \"{}\", \"cache\": {}, \
                     \"wall_ms\": {:.3}, \"work\": {}, \"cache_hits\": {}, \
                     \"cache_misses\": {}, \"cost\": {}}}",
                    leg.engine,
                    leg.cache,
                    leg.wall_ns as f64 / 1e6,
                    leg.work,
                    leg.cache_hits,
                    leg.cache_misses,
                    leg.cost
                );
                let _ = writeln!(j, "{}", if li + 1 < ab.legs.len() { "," } else { "" });
            }
            let _ = writeln!(j, "        ],");
            let _ = writeln!(j, "        \"matches\": {},", ab.matches);
            let _ = writeln!(j, "        \"speedup_per_work\": {:.3}", ab.speedup_per_work);
            let _ = writeln!(j, "      }},");
        }
        let s = &r.serve_ab;
        let _ = writeln!(j, "      \"serve_ab\": {{");
        let _ = writeln!(j, "        \"cold_wall_ms\": {:.3},", s.cold_wall_ns as f64 / 1e6);
        let _ = writeln!(j, "        \"warm_wall_ms\": {:.3},", s.warm_wall_ns as f64 / 1e6);
        let _ = writeln!(j, "        \"work\": {},", s.work);
        let _ = writeln!(j, "        \"warm_hits\": {},", s.warm_hits);
        let _ = writeln!(j, "        \"warm_misses\": {},", s.warm_misses);
        let _ = writeln!(j, "        \"warm_hit_rate\": {:.4},", s.warm_hit_rate);
        let _ = writeln!(j, "        \"matches\": {},", s.matches);
        let _ = writeln!(j, "        \"speedup\": {:.3}", s.speedup);
        let _ = writeln!(j, "      }},");
        let sa = &r.sat_ab;
        let _ = writeln!(j, "      \"sat_ab\": {{");
        let _ = writeln!(j, "        \"skipped\": {},", sa.skipped);
        if !sa.skipped {
            let _ = writeln!(j, "        \"optimum\": {},", sa.optimum);
            let _ = writeln!(j, "        \"proved\": {},", sa.proved);
            let _ = writeln!(
                j,
                "        \"oracle_matches_exact\": {},",
                sa.oracle_matches_exact
            );
            let _ = writeln!(j, "        \"rounds\": {},", sa.rounds);
            let _ = writeln!(j, "        \"conflicts\": {},", sa.conflicts);
            let _ = writeln!(j, "        \"wall_ms\": {:.3},", sa.wall_ns as f64 / 1e6);
            let _ = writeln!(j, "        \"gaps\": [");
            for (gi, g) in sa.rows.iter().enumerate() {
                let _ = write!(
                    j,
                    "          {{\"name\": \"{}\", \"exact_cost\": {}, \"gap\": {}}}",
                    g.name, g.exact_cost, g.gap
                );
                let _ = writeln!(j, "{}", if gi + 1 < sa.rows.len() { "," } else { "" });
            }
            let _ = writeln!(j, "        ],");
        }
        let _ = writeln!(j, "        \"matches\": {}", sa.matches);
        let _ = writeln!(j, "      }},");
        let _ = writeln!(
            j,
            "      \"metrics\": {{\"total_work\": {}, \"spans\": {}}}",
            r.metrics_work,
            r.metrics.to_json()
        );
        let _ = write!(j, "    }}");
        let _ = writeln!(j, "{}", if ri + 1 < reports.len() { "," } else { "" });
    }
    let _ = writeln!(j, "  ],");

    // The streaming-store A/B: huge tier, bounded pipeline, three legs.
    let _ = writeln!(j, "  \"stream\": {{");
    let _ = writeln!(j, "    \"tier\": \"huge\",");
    let _ = writeln!(j, "    \"count\": {},", stream.count);
    let _ = writeln!(j, "    \"threads\": {},", stream.threads);
    let _ = writeln!(j, "    \"depth\": {},", stream.depth);
    let _ = writeln!(j, "    \"live_bound\": {},", stream.live_bound);
    let _ = writeln!(j, "    \"peak_live\": {},", stream.peak_live);
    let _ = writeln!(j, "    \"legs\": [");
    for (li, leg) in stream.legs.iter().enumerate() {
        let _ = write!(
            j,
            "      {{\"name\": \"{}\", \"wall_ms\": {:.3}, \"work\": {}, \
             \"peak_live\": {}, \"store_hits\": {}, \"store_misses\": {}, \
             \"hit_rate\": {:.4}}}",
            leg.name,
            leg.wall_ms,
            leg.work,
            leg.peak_live,
            leg.store_hits,
            leg.store_misses,
            leg.hit_rate
        );
        let _ = writeln!(j, "{}", if li + 1 < stream.legs.len() { "," } else { "" });
    }
    let _ = writeln!(j, "    ],");
    let _ = writeln!(j, "    \"mismatches\": {},", stream.mismatches);
    let _ = writeln!(j, "    \"hit_rate\": {:.4},", stream.hit_rate);
    let _ = writeln!(j, "    \"speedup\": {:.3}", stream.speedup);
    let _ = writeln!(j, "  }},");

    let names: Vec<&str> = reports
        .first()
        .map(|r| r.encoders.iter().map(|e| e.name.as_str()).collect())
        .unwrap_or_default();
    let _ = writeln!(j, "  \"totals\": {{");
    let _ = writeln!(j, "    \"encoders\": [");
    for (i, name) in names.iter().enumerate() {
        let cost: usize = reports.iter().map(|r| r.encoders[i].cost).sum();
        let work: u64 = reports.iter().map(|r| r.encoders[i].work).sum();
        let wall: Duration = reports.iter().map(|r| r.encoders[i].wall).sum();
        let wins = reports.iter().filter(|r| r.winner == *name).count();
        let _ = write!(
            j,
            "      {{\"name\": \"{name}\", \"total_cost\": {cost}, \
             \"total_work\": {work}, \"total_wall_ms\": {}, \"wins\": {wins}}}",
            ms(wall)
        );
        let _ = writeln!(j, "{}", if i + 1 < names.len() { "," } else { "" });
    }
    let _ = writeln!(j, "    ],");
    let seq: Duration = reports.iter().map(|r| r.seq_wall).sum();
    let par: Duration = reports.iter().map(|r| r.par_wall).sum();
    let _ = writeln!(j, "    \"portfolio_sequential_wall_ms\": {},", ms(seq));
    let _ = writeln!(j, "    \"portfolio_parallel_wall_ms\": {},", ms(par));
    let _ = writeln!(
        j,
        "    \"parallel_speedup\": {:.3},",
        seq.as_secs_f64() / par.as_secs_f64().max(1e-9)
    );
    let mismatches = reports.iter().filter(|r| !r.parallel_matches).count();
    let _ = writeln!(j, "    \"parallel_mismatches\": {mismatches},");
    // Refine engine A/B over the whole corpus: single-thread legs only, so
    // the ratio compares the evaluation kernels rather than scheduling.
    let leg = |engine: &str| {
        let mut wall_ns = 0u64;
        let mut work = 0u64;
        for r in reports {
            for run in &r.refine.runs {
                if run.engine == engine && run.threads == 1 {
                    wall_ns += run.refine_wall_ns;
                    work += run.refine_work;
                }
            }
        }
        (wall_ns as f64 / 1e6, work)
    };
    let (inc_ms, inc_work) = leg("incremental");
    let (naive_ms, naive_work) = leg("naive");
    let inc_per = inc_ms / inc_work.max(1) as f64;
    let naive_per = naive_ms / naive_work.max(1) as f64;
    let _ = writeln!(j, "    \"refine\": {{");
    let _ = writeln!(j, "      \"incremental_wall_ms\": {inc_ms:.3},");
    let _ = writeln!(j, "      \"incremental_work\": {inc_work},");
    let _ = writeln!(j, "      \"naive_wall_ms\": {naive_ms:.3},");
    let _ = writeln!(j, "      \"naive_work\": {naive_work},");
    let _ = writeln!(
        j,
        "      \"speedup_per_work\": {:.3},",
        naive_per / inc_per.max(1e-12)
    );
    let engine_mismatches = reports.iter().filter(|r| !r.refine.engines_match).count();
    let thread_mismatches = reports
        .iter()
        .filter(|r| !r.refine.parallel_matches)
        .count();
    let _ = writeln!(j, "      \"engine_mismatches\": {engine_mismatches},");
    let _ = writeln!(j, "      \"thread_mismatches\": {thread_mismatches}");
    let _ = writeln!(j, "    }},");
    // Evaluation-pipeline and ENC A/B over the whole corpus: each named leg
    // aggregated, headline speedup = baseline (legacy, uncached)
    // wall-per-work over the cached flat leg.
    for (label, pick) in [
        ("eval", (|r: &InstanceReport| &r.eval_ab) as fn(&InstanceReport) -> &AbReport),
        ("enc", |r: &InstanceReport| &r.enc_ab),
        ("mv", |r: &InstanceReport| &r.mv_ab),
        ("kernel", |r: &InstanceReport| &r.kernel_ab),
    ] {
        let n_legs = reports.first().map_or(0, |r| pick(r).legs.len());
        let mut sums: Vec<AbLeg> = Vec::new();
        for li in 0..n_legs {
            let mut wall_ns = 0u64;
            let mut work = 0u64;
            let mut hits = 0u64;
            let mut misses = 0u64;
            let mut engine = "";
            let mut cache = false;
            for r in reports {
                let leg = &pick(r).legs[li];
                wall_ns += leg.wall_ns;
                work += leg.work;
                hits += leg.cache_hits;
                misses += leg.cache_misses;
                engine = leg.engine;
                cache = leg.cache;
            }
            sums.push(AbLeg {
                engine,
                cache,
                wall_ns,
                work,
                cache_hits: hits,
                cache_misses: misses,
                cost: 0,
            });
        }
        let mismatches = reports.iter().filter(|r| !pick(r).matches).count();
        let _ = writeln!(j, "    \"{label}\": {{");
        for leg in &sums {
            let name = format!(
                "{}_{}",
                leg.engine,
                if leg.cache { "cached" } else { "uncached" }
            );
            let _ = writeln!(
                j,
                "      \"{name}_wall_ms\": {:.3},",
                leg.wall_ns as f64 / 1e6
            );
            let _ = writeln!(j, "      \"{name}_work\": {},", leg.work);
        }
        let _ = writeln!(
            j,
            "      \"cache_hits\": {},",
            sums.first().map_or(0, |l| l.cache_hits)
        );
        let _ = writeln!(
            j,
            "      \"cache_misses\": {},",
            sums.first().map_or(0, |l| l.cache_misses)
        );
        let _ = writeln!(
            j,
            "      \"speedup_per_work\": {:.3},",
            per_work_speedup(&sums)
        );
        let _ = writeln!(j, "      \"mismatches\": {mismatches}");
        let _ = writeln!(j, "    }},");
    }
    // Cold-vs-warm shared-cache totals: the headline warmth numbers the
    // hit-rate gate in scripts/check_bench_metrics.py enforces.
    let cold_ms: f64 = reports.iter().map(|r| r.serve_ab.cold_wall_ns as f64 / 1e6).sum();
    let warm_ms: f64 = reports.iter().map(|r| r.serve_ab.warm_wall_ns as f64 / 1e6).sum();
    let warm_hits: u64 = reports.iter().map(|r| r.serve_ab.warm_hits).sum();
    let warm_misses: u64 = reports.iter().map(|r| r.serve_ab.warm_misses).sum();
    let serve_mismatches = reports.iter().filter(|r| !r.serve_ab.matches).count();
    let _ = writeln!(j, "    \"serve\": {{");
    let _ = writeln!(j, "      \"cold_wall_ms\": {cold_ms:.3},");
    let _ = writeln!(j, "      \"warm_wall_ms\": {warm_ms:.3},");
    let _ = writeln!(j, "      \"warm_hits\": {warm_hits},");
    let _ = writeln!(j, "      \"warm_misses\": {warm_misses},");
    let _ = writeln!(
        j,
        "      \"warm_hit_rate\": {:.4},",
        warm_hits as f64 / (warm_hits + warm_misses).max(1) as f64
    );
    let _ = writeln!(
        j,
        "      \"speedup\": {:.3},",
        cold_ms / warm_ms.max(1e-9)
    );
    let _ = writeln!(j, "      \"mismatches\": {serve_mismatches}");
    let _ = writeln!(j, "    }},");
    // Optimality-gap totals over the instances the SAT oracle checked:
    // per-encoder aggregate gap to the proven optimum, and the headline
    // mismatch count scripts/check_bench_metrics.py gates on.
    let checked: Vec<&SatAbReport> = reports
        .iter()
        .map(|r| &r.sat_ab)
        .filter(|s| !s.skipped)
        .collect();
    let sat_mismatches = reports.iter().filter(|r| !r.sat_ab.matches).count();
    let proved_count = checked.iter().filter(|s| s.proved).count();
    let _ = writeln!(j, "    \"sat\": {{");
    let _ = writeln!(j, "      \"checked\": {},", checked.len());
    let _ = writeln!(j, "      \"skipped\": {},", reports.len() - checked.len());
    let _ = writeln!(j, "      \"proved\": {proved_count},");
    let _ = writeln!(
        j,
        "      \"total_optimum\": {},",
        checked.iter().map(|s| s.optimum).sum::<usize>()
    );
    let _ = writeln!(
        j,
        "      \"total_conflicts\": {},",
        checked.iter().map(|s| s.conflicts).sum::<u64>()
    );
    let _ = writeln!(j, "      \"gaps\": [");
    for (i, name) in names.iter().enumerate() {
        let total_gap: usize = checked
            .iter()
            .filter_map(|s| s.rows.iter().find(|g| g.name == *name))
            .map(|g| g.gap)
            .sum();
        let total_cost: usize = checked
            .iter()
            .filter_map(|s| s.rows.iter().find(|g| g.name == *name))
            .map(|g| g.exact_cost)
            .sum();
        let _ = write!(
            j,
            "        {{\"name\": \"{name}\", \"total_exact_cost\": {total_cost}, \
             \"total_gap\": {total_gap}}}"
        );
        let _ = writeln!(j, "{}", if i + 1 < names.len() { "," } else { "" });
    }
    let _ = writeln!(j, "      ],");
    let _ = writeln!(j, "      \"mismatches\": {sat_mismatches}");
    let _ = writeln!(j, "    }}");
    let _ = writeln!(j, "  }}");
    let _ = writeln!(j, "}}");
    j
}

fn main() {
    let opts = match Options::parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    let mut reports = Vec::new();
    // `--tier huge` is stream-only: the per-instance suite prices a dozen
    // instances in depth, the huge tier measures thousands in throughput.
    let instance_count = if opts.tier == Tier::Huge { 0 } else { opts.instances };
    for inst in generate_iter(instance_count, opts.seed, opts.tier) {
        let name = inst.name.clone();
        match run_instance(inst, &opts) {
            Ok(r) => {
                eprintln!(
                    "{name}: winner {} (cost {}), seq {} ms / par {} ms, \
                     refine speedup {:.2}x, eval {:.2}x, enc {:.2}x, \
                     mv {:.2}x, kernel {:.2}x, serve warm {:.2}x @ {:.0}% hits{}",
                    r.winner,
                    r.winning_cost,
                    ms(r.seq_wall),
                    ms(r.par_wall),
                    r.refine.speedup_per_work,
                    r.eval_ab.speedup_per_work,
                    r.enc_ab.speedup_per_work,
                    r.mv_ab.speedup_per_work,
                    r.kernel_ab.speedup_per_work,
                    r.serve_ab.speedup,
                    r.serve_ab.warm_hit_rate * 100.0,
                    if r.sat_ab.skipped {
                        ", sat skipped".to_owned()
                    } else {
                        format!(
                            ", sat optimum {} ({} rounds{})",
                            r.sat_ab.optimum,
                            r.sat_ab.rounds,
                            if r.sat_ab.matches { "" } else { ", MISMATCH" }
                        )
                    }
                );
                reports.push(r);
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }

    let stream = match run_stream_ab(&opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: stream A/B: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "stream_ab: {} instances, warm {:.2}x cold @ {:.0}% hits, \
         peak live {} / bound {}, {} mismatches",
        stream.count,
        stream.speedup,
        stream.hit_rate * 100.0,
        stream.peak_live,
        stream.live_bound,
        stream.mismatches
    );
    let artifact = match write_records_artifact(&stream, &opts) {
        Ok(path) => path,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };

    let json = emit(&reports, &stream, &opts);
    if let Err(e) = std::fs::write(&opts.out, &json) {
        eprintln!("error: cannot write {}: {e}", opts.out);
        std::process::exit(1);
    }
    eprintln!(
        "wrote {} ({} instances) and {artifact} ({} records)",
        opts.out,
        reports.len(),
        stream.records.len()
    );
}
