//! Code-length sweep: the paper's motivating trade-off, measured.
//!
//! Satisfying the *complete* set of face constraints may require codes much
//! longer than `ceil(log2 n)`; common practice fixes the minimum length and
//! accepts violations (the partial problem PICOLA solves). This experiment
//! encodes each machine at `nv = min .. min+3` bits and reports the
//! constraint-implementation cubes and the satisfied fraction at each
//! length, plus the resulting two-level size of the full machine — showing
//! where extra state bits stop paying.
//!
//! ```text
//! cargo run -p picola-bench --release --bin length_sweep [-- --fsm NAME]
//! ```

use picola_bench::HarnessOptions;
use picola_core::{evaluate_encoding, picola_encode_with, PicolaOptions};
use picola_fsm::min_code_length;
use picola_logic::flat_espresso_with;
use picola_stassign::{encode_machine, fsm_constraints};

fn main() {
    let opts = match HarnessOptions::parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let names = ["bbara", "ex3", "dk16", "donfile", "ex2", "keyb", "tbk"];

    println!(
        "{:<10} {:>4} {:>8} {:>10} {:>10}",
        "FSM", "nv", "cubes", "satisfied", "fsm-size"
    );
    for fsm in opts.machines(&names) {
        let constraints = fsm_constraints(&fsm, opts.extract_method(&fsm));
        let n = fsm.num_states();
        let min_nv = min_code_length(n);
        for nv in min_nv..=min_nv + 3 {
            let r = picola_encode_with(
                n,
                &constraints,
                &PicolaOptions {
                    nv_override: Some(nv),
                    ..PicolaOptions::default()
                },
            );
            let eval = evaluate_encoding(&r.encoding, &constraints);
            let em = encode_machine(&fsm, &r.encoding);
            let minimize = picola_logic::MinimizeOptions {
                check_invariants: false,
                ..Default::default()
            };
            let size = flat_espresso_with(&em.on, &em.dc, &minimize).len();
            println!(
                "{:<10} {:>4} {:>8} {:>7}/{:<2} {:>10}",
                fsm.name(),
                nv,
                eval.total_cubes,
                eval.satisfied,
                eval.evaluated,
                size
            );
        }
        println!();
    }
}
