//! Ablation study over PICOLA's design choices (DESIGN.md §7):
//! guide constraints on/off, dynamic classification on/off, and the three
//! cost models, measured by the Table I cube metric.
//!
//! ```text
//! cargo run -p picola-bench --release --bin ablation [-- --quick --fsm NAME]
//! ```

use picola_bench::HarnessOptions;
use picola_core::{evaluate_encoding, picola_encode_with, CostModel, PicolaOptions};
use picola_fsm::table1_names;
use picola_stassign::fsm_constraints;

fn main() {
    let opts = match HarnessOptions::parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    let variants: Vec<(&str, PicolaOptions)> = vec![
        ("full", PicolaOptions::default()),
        (
            "no-guides",
            PicolaOptions {
                disable_guides: true,
                ..PicolaOptions::default()
            },
        ),
        (
            "no-classify",
            PicolaOptions {
                disable_classify: true,
                ..PicolaOptions::default()
            },
        ),
        (
            "no-refine",
            PicolaOptions {
                disable_refine: true,
                ..PicolaOptions::default()
            },
        ),
        // Isolates the guide-constraint effect inside the constructive
        // phase (the paper's §3.2 claim): guides on vs. off, no polish.
        (
            "no-refine-no-guides",
            PicolaOptions {
                disable_refine: true,
                disable_guides: true,
                ..PicolaOptions::default()
            },
        ),
        (
            "uniform-cost",
            PicolaOptions {
                cost: CostModel::UniformDichotomy,
                ..PicolaOptions::default()
            },
        ),
        (
            "completion-cost",
            PicolaOptions {
                cost: CostModel::ConstraintCompletion,
                ..PicolaOptions::default()
            },
        ),
    ];

    println!("Ablation — total constraint-implementation cubes per PICOLA variant");
    println!();
    print!("{:<10}", "FSM");
    for (name, _) in &variants {
        print!(" {name:>16}");
    }
    println!();

    let mut totals = vec![0usize; variants.len()];
    for fsm in opts.machines(&table1_names()) {
        let constraints = fsm_constraints(&fsm, opts.extract_method(&fsm));
        print!("{:<10}", fsm.name());
        for (i, (_, vopts)) in variants.iter().enumerate() {
            let r = picola_encode_with(fsm.num_states(), &constraints, vopts);
            let cubes = evaluate_encoding(&r.encoding, &constraints).total_cubes;
            totals[i] += cubes;
            print!(" {cubes:>16}");
        }
        println!();
    }

    println!();
    print!("{:<10}", "TOTAL");
    for t in &totals {
        print!(" {t:>16}");
    }
    println!();
}
