//! Compares *every* encoder in the repository on the Table I metric
//! (cubes to implement the extracted face constraints), including the
//! baselines outside the paper's own comparison — useful as a quality
//! landscape of the partial-encoding problem.
//!
//! ```text
//! cargo run -p picola-bench --release --bin encoders [-- --fsm NAME --quick]
//! ```

use picola_baselines::{
    AnnealingEncoder, DichotomyEncoder, EncLikeEncoder, NaturalEncoder, NovaEncoder,
    RandomEncoder,
};
use picola_bench::HarnessOptions;
use picola_core::{evaluate_encoding, Encoder, PicolaEncoder};
use picola_fsm::table1_names;
use picola_stassign::fsm_constraints;

fn main() {
    let opts = match HarnessOptions::parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    let encoders: Vec<Box<dyn Encoder>> = vec![
        Box::new(NaturalEncoder),
        Box::new(RandomEncoder::default()),
        Box::new(DichotomyEncoder),
        Box::<AnnealingEncoder>::default(),
        Box::new(NovaEncoder::i_hybrid()),
        Box::new(EncLikeEncoder {
            max_evaluations: 600,
            ..EncLikeEncoder::default()
        }),
        Box::<PicolaEncoder>::default(),
    ];

    print!("{:<10}", "FSM");
    for e in &encoders {
        print!(" {:>8}", e.name());
    }
    println!();

    let mut totals = vec![0usize; encoders.len()];
    for fsm in opts.machines(&table1_names()) {
        let constraints = fsm_constraints(&fsm, opts.extract_method(&fsm));
        let n = fsm.num_states();
        print!("{:<10}", fsm.name());
        for (i, e) in encoders.iter().enumerate() {
            let enc = e.encode(n, &constraints);
            let cubes = evaluate_encoding(&enc, &constraints).total_cubes;
            totals[i] += cubes;
            print!(" {cubes:>8}");
        }
        println!();
    }
    print!("{:<10}", "TOTAL");
    for t in &totals {
        print!(" {t:>8}");
    }
    println!();
}
