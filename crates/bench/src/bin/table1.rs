//! Reproduces **Table I** of the paper: number of group constraints per
//! input-encoding problem and the cubes required to implement the
//! constraints under the minimum-length encodings of NOVA, ENC and PICOLA.
//!
//! ```text
//! cargo run -p picola-bench --release --bin table1 [-- --quick --fsm NAME --kiss-dir DIR]
//! ```

use picola_bench::{secs, table1_row, HarnessOptions};
use picola_fsm::table1_names;

fn main() {
    let opts = match HarnessOptions::parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    println!("Table I — cubes to implement the face constraints (min-length encodings)");
    println!("(synthetic IWLS'93-parameter suite unless --kiss-dir is given; see DESIGN.md §4)");
    println!();
    println!(
        "{:<10} {:>6} {:>6} {:>6} {:>7} {:>9} {:>9} {:>9}",
        "FSM", "const", "NOVA", "ENC", "PICOLA", "t_nova", "t_enc", "t_picola"
    );

    let mut total_nova = 0usize;
    let mut total_picola = 0usize;
    let mut nova_wins = 0usize;
    let mut picola_wins = 0usize;
    let mut enc_total: usize = 0;
    let mut enc_solved_all = true;

    for fsm in opts.machines(&table1_names()) {
        let row = table1_row(&fsm, &opts);
        let enc_text = match row.enc_cubes {
            Some(c) => c.to_string(),
            None => "*".to_owned(),
        };
        println!(
            "{:<10} {:>6} {:>6} {:>6} {:>7} {:>9} {:>9} {:>9}",
            row.name,
            row.num_constraints,
            row.nova_cubes,
            enc_text,
            row.picola_cubes,
            secs(row.times[0]),
            secs(row.times[1]),
            secs(row.times[2]),
        );
        total_nova += row.nova_cubes;
        total_picola += row.picola_cubes;
        match row.enc_cubes {
            Some(c) => enc_total += c,
            None => enc_solved_all = false,
        }
        use std::cmp::Ordering;
        match row.nova_cubes.cmp(&row.picola_cubes) {
            Ordering::Greater => picola_wins += 1,
            Ordering::Less => nova_wins += 1,
            Ordering::Equal => {}
        }
    }

    println!();
    println!("totals: NOVA = {total_nova} cubes, PICOLA = {total_picola} cubes");
    if enc_solved_all {
        println!("        ENC   = {enc_total} cubes");
    } else {
        println!("        ENC   = {enc_total} cubes over solved instances (* = budget exhausted)");
    }
    println!("wins:   PICOLA beats NOVA on {picola_wins}, NOVA beats PICOLA on {nova_wins}");
    if total_picola > 0 {
        let overhead = 100.0 * (total_nova as f64 - total_picola as f64) / total_picola as f64;
        println!("NOVA implementation is {overhead:+.1}% vs PICOLA (paper: about +11%)");
    }
}
