//! Sweeps the NEW-tool ingredients over selected machines: plain PICOLA,
//! pair-constraint augmentation, and the output-plane polish, reporting the
//! minimized two-level size of each variant next to the NOVA baselines.
//!
//! ```text
//! cargo run -p picola-bench --release --bin sweep [-- --fsm NAME ...]
//! ```

use picola_baselines::NovaEncoder;
use picola_bench::HarnessOptions;
use picola_core::PicolaEncoder;
use picola_fsm::table2_names;
use picola_stassign::{assign_states, next_state_adjacency, FlowOptions, PicolaStateEncoder};

fn main() {
    let opts = match HarnessOptions::parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    println!(
        "{:<10} {:>6} {:>6} {:>7} {:>7} {:>7} {:>7}",
        "FSM", "ih", "ioh", "plain", "pairs", "polish", "full"
    );
    let mut totals = [0usize; 6];
    for fsm in opts.machines(&table2_names()) {
        let flow = FlowOptions {
            extract: opts.extract_method(&fsm),
            ..FlowOptions::default()
        };
        let adjacency = next_state_adjacency(&fsm);
        let ih = assign_states(&fsm, &NovaEncoder::i_hybrid(), &flow).size;
        let ioh = assign_states(&fsm, &NovaEncoder::io_hybrid(adjacency), &flow).size;
        let plain = assign_states(&fsm, &PicolaEncoder::default(), &flow).size;

        let mut pairs_only = PicolaStateEncoder::for_fsm(&fsm);
        pairs_only.polish_passes = 0;
        pairs_only.top_pairs = 4;
        let pairs = assign_states(&fsm, &pairs_only, &flow).size;

        let polish_only = PicolaStateEncoder::for_fsm(&fsm); // default config
        let polish = assign_states(&fsm, &polish_only, &flow).size;

        let mut full = PicolaStateEncoder::for_fsm(&fsm);
        full.top_pairs = 4;
        let full = assign_states(&fsm, &full, &flow).size;

        println!(
            "{:<10} {:>6} {:>6} {:>7} {:>7} {:>7} {:>7}",
            fsm.name(),
            ih,
            ioh,
            plain,
            pairs,
            polish,
            full
        );
        for (t, v) in totals.iter_mut().zip([ih, ioh, plain, pairs, polish, full]) {
            *t += v;
        }
    }
    println!(
        "{:<10} {:>6} {:>6} {:>7} {:>7} {:>7} {:>7}",
        "TOTAL", totals[0], totals[1], totals[2], totals[3], totals[4], totals[5]
    );
}
