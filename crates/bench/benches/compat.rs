//! Criterion benchmarks of the constraint machinery: nv-compatibility
//! checks, constraint-matrix column application, and the greedy cube-cover
//! estimate that drives refinement.

// Benches are harness code: the in-tests clippy exemption does not reach
// bench targets, so the panic-freedom policy is waived explicitly here.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use criterion::{criterion_group, criterion_main, Criterion};
use picola_constraints::{
    nv_compatible, ConstraintMatrix, Encoding, Geometry, GroupConstraint, SymbolSet,
};
use picola_core::estimate_cubes;
use std::hint::black_box;

fn constraints_for(n: usize, count: usize) -> Vec<GroupConstraint> {
    (0..count)
        .map(|i| {
            GroupConstraint::new(SymbolSet::from_members(
                n,
                [(3 * i) % n, (3 * i + 1) % n, (5 * i + 2) % n],
            ))
        })
        .collect()
}

fn bench_compat(c: &mut Criterion) {
    let n = 48;
    let a = SymbolSet::from_members(n, [0, 1, 2, 3]);
    let b = SymbolSet::from_members(n, [3, 7, 9]);
    let ga = Geometry::unconstrained(4, 6);
    let gb = Geometry::unconstrained(3, 6);
    c.bench_function("nv_compatible/overlapping", |bch| {
        bch.iter(|| nv_compatible(black_box(&a), ga, black_box(&b), gb, 6, n))
    });
    let d = SymbolSet::from_members(n, [20, 21, 22, 23, 24]);
    let gd = Geometry::unconstrained(5, 6);
    c.bench_function("nv_compatible/disjoint", |bch| {
        bch.iter(|| nv_compatible(black_box(&a), ga, black_box(&d), gd, 6, n))
    });
}

fn bench_matrix(c: &mut Criterion) {
    let n = 64;
    let cs = constraints_for(n, 24);
    c.bench_function("matrix/apply-column-64sym-24con", |bch| {
        bch.iter(|| {
            let mut m = ConstraintMatrix::new(n, 6, cs.clone());
            let col: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
            m.apply_column(black_box(&col));
            m
        })
    });
}

fn bench_estimate(c: &mut Criterion) {
    let n = 121;
    let cs = constraints_for(n, 16);
    let enc = Encoding::natural(n);
    c.bench_function("estimate_cubes/121sym-16con", |bch| {
        bch.iter(|| estimate_cubes(black_box(&enc), black_box(&cs)))
    });
}

criterion_group!(benches, bench_compat, bench_matrix, bench_estimate);
criterion_main!(benches);
