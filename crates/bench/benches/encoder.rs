//! Criterion benchmarks of the encoders: PICOLA vs. the baselines on
//! extracted constraint sets, plus a scaling sweep over symbol counts —
//! supporting the paper's claim that PICOLA is far cheaper than
//! minimization-in-the-loop (ENC) encoding.

// Benches are harness code: the in-tests clippy exemption does not reach
// bench targets, so the panic-freedom policy is waived explicitly here.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use picola_baselines::{EncLikeEncoder, NovaEncoder};
use picola_constraints::{ExtractMethod, GroupConstraint, SymbolSet};
use picola_core::{Encoder, PicolaEncoder};
use picola_fsm::benchmark_fsm;
use picola_stassign::fsm_constraints;
use std::hint::black_box;

fn suite_constraints(name: &str) -> (usize, Vec<GroupConstraint>) {
    let fsm = benchmark_fsm(name).expect("suite machine");
    let cs = fsm_constraints(&fsm, ExtractMethod::Quick);
    (fsm.num_states(), cs)
}

fn bench_encoders_on_suite(c: &mut Criterion) {
    let mut group = c.benchmark_group("encode");
    for name in ["bbara", "keyb", "planet"] {
        let (n, cs) = suite_constraints(name);
        group.bench_with_input(BenchmarkId::new("picola", name), &cs, |b, cs| {
            b.iter(|| PicolaEncoder::default().encode(black_box(n), black_box(cs)))
        });
        group.bench_with_input(BenchmarkId::new("nova-ih", name), &cs, |b, cs| {
            b.iter(|| NovaEncoder::i_hybrid().encode(black_box(n), black_box(cs)))
        });
        // ENC with a tiny budget — even then it dwarfs the others.
        let enc = EncLikeEncoder {
            max_evaluations: 30,
            ..EncLikeEncoder::default()
        };
        group.bench_with_input(BenchmarkId::new("enc-30evals", name), &cs, |b, cs| {
            b.iter(|| enc.encode(black_box(n), black_box(cs)))
        });
    }
    group.finish();
}

fn bench_picola_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("picola-scaling");
    for &n in &[8usize, 16, 32, 64, 128] {
        // synthetic constraint set: chained triples
        let cs: Vec<GroupConstraint> = (0..n / 4)
            .map(|i| {
                GroupConstraint::new(SymbolSet::from_members(
                    n,
                    [(4 * i) % n, (4 * i + 1) % n, (4 * i + 2) % n],
                ))
            })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &cs, |b, cs| {
            b.iter(|| PicolaEncoder::default().encode(black_box(n), black_box(cs)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_encoders_on_suite, bench_picola_scaling);
criterion_main!(benches);
