//! Criterion micro-benchmarks of the ESPRESSO substrate: complement,
//! tautology and the full minimization loop on representative covers,
//! including the multi-valued symbolic covers of suite machines.

// Benches are harness code: the in-tests clippy exemption does not reach
// bench targets, so the panic-freedom policy is waived explicitly here.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use criterion::{criterion_group, criterion_main, Criterion};
use picola_fsm::{benchmark_fsm, symbolic_cover};
use picola_logic::{complement, espresso, tautology, Cover, Domain};
use std::hint::black_box;

/// A pseudo-random dense cover over `nvars` binary variables.
fn random_cover(nvars: usize, cubes: usize, seed: u64) -> Cover {
    let dom = Domain::binary(nvars);
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        state >> 33
    };
    let text: Vec<String> = (0..cubes)
        .map(|_| {
            (0..nvars)
                .map(|_| match next() % 3 {
                    0 => '0',
                    1 => '1',
                    _ => '-',
                })
                .collect()
        })
        .collect();
    Cover::parse(&dom, &text.join(" "))
}

fn bench_urp(c: &mut Criterion) {
    let f8 = random_cover(8, 20, 1);
    let f12 = random_cover(12, 40, 2);
    c.bench_function("complement/8var-20cubes", |b| {
        b.iter(|| complement(black_box(&f8)))
    });
    c.bench_function("complement/12var-40cubes", |b| {
        b.iter(|| complement(black_box(&f12)))
    });
    c.bench_function("tautology/12var-40cubes", |b| {
        b.iter(|| tautology(black_box(&f12)))
    });
}

fn bench_espresso(c: &mut Criterion) {
    let f8 = random_cover(8, 20, 3);
    let dc8 = Cover::empty(f8.domain());
    c.bench_function("espresso/8var-20cubes", |b| {
        b.iter(|| espresso(black_box(&f8), black_box(&dc8)))
    });

    // Multi-valued symbolic cover of a mid-size suite machine.
    let fsm = benchmark_fsm("keyb").expect("suite machine");
    let sc = symbolic_cover(&fsm);
    c.bench_function("espresso/symbolic-keyb", |b| {
        b.iter(|| espresso(black_box(&sc.on), black_box(&sc.dc)))
    });
}

criterion_group!(benches, bench_urp, bench_espresso);
criterion_main!(benches);
