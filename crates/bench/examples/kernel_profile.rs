//! Profiling driver for the flat engine's kernel backends: loops the
//! `kernel_ab` workload (the large-tier symbol×tag MV cover) under one
//! pinned backend long enough for a sampling profiler to see it.
//!
//! ```text
//! PICOLA_SIMD=scalar gprofng collect app -o /tmp/scalar.er \
//!     target/release/examples/kernel_profile [instance-index] [iters]
//! ```

use std::time::Instant;

use picola_bench::{corpus_tier, Instance, Tier};
use picola_logic::{Cover, Cube, DomainBuilder, MinimizeCache};

/// Mirrors `bench_json::mv_cover`: one MV variable over the symbols, one
/// over the constraint tags, one cube per constraint.
fn mv_cover(inst: &Instance) -> (Cover, Cover) {
    let tags = inst.constraints.len().max(2);
    let dom = DomainBuilder::new()
        .multi("s", inst.n.max(2))
        .multi("t", tags)
        .build();
    let sym_off = dom.var(0).offset();
    let mut on = Cover::empty(&dom);
    for (i, c) in inst.constraints.iter().enumerate() {
        let mut cube = Cube::full(&dom);
        for p in 0..inst.n.max(2) {
            if !c.members().contains(p) {
                cube.clear_part(sym_off + p);
            }
        }
        cube.restrict(&dom, 1, i);
        on.push(cube);
    }
    (on, Cover::empty(&dom))
}

fn main() {
    let mut args = std::env::args().skip(1);
    let index: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(0);
    let iters: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(200);
    let insts = corpus_tier(index + 1, 0x0001_C01A, Tier::Large);
    let inst = &insts[index];
    let (on, dc) = mv_cover(inst);
    let dom = on.domain();
    eprintln!(
        "{}: n={} tags={} words={} cubes={} backend={:?}",
        inst.name,
        inst.n,
        inst.constraints.len(),
        dom.words(),
        on.len(),
        picola_logic::selected_backend(),
    );
    let mut cache = MinimizeCache::new();
    let mut cost = 0usize;
    let t = Instant::now();
    for _ in 0..iters {
        cost += cache.minimized_cube_count_uncached(&on, &dc, picola_logic::CoverEngine::Flat);
    }
    let wall = t.elapsed();
    eprintln!(
        "iters={iters} cost={cost} wall={:?} per-iter={:?}",
        wall,
        wall / iters as u32
    );
}
