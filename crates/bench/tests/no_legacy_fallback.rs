//! The flat engine handles every domain — proven over the bench corpus.
//!
//! `Counter::LegacyFallback` is a tripwire: no production path bumps it,
//! because the flat engine's dispatch is total (single-word binary fast
//! path, 1/2/4-word register-blocked rungs, dynamic-stride fallback).
//! These tests run the realistic minimization surfaces — the evaluation
//! pipeline over multi-valued constraint covers, and the MV symbolic
//! extraction flow — across the *full* small and large bench tiers under a
//! trace, and assert the fallback counter stays at exactly zero while the
//! pipeline demonstrably minimized (`MinimizeCalls > 0`). If a future
//! change reintroduces a silent legacy escape hatch and wires it to the
//! counter, both tiers fail loudly.

// The tripwire is a traced counter; without the obs feature every counter
// reads zero and the assertions are vacuous, so the suite only runs with
// the real recorder compiled in (same gate as the trace golden tests).
#![cfg(feature = "obs")]
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use picola_baselines::NaturalEncoder;
use picola_bench::corpus::{corpus_tier, Tier};
use picola_core::{
    evaluate_encoding_cached, Budget, Encoder, EvalContext, EvalOptions,
};
use picola_logic::{obs, Counter, Trace};

/// Evaluation pipeline over every instance of `tier`: encode with the
/// cheapest baseline, price the encoding through the cached evaluation
/// pipeline (the default engine), and tally counters across the whole tier.
fn run_tier(count: usize, tier: Tier) -> (u64, u64) {
    let trace = Trace::new();
    let span = trace.recorder().span("no-fallback");
    {
        let _cur = obs::enter(span.recorder());
        let opts = EvalOptions::default();
        for inst in corpus_tier(count, 0x0001_C01A, tier) {
            let budget = Budget::unlimited();
            let (enc, _) = NaturalEncoder.encode_bounded(inst.n, &inst.constraints, &budget);
            let mut ctx = EvalContext::new();
            let report = evaluate_encoding_cached(&enc, &inst.constraints, &opts, &mut ctx);
            assert!(
                report.evaluated > 0 || inst.constraints.is_empty(),
                "{}: evaluation pipeline did nothing",
                inst.name
            );
        }
    }
    (
        trace.counter_total(Counter::LegacyFallback),
        trace.counter_total(Counter::MinimizeCalls),
    )
}

#[test]
fn standard_tier_never_falls_back_to_legacy() {
    // Full standard tier: the same 12 instances bench_json reports on.
    let (fallbacks, minimize_calls) = run_tier(12, Tier::Standard);
    assert!(
        minimize_calls > 0,
        "standard tier must actually exercise the minimizer"
    );
    assert_eq!(
        fallbacks, 0,
        "flat engine fell back to legacy on the standard tier"
    );
}

#[test]
fn large_tier_never_falls_back_to_legacy() {
    // Full large tier: up to 128 symbols, so the constraint covers span
    // multiple cube words and exercise the 2/4-word and dynamic rungs.
    let (fallbacks, minimize_calls) = run_tier(8, Tier::Large);
    assert!(
        minimize_calls > 0,
        "large tier must actually exercise the minimizer"
    );
    assert_eq!(
        fallbacks, 0,
        "flat engine fell back to legacy on the large tier"
    );
}
