//! Integration suite for the streaming pipeline, the content-addressed
//! result store, and the binary artifact codecs.
//!
//! The contracts under test:
//!
//! * **Differential:** a store-warm stream is record-for-record identical
//!   to a store-cold stream and to the storeless in-memory path — the
//!   store accelerates, it never changes a result.
//! * **Honesty:** corrupt store entries decode to counted misses and the
//!   result is recomputed; injected store I/O faults (`store.io`)
//!   likewise degrade to cold computation, bit-identically.
//! * **Safety:** concurrent writers racing on one key leave a store that
//!   still decodes (atomic tmpfile+rename, last writer wins).
//! * **Bounded memory:** every stream run asserts its peak-live
//!   tripwire (`run_stream` fails the run itself on a lifetime leak).
//! * **Artifacts:** every standard- and large-tier bench instance
//!   round-trips bit-identically through the binary codec, with the JSON
//!   debug export agreeing field-for-field.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use picola_bench::corpus::{generate_iter, Tier};
use picola_bench::stream::{run_stream, StreamConfig};
use picola_bench::{decode_instance, encode_instance, instance_json};
use picola_core::store::{job_key, ResultStore, StoredResult};
use picola_core::{chaos, EngineConfig, EngineHandle};
use std::path::PathBuf;
use std::sync::Mutex;

/// The bench default seed — tests cover the exact instances the bench runs.
const BENCH_SEED: u64 = 0x0001_C01A;

/// Global chaos plans are process-wide; every test that runs a store (even
/// unarmed — a concurrently armed plan would reach it) serializes here.
static CHAOS_LOCK: Mutex<()> = Mutex::new(());

fn chaos_lock() -> std::sync::MutexGuard<'static, ()> {
    CHAOS_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn temp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "picola-stream-store-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn engine() -> EngineHandle {
    EngineHandle::new(EngineConfig::default())
}

fn config(count: usize, tier: Tier, store_dir: Option<PathBuf>) -> StreamConfig {
    StreamConfig {
        count,
        master_seed: BENCH_SEED,
        tier,
        threads: 3,
        depth: 4,
        store_dir,
        work_limit: None,
    }
}

/// Strips the provenance flag: everything else about a record must be
/// independent of whether the store answered.
fn result_fields(
    r: &picola_bench::StreamRecord,
) -> (u64, u64, u64, u64, u64, u64, u64, u64) {
    (
        r.index,
        r.key,
        r.n,
        r.nv,
        r.codes_digest,
        r.total_cubes,
        r.satisfied,
        r.evaluated,
    )
}

#[test]
fn warm_stream_is_bit_identical_to_cold_and_memoryless() {
    let _lock = chaos_lock();
    let dir = temp_store("diff");
    // The in-memory reference: no store at all.
    let memoryless = run_stream(&engine(), &config(16, Tier::Standard, None)).unwrap();
    // Cold: fresh store directory, every lookup misses, results persisted.
    let cold = run_stream(&engine(), &config(16, Tier::Standard, Some(dir.clone()))).unwrap();
    // Warm: same directory, same corpus — every lookup should hit.
    let warm = run_stream(&engine(), &config(16, Tier::Standard, Some(dir.clone()))).unwrap();

    assert_eq!(cold.records.len(), 16);
    assert_eq!(warm.records.len(), 16);
    for ((m, c), w) in memoryless.records.iter().zip(&cold.records).zip(&warm.records) {
        assert_eq!(
            result_fields(m),
            result_fields(c),
            "index {}: cold store changed a result",
            m.index
        );
        assert_eq!(
            result_fields(c),
            result_fields(w),
            "index {}: warm store changed a result",
            c.index
        );
        assert!(!m.store_hit && !c.store_hit, "nothing to hit yet");
    }
    // The cold leg persisted every complete result; the warm leg answers
    // from disk. Distinct instances can share a content address, so hits
    // are counted per lookup, not per file.
    assert_eq!(cold.store.hits, 0);
    assert!(cold.store.inserts >= 1, "cold run must populate the store");
    assert!(
        warm.hit_rate() >= 0.9,
        "warm hit rate {} below 0.9 ({:?})",
        warm.hit_rate(),
        warm.store
    );
    assert!(warm.records.iter().all(|r| r.store_hit || r.complete));
    // The tripwire numbers are reported and already self-asserted.
    for report in [&memoryless, &cold, &warm] {
        assert!(report.peak_live <= report.live_bound);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_store_entries_are_recomputed_bit_identically() {
    let _lock = chaos_lock();
    let dir = temp_store("corrupt");
    let cold = run_stream(&engine(), &config(8, Tier::Standard, Some(dir.clone()))).unwrap();
    // Garble every record file in place: truncate some, flip bytes in
    // others — every shape of on-disk rot the reader must survive.
    let mut garbled = 0usize;
    for (i, entry) in std::fs::read_dir(&dir).unwrap().enumerate() {
        let path = entry.unwrap().path();
        let bytes = std::fs::read(&path).unwrap();
        let bad = if i % 2 == 0 {
            bytes[..bytes.len() / 2].to_vec()
        } else {
            let mut b = bytes;
            let mid = b.len() / 2;
            b[mid] ^= 0xff;
            b
        };
        std::fs::write(&path, bad).unwrap();
        garbled += 1;
    }
    assert!(garbled >= 1, "cold run left no files to garble");
    let warm = run_stream(&engine(), &config(8, Tier::Standard, Some(dir.clone()))).unwrap();
    for (c, w) in cold.records.iter().zip(&warm.records) {
        assert_eq!(
            result_fields(c),
            result_fields(w),
            "index {}: corruption changed a result instead of a recompute",
            c.index
        );
    }
    // Truncations are always structural corruption; a mid-byte flip can
    // at worst decode to a semantically invalid record, which is also
    // rejected — either way, at least one corrupt entry must be counted
    // and nothing may be served from the rotten files as a hit of the
    // *wrong* result (the differential above already proved that).
    assert!(
        warm.store.corrupt >= 1,
        "no corruption counted: {:?}",
        warm.store
    );
    assert!(
        warm.store.corrupt <= warm.store.misses,
        "corrupt lookups must be a subset of misses: {:?}",
        warm.store
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn injected_store_faults_degrade_stream_to_cold() {
    let _lock = chaos_lock();
    let dir = temp_store("chaos");
    let reference = run_stream(&engine(), &config(6, Tier::Standard, None)).unwrap();
    let (faulty, fired) = {
        let _guard = chaos::arm_global("store.io", 0);
        let report =
            run_stream(&engine(), &config(6, Tier::Standard, Some(dir.clone()))).unwrap();
        (report, chaos::global_times_fired())
    };
    assert!(fired > 0, "the armed store fault never fired");
    for (a, b) in reference.records.iter().zip(&faulty.records) {
        assert_eq!(
            result_fields(a),
            result_fields(b),
            "index {}: a store fault changed a result",
            a.index
        );
    }
    assert_eq!(faulty.store.hits, 0, "a failing store cannot hit");
    assert!(
        faulty.store.misses >= 6,
        "faulted lookups must count as misses: {:?}",
        faulty.store
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_writers_on_one_key_leave_a_decodable_store() {
    let _lock = chaos_lock();
    let dir = temp_store("race");
    let store = std::sync::Arc::new(ResultStore::open(&dir).unwrap());
    let inst = generate_iter(1, BENCH_SEED, Tier::Standard).next().unwrap();
    let key = job_key(inst.n, inst.nv_override, &inst.constraints);
    // All writers race the same content address with *equal* payloads —
    // the only way concurrent writers ever race in production, since the
    // key is a digest of the job and results are deterministic.
    let result = StoredResult {
        nv: 3,
        codes: vec![0, 1, 2, 3, 4],
        total_cubes: 7,
        satisfied: 2,
        evaluated: 3,
    };
    let threads: Vec<_> = (0..8)
        .map(|_| {
            let store = std::sync::Arc::clone(&store);
            let result = result.clone();
            std::thread::spawn(move || {
                for _ in 0..16 {
                    assert!(store.insert(key, &result), "insert failed");
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let read = store.lookup(key).expect("race left an unreadable store");
    assert_eq!(read.codes, result.codes);
    assert_eq!(read.nv, result.nv);
    let stats = store.stats();
    assert_eq!(stats.inserts, 8 * 16);
    assert_eq!(stats.corrupt, 0, "rename must be atomic: {stats:?}");
    // No tmpfiles may survive the race.
    for entry in std::fs::read_dir(&dir).unwrap() {
        let name = entry.unwrap().file_name().to_string_lossy().into_owned();
        assert!(
            name.ends_with(".rec"),
            "stray non-record file after the race: {name}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn huge_tier_smoke_stream_is_warm_on_second_pass() {
    let _lock = chaos_lock();
    let dir = temp_store("huge");
    let cold = run_stream(&engine(), &config(48, Tier::Huge, Some(dir.clone()))).unwrap();
    let warm = run_stream(&engine(), &config(48, Tier::Huge, Some(dir.clone()))).unwrap();
    assert_eq!(cold.records.len(), 48);
    for (c, w) in cold.records.iter().zip(&warm.records) {
        assert_eq!(result_fields(c), result_fields(w));
    }
    assert!(
        warm.hit_rate() >= 0.9,
        "huge-tier warm hit rate {} below 0.9",
        warm.hit_rate()
    );
    assert!(warm.peak_live <= warm.live_bound);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Every instance the default bench run touches — 12 standard, 8 large —
/// round-trips through the binary codec bit-identically, and the JSON
/// debug export of the decoded instance matches the original's.
#[test]
fn artifacts_round_trip_every_bench_instance() {
    for (tier, count) in [(Tier::Standard, 12), (Tier::Large, 8)] {
        for inst in generate_iter(count, BENCH_SEED, tier) {
            let bytes = encode_instance(&inst);
            let back = decode_instance(&bytes)
                .unwrap_or_else(|e| panic!("{}: decode failed: {e}", inst.name));
            assert_eq!(
                encode_instance(&back),
                bytes,
                "{}: re-encode not bit-identical",
                inst.name
            );
            assert_eq!(
                instance_json(&back),
                instance_json(&inst),
                "{}: JSON debug export diverged",
                inst.name
            );
            assert_eq!(back.n, inst.n);
            assert_eq!(back.seed, inst.seed);
            assert_eq!(back.nv_override, inst.nv_override);
        }
    }
}
