//! Property-based fuzzers for the compact binary codec primitives.
//!
//! Two guarantees are pinned down, at the same hardening bar as the PR 1
//! KISS2/PLA parsers:
//!
//! 1. **Round-trip bit-identity** — any sequence of primitive writes
//!    (varints, raw bytes, length-prefixed runs, strings, headers) decodes
//!    back to exactly the values written, re-encodes to exactly the same
//!    bytes, and the reader lands precisely at the end of the buffer.
//! 2. **Corruption tolerance** — arbitrary byte soup, truncations, and
//!    single-byte flips of valid records produce structured
//!    [`BinioError`]s (or, rarely, a different valid decode), never a
//!    panic and never an over-read.

// Tests are exempt from the panic-freedom policy; clippy's in-tests
// exemption misses integration-test helpers, so waive it explicitly.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use picola_logic::binio::{fnv1a64, ByteReader, ByteWriter, Fnv64, MAX_RUN_LEN};
use proptest::prelude::*;

/// One primitive field as written / expected back.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Field {
    U8(u8),
    Varint(u64),
    Bytes(Vec<u8>),
    Str(String),
    Header(u8),
}

/// Strategy: one field, chosen by a tag byte (the vendored proptest has no
/// `prop_oneof`, so the union is encoded by hand). Raw `u64` entropy feeds
/// both small and full-range varints.
fn field() -> impl Strategy<Value = Field> {
    let raw = (
        0u8..6,
        any::<u64>(),
        proptest::collection::vec(any::<u8>(), 0..64),
    );
    raw.prop_map(|(tag, entropy, blob)| match tag {
        0 => Field::U8((entropy & 0xff) as u8),
        1 => Field::Varint(entropy),
        2 => Field::Varint(entropy % 1024), // bias toward real-record sizes
        3 => Field::Bytes(blob),
        4 => Field::Str(
            blob.iter()
                .map(|b| char::from(b'a' + (b % 26)))
                .collect::<String>(),
        ),
        _ => Field::Header((entropy & 0xff) as u8),
    })
}

fn encode(fields: &[Field]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    for f in fields {
        match f {
            Field::U8(v) => w.u8(*v),
            Field::Varint(v) => w.varint(*v),
            Field::Bytes(b) => w.bytes(b),
            Field::Str(s) => w.str(s),
            Field::Header(k) => w.header(*k),
        }
    }
    w.into_bytes()
}

/// Decodes `fields`-shaped data from `bytes`; stops at the first error.
/// Asserts the reader never over-reads regardless of input.
fn decode_prefix(bytes: &[u8], fields: &[Field]) -> Result<Vec<Field>, ()> {
    let mut r = ByteReader::new(bytes);
    let mut out = Vec::with_capacity(fields.len());
    for f in fields {
        let got = match f {
            Field::U8(_) => r.u8().map(Field::U8),
            Field::Varint(_) => r.varint().map(Field::Varint),
            Field::Bytes(_) => r.bytes().map(|b| Field::Bytes(b.to_vec())),
            Field::Str(_) => r.str().map(|s| Field::Str(s.to_owned())),
            Field::Header(k) => r.header(*k).map(|h| Field::Header(h.kind)),
        };
        assert!(r.position() <= bytes.len(), "reader over-read");
        match got {
            Ok(v) => out.push(v),
            Err(e) => {
                assert!(e.offset <= bytes.len(), "error offset out of range");
                assert!(!e.message.is_empty());
                return Err(());
            }
        }
    }
    Ok(out)
}

proptest! {
    /// Any write sequence decodes back to the exact values written, and
    /// re-encoding the decoded values reproduces the bytes bit-identically.
    #[test]
    fn primitive_round_trip_is_bit_identical(
        fields in proptest::collection::vec(field(), 0..32)
    ) {
        let bytes = encode(&fields);
        let decoded = decode_prefix(&bytes, &fields);
        prop_assert!(decoded.is_ok(), "valid record failed to decode");
        if let Ok(decoded) = decoded {
            prop_assert_eq!(&decoded, &fields);
            prop_assert_eq!(encode(&decoded), bytes);
        }
    }

    /// Arbitrary byte soup never panics any decoder and never reads past
    /// the end; every failure is a structured error with an in-range
    /// offset.
    #[test]
    fn arbitrary_bytes_never_panic(soup in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut r = ByteReader::new(&soup);
        let mut step = 0usize;
        loop {
            let res = match step % 4 {
                0 => r.varint().map(|_| ()),
                1 => r.u8().map(|_| ()),
                2 => r.bytes().map(|_| ()),
                _ => r.str().map(|_| ()),
            };
            prop_assert!(r.position() <= soup.len(), "reader never over-reads");
            match res {
                Ok(()) => {}
                Err(e) => {
                    prop_assert!(e.offset <= soup.len());
                    prop_assert!(!e.message.is_empty());
                    break;
                }
            }
            if r.is_at_end() {
                break;
            }
            step += 1;
        }
        // Header decode over soup is equally panic-free.
        let _ = ByteReader::new(&soup).header(1);
    }

    /// Every truncation of a valid record fails with a structured error
    /// (or decodes a prefix cleanly) — never a panic, never an over-read.
    #[test]
    fn truncations_fail_structurally(
        fields in proptest::collection::vec(field(), 1..16),
        cut_pct in 0usize..100,
    ) {
        let bytes = encode(&fields);
        let cut = bytes.len() * cut_pct / 100;
        let _ = decode_prefix(&bytes[..cut], &fields);
    }

    /// A single flipped byte in a valid record either still decodes (the
    /// flip landed in a payload) or fails structurally — never a panic.
    #[test]
    fn single_byte_flips_never_panic(
        fields in proptest::collection::vec(field(), 1..16),
        pos in any::<usize>(),
        xor in 1u8..=255,
    ) {
        let mut bytes = encode(&fields);
        let i = pos % bytes.len();
        bytes[i] ^= xor;
        let _ = decode_prefix(&bytes, &fields);
    }

    /// Corrupt length prefixes are rejected by the cap before any
    /// allocation can happen.
    #[test]
    fn oversized_length_prefixes_are_capped(extra in 1u64..u64::MAX / 2) {
        let bogus = MAX_RUN_LEN.saturating_add(extra);
        let mut w = ByteWriter::new();
        w.varint(bogus);
        let err = ByteReader::new(w.as_slice()).bytes().unwrap_err();
        prop_assert_eq!(err.offset, 0);
    }

    /// The streaming digest equals the one-shot digest under any split,
    /// and a single-byte flip always changes it (each FNV-1a step is a
    /// bijection on the state for fixed input, so a changed byte can never
    /// cancel) — the property the content-addressed store keys on.
    #[test]
    fn fnv_digest_streams_and_discriminates(
        data in proptest::collection::vec(any::<u8>(), 0..256),
        split in any::<usize>(),
        flip in any::<usize>(),
        xor in 1u8..=255,
    ) {
        let at = split % (data.len() + 1);
        let mut h = Fnv64::new();
        h.update(&data[..at]);
        h.update(&data[at..]);
        prop_assert_eq!(h.finish(), fnv1a64(&data));
        if !data.is_empty() {
            let mut other = data.clone();
            let i = flip % other.len();
            other[i] ^= xor;
            prop_assert_ne!(fnv1a64(&other), fnv1a64(&data));
        }
    }
}
