//! Fuzzers for the PLA and MV-PLA parsers.
//!
//! Property: whatever bytes come in — malformed, truncated, oversized —
//! the parsers return `Err` with a line number inside the input (or 0 for
//! file-level diagnostics); they never panic and never hang.

// Tests are exempt from the panic-freedom policy; clippy's in-tests
// exemption misses integration-test helpers, so waive it explicitly.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use picola_logic::error::ParseLimits;
use picola_logic::{parse_mv_pla, parse_mv_pla_with, parse_pla, parse_pla_with};
use proptest::collection::vec;
use proptest::prelude::*;

/// A printable-ish byte soup biased toward PLA syntax so the fuzzer
/// reaches past the first tokenizer error.
fn soup() -> impl Strategy<Value = String> {
    vec(any::<u8>(), 0..400).prop_map(|bytes| {
        const ALPHABET: &[u8] = b"01-~ .ieop\n\t#mvrs2|X";
        bytes
            .iter()
            .map(|&b| ALPHABET[b as usize % ALPHABET.len()] as char)
            .collect()
    })
}

/// A structurally valid PLA document to mutate and truncate.
fn valid_pla(terms: usize) -> String {
    let mut s = String::from(".i 3\n.o 2\n");
    for t in 0..terms {
        let a = if t % 2 == 0 { '0' } else { '1' };
        let b = if t % 3 == 0 { '-' } else { '1' };
        s.push_str(&format!("{a}{b}0 1{}\n", if t % 2 == 0 { '0' } else { '1' }));
    }
    s.push_str(".e\n");
    s
}

/// A structurally valid MV-PLA document to mutate and truncate.
fn valid_mv_pla(terms: usize) -> String {
    let mut s = String::from(".mv 4 2 3 4\n");
    for t in 0..terms {
        let a = if t % 2 == 0 { '0' } else { '1' };
        s.push_str(&format!("{a}- 110 101{}\n", if t % 2 == 0 { '0' } else { '1' }));
    }
    s.push_str(".e\n");
    s
}

fn line_count(text: &str) -> usize {
    text.lines().count()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn pla_parser_never_panics_on_soup(text in soup()) {
        if let Err(e) = parse_pla(&text) {
            prop_assert!(
                e.line() <= line_count(&text),
                "line {} outside {}-line input",
                e.line(),
                line_count(&text)
            );
        }
    }

    #[test]
    fn mv_pla_parser_never_panics_on_soup(text in soup()) {
        if let Err(e) = parse_mv_pla(&text) {
            prop_assert!(e.line() <= line_count(&text));
        }
    }

    #[test]
    fn truncated_pla_errors_stay_in_bounds(terms in 1usize..20, cut in 0usize..200) {
        let full = valid_pla(terms);
        let cut = cut.min(full.len());
        let text = &full[..cut];
        if let Err(e) = parse_pla(text) {
            prop_assert!(e.line() <= line_count(text) + 1);
        }
    }

    #[test]
    fn mid_line_truncation_is_always_rejected(terms in 1usize..20, cut in 1usize..200) {
        // A frame cut strictly mid-line (as a dropped socket delivers it)
        // must never parse as a silently shorter PLA. Cuts landing on a
        // newline or right after `.e` are legitimate shorter documents.
        let full = valid_pla(terms);
        let cut = cut.min(full.len() - 1);
        let text = &full[..cut];
        if !text.ends_with('\n') && !text.ends_with(".e") {
            let err = parse_pla(text).unwrap_err();
            prop_assert!(err.line() <= line_count(text) + 1);
        }
    }

    #[test]
    fn mid_line_truncated_mv_pla_is_always_rejected(terms in 1usize..20, cut in 1usize..200) {
        let full = valid_mv_pla(terms);
        let cut = cut.min(full.len() - 1);
        let text = &full[..cut];
        if !text.ends_with('\n') && !text.ends_with(".e") {
            let err = parse_mv_pla(text).unwrap_err();
            prop_assert!(err.line() <= line_count(text) + 1);
        }
    }

    #[test]
    fn empty_and_blank_inputs_are_rejected(pad in 0usize..8) {
        let text = "\n".repeat(pad);
        let err = parse_pla(&text).unwrap_err();
        prop_assert_eq!(err.line(), 0);
        let err = parse_mv_pla(&text).unwrap_err();
        prop_assert_eq!(err.line(), 0);
    }

    #[test]
    fn corrupted_pla_never_panics(terms in 1usize..20, pos in 0usize..200, byte in 0u8..128) {
        let mut full = valid_pla(terms).into_bytes();
        if !full.is_empty() {
            let pos = pos % full.len();
            full[pos] = byte;
        }
        let text = String::from_utf8_lossy(&full).into_owned();
        let _ = parse_pla(&text);
    }

    #[test]
    fn corrupted_mv_pla_never_panics(terms in 1usize..20, pos in 0usize..200, byte in 0u8..128) {
        let mut full = valid_mv_pla(terms).into_bytes();
        if !full.is_empty() {
            let pos = pos % full.len();
            full[pos] = byte;
        }
        let text = String::from_utf8_lossy(&full).into_owned();
        let _ = parse_mv_pla(&text);
    }

    #[test]
    fn oversized_pla_is_rejected_not_loaded(terms in 5usize..40) {
        let limits = ParseLimits { max_terms: 4, ..ParseLimits::default() };
        let text = valid_pla(terms);
        let err = parse_pla_with(&text, &limits).unwrap_err();
        prop_assert!(err.line() <= line_count(&text));
        // under generous limits the same document parses
        prop_assert!(parse_pla_with(&text, &ParseLimits::default()).is_ok());
    }

    #[test]
    fn oversized_mv_pla_is_rejected_not_loaded(terms in 5usize..40) {
        let limits = ParseLimits { max_terms: 4, ..ParseLimits::default() };
        let text = valid_mv_pla(terms);
        let err = parse_mv_pla_with(&text, &limits).unwrap_err();
        prop_assert!(err.line() <= line_count(&text));
        prop_assert!(parse_mv_pla_with(&text, &ParseLimits::default()).is_ok());
    }
}
