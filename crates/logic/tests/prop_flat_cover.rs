//! Differential property tests: the flat cover engine against the legacy
//! `Vec<Cube>` reference.
//!
//! Three layers are pinned down here:
//! 1. the generic word-parallel kernels (`cube_*_into`) against the legacy
//!    [`Cube`] operations, on mixed binary/multi-valued and multi-word
//!    domains;
//! 2. [`flat_espresso_bounded`] against [`espresso_bounded`] — bit-identical
//!    covers, completions, and (with `obs` on) byte-identical traces, on
//!    unlimited and tightly bounded budgets alike. The corpus spans every
//!    rung of the flat engine's specialization ladder: the single-word
//!    binary fast path plus multi-valued domains at 1-, 2-, 4-, and 8-word
//!    strides (mixed part counts up to 70 parts per variable), so the
//!    legacy engine's only remaining role — independent oracle — is
//!    exercised on exactly the domains the flat engine now owns;
//! 3. the [`MinimizeCache`] — cache-on, cache-off, flat, and legacy lookups
//!    must all agree.

// Tests are exempt from the panic-freedom policy; clippy's in-tests
// exemption misses integration-test helpers, so waive it explicitly.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use picola_logic::{
    cube_and_into, cube_cofactor_into, cube_consensus_into, cube_contains, cube_distance,
    cube_is_valid, espresso_bounded, flat_eligible, flat_espresso_bounded, Budget, Cover,
    CoverEngine, Cube, Domain, DomainBuilder, FlatCover, FlatDomain, MinimizeCache,
    MinimizeOptions, MinimizeScratch, Trace,
};
use proptest::prelude::*;

/// Strategy: a random cover over `nvars` binary variables with up to
/// `max_cubes` cubes, each literal drawn from {0, 1, -}.
fn binary_cover(nvars: usize, max_cubes: usize) -> impl Strategy<Value = Cover> {
    let cube = proptest::collection::vec(0u8..3, nvars);
    proptest::collection::vec(cube, 0..=max_cubes).prop_map(move |cubes| {
        let dom = Domain::binary(nvars);
        let text: Vec<String> = cubes
            .iter()
            .map(|c| {
                c.iter()
                    .map(|&l| match l {
                        0 => '0',
                        1 => '1',
                        _ => '-',
                    })
                    .collect()
            })
            .collect();
        Cover::parse(&dom, &text.join(" "))
    })
}

/// A mixed binary/multi-valued, multi-word domain (one 70-part variable
/// pushes the stride to two words) plus random cubes over it.
fn mv_domain() -> Domain {
    DomainBuilder::new()
        .multi("s", 70)
        .binary("a")
        .binary("b")
        .multi("t", 5)
        .build()
}

fn mv_cube(dom: &Domain) -> impl Strategy<Value = Cube> {
    let dom = dom.clone();
    let lits = (
        proptest::collection::vec(any::<bool>(), 70),
        0u8..3,
        0u8..3,
        proptest::collection::vec(any::<bool>(), 5),
    );
    lits.prop_map(move |(s, a, b, t)| {
        let mut c = Cube::full(&dom);
        // keep every literal non-empty so the cube stays valid
        if s.iter().any(|&x| x) {
            for (p, keep) in s.iter().enumerate() {
                if !keep {
                    c.clear_part(p);
                }
            }
        }
        if a < 2 {
            c.restrict_binary(&dom, 1, a == 1);
        }
        if b < 2 {
            c.restrict_binary(&dom, 2, b == 1);
        }
        if t.iter().any(|&x| x) {
            let off = dom.var(3).offset();
            for (p, keep) in t.iter().enumerate() {
                if !keep {
                    c.clear_part(off + p);
                }
            }
        }
        c
    })
}

/// A one-word multi-valued domain (10 parts): the generic engine's
/// `FixedW<1>` rung — same stride as the binary fast path, different
/// kernels.
fn one_word_mv_domain() -> Domain {
    DomainBuilder::new()
        .multi("s", 5)
        .binary("a")
        .multi("t", 3)
        .build()
}

/// A four-word mixed domain (210 parts): the `FixedW<4>` rung.
fn four_word_mv_domain() -> Domain {
    DomainBuilder::new()
        .multi("s", 70)
        .multi("t", 60)
        .binaries("x", 40)
        .build()
}

/// An eight-word mixed domain (504 parts): past the register-blocked
/// specializations, exercising the dynamic-stride fallback loop.
fn eight_word_mv_domain() -> Domain {
    DomainBuilder::new()
        .multi("s", 70)
        .multi("t", 64)
        .multi("u", 70)
        .binaries("x", 150)
        .build()
}

/// Restricts variable `v` of `c` to exactly the parts listed in `keep`
/// (which must be non-empty so the cube stays valid).
fn restrict_to_parts(dom: &Domain, c: &mut Cube, v: usize, keep: &[usize]) {
    let var = dom.var(v);
    for p in 0..var.parts() {
        if !keep.contains(&p) {
            c.clear_part(var.offset() + p);
        }
    }
}

/// Strategy: a disjoint `(on, dc)` cover pair over an arbitrary MV domain.
///
/// Point enumeration is infeasible on the wide tiers (up to 504 parts), so
/// disjointness is structural instead: every on-cube restricts variable 0
/// to a subset of its low half and every dc-cube to a subset of its high
/// half, which no minterm can satisfy both of. Each cube additionally
/// restricts up to two other variables to 1–2 parts, keeping the unate
/// recursions shallow enough for the legacy oracle to keep up.
/// One generated cube: the var-0 parts to keep, plus up to two extra
/// `(variable, kept parts)` restrictions.
type CubePick = (Vec<usize>, Vec<(usize, Vec<usize>)>);

fn mv_engine_corpus(
    dom: Domain,
    max_on: usize,
    max_dc: usize,
) -> impl Strategy<Value = (Cover, Cover)> {
    let parts0 = dom.var(0).parts();
    let half = parts0 / 2;
    let nv = dom.num_vars();
    let extras =
        || proptest::collection::vec((1..nv, proptest::collection::vec(0usize..512, 1..=2)), 0..=2);
    let on_cube = (proptest::collection::vec(0usize..half, 1..=2), extras());
    let dc_cube = (proptest::collection::vec(half..parts0, 1..=2), extras());
    let on = proptest::collection::vec(on_cube, 1..=max_on);
    let dc = proptest::collection::vec(dc_cube, 0..=max_dc);
    (on, dc).prop_map(move |(on_picks, dc_picks)| {
        let build = |picks: Vec<CubePick>| {
            Cover::from_cubes(
                &dom,
                picks.into_iter().map(|(var0_keep, extra)| {
                    let mut c = Cube::full(&dom);
                    restrict_to_parts(&dom, &mut c, 0, &var0_keep);
                    // later picks of the same variable win outright, so a
                    // literal can never be narrowed twice into emptiness
                    let by_var: std::collections::BTreeMap<usize, Vec<usize>> =
                        extra.into_iter().collect();
                    for (v, keep) in by_var {
                        let parts = dom.var(v).parts();
                        let keep: Vec<usize> = keep.iter().map(|&p| p % parts).collect();
                        c.raise_var(&dom, v);
                        restrict_to_parts(&dom, &mut c, v, &keep);
                    }
                    c
                }),
            )
        };
        (build(on_picks), build(dc_picks))
    })
}

/// Whether any minterm lies in both covers. Like the legacy espresso
/// property tests, the differential corpus keeps `on` and `dc` point
/// disjoint — overlapping sets are outside the minimizer's contract.
fn overlaps(on: &Cover, dc: &Cover) -> bool {
    Cover::enumerate_points(on.domain())
        .iter()
        .any(|pt| on.covers_point(pt) && dc.covers_point(pt))
}

/// Runs both engines on the same inputs under equal budgets and asserts
/// covers, completions, and traces agree byte for byte.
///
/// `PICOLA_ORACLE_ORDER=flat-first` runs the flat engine before the legacy
/// oracle (the default is legacy first); CI runs the suite once per order,
/// proving neither engine leaks state the other could depend on.
fn assert_engines_agree(on: &Cover, dc: &Cover, limit: Option<u64>) -> Result<(), TestCaseError> {
    let base = || match limit {
        Some(l) => Budget::with_work_limit(l),
        None => Budget::unlimited(),
    };
    let run_legacy = || {
        let trace = Trace::new();
        let budget = base().with_recorder(trace.recorder());
        let (f, c) = espresso_bounded(on, dc, &MinimizeOptions::default(), &budget);
        (f, c, trace)
    };
    let run_flat = || {
        let trace = Trace::new();
        let budget = base().with_recorder(trace.recorder());
        let mut scratch = MinimizeScratch::new();
        let (f, c) =
            flat_espresso_bounded(on, dc, &MinimizeOptions::default(), &budget, &mut scratch);
        (f, c, trace)
    };
    let flat_first =
        std::env::var("PICOLA_ORACLE_ORDER").is_ok_and(|v| v == "flat-first");
    let ((lf, lc, legacy_trace), (ff, fc, flat_trace)) = if flat_first {
        let flat = run_flat();
        (run_legacy(), flat)
    } else {
        (run_legacy(), run_flat())
    };

    prop_assert_eq!(&lf, &ff, "covers diverge (limit {:?})", limit);
    prop_assert_eq!(lc, fc, "completions diverge (limit {:?})", limit);
    prop_assert_eq!(
        legacy_trace.render(),
        flat_trace.render(),
        "traces diverge (limit {:?})",
        limit
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn flat_espresso_is_bit_identical_to_legacy(
        on in binary_cover(5, 8),
        dc in binary_cover(5, 3),
    ) {
        prop_assume!(!overlaps(&on, &dc));
        prop_assert!(flat_eligible(on.domain()));
        assert_engines_agree(&on, &dc, None)?;
    }

    #[test]
    fn flat_espresso_matches_legacy_under_tight_budgets(
        on in binary_cover(4, 6),
        dc in binary_cover(4, 2),
        limit in 0u64..12,
    ) {
        prop_assume!(!overlaps(&on, &dc));
        assert_engines_agree(&on, &dc, Some(limit))?;
    }

    #[test]
    fn flat_cover_roundtrips_any_cover(f in binary_cover(4, 6)) {
        let fc = FlatCover::from_cover(&f);
        prop_assert_eq!(fc.len(), f.len());
        prop_assert_eq!(fc.to_cover(f.domain()), f);
    }

    #[test]
    fn generic_kernels_mirror_cube_ops_on_mixed_domains(
        (a, b) in {
            let dom = mv_domain();
            (mv_cube(&dom), mv_cube(&dom))
        }
    ) {
        let dom = mv_domain();
        let fd = FlatDomain::new(&dom);
        prop_assert!(!flat_eligible(&dom), "this corpus must exercise the generic path");
        prop_assert_eq!(fd.words(), dom.words());

        prop_assert_eq!(cube_is_valid(&fd, a.words()), a.is_valid(&dom));
        prop_assert_eq!(cube_contains(a.words(), b.words()), a.covers(&b));
        prop_assert_eq!(cube_distance(&fd, a.words(), b.words()), a.distance(&b, &dom));

        let mut out = vec![0u64; fd.words()];
        cube_and_into(a.words(), b.words(), &mut out);
        let meet = a.and(&b);
        prop_assert_eq!(out.as_slice(), meet.words());

        let legacy_cons = a.consensus(&b, &dom);
        let got = cube_consensus_into(&fd, a.words(), b.words(), &mut out);
        prop_assert_eq!(got, legacy_cons.is_some());
        if let Some(k) = legacy_cons {
            prop_assert_eq!(out.as_slice(), k.words());
        }

        let legacy_cof = a.cofactor(&b, &dom);
        let got = cube_cofactor_into(&fd, a.words(), b.words(), &mut out);
        prop_assert_eq!(got, legacy_cof.is_some());
        if let Some(k) = legacy_cof {
            prop_assert_eq!(out.as_slice(), k.words());
        }
    }

    #[test]
    fn cache_on_off_and_both_engines_agree(
        on in binary_cover(4, 6),
        dc in binary_cover(4, 2),
    ) {
        prop_assume!(!overlaps(&on, &dc));
        let mut cached = MinimizeCache::new();
        let mut uncached = MinimizeCache::new();
        let reference = cached.minimized_cube_count(&on, &dc, CoverEngine::Flat);
        // repeat lookup (a hit when the feature is on) must agree
        prop_assert_eq!(
            cached.minimized_cube_count(&on, &dc, CoverEngine::Flat),
            reference
        );
        prop_assert_eq!(
            uncached.minimized_cube_count_uncached(&on, &dc, CoverEngine::Flat),
            reference
        );
        prop_assert_eq!(
            cached.minimized_cube_count(&on, &dc, CoverEngine::Legacy),
            reference
        );
    }

    #[test]
    fn flat_mv_engine_matches_legacy_one_word(
        (on, dc) in mv_engine_corpus(one_word_mv_domain(), 5, 2),
    ) {
        prop_assert!(!flat_eligible(on.domain()), "must take the generic rung");
        prop_assert_eq!(on.domain().words(), 1);
        assert_engines_agree(&on, &dc, None)?;
    }

    #[test]
    fn flat_mv_engine_matches_legacy_two_word(
        (on, dc) in mv_engine_corpus(mv_domain(), 5, 2),
    ) {
        prop_assert_eq!(on.domain().words(), 2);
        assert_engines_agree(&on, &dc, None)?;
    }

    #[test]
    fn flat_mv_engine_matches_legacy_under_tight_budgets(
        (on, dc) in mv_engine_corpus(mv_domain(), 4, 2),
        limit in 0u64..12,
    ) {
        // budget-degraded prefixes must agree too: same covers, same
        // completions, same trace — including limit 0 (scc'd on-set only)
        assert_engines_agree(&on, &dc, Some(limit))?;
    }
}

proptest! {
    // The wide tiers run the same differential check with a smaller case
    // count: the legacy oracle allocates per cube per pass, and 504-part
    // domains make that the dominant cost of the whole suite.
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn flat_mv_engine_matches_legacy_four_word(
        (on, dc) in mv_engine_corpus(four_word_mv_domain(), 4, 2),
    ) {
        prop_assert_eq!(on.domain().words(), 4);
        assert_engines_agree(&on, &dc, None)?;
    }

    #[test]
    fn flat_mv_engine_matches_legacy_eight_word(
        (on, dc) in mv_engine_corpus(eight_word_mv_domain(), 3, 1),
    ) {
        prop_assert_eq!(on.domain().words(), 8);
        assert_engines_agree(&on, &dc, None)?;
    }
}
