//! Differential property tests: the flat cover engine against the legacy
//! `Vec<Cube>` reference.
//!
//! Three layers are pinned down here:
//! 1. the generic word-parallel kernels (`cube_*_into`) against the legacy
//!    [`Cube`] operations, on mixed binary/multi-valued and multi-word
//!    domains;
//! 2. [`flat_espresso_bounded`] against [`espresso_bounded`] — bit-identical
//!    covers, completions, and (with `obs` on) byte-identical traces, on
//!    unlimited and tightly bounded budgets alike;
//! 3. the [`MinimizeCache`] — cache-on, cache-off, flat, and legacy lookups
//!    must all agree.

// Tests are exempt from the panic-freedom policy; clippy's in-tests
// exemption misses integration-test helpers, so waive it explicitly.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use picola_logic::{
    cube_and_into, cube_cofactor_into, cube_consensus_into, cube_contains, cube_distance,
    cube_is_valid, espresso_bounded, flat_eligible, flat_espresso_bounded, Budget, Cover,
    CoverEngine, Cube, Domain, DomainBuilder, FlatCover, FlatDomain, MinimizeCache,
    MinimizeOptions, MinimizeScratch, Trace,
};
use proptest::prelude::*;

/// Strategy: a random cover over `nvars` binary variables with up to
/// `max_cubes` cubes, each literal drawn from {0, 1, -}.
fn binary_cover(nvars: usize, max_cubes: usize) -> impl Strategy<Value = Cover> {
    let cube = proptest::collection::vec(0u8..3, nvars);
    proptest::collection::vec(cube, 0..=max_cubes).prop_map(move |cubes| {
        let dom = Domain::binary(nvars);
        let text: Vec<String> = cubes
            .iter()
            .map(|c| {
                c.iter()
                    .map(|&l| match l {
                        0 => '0',
                        1 => '1',
                        _ => '-',
                    })
                    .collect()
            })
            .collect();
        Cover::parse(&dom, &text.join(" "))
    })
}

/// A mixed binary/multi-valued, multi-word domain (one 70-part variable
/// pushes the stride to two words) plus random cubes over it.
fn mv_domain() -> Domain {
    DomainBuilder::new()
        .multi("s", 70)
        .binary("a")
        .binary("b")
        .multi("t", 5)
        .build()
}

fn mv_cube(dom: &Domain) -> impl Strategy<Value = Cube> {
    let dom = dom.clone();
    let lits = (
        proptest::collection::vec(any::<bool>(), 70),
        0u8..3,
        0u8..3,
        proptest::collection::vec(any::<bool>(), 5),
    );
    lits.prop_map(move |(s, a, b, t)| {
        let mut c = Cube::full(&dom);
        // keep every literal non-empty so the cube stays valid
        if s.iter().any(|&x| x) {
            for (p, keep) in s.iter().enumerate() {
                if !keep {
                    c.clear_part(p);
                }
            }
        }
        if a < 2 {
            c.restrict_binary(&dom, 1, a == 1);
        }
        if b < 2 {
            c.restrict_binary(&dom, 2, b == 1);
        }
        if t.iter().any(|&x| x) {
            let off = dom.var(3).offset();
            for (p, keep) in t.iter().enumerate() {
                if !keep {
                    c.clear_part(off + p);
                }
            }
        }
        c
    })
}

/// Whether any minterm lies in both covers. Like the legacy espresso
/// property tests, the differential corpus keeps `on` and `dc` point
/// disjoint — overlapping sets are outside the minimizer's contract.
fn overlaps(on: &Cover, dc: &Cover) -> bool {
    Cover::enumerate_points(on.domain())
        .iter()
        .any(|pt| on.covers_point(pt) && dc.covers_point(pt))
}

/// Runs both engines on the same inputs under equal budgets and asserts
/// covers, completions, and traces agree byte for byte.
fn assert_engines_agree(on: &Cover, dc: &Cover, limit: Option<u64>) -> Result<(), TestCaseError> {
    let base = || match limit {
        Some(l) => Budget::with_work_limit(l),
        None => Budget::unlimited(),
    };
    let legacy_trace = Trace::new();
    let legacy_budget = base().with_recorder(legacy_trace.recorder());
    let (lf, lc) = espresso_bounded(on, dc, &MinimizeOptions::default(), &legacy_budget);

    let flat_trace = Trace::new();
    let flat_budget = base().with_recorder(flat_trace.recorder());
    let mut scratch = MinimizeScratch::new();
    let (ff, fc) = flat_espresso_bounded(
        on,
        dc,
        &MinimizeOptions::default(),
        &flat_budget,
        &mut scratch,
    );

    prop_assert_eq!(&lf, &ff, "covers diverge (limit {:?})", limit);
    prop_assert_eq!(lc, fc, "completions diverge (limit {:?})", limit);
    prop_assert_eq!(
        legacy_trace.render(),
        flat_trace.render(),
        "traces diverge (limit {:?})",
        limit
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn flat_espresso_is_bit_identical_to_legacy(
        on in binary_cover(5, 8),
        dc in binary_cover(5, 3),
    ) {
        prop_assume!(!overlaps(&on, &dc));
        prop_assert!(flat_eligible(on.domain()));
        assert_engines_agree(&on, &dc, None)?;
    }

    #[test]
    fn flat_espresso_matches_legacy_under_tight_budgets(
        on in binary_cover(4, 6),
        dc in binary_cover(4, 2),
        limit in 0u64..12,
    ) {
        prop_assume!(!overlaps(&on, &dc));
        assert_engines_agree(&on, &dc, Some(limit))?;
    }

    #[test]
    fn flat_cover_roundtrips_any_cover(f in binary_cover(4, 6)) {
        let fc = FlatCover::from_cover(&f);
        prop_assert_eq!(fc.len(), f.len());
        prop_assert_eq!(fc.to_cover(f.domain()), f);
    }

    #[test]
    fn generic_kernels_mirror_cube_ops_on_mixed_domains(
        (a, b) in {
            let dom = mv_domain();
            (mv_cube(&dom), mv_cube(&dom))
        }
    ) {
        let dom = mv_domain();
        let fd = FlatDomain::new(&dom);
        prop_assert!(!flat_eligible(&dom), "this corpus must exercise the generic path");
        prop_assert_eq!(fd.words(), dom.words());

        prop_assert_eq!(cube_is_valid(&fd, a.words()), a.is_valid(&dom));
        prop_assert_eq!(cube_contains(a.words(), b.words()), a.covers(&b));
        prop_assert_eq!(cube_distance(&fd, a.words(), b.words()), a.distance(&b, &dom));

        let mut out = vec![0u64; fd.words()];
        cube_and_into(a.words(), b.words(), &mut out);
        let meet = a.and(&b);
        prop_assert_eq!(out.as_slice(), meet.words());

        let legacy_cons = a.consensus(&b, &dom);
        let got = cube_consensus_into(&fd, a.words(), b.words(), &mut out);
        prop_assert_eq!(got, legacy_cons.is_some());
        if let Some(k) = legacy_cons {
            prop_assert_eq!(out.as_slice(), k.words());
        }

        let legacy_cof = a.cofactor(&b, &dom);
        let got = cube_cofactor_into(&fd, a.words(), b.words(), &mut out);
        prop_assert_eq!(got, legacy_cof.is_some());
        if let Some(k) = legacy_cof {
            prop_assert_eq!(out.as_slice(), k.words());
        }
    }

    #[test]
    fn cache_on_off_and_both_engines_agree(
        on in binary_cover(4, 6),
        dc in binary_cover(4, 2),
    ) {
        prop_assume!(!overlaps(&on, &dc));
        let mut cached = MinimizeCache::new();
        let mut uncached = MinimizeCache::new();
        let reference = cached.minimized_cube_count(&on, &dc, CoverEngine::Flat);
        // repeat lookup (a hit when the feature is on) must agree
        prop_assert_eq!(
            cached.minimized_cube_count(&on, &dc, CoverEngine::Flat),
            reference
        );
        prop_assert_eq!(
            uncached.minimized_cube_count_uncached(&on, &dc, CoverEngine::Flat),
            reference
        );
        prop_assert_eq!(
            cached.minimized_cube_count(&on, &dc, CoverEngine::Legacy),
            reference
        );
    }
}
