//! Differential property tests: the Wide kernel backend against Scalar.
//!
//! The wide (AVX2 / portable) cube kernels behind the flat engine promise
//! **bit-identity**: the same covers, the same completions, and the same
//! byte-for-byte traces as the scalar loops, on every stride rung and under
//! every budget. That promise is load-bearing — `MinimizeCache` /
//! `GlobalMinimizeCache` keys, golden traces, and the SAT/legacy oracles
//! all assume a cube count is a pure function of its inputs, never of the
//! host's instruction set. This suite pins it down:
//!
//! 1. Wide vs Scalar runs of [`flat_espresso_bounded`] on randomized
//!    1/2/4/8-word multi-valued domains (part counts up to 70), unlimited
//!    and budget-degraded alike, must agree on covers, completions, and
//!    trace renders. `PICOLA_ORACLE_ORDER=flat-first` flips which backend
//!    runs first (the default is scalar first); CI runs both orders.
//! 2. Kernel counter conservation: every dispatched multi-word run bumps
//!    `kernel_dispatches` plus exactly one of `kernel_wide_calls` /
//!    `kernel_scalar_calls`, so wide + scalar == dispatched always.
//! 3. The Wide-exercised tripwire: with the `simd` feature on, a Wide-pinned
//!    multi-word run must actually take the wide path (`KernelWideCalls >
//!    0`, `KernelScalarCalls == 0`) — a silent fall-through to scalar would
//!    otherwise pass every bit-identity test while voiding the speedup.

// Tests are exempt from the panic-freedom policy; clippy's in-tests
// exemption misses integration-test helpers, so waive it explicitly.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use picola_logic::{
    flat_eligible, flat_espresso_bounded, set_backend_override, Budget, Completion, Cover, Cube,
    Domain, DomainBuilder, KernelBackend, MinimizeScratch, MinimizeOptions, Trace,
};
use proptest::prelude::*;

/// Restores the thread's previous backend override on drop, so a failing
/// assertion can't leak a pinned backend into later test cases.
struct BackendGuard(Option<KernelBackend>);

impl BackendGuard {
    fn pin(backend: KernelBackend) -> BackendGuard {
        BackendGuard(set_backend_override(Some(backend)))
    }
}

impl Drop for BackendGuard {
    fn drop(&mut self) {
        set_backend_override(self.0);
    }
}

/// A one-word multi-valued domain (10 parts): the `FixedW<1>` rung, which
/// never dispatches (it is pinned scalar on both backends).
fn one_word_mv_domain() -> Domain {
    DomainBuilder::new()
        .multi("s", 5)
        .binary("a")
        .multi("t", 3)
        .build()
}

/// A two-word mixed domain (one 70-part variable): the `FixedW<2>` rung.
fn two_word_mv_domain() -> Domain {
    DomainBuilder::new()
        .multi("s", 70)
        .binary("a")
        .binary("b")
        .multi("t", 5)
        .build()
}

/// A four-word mixed domain (210 parts): the `FixedW<4>` rung.
fn four_word_mv_domain() -> Domain {
    DomainBuilder::new()
        .multi("s", 70)
        .multi("t", 60)
        .binaries("x", 40)
        .build()
}

/// An eight-word mixed domain (504 parts): the dynamic-stride rung.
fn eight_word_mv_domain() -> Domain {
    DomainBuilder::new()
        .multi("s", 70)
        .multi("t", 64)
        .multi("u", 70)
        .binaries("x", 150)
        .build()
}

/// Restricts variable `v` of `c` to exactly the parts listed in `keep`
/// (which must be non-empty so the cube stays valid).
fn restrict_to_parts(dom: &Domain, c: &mut Cube, v: usize, keep: &[usize]) {
    let var = dom.var(v);
    for p in 0..var.parts() {
        if !keep.contains(&p) {
            c.clear_part(var.offset() + p);
        }
    }
}

/// One generated cube: the var-0 parts to keep, plus up to two extra
/// `(variable, kept parts)` restrictions.
type CubePick = (Vec<usize>, Vec<(usize, Vec<usize>)>);

/// Strategy: a disjoint `(on, dc)` cover pair over `dom`, structurally
/// disjoint on variable 0 (on-cubes keep only low-half parts, dc-cubes only
/// high-half parts). Same corpus shape as `prop_flat_cover.rs`.
fn mv_corpus(dom: Domain, max_on: usize, max_dc: usize) -> impl Strategy<Value = (Cover, Cover)> {
    let parts0 = dom.var(0).parts();
    let half = parts0 / 2;
    let nv = dom.num_vars();
    let extras =
        || proptest::collection::vec((1..nv, proptest::collection::vec(0usize..512, 1..=2)), 0..=2);
    let on_cube = (proptest::collection::vec(0usize..half, 1..=2), extras());
    let dc_cube = (proptest::collection::vec(half..parts0, 1..=2), extras());
    let on = proptest::collection::vec(on_cube, 1..=max_on);
    let dc = proptest::collection::vec(dc_cube, 0..=max_dc);
    (on, dc).prop_map(move |(on_picks, dc_picks)| {
        let build = |picks: Vec<CubePick>| {
            Cover::from_cubes(
                &dom,
                picks.into_iter().map(|(var0_keep, extra)| {
                    let mut c = Cube::full(&dom);
                    restrict_to_parts(&dom, &mut c, 0, &var0_keep);
                    // later picks of the same variable win outright, so a
                    // literal can never be narrowed twice into emptiness
                    let by_var: std::collections::BTreeMap<usize, Vec<usize>> =
                        extra.into_iter().collect();
                    for (v, keep) in by_var {
                        let parts = dom.var(v).parts();
                        let keep: Vec<usize> = keep.iter().map(|&p| p % parts).collect();
                        c.raise_var(&dom, v);
                        restrict_to_parts(&dom, &mut c, v, &keep);
                    }
                    c
                }),
            )
        };
        (build(on_picks), build(dc_picks))
    })
}

/// One minimization under a pinned backend, with the kernel counters read
/// back through `Trace::counter_total` (snapshots exclude them by design).
struct BackendRun {
    cover: Cover,
    completion: Completion,
    render: String,
    dispatches: u64,
    wide: u64,
    scalar: u64,
}

fn run_pinned(backend: KernelBackend, on: &Cover, dc: &Cover, limit: Option<u64>) -> BackendRun {
    use picola_logic::obs::Counter;
    let _pin = BackendGuard::pin(backend);
    let trace = Trace::new();
    let budget = match limit {
        Some(l) => Budget::with_work_limit(l),
        None => Budget::unlimited(),
    }
    .with_recorder(trace.recorder());
    let mut scratch = MinimizeScratch::new();
    let (cover, completion) =
        flat_espresso_bounded(on, dc, &MinimizeOptions::default(), &budget, &mut scratch);
    BackendRun {
        cover,
        completion,
        render: trace.render(),
        dispatches: trace.counter_total(Counter::KernelDispatches),
        wide: trace.counter_total(Counter::KernelWideCalls),
        scalar: trace.counter_total(Counter::KernelScalarCalls),
    }
}

/// Runs both backends on the same inputs and asserts covers, completions,
/// and trace renders agree byte for byte, plus counter conservation on
/// each run. Returns the two runs for rung-specific assertions.
fn assert_backends_agree(
    on: &Cover,
    dc: &Cover,
    limit: Option<u64>,
) -> Result<(BackendRun, BackendRun), TestCaseError> {
    // Reuse the oracle-order switch of the flat-vs-legacy suite: CI's
    // second order proves neither backend leaks state the other sees.
    let wide_first = std::env::var("PICOLA_ORACLE_ORDER").is_ok_and(|v| v == "flat-first");
    let (scalar, wide) = if wide_first {
        let w = run_pinned(KernelBackend::Wide, on, dc, limit);
        (run_pinned(KernelBackend::Scalar, on, dc, limit), w)
    } else {
        let s = run_pinned(KernelBackend::Scalar, on, dc, limit);
        (s, run_pinned(KernelBackend::Wide, on, dc, limit))
    };

    prop_assert_eq!(&scalar.cover, &wide.cover, "covers diverge (limit {:?})", limit);
    prop_assert_eq!(
        scalar.completion,
        wide.completion,
        "completions diverge (limit {:?})",
        limit
    );
    prop_assert_eq!(
        &scalar.render,
        &wide.render,
        "traces diverge (limit {:?})",
        limit
    );
    // Conservation: wide + scalar == dispatched, on each run separately.
    prop_assert_eq!(scalar.dispatches, scalar.wide + scalar.scalar);
    prop_assert_eq!(wide.dispatches, wide.wide + wide.scalar);
    // Dispatch counts are backend-invariant (same rungs, same calls).
    prop_assert_eq!(scalar.dispatches, wide.dispatches);
    // A Scalar-pinned run must never take the wide path.
    prop_assert_eq!(scalar.wide, 0);
    prop_assert_eq!(scalar.scalar, scalar.dispatches);
    Ok((scalar, wide))
}

/// The Wide-exercised tripwire for multi-word rungs: with the `simd`
/// feature compiled in, a Wide-pinned dispatched run must resolve wide
/// every time. Without the feature every request clamps to Scalar, and the
/// same run must land entirely on the scalar counter instead. Without
/// `obs` the counters are no-op stubs that always read zero, so there is
/// nothing to observe — the bit-identity assertions above still ran.
fn assert_wide_exercised(wide: &BackendRun) -> Result<(), TestCaseError> {
    if !cfg!(feature = "obs") {
        prop_assert_eq!(wide.dispatches + wide.wide + wide.scalar, 0);
        return Ok(());
    }
    prop_assert!(wide.dispatches > 0, "multi-word corpus must dispatch");
    if cfg!(feature = "simd") {
        prop_assert_eq!(wide.wide, wide.dispatches, "Wide selected but not exercised");
        prop_assert_eq!(wide.scalar, 0);
    } else {
        prop_assert_eq!(wide.wide, 0, "wide path must be compiled out");
        prop_assert_eq!(wide.scalar, wide.dispatches);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn backends_agree_one_word(
        (on, dc) in mv_corpus(one_word_mv_domain(), 5, 2),
    ) {
        prop_assert!(!flat_eligible(on.domain()), "must take the generic engine");
        prop_assert_eq!(on.domain().words(), 1);
        let (scalar, wide) = assert_backends_agree(&on, &dc, None)?;
        // The one-word rung is pinned scalar: no dispatches on either run.
        prop_assert_eq!(scalar.dispatches, 0);
        prop_assert_eq!(wide.dispatches + wide.wide + wide.scalar, 0);
    }

    #[test]
    fn backends_agree_two_word(
        (on, dc) in mv_corpus(two_word_mv_domain(), 5, 2),
    ) {
        prop_assert_eq!(on.domain().words(), 2);
        let (_, wide) = assert_backends_agree(&on, &dc, None)?;
        assert_wide_exercised(&wide)?;
    }

    #[test]
    fn backends_agree_under_tight_budgets(
        (on, dc) in mv_corpus(two_word_mv_domain(), 4, 2),
        limit in 0u64..12,
    ) {
        // Budget-degraded prefixes must agree too: same covers, same
        // completions, same trace — including limit 0 (scc'd on-set only).
        assert_backends_agree(&on, &dc, Some(limit))?;
    }
}

proptest! {
    // The wide tiers run fewer cases: 210- and 504-part domains make cube
    // construction itself the dominant cost of the suite.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn backends_agree_four_word(
        (on, dc) in mv_corpus(four_word_mv_domain(), 4, 2),
    ) {
        prop_assert_eq!(on.domain().words(), 4);
        let (_, wide) = assert_backends_agree(&on, &dc, None)?;
        assert_wide_exercised(&wide)?;
    }

    #[test]
    fn backends_agree_eight_word(
        (on, dc) in mv_corpus(eight_word_mv_domain(), 3, 1),
    ) {
        prop_assert_eq!(on.domain().words(), 8);
        let (_, wide) = assert_backends_agree(&on, &dc, None)?;
        assert_wide_exercised(&wide)?;
    }
}

/// The binary fast path never dispatches either — it is register code
/// shared by both backends. Deterministic, not property-based: one shot
/// suffices to pin the accounting.
#[test]
fn binary_fast_path_never_dispatches() {
    use picola_logic::obs::Counter;
    let dom = Domain::binary(4);
    let on = Cover::parse(&dom, "1--- -1-- --11");
    let dc = Cover::parse(&dom, "0000");
    assert!(flat_eligible(&dom));
    for backend in [KernelBackend::Scalar, KernelBackend::Wide] {
        let _pin = BackendGuard::pin(backend);
        let trace = Trace::new();
        let budget = Budget::unlimited().with_recorder(trace.recorder());
        let mut scratch = MinimizeScratch::new();
        let (f, _) =
            flat_espresso_bounded(&on, &dc, &MinimizeOptions::default(), &budget, &mut scratch);
        assert_eq!(f.len(), 3);
        assert_eq!(trace.counter_total(Counter::KernelDispatches), 0);
        assert_eq!(trace.counter_total(Counter::KernelWideCalls), 0);
        assert_eq!(trace.counter_total(Counter::KernelScalarCalls), 0);
    }
}
