//! Property-based tests of the logic substrate against brute-force oracles.

// Tests are exempt from the panic-freedom policy; clippy's in-tests
// exemption misses integration-test helpers, so waive it explicitly.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use picola_logic::{
    complement, cover_sharp, equivalent, espresso, exact_minimize, expand, implements,
    irredundant, parse_pla, reduce, tautology, verify_equivalent, write_pla, Cover, Cube,
    Domain, DomainBuilder, Pla, Verdict,
};
use proptest::prelude::*;

/// Strategy: a random cover over `nvars` binary variables with up to
/// `max_cubes` cubes, each literal drawn from {0, 1, -}.
fn binary_cover(nvars: usize, max_cubes: usize) -> impl Strategy<Value = Cover> {
    let cube = proptest::collection::vec(0u8..3, nvars);
    proptest::collection::vec(cube, 0..=max_cubes).prop_map(move |cubes| {
        let dom = Domain::binary(nvars);
        let text: Vec<String> = cubes
            .iter()
            .map(|c| {
                c.iter()
                    .map(|&l| match l {
                        0 => '0',
                        1 => '1',
                        _ => '-',
                    })
                    .collect()
            })
            .collect();
        Cover::parse(&dom, &text.join(" "))
    })
}

/// Strategy: a random cover over a domain with one multi-valued variable and
/// two binary variables.
fn mv_cover(parts: usize, max_cubes: usize) -> impl Strategy<Value = Cover> {
    let lit = proptest::collection::vec(any::<bool>(), parts);
    let cube = (lit, 0u8..3, 0u8..3);
    proptest::collection::vec(cube, 0..=max_cubes).prop_map(move |cubes| {
        let dom = DomainBuilder::new()
            .multi("s", parts)
            .binary("a")
            .binary("b")
            .build();
        let built = cubes.into_iter().filter_map(|(mv, a, b)| {
            if mv.iter().all(|&x| !x) {
                return None;
            }
            let mut c = Cube::full(&dom);
            for (p, keep) in mv.iter().enumerate() {
                if !keep {
                    c.clear_part(p);
                }
            }
            if a < 2 {
                c.restrict_binary(&dom, 1, a == 1);
            }
            if b < 2 {
                c.restrict_binary(&dom, 2, b == 1);
            }
            Some(c)
        });
        Cover::from_cubes(&dom, built)
    })
}

fn brute_equal(f: &Cover, g: &Cover) -> bool {
    Cover::enumerate_points(f.domain())
        .iter()
        .all(|pt| f.covers_point(pt) == g.covers_point(pt))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn complement_partitions_space(f in binary_cover(4, 6)) {
        let g = complement(&f);
        for pt in Cover::enumerate_points(f.domain()) {
            prop_assert_ne!(f.covers_point(&pt), g.covers_point(&pt));
        }
    }

    #[test]
    fn complement_partitions_mv_space(f in mv_cover(5, 6)) {
        let g = complement(&f);
        for pt in Cover::enumerate_points(f.domain()) {
            prop_assert_ne!(f.covers_point(&pt), g.covers_point(&pt));
        }
    }

    #[test]
    fn tautology_matches_brute_force(f in binary_cover(4, 6)) {
        let brute = Cover::enumerate_points(f.domain())
            .iter()
            .all(|pt| f.covers_point(pt));
        prop_assert_eq!(tautology(&f), brute);
    }

    #[test]
    fn equivalence_matches_brute_force(f in binary_cover(3, 4), g in binary_cover(3, 4)) {
        prop_assert_eq!(equivalent(&f, &g), brute_equal(&f, &g));
    }

    #[test]
    fn espresso_preserves_function(f in binary_cover(4, 7)) {
        let dc = Cover::empty(f.domain());
        let m = espresso(&f, &dc);
        prop_assert!(implements(&m, &f, &dc));
        prop_assert!(m.len() <= f.len().max(1));
    }

    #[test]
    fn espresso_preserves_mv_function(f in mv_cover(4, 6)) {
        let dc = Cover::empty(f.domain());
        let m = espresso(&f, &dc);
        prop_assert!(implements(&m, &f, &dc));
    }

    #[test]
    fn espresso_respects_dont_cares(on in binary_cover(4, 4), dc0 in binary_cover(4, 3)) {
        // Make dc disjoint from on by sharping brute-force points.
        let dom = on.domain().clone();
        let dc = Cover::from_cubes(&dom, dc0.iter().cloned());
        // Only meaningful when the sets do not overlap; skip otherwise.
        let overlap = Cover::enumerate_points(&dom)
            .iter()
            .any(|pt| on.covers_point(pt) && dc.covers_point(pt));
        prop_assume!(!overlap);
        let m = espresso(&on, &dc);
        prop_assert!(implements(&m, &on, &dc));
    }

    #[test]
    fn expand_is_sound(f in binary_cover(4, 5)) {
        prop_assume!(!f.is_empty());
        let off = complement(&f);
        let e = expand(&f, &off);
        // e covers f and intersects no off cube
        for c in f.iter() {
            prop_assert!(tautology(&e.cofactor(c)));
        }
        for c in e.iter() {
            for o in off.iter() {
                prop_assert!(!c.intersects(o, f.domain()));
            }
        }
    }

    #[test]
    fn reduce_then_expand_preserves(f in binary_cover(4, 5)) {
        prop_assume!(!f.is_empty());
        let dc = Cover::empty(f.domain());
        let r = reduce(&f, &dc);
        prop_assert!(implements(&r, &f, &dc));
        let ir = irredundant(&r, &dc);
        prop_assert!(implements(&ir, &f, &dc));
    }

    #[test]
    fn exact_is_no_worse_than_espresso(f in binary_cover(3, 5)) {
        let dc = Cover::empty(f.domain());
        let exact = exact_minimize(&f, &dc, 200_000);
        let heur = espresso(&f, &dc);
        prop_assert!(exact.cover().len() <= heur.len());
        prop_assert!(implements(exact.cover(), &f, &dc));
    }

    #[test]
    fn sharp_matches_brute_force(f in binary_cover(4, 5), g in binary_cover(4, 5)) {
        let s = cover_sharp(&f, &g);
        for pt in Cover::enumerate_points(f.domain()) {
            prop_assert_eq!(
                s.covers_point(&pt),
                f.covers_point(&pt) && !g.covers_point(&pt),
                "point {:?}", pt
            );
        }
    }

    #[test]
    fn verify_witnesses_are_genuine(f in binary_cover(4, 5), g in binary_cover(4, 5)) {
        match verify_equivalent(&f, &g) {
            Verdict::Equivalent => prop_assert!(equivalent(&f, &g)),
            Verdict::LeftOnly(p) => {
                prop_assert!(f.covers_point(&p) && !g.covers_point(&p));
            }
            Verdict::RightOnly(p) => {
                prop_assert!(!f.covers_point(&p) && g.covers_point(&p));
            }
        }
    }

    #[test]
    fn pla_roundtrip(f in binary_cover(4, 6)) {
        let dom = f.domain().clone();
        prop_assume!(!f.is_empty());
        // Lift the input cover into a PLA with one output.
        let mut pla = Pla::new(4, 1);
        let pdom = pla.domain.clone();
        for c in f.iter() {
            let mut q = Cube::full(&pdom);
            for v in 0..4 {
                for p in 0..2 {
                    if !c.has_part(dom.var(v).offset() + p) {
                        q.clear_part(pdom.var(v).offset() + p);
                    }
                }
            }
            pla.on.push(q);
        }
        let text = write_pla(&pla);
        let back = parse_pla(&text).unwrap();
        prop_assert!(equivalent(&pla.on, &back.on));
    }
}
