//! Property tests for the SAT layer: the CDCL core, the DIMACS codec, and
//! the face-constraint CNF compiler — each checked against an oracle that
//! shares *no* code with the thing under test.
//!
//! 1. the solver against exhaustive truth-table enumeration on small random
//!    formulas (verdict and, when SAT, the model itself);
//! 2. `to_dimacs` / `parse_dimacs` as an exact round trip;
//! 3. compiled face CNFs: every SAT model decodes to an injective encoding
//!    whose covers are verified with raw integer arithmetic;
//! 4. UNSAT certificates: at `optimum - 1` the formula must be unsatisfiable
//!    and at `optimum` satisfiable, where the optimum comes from brute-force
//!    enumeration of all injective encodings and exact set-cover search.

// Tests are exempt from the panic-freedom policy; clippy's in-tests
// exemption misses integration-test helpers, so waive it explicitly.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use picola_logic::sat::{Cnf, FaceProblem, Lit, SatOutcome, Solver};
use picola_logic::Budget;
use proptest::prelude::*;

fn solve(cnf: &Cnf) -> SatOutcome {
    Solver::from_cnf(cnf).solve(&Budget::unlimited())
}

/// Strategy: a random CNF over `nvars` variables — clause literals drawn
/// with replacement, so duplicates and tautologies exercise the
/// `add_clause` normalizer too.
fn random_cnf(nvars: usize, max_clauses: usize) -> impl Strategy<Value = Cnf> {
    let lit = (0..nvars, any::<bool>());
    let clause = proptest::collection::vec(lit, 1..=4);
    proptest::collection::vec(clause, 0..=max_clauses).prop_map(move |clauses| {
        let mut cnf = Cnf::new();
        // Pin the variable count so formulas with unused high variables
        // round-trip exactly.
        for _ in 0..nvars {
            cnf.new_var();
        }
        for c in clauses {
            let lits: Vec<Lit> = c
                .into_iter()
                .map(|(v, pos)| if pos { Lit::pos(v) } else { Lit::neg(v) })
                .collect();
            cnf.add_clause(&lits);
        }
        cnf
    })
}

/// Exhaustive truth-table verdict for a small CNF: the satisfying
/// assignment with the lowest bit pattern, or `None`.
fn enumerate(cnf: &Cnf) -> Option<u64> {
    let nv = cnf.num_vars();
    assert!(nv <= 16, "enumeration oracle is exponential");
    (0u64..(1u64 << nv)).find(|&bits| {
        cnf.clauses().iter().all(|clause| {
            clause.iter().any(|l| {
                let assigned = bits >> l.var() & 1 == 1;
                assigned == l.is_pos()
            })
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn solver_agrees_with_truth_table_enumeration(cnf in random_cnf(9, 24)) {
        let expected_sat = enumerate(&cnf).is_some();
        match solve(&cnf) {
            SatOutcome::Sat(model) => {
                prop_assert!(expected_sat, "solver claims SAT on an UNSAT formula");
                // The model must actually satisfy every clause — checked
                // directly, not via the enumerator.
                for clause in cnf.clauses() {
                    prop_assert!(
                        clause.iter().any(|l| model[l.var()] == l.is_pos()),
                        "model violates clause {clause:?}"
                    );
                }
            }
            SatOutcome::Unsat => prop_assert!(!expected_sat, "solver claims UNSAT on a SAT formula"),
            SatOutcome::Unknown => prop_assert!(false, "unlimited budget must decide"),
        }
    }

    #[test]
    fn dimacs_round_trips_exactly(cnf in random_cnf(12, 30)) {
        let text = cnf.to_dimacs();
        let parsed = Cnf::parse_dimacs(&text).expect("own output must parse");
        prop_assert_eq!(&parsed, &cnf, "parse(print(cnf)) != cnf");
        // And printing is a fixed point after one round.
        prop_assert_eq!(parsed.to_dimacs(), text);
    }
}

/// Minimum code length for `n` symbols, derived independently of the
/// constraints crate (`>= 1`, and `2^nv >= n`).
fn nv_for(n: usize) -> usize {
    let mut nv = 1;
    while (1usize << nv) < n {
        nv += 1;
    }
    nv
}

/// Strategy: a small face problem — `n` symbols at minimum code length with
/// 1–3 random member groups of size >= 2. (The vendored proptest has no
/// flat-map, so raw picks are drawn wide and folded into range by `% n`.)
fn face_problem(max_n: usize) -> impl Strategy<Value = FaceProblem> {
    let picks = proptest::collection::vec(proptest::collection::vec(0usize..64, 4), 3);
    (3..=max_n, 1..=3usize, picks).prop_map(move |(n, count, raw)| {
        let groups = raw
            .into_iter()
            .take(count)
            .map(|p| {
                let mut g: Vec<usize> = p.into_iter().map(|x| x % n).collect();
                g.sort_unstable();
                g.dedup();
                if g.len() < 2 {
                    g.push((g[0] + 1) % n);
                    g.sort_unstable();
                }
                g
            })
            .collect();
        FaceProblem {
            n,
            nv: nv_for(n),
            groups,
        }
    })
}

/// Raw-arithmetic model check: codes injective and in range, every member
/// covered by a selected cube, no cube touching a non-member, total cube
/// count within the bound.
fn check_model(p: &FaceProblem, compiled: &picola_logic::sat::FaceCnf, model: &[bool]) {
    let codes = compiled.decode_codes(model);
    assert_eq!(codes.len(), p.n);
    for (s, &c) in codes.iter().enumerate() {
        assert!((c as u64) < (1u64 << p.nv), "code {c} of symbol {s} out of range");
        for (t, &d) in codes.iter().enumerate().skip(s + 1) {
            assert_ne!(c, d, "symbols {s} and {t} share code {c}");
        }
    }
    let covers = compiled.decode_covers(model);
    assert_eq!(covers.len(), p.groups.len());
    let total: usize = covers.iter().map(Vec::len).sum();
    assert!(total <= compiled.bound, "{total} cubes exceed bound {}", compiled.bound);
    for (g, cover) in p.groups.iter().zip(&covers) {
        for &m in g {
            assert!(
                cover.iter().any(|&(mask, val)| codes[m] & mask == val),
                "member {m} not covered"
            );
        }
        for &(mask, val) in cover {
            for t in (0..p.n).filter(|t| !g.contains(t)) {
                assert_ne!(codes[t] & mask, val, "cube ({mask:#b},{val:#b}) covers non-member {t}");
            }
        }
    }
}

/// Exact minimum SOP cover size for on-set `on` against off-set `off` over
/// the `nv`-cube (vertex sets as bitmasks over `2^nv` points): enumerate
/// every off-free cube, then branch-and-bound set cover on the lowest
/// uncovered vertex.
fn min_cover(nv: usize, on: u32, off: u32) -> usize {
    if on == 0 {
        return 0;
    }
    let mut cands: Vec<u32> = Vec::new();
    for mask in 0u32..(1 << nv) {
        for val in 0u32..(1 << nv) {
            if val & !mask != 0 {
                continue;
            }
            let mut verts = 0u32;
            for v in 0..(1u32 << nv) {
                if v & mask == val {
                    verts |= 1 << v;
                }
            }
            if verts & off == 0 {
                cands.push(verts & on);
            }
        }
    }
    fn rec(on: u32, covered: u32, cands: &[u32], depth: usize, best: &mut usize) {
        if depth >= *best {
            return;
        }
        let rem = on & !covered;
        if rem == 0 {
            *best = depth;
            return;
        }
        let lowest = rem & rem.wrapping_neg();
        for &c in cands {
            if c & lowest != 0 {
                rec(on, covered | c, cands, depth + 1, best);
            }
        }
    }
    let mut best = on.count_ones() as usize; // singleton cubes always work
    rec(on, 0, &cands, 0, &mut best);
    best
}

/// True optimum by brute force: every injective placement of the `n`
/// symbols on the `2^nv` vertices, costed with [`min_cover`] per group.
fn brute_optimum(p: &FaceProblem) -> usize {
    let verts = 1usize << p.nv;
    assert!(p.n <= verts && verts <= 8, "oracle is factorial");
    fn rec(p: &FaceProblem, codes: &mut Vec<u32>, used: &mut [bool], best: &mut usize) {
        if codes.len() == p.n {
            let mut cost = 0usize;
            for g in &p.groups {
                let mut on = 0u32;
                let mut off = 0u32;
                for (s, &c) in codes.iter().enumerate() {
                    if g.contains(&s) {
                        on |= 1 << c;
                    } else {
                        off |= 1 << c;
                    }
                }
                cost += min_cover(p.nv, on, off);
                if cost >= *best {
                    return;
                }
            }
            *best = cost;
            return;
        }
        for v in 0..used.len() {
            if !used[v] {
                used[v] = true;
                codes.push(v as u32);
                rec(p, codes, used, best);
                codes.pop();
                used[v] = false;
            }
        }
    }
    let mut best = p.groups.iter().map(|g| g.len()).sum::<usize>().max(1);
    rec(p, &mut Vec::new(), &mut vec![false; verts], &mut best);
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn face_models_decode_to_valid_encodings(p in face_problem(8)) {
        // A generous bound (singleton cubes for every member) is always
        // satisfiable; the decoded model must survive the raw arithmetic
        // checks.
        let bound = p.groups.iter().map(Vec::len).sum();
        let compiled = p.compile(bound);
        match solve(&compiled.cnf) {
            SatOutcome::Sat(model) => check_model(&p, &compiled, &model),
            other => prop_assert!(false, "generous bound must be SAT, got {other:?}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn unsat_certificates_match_exhaustive_enumeration(p in face_problem(5)) {
        // nv <= 3 here, so the factorial oracle is cheap. The compiled
        // formula must flip from SAT to UNSAT exactly at the true optimum.
        let opt = brute_optimum(&p);
        let at_opt = p.compile(opt);
        match solve(&at_opt.cnf) {
            SatOutcome::Sat(model) => check_model(&p, &at_opt, &model),
            other => prop_assert!(false, "bound {opt} must be SAT, got {other:?}"),
        }
        if opt > 0 {
            let below = p.compile(opt - 1);
            prop_assert_eq!(
                solve(&below.cnf),
                SatOutcome::Unsat,
                "bound {} must be UNSAT — brute-force optimum is {}",
                opt - 1,
                opt
            );
        }
    }
}
