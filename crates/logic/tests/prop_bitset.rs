//! Property-based tests of the bitset kernels against naive per-bit
//! references: [`WordSet`] operations versus a `BTreeSet` model, and the
//! fold-OR signature prefilter inside [`Cover::scc`] versus a
//! prefilter-free reference implementation.

// Tests are exempt from the panic-freedom policy; clippy's in-tests
// exemption misses integration-test helpers, so waive it explicitly.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use picola_logic::{Cover, Cube, Domain, DomainBuilder, WordSet};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Strategy: a universe size plus a sequence of (op, raw index) pairs.
/// Indices are reduced modulo the universe so every op stays in range.
fn op_sequence() -> impl Strategy<Value = (usize, Vec<(u8, usize)>)> {
    let len = 1usize..200;
    let ops = proptest::collection::vec((0u8..2, 0usize..10_000), 0..80);
    (len, ops)
}

/// Strategy: a member list for a universe of `len` bits (raw values are
/// reduced modulo `len`, duplicates intentionally allowed).
fn member_list() -> impl Strategy<Value = (usize, Vec<usize>, Vec<usize>)> {
    let len = 1usize..200;
    let xs = proptest::collection::vec(0usize..10_000, 0..80);
    let ys = proptest::collection::vec(0usize..10_000, 0..80);
    (len, xs, ys)
}

/// Strategy: a random cover over `nvars` binary variables with up to
/// `max_cubes` cubes, each literal drawn from {0, 1, -}.
fn binary_cover(nvars: usize, max_cubes: usize) -> impl Strategy<Value = Cover> {
    let cube = proptest::collection::vec(0u8..3, nvars);
    proptest::collection::vec(cube, 0..=max_cubes).prop_map(move |cubes| {
        let dom = Domain::binary(nvars);
        let text: Vec<String> = cubes
            .iter()
            .map(|c| {
                c.iter()
                    .map(|&l| match l {
                        0 => '0',
                        1 => '1',
                        _ => '-',
                    })
                    .collect()
            })
            .collect();
        Cover::parse(&dom, &text.join(" "))
    })
}

/// Strategy: a random cover over a wide multi-valued variable plus one
/// binary variable. With `parts > 62` the cube spans several words, so the
/// fold-OR signature is a lossy summary and the prefilter must fall back to
/// the exact per-word sweep — the interesting regime for `scc`.
fn wide_mv_cover(parts: usize, max_cubes: usize) -> impl Strategy<Value = Cover> {
    let lit = proptest::collection::vec(any::<bool>(), parts);
    let cube = (lit, 0u8..3);
    proptest::collection::vec(cube, 0..=max_cubes).prop_map(move |cubes| {
        let dom = DomainBuilder::new().multi("s", parts).binary("a").build();
        let built = cubes.into_iter().filter_map(|(mv, a)| {
            if mv.iter().all(|&x| !x) {
                return None;
            }
            let mut c = Cube::full(&dom);
            for (p, keep) in mv.iter().enumerate() {
                if !keep {
                    c.clear_part(p);
                }
            }
            if a < 2 {
                c.restrict_binary(&dom, 1, a == 1);
            }
            Some(c)
        });
        Cover::from_cubes(&dom, built)
    })
}

/// Prefilter-free reference for [`Cover::scc`]: the same stable sort by
/// descending part count, then a plain quadratic keep loop that calls
/// [`Cube::covers`] on every (kept, candidate) pair.
fn reference_scc(cover: &Cover) -> Vec<Cube> {
    let mut cubes = cover.cubes().to_vec();
    cubes.sort_by_key(|c| std::cmp::Reverse(c.part_count()));
    let mut kept: Vec<Cube> = Vec::with_capacity(cubes.len());
    'outer: for c in cubes {
        for k in &kept {
            if k.covers(&c) {
                continue 'outer;
            }
        }
        kept.push(c);
    }
    kept
}

fn assert_scc_matches_reference(mut f: Cover) -> Result<(), TestCaseError> {
    let expected = reference_scc(&f);
    f.scc();
    prop_assert_eq!(f.cubes(), expected.as_slice());
    // The kept cubes form an antichain under containment.
    for (i, a) in f.cubes().iter().enumerate() {
        for (j, b) in f.cubes().iter().enumerate() {
            if i != j {
                prop_assert!(!a.covers(b), "kept cube {i} covers kept cube {j}");
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn wordset_matches_btreeset_under_op_sequences((len, ops) in op_sequence()) {
        let mut ws = WordSet::new(len);
        let mut model = BTreeSet::new();
        for (op, raw) in ops {
            let i = raw % len;
            match op {
                0 => {
                    ws.insert(i);
                    model.insert(i);
                }
                _ => {
                    ws.remove(i);
                    model.remove(&i);
                }
            }
            prop_assert_eq!(ws.contains(i), model.contains(&i));
            prop_assert_eq!(ws.count(), model.len());
            prop_assert_eq!(ws.is_empty(), model.is_empty());
        }
        let got: Vec<usize> = ws.iter_ones().collect();
        let want: Vec<usize> = model.iter().copied().collect();
        prop_assert_eq!(got, want, "iter_ones must yield ascending members");
    }

    #[test]
    fn from_members_matches_incremental_inserts((len, members, _) in member_list()) {
        let reduced: Vec<usize> = members.iter().map(|&m| m % len).collect();
        let bulk = WordSet::from_members(len, reduced.iter().copied());
        let mut incremental = WordSet::new(len);
        for &m in &reduced {
            incremental.insert(m);
        }
        prop_assert_eq!(&bulk, &incremental);
        let model: BTreeSet<usize> = reduced.into_iter().collect();
        prop_assert_eq!(bulk.count(), model.len());
        for i in 0..len {
            prop_assert_eq!(bulk.contains(i), model.contains(&i));
        }
    }

    #[test]
    fn union_and_intersection_match_set_ops((len, xs, ys) in member_list()) {
        let a_model: BTreeSet<usize> = xs.iter().map(|&m| m % len).collect();
        let b_model: BTreeSet<usize> = ys.iter().map(|&m| (m / 7) % len).collect();
        let a = WordSet::from_members(len, a_model.iter().copied());
        let b = WordSet::from_members(len, b_model.iter().copied());

        let mut union = a.clone();
        union.union_with(&b);
        let union_model: Vec<usize> = a_model.union(&b_model).copied().collect();
        prop_assert_eq!(union.iter_ones().collect::<Vec<_>>(), union_model);

        let mut inter = a.clone();
        inter.intersect_with(&b);
        let inter_model: Vec<usize> = a_model.intersection(&b_model).copied().collect();
        prop_assert_eq!(inter.iter_ones().collect::<Vec<_>>(), inter_model);

        prop_assert_eq!(a.intersects(&b), !inter_model.is_empty());
    }

    // The fold-OR signature prefilter may only skip pairs the exact sweep
    // would reject anyway: with it on, `scc` must keep exactly the cubes
    // the prefilter-free reference keeps, in the same order.
    #[test]
    fn scc_matches_prefilter_free_reference(f in binary_cover(6, 10)) {
        assert_scc_matches_reference(f)?;
    }

    // Wide multi-valued cubes span several words, so the folded signature
    // is lossy (distinct multi-word patterns can fold to the same u64) and
    // the prefilter can pass pairs the exact sweep then rejects.
    #[test]
    fn scc_matches_reference_on_multi_word_cubes(f in wide_mv_cover(70, 8)) {
        assert_scc_matches_reference(f)?;
    }

    #[test]
    fn scc_preserves_the_function(f in binary_cover(4, 8)) {
        let mut g = f.clone();
        g.scc();
        prop_assert!(g.cubes().len() <= f.cubes().len());
        for pt in Cover::enumerate_points(f.domain()) {
            prop_assert_eq!(f.covers_point(&pt), g.covers_point(&pt));
        }
    }
}
