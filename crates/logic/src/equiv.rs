//! Cover containment and equivalence checks.

use crate::cover::Cover;
use crate::cube::Cube;
use crate::urp::tautology;

/// Whether cover `f` covers cube `c` (i.e. `c ⊆ f`), decided by checking the
/// cofactor of `f` with respect to `c` for tautology.
pub fn cover_covers_cube(f: &Cover, c: &Cube) -> bool {
    tautology(&f.cofactor(c))
}

/// Whether `g ⊆ f` as sets of minterms.
pub fn cover_contains(f: &Cover, g: &Cover) -> bool {
    g.iter().all(|c| cover_covers_cube(f, c))
}

/// Whether `f` and `g` cover exactly the same minterms.
///
/// # Examples
///
/// ```
/// use picola_logic::{equivalent, Cover, Domain};
///
/// let dom = Domain::binary(2);
/// let f = Cover::parse(&dom, "1- -1");
/// let g = Cover::parse(&dom, "1- 01");
/// assert!(equivalent(&f, &g));
/// ```
pub fn equivalent(f: &Cover, g: &Cover) -> bool {
    cover_contains(f, g) && cover_contains(g, f)
}

/// Whether `f` is a legal implementation of the incompletely specified
/// function with on-set `on` and don't-care set `dc`:
/// `on ⊆ f ⊆ on ∪ dc`.
pub fn implements(f: &Cover, on: &Cover, dc: &Cover) -> bool {
    let upper = on.union(dc);
    cover_contains(f, on) && cover_contains(&upper, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;

    #[test]
    fn containment_basic() {
        let dom = Domain::binary(3);
        let f = Cover::parse(&dom, "1-- -1-");
        let g = Cover::parse(&dom, "11- 10-");
        assert!(cover_contains(&f, &g));
        assert!(!cover_contains(&g, &f));
    }

    #[test]
    fn equivalence_of_different_forms() {
        let dom = Domain::binary(3);
        // xy + x'z == xy + x'z + yz (consensus cube is redundant)
        let f = Cover::parse(&dom, "11- 0-1");
        let g = Cover::parse(&dom, "11- 0-1 -11");
        assert!(equivalent(&f, &g));
    }

    #[test]
    fn implements_respects_dc_bounds() {
        let dom = Domain::binary(2);
        let on = Cover::parse(&dom, "11");
        let dc = Cover::parse(&dom, "10");
        let f = Cover::parse(&dom, "1-");
        assert!(implements(&f, &on, &dc));
        let g = Cover::parse(&dom, "--");
        assert!(!implements(&g, &on, &dc));
        let h = Cover::parse(&dom, "01");
        assert!(!implements(&h, &on, &dc));
    }
}
