//! Witness-producing verification of covers.
//!
//! [`crate::equivalent`] answers yes/no; the checkers here return a concrete
//! *witness minterm* when the answer is no, which turns a failing
//! equivalence check into an actionable counterexample (and powers the
//! library's own debugging).

use crate::cover::Cover;
use crate::cube::Cube;
use crate::domain::Domain;
use crate::sharp::cover_sharp;

/// A point of the domain, one part offset per variable — a minterm.
pub type Point = Vec<usize>;

/// Finds a minterm covered by `f` but not by `g`, if any.
///
/// Works by sharping `f # g` and materializing one point of the first
/// residue cube — no exponential enumeration.
pub fn find_point_in_difference(f: &Cover, g: &Cover) -> Option<Point> {
    let diff = cover_sharp(f, g);
    diff.cubes().first().map(|c| first_point_of(f.domain(), c))
}

/// The lexicographically first minterm inside a cube.
pub fn first_point_of(dom: &Domain, c: &Cube) -> Point {
    (0..dom.num_vars())
        .map(|v| {
            dom.var(v)
                .part_range()
                .position(|p| c.has_part(p))
                // Cover never stores invalid cubes (every variable has at
                // least one part set), so this branch cannot be taken.
                .unwrap_or_else(|| unreachable!("valid cube has a part per variable"))
        })
        .collect()
}

/// Result of a verification: equal, or a witness of the difference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The covers agree on every minterm.
    Equivalent,
    /// `left` covers this minterm, `right` does not.
    LeftOnly(Point),
    /// `right` covers this minterm, `left` does not.
    RightOnly(Point),
}

/// Compares two covers, returning a witness on mismatch.
///
/// # Examples
///
/// ```
/// use picola_logic::{verify_equivalent, Cover, Domain, Verdict};
///
/// let dom = Domain::binary(2);
/// let f = Cover::parse(&dom, "1-");
/// let g = Cover::parse(&dom, "1- 01");
/// match verify_equivalent(&f, &g) {
///     Verdict::RightOnly(point) => assert_eq!(point, vec![0, 1]),
///     other => panic!("expected a right-only witness, got {other:?}"),
/// }
/// ```
pub fn verify_equivalent(left: &Cover, right: &Cover) -> Verdict {
    if let Some(p) = find_point_in_difference(left, right) {
        return Verdict::LeftOnly(p);
    }
    if let Some(p) = find_point_in_difference(right, left) {
        return Verdict::RightOnly(p);
    }
    Verdict::Equivalent
}

/// Checks that `f` implements the incompletely-specified function
/// `(on, dc)`, returning a witness minterm on violation: either an on-set
/// point `f` misses or a point `f` asserts outside `on ∪ dc`.
pub fn verify_implements(f: &Cover, on: &Cover, dc: &Cover) -> Result<(), Verdict> {
    if let Some(p) = find_point_in_difference(on, f) {
        return Err(Verdict::RightOnly(p)); // on-set point missing from f
    }
    let upper = on.union(dc);
    if let Some(p) = find_point_in_difference(f, &upper) {
        return Err(Verdict::LeftOnly(p)); // f overshoots the upper bound
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equivalent_covers_get_no_witness() {
        let dom = Domain::binary(3);
        let f = Cover::parse(&dom, "11- 0-1");
        let g = Cover::parse(&dom, "11- 0-1 -11"); // consensus cube redundant
        assert_eq!(verify_equivalent(&f, &g), Verdict::Equivalent);
    }

    #[test]
    fn witness_identifies_the_direction() {
        let dom = Domain::binary(2);
        let f = Cover::parse(&dom, "1- 01");
        let g = Cover::parse(&dom, "1-");
        match verify_equivalent(&f, &g) {
            Verdict::LeftOnly(p) => {
                assert!(f.covers_point(&p));
                assert!(!g.covers_point(&p));
            }
            other => panic!("expected LeftOnly, got {other:?}"),
        }
    }

    #[test]
    fn implements_witnesses_both_failure_modes() {
        let dom = Domain::binary(2);
        let on = Cover::parse(&dom, "11");
        let dc = Cover::parse(&dom, "10");
        // missing on-set point
        let too_small = Cover::parse(&dom, "10");
        assert!(verify_implements(&too_small, &on, &dc).is_err());
        // overshooting the upper bound
        let too_big = Cover::parse(&dom, "--");
        assert!(verify_implements(&too_big, &on, &dc).is_err());
        // just right
        let ok = Cover::parse(&dom, "1-");
        assert!(verify_implements(&ok, &on, &dc).is_ok());
    }

    #[test]
    fn first_point_is_inside_the_cube() {
        let dom = Domain::binary(3);
        let c = Cover::parse(&dom, "-10").cubes()[0].clone();
        let p = first_point_of(&dom, &c);
        assert_eq!(p, vec![0, 1, 0]);
    }

    #[test]
    fn agrees_with_brute_force_on_samples() {
        let dom = Domain::binary(4);
        let f = Cover::parse(&dom, "1--- --11");
        let g = Cover::parse(&dom, "1-1- --11 10--");
        match verify_equivalent(&f, &g) {
            Verdict::Equivalent => {
                for pt in Cover::enumerate_points(&dom) {
                    assert_eq!(f.covers_point(&pt), g.covers_point(&pt));
                }
            }
            Verdict::LeftOnly(p) => {
                assert!(f.covers_point(&p) && !g.covers_point(&p));
            }
            Verdict::RightOnly(p) => {
                assert!(!f.covers_point(&p) && g.covers_point(&p));
            }
        }
    }
}
