//! Positional-notation cubes.
//!
//! A [`Cube`] is a bit-set over the parts of a [`Domain`]: bit `p` set means
//! the cube admits the value corresponding to part `p`. A binary literal `1`
//! is `10₂` over the variable's two parts read `(bit0, bit1)`, a don't-care is
//! `11₂`, and a multi-valued literal is an arbitrary non-empty subset of the
//! variable's parts. A cube with an *empty* literal in some variable denotes
//! the empty set of minterms; such cubes are never kept inside covers.

use crate::domain::Domain;
use std::fmt;

/// A product term in positional cube notation over some [`Domain`].
///
/// Cubes are plain bit-set values; they do not carry their domain, so all
/// domain-dependent operations take it as a parameter. The invariant that bits
/// above the domain's `total_parts` are zero is maintained by every operation,
/// making `Eq`/`Hash` structural.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Cube {
    words: Vec<u64>,
}

impl Cube {
    /// The universal cube (all parts of all variables admitted).
    pub fn full(dom: &Domain) -> Self {
        Cube {
            words: dom.full_words().to_vec(),
        }
    }

    /// A cube with *no* part admitted anywhere (the canonical empty cube).
    pub fn empty(dom: &Domain) -> Self {
        Cube {
            words: vec![0; dom.words()],
        }
    }

    /// Wraps raw bit-set words as a cube. The caller guarantees bits above
    /// the domain's `total_parts` are zero (the flat kernels maintain that
    /// invariant by masking every operation with the domain's full words).
    pub(crate) fn from_raw_words(words: Vec<u64>) -> Self {
        Cube { words }
    }

    /// Raw words of the bit-set.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Whether global part `p` is admitted.
    pub fn has_part(&self, p: usize) -> bool {
        self.words[p / 64] & (1u64 << (p % 64)) != 0
    }

    /// Admits global part `p`.
    pub fn set_part(&mut self, p: usize) {
        self.words[p / 64] |= 1u64 << (p % 64);
    }

    /// Removes global part `p`.
    pub fn clear_part(&mut self, p: usize) {
        self.words[p / 64] &= !(1u64 << (p % 64));
    }

    /// Restricts variable `var` to exactly the given value (part offset
    /// within the variable).
    pub fn restrict(&mut self, dom: &Domain, var: usize, value: usize) {
        let v = dom.var(var);
        assert!(value < v.parts(), "value {value} out of range for {}", v.name());
        for p in v.part_range() {
            self.clear_part(p);
        }
        self.set_part(v.offset() + value);
    }

    /// Restricts a binary variable to `0` or `1`.
    pub fn restrict_binary(&mut self, dom: &Domain, var: usize, value: bool) {
        self.restrict(dom, var, usize::from(value));
    }

    /// Widens variable `var` back to a full (don't-care) literal.
    pub fn raise_var(&mut self, dom: &Domain, var: usize) {
        for p in dom.var(var).part_range() {
            self.set_part(p);
        }
    }

    /// Intersection (bitwise AND). The result may be an empty cube; check
    /// with [`Cube::is_valid`].
    pub fn and(&self, other: &Cube) -> Cube {
        Cube {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & b)
                .collect(),
        }
    }

    /// Supercube (bitwise OR): the smallest cube containing both.
    pub fn or(&self, other: &Cube) -> Cube {
        Cube {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a | b)
                .collect(),
        }
    }

    /// In-place supercube accumulation.
    pub fn or_assign(&mut self, other: &Cube) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Whether `self` contains `other` as a set of minterms (bitwise ⊇).
    pub fn covers(&self, other: &Cube) -> bool {
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| b & !a == 0)
    }

    /// Whether every variable's literal is non-empty, i.e. the cube denotes a
    /// non-empty set of minterms.
    pub fn is_valid(&self, dom: &Domain) -> bool {
        (0..dom.num_vars()).all(|v| !self.var_is_empty(dom, v))
    }

    /// Whether the literal of variable `var` is empty.
    pub fn var_is_empty(&self, dom: &Domain, var: usize) -> bool {
        self.var_part_count(dom, var) == 0
    }

    /// Whether the literal of variable `var` is full (don't-care).
    pub fn var_is_full(&self, dom: &Domain, var: usize) -> bool {
        self.var_part_count(dom, var) == dom.var(var).parts()
    }

    /// Number of parts admitted in variable `var`.
    pub fn var_part_count(&self, dom: &Domain, var: usize) -> usize {
        dom.var(var)
            .part_range()
            .filter(|&p| self.has_part(p))
            .count()
    }

    /// Parts admitted in variable `var`, as offsets within the variable, in
    /// ascending order. Allocation-free: the returned iterator walks the
    /// variable's part range directly instead of collecting a `Vec`.
    pub fn var_parts<'c>(
        &'c self,
        dom: &Domain,
        var: usize,
    ) -> impl Iterator<Item = usize> + 'c {
        let v = dom.var(var);
        let offset = v.offset();
        v.part_range()
            .filter(move |&p| self.has_part(p))
            .map(move |p| p - offset)
    }

    /// Whether the cube is the universal cube.
    pub fn is_full(&self, dom: &Domain) -> bool {
        self.words == dom.full_words()
    }

    /// Number of variables in which `self` and `other` have disjoint
    /// literals. Distance 0 means the cubes intersect; distance 1 enables
    /// consensus.
    pub fn distance(&self, other: &Cube, dom: &Domain) -> usize {
        let meet = self.and(other);
        (0..dom.num_vars())
            .filter(|&v| meet.var_is_empty(dom, v))
            .count()
    }

    /// Whether the cubes intersect (distance 0).
    pub fn intersects(&self, other: &Cube, dom: &Domain) -> bool {
        let meet = self.and(other);
        meet.is_valid(dom)
    }

    /// The ESPRESSO cofactor of `self` with respect to cube `p`:
    /// `self ∪ ¬p` in each variable, defined only when the cubes intersect.
    ///
    /// Returns `None` when `self` and `p` are disjoint (the cofactor is
    /// empty).
    pub fn cofactor(&self, p: &Cube, dom: &Domain) -> Option<Cube> {
        if !self.intersects(p, dom) {
            return None;
        }
        let words = self
            .words
            .iter()
            .zip(&p.words)
            .zip(dom.full_words())
            .map(|((a, b), full)| (a | !b) & full)
            .collect();
        Some(Cube { words })
    }

    /// The consensus (distance-1 merge) of two cubes, `None` unless their
    /// distance is exactly 1.
    ///
    /// In the variable where the literals are disjoint the consensus takes
    /// the union; everywhere else the intersection.
    pub fn consensus(&self, other: &Cube, dom: &Domain) -> Option<Cube> {
        let meet = self.and(other);
        let mut conflict = None;
        for v in 0..dom.num_vars() {
            if meet.var_is_empty(dom, v) {
                if conflict.is_some() {
                    return None; // distance >= 2
                }
                conflict = Some(v);
            }
        }
        let v = conflict?; // distance 0 has no consensus either
        let mut out = meet;
        let var = dom.var(v);
        for p in var.part_range() {
            if self.has_part(p) || other.has_part(p) {
                out.set_part(p);
            }
        }
        Some(out)
    }

    /// Number of *free* (full) variables among the binary input variables —
    /// the cube's dimension in a purely binary input space.
    pub fn binary_dimension(&self, dom: &Domain) -> usize {
        dom.input_vars()
            .filter(|&v| self.var_is_full(dom, v))
            .count()
    }

    /// Total number of admitted parts (the cube's bit count).
    pub fn part_count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Renders the cube in PLA style: binary variables as `0`/`1`/`-`,
    /// multi-valued variables as a bit-string of their parts, variables
    /// separated by spaces.
    pub fn render(&self, dom: &Domain) -> String {
        use crate::domain::VarKind;
        let mut out = String::new();
        for (i, v) in dom.vars().iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            match v.kind() {
                VarKind::Binary => {
                    let b0 = self.has_part(v.offset());
                    let b1 = self.has_part(v.offset() + 1);
                    out.push(match (b0, b1) {
                        (true, true) => '-',
                        (false, true) => '1',
                        (true, false) => '0',
                        (false, false) => '∅',
                    });
                }
                _ => {
                    for p in v.part_range() {
                        out.push(if self.has_part(p) { '1' } else { '0' });
                    }
                }
            }
        }
        out
    }
}

impl fmt::Display for Cube {
    /// Displays the raw bit words; use [`Cube::render`] for a domain-aware
    /// rendering.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cube[")?;
        for (i, w) in self.words.iter().enumerate() {
            if i > 0 {
                write!(f, ".")?;
            }
            write!(f, "{w:016x}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::DomainBuilder;

    fn dom3() -> Domain {
        Domain::binary(3)
    }

    /// Parses e.g. "1-0" over a binary domain.
    fn cube(dom: &Domain, s: &str) -> Cube {
        let mut c = Cube::full(dom);
        for (i, ch) in s.chars().enumerate() {
            match ch {
                '0' => c.restrict_binary(dom, i, false),
                '1' => c.restrict_binary(dom, i, true),
                '-' => {}
                _ => panic!("bad literal {ch}"),
            }
        }
        c
    }

    #[test]
    fn restrict_and_render() {
        let dom = dom3();
        let c = cube(&dom, "1-0");
        assert_eq!(c.render(&dom), "1 - 0");
        assert!(c.is_valid(&dom));
        assert!(!c.is_full(&dom));
        assert!(Cube::full(&dom).is_full(&dom));
    }

    #[test]
    fn intersection_and_validity() {
        let dom = dom3();
        let a = cube(&dom, "1--");
        let b = cube(&dom, "0--");
        let meet = a.and(&b);
        assert!(!meet.is_valid(&dom));
        assert!(!a.intersects(&b, &dom));
        assert!(a.intersects(&cube(&dom, "-1-"), &dom));
    }

    #[test]
    fn covers_is_set_containment() {
        let dom = dom3();
        assert!(cube(&dom, "1--").covers(&cube(&dom, "10-")));
        assert!(!cube(&dom, "10-").covers(&cube(&dom, "1--")));
        assert!(cube(&dom, "---").covers(&cube(&dom, "011")));
    }

    #[test]
    fn distance_counts_conflicting_vars() {
        let dom = dom3();
        assert_eq!(cube(&dom, "11-").distance(&cube(&dom, "00-"), &dom), 2);
        assert_eq!(cube(&dom, "1--").distance(&cube(&dom, "0--"), &dom), 1);
        assert_eq!(cube(&dom, "1--").distance(&cube(&dom, "-0-"), &dom), 0);
    }

    #[test]
    fn cofactor_matches_definition() {
        let dom = dom3();
        let c = cube(&dom, "11-");
        let p = cube(&dom, "1--");
        let cf = c.cofactor(&p, &dom).unwrap();
        // cofactoring by x0=1 makes x0 a don't-care in the result
        assert_eq!(cf.render(&dom), "- 1 -");
        assert!(cube(&dom, "0--").cofactor(&p, &dom).is_none());
    }

    #[test]
    fn consensus_requires_distance_one() {
        let dom = dom3();
        let a = cube(&dom, "10-");
        let b = cube(&dom, "01-");
        assert!(a.consensus(&b, &dom).is_none()); // distance 2
        let a = cube(&dom, "1-0");
        let b = cube(&dom, "0-0");
        let c = a.consensus(&b, &dom).unwrap();
        assert_eq!(c.render(&dom), "- - 0");
        // distance 0 has no consensus
        assert!(cube(&dom, "1--").consensus(&cube(&dom, "--1"), &dom).is_none());
    }

    #[test]
    fn consensus_on_multivalued_var_unions_conflict() {
        let dom = DomainBuilder::new().multi("s", 4).binary("x").build();
        let mut a = Cube::full(&dom);
        a.restrict(&dom, 0, 0);
        a.restrict_binary(&dom, 1, true);
        let mut b = Cube::full(&dom);
        b.restrict(&dom, 0, 2);
        b.restrict_binary(&dom, 1, true);
        let c = a.consensus(&b, &dom).unwrap();
        assert!(c.var_parts(&dom, 0).eq([0, 2]));
        assert!(c.var_parts(&dom, 1).eq([1]));
    }

    #[test]
    fn multivalued_restrict_and_parts() {
        let dom = DomainBuilder::new().multi("s", 130).build();
        let mut c = Cube::full(&dom);
        c.restrict(&dom, 0, 127);
        assert!(c.var_parts(&dom, 0).eq([127]));
        assert_eq!(c.part_count(), 1);
        c.raise_var(&dom, 0);
        assert!(c.var_is_full(&dom, 0));
    }

    #[test]
    fn binary_dimension_counts_free_vars() {
        let dom = dom3();
        assert_eq!(cube(&dom, "---").binary_dimension(&dom), 3);
        assert_eq!(cube(&dom, "1-0").binary_dimension(&dom), 1);
        assert_eq!(cube(&dom, "101").binary_dimension(&dom), 0);
    }

    #[test]
    fn supercube_is_or() {
        let dom = dom3();
        let s = cube(&dom, "101").or(&cube(&dom, "100"));
        assert_eq!(s.render(&dom), "1 0 -");
    }
}
