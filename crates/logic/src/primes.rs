//! All-prime generation by iterated consensus (Quine's method).
//!
//! Exponential in the worst case; used for exact minimization of small
//! functions and as a ground-truth oracle in tests.

use crate::budget::Budget;
use crate::cover::Cover;
use crate::cube::Cube;

/// Computes the complete set of prime implicants of the function whose
/// on-set is `on` and don't-care set is `dc`, by iterated consensus followed
/// by absorption.
///
/// The primes are primes of `on ∪ dc`; a minimal cover selection against the
/// on-set is a separate (covering) problem — see [`crate::exact_minimize`].
pub fn all_primes(on: &Cover, dc: &Cover) -> Cover {
    all_primes_bounded(on, dc, &Budget::unlimited()).0
}

/// Budget-aware [`all_primes`]: ticks `budget` (trigger point
/// `"exact.primes"`) once per consensus pair examined.
///
/// On exhaustion returns the implicants accumulated so far — a
/// single-cube-containment-free set of implicants of `on ∪ dc` that still
/// covers the on-set (the initial cubes are never dropped, only absorbed by
/// larger implicants), just not necessarily all of them prime. The boolean
/// is `true` when the set is the complete prime set.
pub fn all_primes_bounded(on: &Cover, dc: &Cover, budget: &Budget) -> (Cover, bool) {
    let dom = on.domain();
    assert_eq!(dom, dc.domain(), "all_primes: domain mismatch");
    let mut cover = on.union(dc);
    cover.scc();
    let mut cubes: Vec<Cube> = cover.cubes().to_vec();

    let mut complete = true;
    'grow: loop {
        let mut added = false;
        let mut new_cubes: Vec<Cube> = Vec::new();
        for i in 0..cubes.len() {
            for j in (i + 1)..cubes.len() {
                if !budget.tick("exact.primes", 1) {
                    complete = false;
                    // Keep what the pass produced so far; absorption below
                    // still runs so the result is containment-free.
                    cubes.extend(new_cubes);
                    let mut cov = Cover::from_cubes(dom, cubes.drain(..));
                    cov.scc();
                    cubes = cov.cubes().to_vec();
                    break 'grow;
                }
                if let Some(c) = cubes[i].consensus(&cubes[j], dom) {
                    let absorbed = cubes.iter().chain(new_cubes.iter()).any(|k| k.covers(&c));
                    if !absorbed {
                        new_cubes.push(c);
                    }
                }
            }
        }
        if !new_cubes.is_empty() {
            cubes.extend(new_cubes);
            // absorption pass
            let mut cov = Cover::from_cubes(dom, cubes.drain(..));
            cov.scc();
            cubes = cov.cubes().to_vec();
            added = true;
        }
        if !added {
            break;
        }
    }

    let mut out = Cover::from_cubes(dom, cubes);
    out.scc();
    (out, complete)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::equiv::equivalent;

    #[test]
    fn primes_of_xor_are_the_minterms() {
        let dom = Domain::binary(2);
        let on = Cover::parse(&dom, "10 01");
        let p = all_primes(&on, &Cover::empty(&dom));
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn primes_merge_adjacent_minterms() {
        let dom = Domain::binary(3);
        let on = Cover::parse(&dom, "110 111 011");
        let p = all_primes(&on, &Cover::empty(&dom));
        // primes: 11- and -11
        assert_eq!(p.len(), 2);
        assert!(equivalent(&p, &on));
    }

    #[test]
    fn dc_enlarges_primes() {
        let dom = Domain::binary(2);
        let on = Cover::parse(&dom, "11");
        let dc = Cover::parse(&dom, "10");
        let p = all_primes(&on, &dc);
        assert_eq!(p.cubes()[0].render(&dom), "1 -");
    }

    #[test]
    fn truncated_primes_still_cover_the_on_set() {
        let dom = Domain::binary(4);
        let on = Cover::parse(&dom, "1100 0110 0011 1001 1111 0101 1010");
        let budget = Budget::with_work_limit(3);
        let (p, complete) = all_primes_bounded(&on, &Cover::empty(&dom), &budget);
        assert!(!complete);
        assert!(crate::equiv::cover_contains(&p, &on), "on-set must stay covered");
    }

    #[test]
    fn unlimited_budget_reports_complete() {
        let dom = Domain::binary(3);
        let on = Cover::parse(&dom, "110 111 011");
        let (p, complete) = all_primes_bounded(&on, &Cover::empty(&dom), &Budget::unlimited());
        assert!(complete);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn consensus_chain_finds_distant_primes() {
        let dom = Domain::binary(3);
        // f = a'b + ab' + bc: prime a... classic: primes of xor-ish chains
        let on = Cover::parse(&dom, "01- 10- -11");
        let p = all_primes(&on, &Cover::empty(&dom));
        assert!(equivalent(&p, &on));
        // 1-1 is a prime obtainable only via consensus of 10- and -11
        assert!(p.iter().any(|c| c.render(&dom) == "1 - 1"));
    }
}
