//! Variable domains for positional-notation cube algebra.
//!
//! A [`Domain`] describes an ordered list of variables. Each variable has a
//! number of *parts* (positions): a binary variable has two parts (`0` and
//! `1`); a multi-valued variable with `k` values has `k` parts. A cube is a
//! bit-set over the concatenation of all parts (see [`crate::Cube`]), which is
//! the classic ESPRESSO-MV *positional cube notation*.
//!
//! Multi-output functions are represented the standard way: the output field
//! is one extra multi-valued variable whose parts are the individual outputs.

use std::fmt;
use std::sync::Arc;

/// The role of a variable inside a [`Domain`].
///
/// The distinction is purely informational — the cube algebra treats all
/// variables uniformly — but parsers, printers and clients (e.g. the FSM
/// symbolic-cover builder) use it to find fields by role rather than index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VarKind {
    /// A two-part binary input variable.
    Binary,
    /// A multi-valued (symbolic) input variable.
    Multi,
    /// The multi-valued output variable of a multi-output function.
    Output,
}

/// One variable of a [`Domain`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Var {
    name: String,
    kind: VarKind,
    parts: usize,
    /// Global index of this variable's first part.
    offset: usize,
}

impl Var {
    /// The variable's name, as given at construction.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The variable's role.
    pub fn kind(&self) -> VarKind {
        self.kind
    }

    /// Number of parts (values) of the variable; 2 for binary variables.
    pub fn parts(&self) -> usize {
        self.parts
    }

    /// Global part index of the variable's first part.
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// Range of global part indices occupied by this variable.
    pub fn part_range(&self) -> std::ops::Range<usize> {
        self.offset..self.offset + self.parts
    }
}

/// Builder for [`Domain`] values.
///
/// # Examples
///
/// ```
/// use picola_logic::DomainBuilder;
///
/// let dom = DomainBuilder::new()
///     .binary("a")
///     .binary("b")
///     .multi("state", 5)
///     .output("out", 3)
///     .build();
/// assert_eq!(dom.num_vars(), 4);
/// assert_eq!(dom.total_parts(), 2 + 2 + 5 + 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DomainBuilder {
    vars: Vec<Var>,
    offset: usize,
}

impl DomainBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(mut self, name: &str, kind: VarKind, parts: usize) -> Self {
        assert!(parts >= 1, "a variable needs at least one part");
        self.vars.push(Var {
            name: name.to_owned(),
            kind,
            parts,
            offset: self.offset,
        });
        self.offset += parts;
        self
    }

    /// Appends a binary variable.
    pub fn binary(self, name: &str) -> Self {
        self.push(name, VarKind::Binary, 2)
    }

    /// Appends `n` binary variables named `prefix0`, `prefix1`, ….
    pub fn binaries(mut self, prefix: &str, n: usize) -> Self {
        for i in 0..n {
            self = self.binary(&format!("{prefix}{i}"));
        }
        self
    }

    /// Appends a multi-valued variable with `parts` values.
    pub fn multi(self, name: &str, parts: usize) -> Self {
        self.push(name, VarKind::Multi, parts)
    }

    /// Appends the output variable with `parts` individual outputs.
    ///
    /// # Panics
    ///
    /// Panics if an output variable was already added; a domain has at most
    /// one output field and it must come last.
    pub fn output(self, name: &str, parts: usize) -> Self {
        assert!(
            !self.vars.iter().any(|v| v.kind == VarKind::Output),
            "a domain has at most one output variable"
        );
        self.push(name, VarKind::Output, parts)
    }

    /// Finalizes the domain.
    pub fn build(self) -> Domain {
        let total_parts = self.offset;
        let words = total_parts.div_ceil(64).max(1);
        let mut full = vec![0u64; words];
        for p in 0..total_parts {
            full[p / 64] |= 1u64 << (p % 64);
        }
        Domain(Arc::new(DomainInner {
            vars: self.vars,
            total_parts,
            words,
            full,
        }))
    }
}

#[derive(Debug, PartialEq, Eq)]
struct DomainInner {
    vars: Vec<Var>,
    total_parts: usize,
    words: usize,
    full: Vec<u64>,
}

/// A shared, immutable description of the variables a cover ranges over.
///
/// `Domain` is a cheap-to-clone handle (internally reference-counted). Two
/// domains compare equal when their variable lists are identical; covers over
/// different domains must not be mixed and the cover operations debug-assert
/// this.
#[derive(Debug, Clone)]
pub struct Domain(Arc<DomainInner>);

impl PartialEq for Domain {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0) || self.0 == other.0
    }
}

impl Eq for Domain {}

impl Domain {
    /// A domain of `n` binary input variables and no output field.
    ///
    /// # Examples
    ///
    /// ```
    /// let dom = picola_logic::Domain::binary(4);
    /// assert_eq!(dom.total_parts(), 8);
    /// ```
    pub fn binary(n: usize) -> Self {
        DomainBuilder::new().binaries("x", n).build()
    }

    /// Number of variables (including the output variable, if any).
    pub fn num_vars(&self) -> usize {
        self.0.vars.len()
    }

    /// The variables in order.
    pub fn vars(&self) -> &[Var] {
        &self.0.vars
    }

    /// The `i`-th variable.
    pub fn var(&self, i: usize) -> &Var {
        &self.0.vars[i]
    }

    /// Total number of parts across all variables.
    pub fn total_parts(&self) -> usize {
        self.0.total_parts
    }

    /// Number of 64-bit words needed to store one cube.
    pub fn words(&self) -> usize {
        self.0.words
    }

    /// Bit mask (as words) with every part bit set — the universal cube.
    pub(crate) fn full_words(&self) -> &[u64] {
        &self.0.full
    }

    /// Index of the output variable, if the domain has one.
    pub fn output_var(&self) -> Option<usize> {
        self.0
            .vars
            .iter()
            .position(|v| v.kind == VarKind::Output)
    }

    /// Index of the output variable, for domains that are guaranteed by
    /// construction to have one (e.g. [`crate::pla::Pla::make_domain`]).
    ///
    /// # Panics
    ///
    /// Panics if the domain has no output variable — a programmer error at
    /// the call site, not an input-dependent condition. Callers handling
    /// arbitrary domains must use [`Domain::output_var`] instead.
    #[allow(clippy::expect_used)] // contract documented above; single sanctioned site
    pub fn require_output_var(&self) -> usize {
        self.output_var()
            .expect("domain was constructed with an output variable")
    }

    /// Indices of the non-output variables.
    pub fn input_vars(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.num_vars()).filter(|&i| self.var(i).kind() != VarKind::Output)
    }

    /// Number of minterms of the input space (product of input part counts).
    ///
    /// Saturates at `u64::MAX`; intended for small test domains.
    pub fn input_space_size(&self) -> u64 {
        self.input_vars()
            .map(|i| self.var(i).parts() as u64)
            .try_fold(1u64, |acc, p| acc.checked_mul(p))
            .unwrap_or(u64::MAX)
    }

    /// Looks a variable up by name.
    pub fn var_index(&self, name: &str) -> Option<usize> {
        self.0.vars.iter().position(|v| v.name == name)
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "domain[")?;
        for (i, v) in self.0.vars.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match v.kind {
                VarKind::Binary => write!(f, "{}", v.name)?,
                VarKind::Multi => write!(f, "{}({})", v.name, v.parts)?,
                VarKind::Output => write!(f, "=> {}({})", v.name, v.parts)?,
            }
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_offsets() {
        let dom = DomainBuilder::new()
            .binary("a")
            .multi("s", 3)
            .output("z", 2)
            .build();
        assert_eq!(dom.var(0).offset(), 0);
        assert_eq!(dom.var(1).offset(), 2);
        assert_eq!(dom.var(2).offset(), 5);
        assert_eq!(dom.total_parts(), 7);
        assert_eq!(dom.words(), 1);
        assert_eq!(dom.output_var(), Some(2));
    }

    #[test]
    fn multiword_domains() {
        let dom = DomainBuilder::new().multi("big", 130).build();
        assert_eq!(dom.words(), 3);
        assert_eq!(dom.full_words().iter().map(|w| w.count_ones()).sum::<u32>(), 130);
    }

    #[test]
    fn var_lookup_by_name() {
        let dom = Domain::binary(3);
        assert_eq!(dom.var_index("x1"), Some(1));
        assert_eq!(dom.var_index("nope"), None);
    }

    #[test]
    fn input_space_size_excludes_outputs() {
        let dom = DomainBuilder::new()
            .binaries("x", 2)
            .multi("s", 5)
            .output("z", 9)
            .build();
        assert_eq!(dom.input_space_size(), 4 * 5);
    }

    #[test]
    #[should_panic]
    fn only_one_output_var() {
        let _ = DomainBuilder::new().output("a", 1).output("b", 1).build();
    }

    #[test]
    fn display_is_informative() {
        let dom = DomainBuilder::new().binary("a").multi("s", 3).build();
        let s = format!("{dom}");
        assert!(s.contains('a') && s.contains("s(3)"));
    }

    #[test]
    fn equality_is_structural() {
        let d1 = Domain::binary(2);
        let d2 = Domain::binary(2);
        let d3 = Domain::binary(3);
        assert_eq!(d1, d2);
        assert_ne!(d1, d3);
    }
}
