//! EXPAND: enlarge each cube of a cover into a prime implicant against an
//! explicit off-set, absorbing other cubes along the way.

use crate::cover::Cover;
use crate::cube::Cube;

/// Expands every cube of `f` to a prime with respect to the off-set `off`,
/// removing cubes that become covered by an expanded cube.
///
/// Each cube is grown one part at a time, in an order that favours parts
/// occurring in many not-yet-covered cubes of `f` (so that expansion covers
/// as much of the rest of the cover as possible). A part once rejected can
/// never become legal later — growing a cube only grows its intersection
/// with any off-cube — so a single pass per cube yields a maximal (prime)
/// cube.
///
/// The result covers `f` and intersects no cube of `off`.
pub fn expand(f: &Cover, off: &Cover) -> Cover {
    let dom = f.domain();
    assert_eq!(dom, off.domain(), "expand: domain mismatch");
    let mut cubes: Vec<Cube> = f.cubes().to_vec();
    // Smallest (most specific) cubes first: they benefit most from expansion.
    cubes.sort_by_key(|c| c.part_count());
    let n = cubes.len();
    let mut covered = vec![false; n];
    let mut result: Vec<Cube> = Vec::with_capacity(n);

    for i in 0..n {
        if covered[i] {
            continue;
        }
        let mut c = cubes[i].clone();

        // Weight each missing part by how many uncovered cubes admit it.
        let mut order: Vec<(usize, usize)> = (0..dom.total_parts())
            .filter(|&p| !c.has_part(p))
            .map(|p| {
                let w = (0..n)
                    .filter(|&j| j != i && !covered[j] && cubes[j].has_part(p))
                    .count();
                (p, w)
            })
            .collect();
        order.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

        for (p, _) in order {
            let mut candidate = c.clone();
            candidate.set_part(p);
            if off.iter().all(|o| !candidate.intersects(o, dom)) {
                c = candidate;
            }
        }

        for (j, cj) in cubes.iter().enumerate() {
            if j != i && !covered[j] && c.covers(cj) {
                covered[j] = true;
            }
        }
        result.push(c);
    }

    Cover::from_cubes(dom, result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::urp::{complement, tautology};

    #[test]
    fn expand_reaches_primes() {
        let dom = Domain::binary(3);
        // f = minterms of x0: should expand to the single cube 1--
        let on = Cover::parse(&dom, "100 101 110 111");
        let off = complement(&on);
        let e = expand(&on, &off);
        assert_eq!(e.len(), 1);
        assert_eq!(e.cubes()[0].render(&dom), "1 - -");
    }

    #[test]
    fn expand_never_touches_offset() {
        let dom = Domain::binary(4);
        let on = Cover::parse(&dom, "1100 0011 1111");
        let off = complement(&on);
        let e = expand(&on, &off);
        for c in e.iter() {
            for o in off.iter() {
                assert!(!c.intersects(o, &dom));
            }
        }
        // and still covers the on-set
        for c in on.iter() {
            assert!(e.iter().any(|x| x.covers(c)) || tautology(&e.cofactor(c)));
        }
    }

    #[test]
    fn expand_with_empty_offset_gives_universe() {
        let dom = Domain::binary(2);
        let on = Cover::parse(&dom, "10");
        let off = Cover::empty(&dom);
        let e = expand(&on, &off);
        assert_eq!(e.len(), 1);
        assert!(e.has_full_cube());
    }

    #[test]
    fn expand_absorbs_covered_cubes() {
        let dom = Domain::binary(3);
        let on = Cover::parse(&dom, "110 111 10- 100");
        let off = complement(&on);
        let e = expand(&on, &off);
        assert_eq!(e.len(), 1); // everything expands into 1--
    }
}
