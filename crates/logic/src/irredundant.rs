//! IRREDUNDANT: remove cubes covered by the rest of the cover plus the
//! don't-care set.

use crate::cover::Cover;
use crate::equiv::cover_covers_cube;

/// Returns an irredundant subset of `f`: no remaining cube is covered by the
/// union of the other remaining cubes and `dc`.
///
/// Cubes are examined smallest-first so that, among redundant cubes, the
/// small ones are discarded and the large ones kept.
pub fn irredundant(f: &Cover, dc: &Cover) -> Cover {
    let dom = f.domain();
    assert_eq!(dom, dc.domain(), "irredundant: domain mismatch");
    let mut cubes = f.cubes().to_vec();
    cubes.sort_by_key(|c| std::cmp::Reverse(c.part_count()));
    // `keep[i]` tracks cubes still in the cover.
    let mut keep = vec![true; cubes.len()];
    // Try to delete smallest-first (they are at the end after the sort).
    for i in (0..cubes.len()).rev() {
        let rest = Cover::from_cubes(
            dom,
            cubes
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i && keep[j])
                .map(|(_, c)| c.clone())
                .chain(dc.iter().cloned()),
        );
        if cover_covers_cube(&rest, &cubes[i]) {
            keep[i] = false;
        }
    }
    Cover::from_cubes(
        dom,
        cubes
            .into_iter()
            .zip(keep)
            .filter_map(|(c, k)| k.then_some(c)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::equiv::equivalent;

    #[test]
    fn removes_consensus_cube() {
        let dom = Domain::binary(3);
        let f = Cover::parse(&dom, "11- 0-1 -11");
        let g = irredundant(&f, &Cover::empty(&dom));
        assert_eq!(g.len(), 2);
        assert!(equivalent(&f, &g));
    }

    #[test]
    fn keeps_irredundant_cover_intact() {
        let dom = Domain::binary(3);
        let f = Cover::parse(&dom, "11- 00-");
        let g = irredundant(&f, &Cover::empty(&dom));
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn uses_dont_cares() {
        let dom = Domain::binary(2);
        // f = {11}, dc = {11}: the cube is covered by dc alone.
        let f = Cover::parse(&dom, "11");
        let dc = Cover::parse(&dom, "11");
        let g = irredundant(&f, &dc);
        assert!(g.is_empty());
    }

    #[test]
    fn prefers_keeping_larger_cubes() {
        let dom = Domain::binary(3);
        // 1-- covers 11- and 10-; smaller ones must go.
        let f = Cover::parse(&dom, "1-- 11- 10-");
        let g = irredundant(&f, &Cover::empty(&dom));
        assert_eq!(g.len(), 1);
        assert_eq!(g.cubes()[0].render(&dom), "1 - -");
    }
}
