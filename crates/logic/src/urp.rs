//! The unate recursive paradigm: tautology checking and complementation.
//!
//! Both algorithms follow ESPRESSO's scheme: pick the *most binate* variable,
//! branch over its parts via the Shannon (cofactor) expansion, and recurse,
//! with cheap structural checks cutting most branches early.

use crate::cover::Cover;
use crate::cube::Cube;
use crate::domain::Domain;

/// Picks the most binate variable of a cube list: the variable whose literal
/// is non-full in the greatest number of cubes. Returns `None` when every
/// cube is full in every variable.
fn most_binate_var(dom: &Domain, cubes: &[Cube]) -> Option<usize> {
    let mut best: Option<(usize, usize, usize)> = None; // (count, -parts, var)
    for v in 0..dom.num_vars() {
        let count = cubes.iter().filter(|c| !c.var_is_full(dom, v)).count();
        if count == 0 {
            continue;
        }
        let parts = dom.var(v).parts();
        let better = match best {
            None => true,
            Some((bc, bp, _)) => count > bc || (count == bc && parts < bp),
        };
        if better {
            best = Some((count, parts, v));
        }
    }
    best.map(|(_, _, v)| v)
}

/// The cube selecting part `p` of variable `v` (full in every other
/// variable).
fn part_cube(dom: &Domain, v: usize, p: usize) -> Cube {
    let mut c = Cube::full(dom);
    c.restrict(dom, v, p);
    c
}

fn cofactor_list(dom: &Domain, cubes: &[Cube], p: &Cube) -> Vec<Cube> {
    cubes
        .iter()
        .filter_map(|c| c.cofactor(p, dom))
        .collect()
}

/// Whether the union over the cube list admits every part of every variable.
/// If not, some value column is all-zero and the cover cannot be a tautology.
fn or_all_is_full(dom: &Domain, cubes: &[Cube]) -> bool {
    let mut acc = Cube::empty(dom);
    for c in cubes {
        acc.or_assign(c);
        if acc.is_full(dom) {
            return true;
        }
    }
    acc.is_full(dom)
}

fn taut_rec(dom: &Domain, cubes: &[Cube]) -> bool {
    if cubes.iter().any(|c| c.is_full(dom)) {
        return true;
    }
    if cubes.is_empty() || !or_all_is_full(dom, cubes) {
        return false;
    }
    let v = match most_binate_var(dom, cubes) {
        Some(v) => v,
        // All cubes full in all vars and none is the full cube: impossible,
        // but be safe.
        None => return false,
    };
    for p in 0..dom.var(v).parts() {
        let pc = part_cube(dom, v, p);
        let branch = cofactor_list(dom, cubes, &pc);
        if !taut_rec(dom, &branch) {
            return false;
        }
    }
    true
}

/// Whether the cover is a tautology (covers every point of the domain).
///
/// # Examples
///
/// ```
/// use picola_logic::{Cover, Domain, tautology};
///
/// let dom = Domain::binary(2);
/// assert!(tautology(&Cover::parse(&dom, "1- 0-")));
/// assert!(!tautology(&Cover::parse(&dom, "1- 01")));
/// ```
pub fn tautology(f: &Cover) -> bool {
    taut_rec(f.domain(), f.cubes())
}

/// The complement of a single cube as a list of cubes (De Morgan expansion,
/// one cube per non-full variable).
pub fn cube_complement(dom: &Domain, c: &Cube) -> Vec<Cube> {
    let mut out = Vec::new();
    for v in 0..dom.num_vars() {
        if c.var_is_full(dom, v) {
            continue;
        }
        let mut k = Cube::full(dom);
        for p in dom.var(v).part_range() {
            if c.has_part(p) {
                k.clear_part(p);
            }
        }
        if k.is_valid(dom) {
            out.push(k);
        }
    }
    out
}

fn scc_list(dom: &Domain, mut cubes: Vec<Cube>) -> Vec<Cube> {
    let mut cover = Cover::from_cubes(dom, cubes.drain(..));
    cover.scc();
    cover.cubes().to_vec()
}

fn compl_rec(dom: &Domain, cubes: &[Cube]) -> Vec<Cube> {
    if cubes.is_empty() {
        return vec![Cube::full(dom)];
    }
    if cubes.iter().any(|c| c.is_full(dom)) {
        return Vec::new();
    }
    if cubes.len() == 1 {
        return cube_complement(dom, &cubes[0]);
    }
    let v = match most_binate_var(dom, cubes) {
        Some(v) => v,
        None => return Vec::new(), // every cube full everywhere: universe
    };
    let parts = dom.var(v).parts();
    let mut branch_results: Vec<Vec<Cube>> = Vec::with_capacity(parts);
    for p in 0..parts {
        let pc = part_cube(dom, v, p);
        let branch = cofactor_list(dom, cubes, &pc);
        branch_results.push(compl_rec(dom, &branch));
    }
    // Lift cubes common to all branches: they belong to the complement with
    // variable `v` left full, saving `parts` restricted copies.
    let mut out: Vec<Cube> = Vec::new();
    if let [first, rest @ ..] = branch_results.as_slice() {
        let mut lifted: Vec<Cube> = Vec::new();
        for c in first {
            if rest.iter().all(|b| b.contains(c)) {
                lifted.push(c.clone());
            }
        }
        for (p, branch) in branch_results.iter().enumerate() {
            let pc = part_cube(dom, v, p);
            for c in branch {
                if lifted.contains(c) {
                    continue;
                }
                let r = c.and(&pc);
                if r.is_valid(dom) {
                    out.push(r);
                }
            }
        }
        out.extend(lifted);
    }
    scc_list(dom, out)
}

/// The complement of a cover, computed by the unate recursive paradigm with
/// branch lifting and single-cube containment at each merge.
///
/// The result is a (generally irredundant but not necessarily minimal) cover
/// of exactly the points not covered by `f`.
///
/// # Examples
///
/// ```
/// use picola_logic::{complement, tautology, Cover, Domain};
///
/// let dom = Domain::binary(3);
/// let f = Cover::parse(&dom, "1-- -1-");
/// let g = complement(&f);
/// // f ∪ g is a tautology and f ∩ g is empty
/// assert!(tautology(&f.union(&g)));
/// ```
pub fn complement(f: &Cover) -> Cover {
    let cubes = compl_rec(f.domain(), f.cubes());
    Cover::from_cubes(f.domain(), cubes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::DomainBuilder;

    #[test]
    fn tautology_trivial_cases() {
        let dom = Domain::binary(2);
        assert!(tautology(&Cover::universe(&dom)));
        assert!(!tautology(&Cover::empty(&dom)));
        assert!(!tautology(&Cover::parse(&dom, "1-")));
    }

    #[test]
    fn tautology_split_cover() {
        let dom = Domain::binary(3);
        assert!(tautology(&Cover::parse(&dom, "1-- 01- 001 000")));
        assert!(!tautology(&Cover::parse(&dom, "1-- 01- 001")));
    }

    #[test]
    fn tautology_multivalued() {
        let dom = DomainBuilder::new().multi("s", 3).binary("x").build();
        // cover: s in {0,1} plus s=2 (all x) => tautology
        let mut a = Cube::full(&dom);
        a.clear_part(2); // remove s=2
        let mut b = Cube::full(&dom);
        b.restrict(&dom, 0, 2);
        assert!(tautology(&Cover::from_cubes(&dom, [a.clone(), b])));
        assert!(!tautology(&Cover::from_cubes(&dom, [a])));
    }

    #[test]
    fn cube_complement_demorgan() {
        let dom = Domain::binary(2);
        let c = &Cover::parse(&dom, "10").cubes()[0].clone();
        let compl = cube_complement(&dom, c);
        // complement of x0 x1' = x0' + x1
        assert_eq!(compl.len(), 2);
        let g = Cover::from_cubes(&dom, compl);
        assert!(tautology(&Cover::parse(&dom, "10").union(&g)));
    }

    #[test]
    fn complement_roundtrip_exhaustive() {
        let dom = Domain::binary(3);
        for text in ["1--", "1-- -1- --1", "101 010", "0-- 1-1", "111"] {
            let f = Cover::parse(&dom, text);
            let g = complement(&f);
            for pt in Cover::enumerate_points(&dom) {
                assert_ne!(
                    f.covers_point(&pt),
                    g.covers_point(&pt),
                    "point {pt:?} of {text}"
                );
            }
        }
    }

    #[test]
    fn complement_of_empty_and_universe() {
        let dom = Domain::binary(2);
        assert!(complement(&Cover::empty(&dom)).has_full_cube());
        assert!(complement(&Cover::universe(&dom)).is_empty());
    }

    #[test]
    fn complement_multivalued_exhaustive() {
        let dom = DomainBuilder::new().multi("s", 4).binary("x").build();
        let mut a = Cube::full(&dom);
        a.restrict(&dom, 0, 1);
        let mut b = Cube::full(&dom);
        b.clear_part(0);
        b.clear_part(1); // s in {2,3}
        b.restrict_binary(&dom, 1, true);
        let f = Cover::from_cubes(&dom, [a, b]);
        let g = complement(&f);
        for pt in Cover::enumerate_points(&dom) {
            assert_ne!(f.covers_point(&pt), g.covers_point(&pt), "point {pt:?}");
        }
    }
}
