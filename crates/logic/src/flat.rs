//! Flat, allocation-free cover kernels.
//!
//! The legacy pipeline represents a cover as `Vec<Cube>` with every cube
//! owning its own `Vec<u64>`; each ESPRESSO pass then clones, sorts, and
//! rebuilds those vectors, so steady-state minimization is dominated by
//! allocator traffic. This module provides a flat alternative:
//!
//! * [`FlatCover`] — one contiguous `Vec<u64>` with a fixed word stride per
//!   cube, plus word-parallel kernels ([`cube_and_into`], [`cube_contains`],
//!   [`cube_distance`], [`cube_consensus_into`], [`cube_cofactor_into`])
//!   that write into caller-owned scratch. These work for any domain.
//! * An inline single-word fast path for the common all-binary case
//!   (`2 · num_vars ≤ 64`): each cube is one `u64`, and the full ESPRESSO
//!   loop (expand / reduce / irredundant / essentials / last-gasp, with the
//!   unate-recursive tautology and complement underneath) runs over plain
//!   `u64` slices drawn from a [`MinimizeScratch`] pool. After warm-up the
//!   steady state performs **zero** heap allocation.
//!
//! The single-word engine is an exact mirror of the legacy code: same cube
//! orderings (stable sorts on the same keys), same branch variables, same
//! budget ticks and [`crate::obs`] counters. [`flat_espresso_bounded`] is
//! therefore bit-identical to [`crate::espresso_bounded`] on eligible
//! domains — the differential property tests in `tests/prop_flat_cover.rs`
//! enforce exactly that — and falls back to the legacy driver otherwise.

use crate::budget::{Budget, Completion};
use crate::cover::Cover;
use crate::cube::Cube;
use crate::domain::Domain;
use crate::espresso::{espresso_bounded, MinimizeOptions};
use crate::obs;

// ---------------------------------------------------------------------------
// Generic flat layer: FlatDomain, FlatCover, word-parallel kernels
// ---------------------------------------------------------------------------

/// Precomputed per-variable word/mask layout of a [`Domain`], flattened so
/// the word-parallel kernels never consult the `Domain` object (or allocate)
/// per operation.
#[derive(Debug, Clone)]
pub struct FlatDomain {
    words: usize,
    num_vars: usize,
    full: Vec<u64>,
    /// Per variable: (first word index, start offset into `masks`, number of
    /// words the variable's parts span).
    var_spans: Vec<(usize, usize, usize)>,
    /// Concatenated per-word bit masks for each variable's parts.
    masks: Vec<u64>,
}

impl FlatDomain {
    /// Flattens `dom` into word/mask form.
    pub fn new(dom: &Domain) -> FlatDomain {
        let words = dom.words();
        let full = dom.full_words().to_vec();
        let mut var_spans = Vec::with_capacity(dom.num_vars());
        let mut masks = Vec::new();
        for v in 0..dom.num_vars() {
            let var = dom.var(v);
            let offset = var.offset();
            let last = offset + var.parts() - 1;
            let first_word = offset / 64;
            let last_word = last / 64;
            let start = masks.len();
            for w in first_word..=last_word {
                let mut m = 0u64;
                for p in var.part_range() {
                    if p / 64 == w {
                        m |= 1u64 << (p % 64);
                    }
                }
                masks.push(m);
            }
            var_spans.push((first_word, start, last_word - first_word + 1));
        }
        FlatDomain {
            words,
            num_vars: dom.num_vars(),
            full,
            var_spans,
            masks,
        }
    }

    /// Word stride of a cube in this domain.
    pub fn words(&self) -> usize {
        self.words
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The full (universe) cube as a word slice.
    pub fn full(&self) -> &[u64] {
        &self.full
    }

    /// Whether variable `v`'s literal is empty in the *meet* of `a` and `b`
    /// (both given as word slices).
    fn meet_var_empty(&self, a: &[u64], b: &[u64], v: usize) -> bool {
        let (first, start, span) = self.var_spans[v];
        for k in 0..span {
            if a[first + k] & b[first + k] & self.masks[start + k] != 0 {
                return false;
            }
        }
        true
    }
}

/// Whether the word-slice cube `c` is valid in `fd` (every variable literal
/// non-empty).
pub fn cube_is_valid(fd: &FlatDomain, c: &[u64]) -> bool {
    (0..fd.num_vars).all(|v| {
        let (first, start, span) = fd.var_spans[v];
        (0..span).any(|k| c[first + k] & fd.masks[start + k] != 0)
    })
}

/// Word-parallel meet: `out = a ∧ b`. All slices must share the domain's
/// stride.
pub fn cube_and_into(a: &[u64], b: &[u64], out: &mut [u64]) {
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = x & y;
    }
}

/// Whether cube `a` contains (covers) cube `b`: every part of `b` is a part
/// of `a`.
pub fn cube_contains(a: &[u64], b: &[u64]) -> bool {
    a.iter().zip(b).all(|(&x, &y)| y & !x == 0)
}

/// Number of variables whose literal is empty in the meet of `a` and `b` —
/// the classic cube distance.
pub fn cube_distance(fd: &FlatDomain, a: &[u64], b: &[u64]) -> usize {
    (0..fd.num_vars)
        .filter(|&v| fd.meet_var_empty(a, b, v))
        .count()
}

/// Consensus of `a` and `b` into `out`. Returns `false` (leaving `out`
/// unspecified) when the distance is not exactly 1.
pub fn cube_consensus_into(fd: &FlatDomain, a: &[u64], b: &[u64], out: &mut [u64]) -> bool {
    let mut conflict = None;
    for v in 0..fd.num_vars {
        if fd.meet_var_empty(a, b, v) {
            if conflict.is_some() {
                return false;
            }
            conflict = Some(v);
        }
    }
    let Some(v) = conflict else {
        return false;
    };
    cube_and_into(a, b, out);
    let (first, start, span) = fd.var_spans[v];
    for k in 0..span {
        out[first + k] |= (a[first + k] | b[first + k]) & fd.masks[start + k];
    }
    true
}

/// Cofactor of `a` with respect to `p` into `out`. Returns `false` (leaving
/// `out` unspecified) when `a` and `p` do not intersect.
pub fn cube_cofactor_into(fd: &FlatDomain, a: &[u64], p: &[u64], out: &mut [u64]) -> bool {
    for v in 0..fd.num_vars {
        if fd.meet_var_empty(a, p, v) {
            return false;
        }
    }
    for (k, o) in out.iter_mut().enumerate() {
        *o = (a[k] | !p[k]) & fd.full[k];
    }
    true
}

/// A cover stored as one contiguous word buffer with a fixed stride per
/// cube. Pushing reuses the tail of the single allocation; iteration yields
/// word slices with no per-cube indirection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatCover {
    stride: usize,
    words: Vec<u64>,
}

impl FlatCover {
    /// An empty flat cover with the given word stride (`stride ≥ 1`).
    pub fn new(stride: usize) -> FlatCover {
        FlatCover {
            stride: stride.max(1),
            words: Vec::new(),
        }
    }

    /// Flattens an existing [`Cover`].
    pub fn from_cover(cover: &Cover) -> FlatCover {
        let stride = cover.domain().words();
        let mut fc = FlatCover::new(stride);
        for c in cover.iter() {
            fc.words.extend_from_slice(c.words());
        }
        fc
    }

    /// Rebuilds a [`Cover`] over `dom` (which must have this stride).
    /// Invalid cubes are dropped, mirroring [`Cover::from_cubes`].
    pub fn to_cover(&self, dom: &Domain) -> Cover {
        Cover::from_cubes(
            dom,
            self.iter().map(|w| Cube::from_raw_words(w.to_vec())),
        )
    }

    /// Word stride per cube.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Number of cubes.
    pub fn len(&self) -> usize {
        self.words.len() / self.stride
    }

    /// Whether the cover has no cubes.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// The `i`-th cube as a word slice.
    pub fn cube(&self, i: usize) -> &[u64] {
        &self.words[i * self.stride..(i + 1) * self.stride]
    }

    /// Mutable view of the `i`-th cube.
    pub fn cube_mut(&mut self, i: usize) -> &mut [u64] {
        &mut self.words[i * self.stride..(i + 1) * self.stride]
    }

    /// Appends a cube (a word slice of exactly `stride` words; bits above
    /// the domain's total parts must be zero).
    pub fn push(&mut self, cube: &[u64]) {
        debug_assert_eq!(cube.len(), self.stride);
        self.words.extend_from_slice(cube);
    }

    /// Removes all cubes, keeping the allocation.
    pub fn clear(&mut self) {
        self.words.clear();
    }

    /// Iterates cubes as word slices.
    pub fn iter(&self) -> impl Iterator<Item = &[u64]> {
        self.words.chunks_exact(self.stride)
    }
}

// ---------------------------------------------------------------------------
// Scratch pool
// ---------------------------------------------------------------------------

/// Reusable scratch for the flat minimization engine.
///
/// Holds a pool of word buffers plus the flag/order buffers the expand and
/// irredundant passes need. After the first minimization warms the pool,
/// subsequent calls perform no heap allocation. One scratch must not be
/// shared across threads; every long-lived consumer (the evaluation cache,
/// the ENC baseline) owns its own.
#[derive(Debug, Default)]
pub struct MinimizeScratch {
    free: Vec<Vec<u64>>,
    pairs: Vec<(usize, usize)>,
    flags: Vec<bool>,
}

impl MinimizeScratch {
    /// A fresh (cold) scratch pool.
    pub fn new() -> MinimizeScratch {
        MinimizeScratch::default()
    }

    /// Takes a cleared word buffer from the pool (allocating only when the
    /// pool is empty).
    pub(crate) fn take(&mut self) -> Vec<u64> {
        match self.free.pop() {
            Some(mut v) => {
                v.clear();
                v
            }
            None => Vec::new(),
        }
    }

    /// Returns a buffer to the pool for reuse.
    pub(crate) fn give(&mut self, v: Vec<u64>) {
        self.free.push(v);
    }
}

// ---------------------------------------------------------------------------
// Single-word binary engine
// ---------------------------------------------------------------------------

const EVENS: u64 = 0x5555_5555_5555_5555;

/// Context for the single-word all-binary fast path: `nv` binary variables,
/// variable `v` occupying bits `2v` (value 0) and `2v + 1` (value 1).
#[derive(Debug, Clone, Copy)]
pub(crate) struct BinCtx {
    nv: usize,
    full: u64,
    evens: u64,
}

impl BinCtx {
    /// Builds the context for an eligible domain (see [`flat_eligible`]).
    pub(crate) fn new(dom: &Domain) -> BinCtx {
        debug_assert!(flat_eligible(dom));
        let full = dom.full_words()[0];
        BinCtx {
            nv: dom.num_vars(),
            full,
            evens: EVENS & full,
        }
    }
}

/// Whether `dom` is handled by the single-word binary engine: at least one
/// variable, every variable two-valued, and all parts within one word.
pub fn flat_eligible(dom: &Domain) -> bool {
    dom.num_vars() >= 1
        && dom.words() == 1
        && (0..dom.num_vars()).all(|v| dom.var(v).parts() == 2)
}

#[inline]
fn valid_w(ctx: BinCtx, c: u64) -> bool {
    (c | c >> 1) & ctx.evens == ctx.evens
}

#[inline]
fn covers_w(a: u64, b: u64) -> bool {
    b & !a == 0
}

#[inline]
fn dist_w(ctx: BinCtx, a: u64, b: u64) -> u32 {
    let m = a & b;
    (ctx.evens & !(m | m >> 1)).count_ones()
}

/// Consensus at distance exactly 1 (checked by the caller via [`dist_w`]).
#[inline]
fn consensus_w(ctx: BinCtx, a: u64, b: u64) -> u64 {
    let m = a & b;
    let cm = ctx.evens & !(m | m >> 1);
    debug_assert_eq!(cm.count_ones(), 1);
    let vbit = cm.trailing_zeros();
    m | ((a | b) & (3u64 << vbit))
}

/// The cube asserting part `p` (0 or 1) of variable `v` and nothing else:
/// full everywhere except the opposite part of `v` is cleared.
#[inline]
fn part_cube_w(ctx: BinCtx, v: usize, p: usize) -> u64 {
    ctx.full & !(1u64 << (2 * v + (1 - p)))
}

#[inline]
fn cofactor_w(ctx: BinCtx, a: u64, p: u64) -> Option<u64> {
    if !valid_w(ctx, a & p) {
        return None;
    }
    Some((a | !p) & ctx.full)
}

#[inline]
fn literal_cost_one_w(ctx: BinCtx, c: u64) -> usize {
    ctx.nv - (c & (c >> 1) & ctx.evens).count_ones() as usize
}

fn cost_w(ctx: BinCtx, f: &[u64]) -> (usize, usize) {
    (
        f.len(),
        f.iter().map(|&c| literal_cost_one_w(ctx, c)).sum(),
    )
}

// --- stable sorts ---------------------------------------------------------
//
// `slice::sort_by_key` is stable but allocates for slices longer than 20.
// These insertion sorts produce the identical permutation for the same key
// (stable: an element only moves past strictly-"greater" predecessors) with
// no allocation. Cover sizes in this pipeline are small enough that the
// quadratic worst case never dominates the kernels themselves.

fn insertion_sort_by(v: &mut [u64], mut before: impl FnMut(u64, u64) -> bool) {
    for i in 1..v.len() {
        let x = v[i];
        let mut j = i;
        while j > 0 && before(x, v[j - 1]) {
            v[j] = v[j - 1];
            j -= 1;
        }
        v[j] = x;
    }
}

/// Descending part count (mirrors `sort_by_key(Reverse(part_count))`).
fn sort_desc_parts(v: &mut [u64]) {
    insertion_sort_by(v, |a, b| a.count_ones() > b.count_ones());
}

/// Ascending part count.
fn sort_asc_parts(v: &mut [u64]) {
    insertion_sort_by(v, |a, b| a.count_ones() < b.count_ones());
}

/// Expand's part order: descending weight, ties by ascending part index —
/// a strict total order, so any sort gives the identical sequence.
fn sort_expand_order(v: &mut [(usize, usize)]) {
    for i in 1..v.len() {
        let x = v[i];
        let mut j = i;
        while j > 0 && (x.1 > v[j - 1].1 || (x.1 == v[j - 1].1 && x.0 < v[j - 1].0)) {
            v[j] = v[j - 1];
            j -= 1;
        }
        v[j] = x;
    }
}

// --- single-cube-containment / scc ---------------------------------------

/// In-place single-cube containment, mirroring [`Cover::scc`]: stable sort
/// by descending part count, then drop any cube covered by an earlier kept
/// cube. For single-word cubes the fold-OR signature *is* the cube, so the
/// legacy prefilter (`sig & !ksig != 0`) is exact and the subsequent
/// `covers` check always succeeds when reached — the counters still mirror
/// the legacy accounting.
fn scc_w(cubes: &mut Vec<u64>) {
    sort_desc_parts(cubes);
    let mut pairs = 0u64;
    let mut prefilter_rejects = 0u64;
    let mut kept = 0usize;
    'outer: for i in 0..cubes.len() {
        let c = cubes[i];
        for &k in &cubes[..kept] {
            pairs += 1;
            if c & !k != 0 {
                prefilter_rejects += 1;
                continue;
            }
            // signature == cube here, so the kept cube covers c
            continue 'outer;
        }
        cubes[kept] = c;
        kept += 1;
    }
    cubes.truncate(kept);
    obs::count(obs::Counter::SccPairs, pairs);
    obs::count(obs::Counter::SccPrefilterRejects, prefilter_rejects);
}

// --- unate-recursive paradigm: tautology and complement -------------------

/// Most binate variable, mirroring the legacy selection: highest count of
/// cubes with a non-full literal; on ties the legacy `parts < best_parts`
/// tie-break never fires for all-binary domains, so first-wins on equal
/// counts.
fn most_binate_w(ctx: BinCtx, cubes: &[u64]) -> Option<usize> {
    let mut best: Option<(usize, usize)> = None;
    for v in 0..ctx.nv {
        let mask = 3u64 << (2 * v);
        let count = cubes.iter().filter(|&&c| c & mask != mask).count();
        if count == 0 {
            continue;
        }
        let better = match best {
            None => true,
            Some((bc, _)) => count > bc,
        };
        if better {
            best = Some((count, v));
        }
    }
    best.map(|(_, v)| v)
}

fn taut_rec_w(ctx: BinCtx, cubes: &[u64], scratch: &mut MinimizeScratch) -> bool {
    if cubes.contains(&ctx.full) {
        return true;
    }
    if cubes.is_empty() {
        return false;
    }
    let mut acc = 0u64;
    let mut covers_all_parts = false;
    for &c in cubes {
        acc |= c;
        if acc == ctx.full {
            covers_all_parts = true;
            break;
        }
    }
    if !covers_all_parts {
        return false;
    }
    let Some(v) = most_binate_w(ctx, cubes) else {
        return false;
    };
    let mut branch = scratch.take();
    let mut taut = true;
    for p in 0..2 {
        let pc = part_cube_w(ctx, v, p);
        branch.clear();
        for &c in cubes {
            if let Some(cf) = cofactor_w(ctx, c, pc) {
                branch.push(cf);
            }
        }
        if !taut_rec_w(ctx, &branch, scratch) {
            taut = false;
            break;
        }
    }
    scratch.give(branch);
    taut
}

/// Complement of a single cube: one cube per non-full variable, in variable
/// order (mirrors the legacy `cube_complement`; for binary domains the
/// result cubes are always valid).
fn cube_complement_w(ctx: BinCtx, c: u64, out: &mut Vec<u64>) {
    for v in 0..ctx.nv {
        let mask = 3u64 << (2 * v);
        if c & mask == mask {
            continue;
        }
        out.push(ctx.full & !(c & mask));
    }
}

/// Recursive complement, mirroring the legacy `compl_rec`: branch on the
/// most binate variable, lift cubes common to both branch complements, and
/// finish with an scc pass (counters fire, as in the legacy
/// `Cover::from_cubes` + `scc` epilogue).
fn compl_rec_w(ctx: BinCtx, cubes: &[u64], out: &mut Vec<u64>, scratch: &mut MinimizeScratch) {
    debug_assert!(out.is_empty());
    if cubes.is_empty() {
        out.push(ctx.full);
        return;
    }
    if cubes.contains(&ctx.full) {
        return;
    }
    if cubes.len() == 1 {
        cube_complement_w(ctx, cubes[0], out);
        return;
    }
    let Some(v) = most_binate_w(ctx, cubes) else {
        return;
    };
    let mut branch = scratch.take();
    let mut r0 = scratch.take();
    let mut r1 = scratch.take();
    for p in 0..2 {
        let pc = part_cube_w(ctx, v, p);
        branch.clear();
        for &c in cubes {
            if let Some(cf) = cofactor_w(ctx, c, pc) {
                branch.push(cf);
            }
        }
        let target = if p == 0 { &mut r0 } else { &mut r1 };
        compl_rec_w(ctx, &branch, target, scratch);
    }
    scratch.give(branch);
    let mut lifted = scratch.take();
    for &c in r0.iter() {
        if r1.contains(&c) {
            lifted.push(c);
        }
    }
    for (p, branch_out) in [(0usize, &r0), (1usize, &r1)] {
        let pc = part_cube_w(ctx, v, p);
        for &c in branch_out.iter() {
            if lifted.contains(&c) {
                continue;
            }
            let r = c & pc;
            if valid_w(ctx, r) {
                out.push(r);
            }
        }
    }
    out.extend_from_slice(&lifted);
    scc_w(out);
    scratch.give(lifted);
    scratch.give(r1);
    scratch.give(r0);
}

/// Whether the cover `f` covers the single cube `c` (tautology of the
/// cofactor), mirroring the legacy `cover_covers_cube`.
fn cover_covers_cube_w(ctx: BinCtx, f: &[u64], c: u64, scratch: &mut MinimizeScratch) -> bool {
    let mut g = scratch.take();
    for &x in f {
        if let Some(cf) = cofactor_w(ctx, x, c) {
            g.push(cf);
        }
    }
    let taut = taut_rec_w(ctx, &g, scratch);
    scratch.give(g);
    taut
}

// --- espresso passes ------------------------------------------------------

fn expand_w(ctx: BinCtx, f: &mut Vec<u64>, off: &[u64], scratch: &mut MinimizeScratch) {
    sort_asc_parts(f);
    let n = f.len();
    let mut covered = std::mem::take(&mut scratch.flags);
    covered.clear();
    covered.resize(n, false);
    let mut order = std::mem::take(&mut scratch.pairs);
    let mut result = scratch.take();
    for i in 0..n {
        if covered[i] {
            continue;
        }
        let mut c = f[i];
        order.clear();
        for p in 0..2 * ctx.nv {
            if c >> p & 1 != 0 {
                continue;
            }
            let bit = 1u64 << p;
            let w = (0..n)
                .filter(|&j| j != i && !covered[j] && f[j] & bit != 0)
                .count();
            order.push((p, w));
        }
        sort_expand_order(&mut order);
        for &(p, _) in order.iter() {
            let candidate = c | (1u64 << p);
            if off.iter().all(|&o| !valid_w(ctx, candidate & o)) {
                c = candidate;
            }
        }
        for j in 0..n {
            if j != i && !covered[j] && covers_w(c, f[j]) {
                covered[j] = true;
            }
        }
        result.push(c);
    }
    std::mem::swap(f, &mut result);
    scratch.give(result);
    scratch.pairs = order;
    scratch.flags = covered;
}

fn reduce_w(ctx: BinCtx, f: &mut Vec<u64>, dc: &[u64], scratch: &mut MinimizeScratch) {
    sort_desc_parts(f);
    let mut rest = scratch.take();
    let mut g = scratch.take();
    let mut h = scratch.take();
    for i in 0..f.len() {
        let c = f[i];
        if c == 0 {
            // legacy: the complement of the (empty) cofactored rest is the
            // universe with no scc pass, and the re-reduced cube stays
            // invalid — counter-identical shortcut.
            continue;
        }
        rest.clear();
        for (j, &x) in f.iter().enumerate() {
            if j != i && x != 0 {
                rest.push(x);
            }
        }
        rest.extend_from_slice(dc);
        g.clear();
        for &x in rest.iter() {
            if let Some(cf) = cofactor_w(ctx, x, c) {
                g.push(cf);
            }
        }
        h.clear();
        compl_rec_w(ctx, &g, &mut h, scratch);
        if h.is_empty() {
            f[i] = 0;
        } else {
            let sc = h.iter().fold(0u64, |acc, &x| acc | x);
            let r = c & sc;
            f[i] = if valid_w(ctx, r) { r } else { 0 };
        }
    }
    f.retain(|&c| c != 0);
    scratch.give(h);
    scratch.give(g);
    scratch.give(rest);
}

fn irredundant_w(ctx: BinCtx, f: &mut Vec<u64>, dc: &[u64], scratch: &mut MinimizeScratch) {
    sort_desc_parts(f);
    let n = f.len();
    let mut keep = std::mem::take(&mut scratch.flags);
    keep.clear();
    keep.resize(n, true);
    let mut rest = scratch.take();
    for i in (0..n).rev() {
        rest.clear();
        for j in 0..n {
            if j != i && keep[j] {
                rest.push(f[j]);
            }
        }
        rest.extend_from_slice(dc);
        if cover_covers_cube_w(ctx, &rest, f[i], scratch) {
            keep[i] = false;
        }
    }
    let mut w = 0usize;
    for i in 0..n {
        if keep[i] {
            f[w] = f[i];
            w += 1;
        }
    }
    f.truncate(w);
    scratch.give(rest);
    scratch.flags = keep;
}

fn essentials_w(
    ctx: BinCtx,
    f: &[u64],
    dc: &[u64],
    out: &mut Vec<u64>,
    scratch: &mut MinimizeScratch,
) {
    let mut h = scratch.take();
    let mut hc = scratch.take();
    for i in 0..f.len() {
        let c = f[i];
        h.clear();
        for (j, &g) in f.iter().enumerate() {
            if j == i {
                continue;
            }
            match dist_w(ctx, g, c) {
                0 => h.push(g),
                1 => h.push(consensus_w(ctx, g, c)),
                _ => {}
            }
        }
        for &g in dc {
            match dist_w(ctx, g, c) {
                0 => h.push(g),
                1 => h.push(consensus_w(ctx, g, c)),
                _ => {}
            }
        }
        hc.clear();
        for &x in h.iter() {
            if let Some(cf) = cofactor_w(ctx, x, c) {
                hc.push(cf);
            }
        }
        if !taut_rec_w(ctx, &hc, scratch) {
            out.push(c);
        }
    }
    scratch.give(hc);
    scratch.give(h);
}

/// Last-gasp pass; replaces `f` and returns `true` when it found a strictly
/// cheaper cover (mirrors the legacy `last_gasp`).
fn gasp_w(
    ctx: BinCtx,
    f: &mut Vec<u64>,
    dc: &[u64],
    off: &[u64],
    scratch: &mut MinimizeScratch,
) -> bool {
    if f.len() < 2 {
        return false;
    }
    let mut reduced = scratch.take();
    let mut rest = scratch.take();
    let mut g = scratch.take();
    let mut h = scratch.take();
    for i in 0..f.len() {
        let c = f[i];
        rest.clear();
        for (j, &x) in f.iter().enumerate() {
            if j != i {
                rest.push(x);
            }
        }
        rest.extend_from_slice(dc);
        g.clear();
        for &x in rest.iter() {
            if let Some(cf) = cofactor_w(ctx, x, c) {
                g.push(cf);
            }
        }
        h.clear();
        compl_rec_w(ctx, &g, &mut h, scratch);
        if h.is_empty() {
            continue; // fully redundant: maximally reduced away
        }
        let sc = h.iter().fold(0u64, |acc, &x| acc | x);
        let r = c & sc;
        if valid_w(ctx, r) {
            reduced.push(r);
        }
    }
    scratch.give(h);
    scratch.give(g);
    scratch.give(rest);
    if reduced.is_empty() {
        scratch.give(reduced);
        return false;
    }
    let mut expanded = scratch.take();
    expanded.extend_from_slice(&reduced);
    expand_w(ctx, &mut expanded, off, scratch);
    let mut useful = scratch.take();
    for &p in expanded.iter() {
        if reduced.iter().filter(|&&r| covers_w(p, r)).count() >= 2 {
            useful.push(p);
        }
    }
    scratch.give(expanded);
    if useful.is_empty() {
        scratch.give(useful);
        scratch.give(reduced);
        return false;
    }
    let mut candidate = scratch.take();
    candidate.extend_from_slice(f);
    candidate.extend_from_slice(&useful);
    irredundant_w(ctx, &mut candidate, dc, scratch);
    let better = cost_w(ctx, &candidate) < cost_w(ctx, f);
    if better {
        std::mem::swap(f, &mut candidate);
    }
    scratch.give(candidate);
    scratch.give(useful);
    scratch.give(reduced);
    better
}

/// Whether `f` covers every cube of `g`.
fn contains_all_w(ctx: BinCtx, f: &[u64], g: &[u64], scratch: &mut MinimizeScratch) -> bool {
    g.iter()
        .all(|&c| cover_covers_cube_w(ctx, f, c, scratch))
}

/// Debug helper mirroring the legacy `implements` invariant: `on ⊆ f ⊆
/// on ∪ dc`.
fn implements_w(
    ctx: BinCtx,
    f: &[u64],
    on: &[u64],
    dc: &[u64],
    scratch: &mut MinimizeScratch,
) -> bool {
    let mut upper = scratch.take();
    upper.extend_from_slice(on);
    upper.extend_from_slice(dc);
    let ok = contains_all_w(ctx, f, on, scratch) && contains_all_w(ctx, &upper, f, scratch);
    scratch.give(upper);
    ok
}

// --- driver ---------------------------------------------------------------

/// The full ESPRESSO loop over single-word cube slices. Mirrors
/// [`crate::espresso_bounded`] pass for pass: same span (`"espresso"`),
/// same `espresso.iter` budget ticks, same counter increments, same cube
/// orderings. Returns the minimized cover as a pool buffer (the caller
/// should [`MinimizeScratch::give`] it back) plus the budget completion.
pub(crate) fn espresso_words(
    ctx: BinCtx,
    on: &[u64],
    dc: &[u64],
    opts: &MinimizeOptions,
    budget: &Budget,
    scratch: &mut MinimizeScratch,
) -> (Vec<u64>, Completion) {
    let span = obs::current_or(budget.recorder()).span("espresso");
    let _cur = obs::enter(span.recorder());

    if on.is_empty() {
        return (scratch.take(), budget.completion());
    }
    if !budget.tick("espresso.iter", 1) {
        // mirror the legacy degraded path: the on-set scc'd, nothing more
        let mut f = scratch.take();
        f.extend_from_slice(on);
        scc_w(&mut f);
        return (f, budget.completion());
    }

    let mut on_dc = scratch.take();
    on_dc.extend_from_slice(on);
    on_dc.extend_from_slice(dc);
    let mut off = scratch.take();
    compl_rec_w(ctx, &on_dc, &mut off, scratch);
    scratch.give(on_dc);
    if off.is_empty() {
        scratch.give(off);
        let mut f = scratch.take();
        f.push(ctx.full);
        return (f, budget.completion());
    }

    let mut f = scratch.take();
    f.extend_from_slice(on);
    scc_w(&mut f);
    obs::count(obs::Counter::ExpandCalls, 1);
    expand_w(ctx, &mut f, &off, scratch);
    obs::count(obs::Counter::IrredundantCalls, 1);
    irredundant_w(ctx, &mut f, dc, scratch);
    if opts.check_invariants {
        debug_assert!(
            implements_w(ctx, &f, on, dc, scratch),
            "flat espresso: invariant lost after initial expand/irredundant"
        );
    }

    let mut ess = scratch.take();
    let mut dc_aug = scratch.take();
    if opts.use_essentials {
        essentials_w(ctx, &f, dc, &mut ess, scratch);
        f.retain(|c| !ess.contains(c));
        dc_aug.extend_from_slice(dc);
        dc_aug.extend_from_slice(&ess);
    } else {
        dc_aug.extend_from_slice(dc);
    }
    scc_w(&mut dc_aug);

    let mut best = cost_w(ctx, &f);
    let mut iterations = 0usize;
    let mut candidate = scratch.take();
    'outer: loop {
        while iterations < opts.max_iterations {
            if !budget.tick("espresso.iter", 1) {
                break 'outer;
            }
            iterations += 1;
            obs::count(obs::Counter::EspressoIters, 1);
            if f.is_empty() {
                break 'outer;
            }
            candidate.clear();
            candidate.extend_from_slice(&f);
            obs::count(obs::Counter::ReduceCalls, 1);
            reduce_w(ctx, &mut candidate, &dc_aug, scratch);
            obs::count(obs::Counter::ExpandCalls, 1);
            expand_w(ctx, &mut candidate, &off, scratch);
            obs::count(obs::Counter::IrredundantCalls, 1);
            irredundant_w(ctx, &mut candidate, &dc_aug, scratch);
            let c = cost_w(ctx, &candidate);
            if c < best {
                best = c;
                std::mem::swap(&mut f, &mut candidate);
            } else {
                break;
            }
        }
        if !opts.use_last_gasp || iterations >= opts.max_iterations || budget.is_exhausted() {
            break;
        }
        if !gasp_w(ctx, &mut f, &dc_aug, &off, scratch) {
            break;
        }
        best = cost_w(ctx, &f);
    }
    let _ = best;

    f.extend_from_slice(&ess);
    scc_w(&mut f);
    if opts.check_invariants {
        debug_assert!(
            implements_w(ctx, &f, on, dc, scratch),
            "flat espresso: result does not implement the function"
        );
    }
    scratch.give(candidate);
    scratch.give(dc_aug);
    scratch.give(ess);
    scratch.give(off);
    (f, budget.completion())
}

/// Copies a cover's cubes into a single-word buffer (caller guarantees the
/// domain is eligible).
pub(crate) fn cover_to_words(cover: &Cover, out: &mut Vec<u64>) {
    debug_assert!(out.is_empty());
    for c in cover.iter() {
        out.push(c.words()[0]);
    }
}

fn words_to_cover(dom: &Domain, words: &[u64]) -> Cover {
    Cover::from_cubes(dom, words.iter().map(|&w| Cube::from_raw_words(vec![w])))
}

/// Allocation-free ESPRESSO under a budget. On eligible domains (see
/// [`flat_eligible`]) runs the single-word engine with buffers from
/// `scratch`; otherwise falls back to the legacy [`espresso_bounded`].
/// Bit-identical to the legacy driver in both cases.
pub fn flat_espresso_bounded(
    on: &Cover,
    dc: &Cover,
    opts: &MinimizeOptions,
    budget: &Budget,
    scratch: &mut MinimizeScratch,
) -> (Cover, Completion) {
    let dom = on.domain();
    assert_eq!(dom, dc.domain(), "espresso: domain mismatch");
    if !flat_eligible(dom) {
        return espresso_bounded(on, dc, opts, budget);
    }
    let ctx = BinCtx::new(dom);
    let mut on_w = scratch.take();
    cover_to_words(on, &mut on_w);
    let mut dc_w = scratch.take();
    cover_to_words(dc, &mut dc_w);
    let (fw, completion) = espresso_words(ctx, &on_w, &dc_w, opts, budget, scratch);
    let cover = words_to_cover(dom, &fw);
    scratch.give(fw);
    scratch.give(dc_w);
    scratch.give(on_w);
    (cover, completion)
}

/// [`flat_espresso_bounded`] with default options, an unlimited budget, and
/// a one-shot scratch — the flat counterpart of [`crate::espresso`].
pub fn flat_espresso(on: &Cover, dc: &Cover) -> Cover {
    let mut scratch = MinimizeScratch::new();
    flat_espresso_bounded(
        on,
        dc,
        &MinimizeOptions::default(),
        &Budget::unlimited(),
        &mut scratch,
    )
    .0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cover::Cover;
    use crate::cube::Cube;
    use crate::domain::Domain;
    use crate::espresso::espresso;

    fn cover_from_codes(dom: &Domain, nv: usize, codes: &[u32]) -> Cover {
        let mut c = Cover::empty(dom);
        for &code in codes {
            let mut cube = Cube::full(dom);
            for v in 0..nv {
                cube.restrict_binary(dom, v, code >> v & 1 != 0);
            }
            c.push(cube);
        }
        c
    }

    #[test]
    fn eligibility_requires_all_binary_single_word() {
        assert!(flat_eligible(&Domain::binary(1)));
        assert!(flat_eligible(&Domain::binary(32)));
        assert!(!flat_eligible(&Domain::binary(33)));
    }

    #[test]
    fn flat_matches_legacy_on_minterm_covers() {
        let dom = Domain::binary(4);
        let on = cover_from_codes(&dom, 4, &[0, 1, 2, 3, 8, 9]);
        let dc = cover_from_codes(&dom, 4, &[10, 11]);
        let legacy = espresso(&on, &dc);
        let flat = flat_espresso(&on, &dc);
        assert_eq!(legacy, flat);
    }

    #[test]
    fn flat_cover_roundtrips() {
        let dom = Domain::binary(3);
        let on = cover_from_codes(&dom, 3, &[0, 3, 5]);
        let fc = FlatCover::from_cover(&on);
        assert_eq!(fc.len(), 3);
        assert_eq!(fc.stride(), 1);
        assert_eq!(fc.to_cover(&dom), on);
    }

    #[test]
    fn generic_kernels_match_cube_ops() {
        let dom = Domain::binary(3);
        let fd = FlatDomain::new(&dom);
        let mut a = Cube::full(&dom);
        a.restrict_binary(&dom, 0, true);
        let mut b = Cube::full(&dom);
        b.restrict_binary(&dom, 0, false);
        assert!(cube_is_valid(&fd, a.words()));
        assert_eq!(
            cube_distance(&fd, a.words(), b.words()),
            a.distance(&b, &dom)
        );
        let mut out = vec![0u64; fd.words()];
        assert!(cube_consensus_into(&fd, a.words(), b.words(), &mut out));
        let cons = a.consensus(&b, &dom).expect("distance 1");
        assert_eq!(out.as_slice(), cons.words());
    }

    #[test]
    fn empty_on_set_minimizes_to_empty() {
        let dom = Domain::binary(2);
        let on = Cover::empty(&dom);
        let dc = Cover::empty(&dom);
        assert!(flat_espresso(&on, &dc).is_empty());
    }

    #[test]
    fn universe_collapses_to_single_full_cube() {
        let dom = Domain::binary(2);
        let on = cover_from_codes(&dom, 2, &[0, 1, 2, 3]);
        let dc = Cover::empty(&dom);
        let flat = flat_espresso(&on, &dc);
        assert_eq!(flat.len(), 1);
        assert_eq!(flat, espresso(&on, &dc));
    }
}
